#!/usr/bin/env python
"""Multi-tenant serving: many models, one bank budget, shared waves.

The deployment picture behind Count2Multiply (paper Sec. 5) is many
weight-stationary matrices resident in one DRAM module answering query
streams from many clients.  This example walks the `repro.serve` stack:

1. a `Server` with two registered models and per-query telemetry,
2. coalescing: a burst of concurrent submissions folded into one
   bank-sharded `run_many()` wave,
3. bank pressure: a pool too small for both models, LRU eviction
   parking the cold plan's counter image and restoring it on demand.

Run:  python examples/serving_multitenant.py
"""

import numpy as np

from repro.serve import Server


def make_model(seed, k=24, n=32):
    rng = np.random.default_rng(seed)
    return rng.integers(-1, 2, (k, n)).astype(np.int8)


def serving_demo():
    print("=" * 64)
    print("1. A server, two tenants, per-query telemetry")
    print("=" * 64)
    z_chat = make_model(1)
    z_code = make_model(2)
    rng = np.random.default_rng(3)

    with Server(n_bits=2) as srv:
        srv.register("chat", z_chat, kind="ternary")
        srv.register("code", z_code, kind="ternary")

        x = rng.integers(-8, 9, 24)
        resp = srv.query("chat", x)
        print(f"models        : {srv.models}")
        print(f"y[:6]         : {resp.y[:6]}  "
              f"(exact: {(resp.y == x @ z_chat).all()})")
        rep = resp.report
        print(f"telemetry     : {rep.measured_ops} measured AAP/APs over "
              f"{rep.n_banks} banks")
        print(f"              : {rep.latency_ns / 1e3:.2f} us, "
              f"{rep.energy_j * 1e9:.1f} nJ modeled "
              f"(from the executed stream, not nominal op counts)")


def coalescing_demo():
    print()
    print("=" * 64)
    print("2. Concurrent submissions coalesce into shared waves")
    print("=" * 64)
    z = make_model(4)
    rng = np.random.default_rng(5)
    xs = rng.integers(-8, 9, (16, 24))

    with Server(n_bits=2) as srv:
        srv.register("chat", z, kind="ternary")
        futures = srv.submit_many("chat", xs)      # one concurrent burst
        responses = [f.result() for f in futures]
        exact = all((r.y == x @ z).all()
                    for r, x in zip(responses, xs))
        rep = responses[0].report
        print(f"queries       : {len(xs)} submitted concurrently")
        print(f"scheduler     : {srv.stats.waves} wave(s), largest "
              f"{srv.stats.max_wave} queries (coalesced={rep.coalesced})")
        print(f"wave cost     : {rep.measured_ops} AAP/APs, "
              f"{rep.latency_ns / 1e3:.2f} us; per-query share "
              f"{rep.query_energy_j * 1e9:.1f} nJ")
        print(f"bit-exact     : {exact}")


def eviction_demo():
    print()
    print("=" * 64)
    print("3. Bank pressure: LRU eviction parks counter images")
    print("=" * 64)
    z_chat = make_model(6)
    z_code = make_model(7)
    rng = np.random.default_rng(8)

    # A 4-bank budget fits exactly one resident plan: every model switch
    # parks the other plan (export_counters) and unparks on demand
    # (masks re-planted, import_counters) -- transparently, bit-exactly.
    with Server(n_bits=2, pool_banks=4) as srv:
        srv.register("chat", z_chat, kind="ternary")
        srv.register("code", z_code, kind="ternary")
        ok = True
        for _ in range(3):
            x = rng.integers(-6, 7, 24)
            ok &= (srv.query("chat", x).y == x @ z_chat).all()
            ok &= (srv.query("code", x).y == x @ z_code).all()
        stats = srv.registry.stats
        print(f"pool budget   : 4 banks shared by "
              f"{len(srv.models)} models")
        print(f"plan cache    : {stats.hits} hits, {stats.misses} "
              f"misses, {stats.evictions} evictions")
        print(f"resident now  : {srv.registry.resident_names}")
        print(f"bit-exact     : {bool(ok)} (across every eviction "
              f"round-trip)")


if __name__ == "__main__":
    serving_demo()
    coalescing_demo()
    eviction_demo()
