#!/usr/bin/env python
"""Sharded serving: a multi-process fleet behind one asyncio front door.

`examples/serving_multitenant.py` runs everything in one process; this
example scales the same serving story across worker processes with
`repro.fleet`:

1. a `Fleet` of 2 shard workers, each owning a private `BankPool` and
   counting-engine stack, with models placed by accounted bank budget,
2. the asyncio front door coalescing a concurrent burst into per-shard
   `run_many()` waves (telemetry shows waves << queries),
3. bit-exact relocation: `move()` parks a model's counter image,
   ships it through shared memory, and unparks it on another shard,
4. fault tolerance: a crashed worker fails its queries with a typed
   error while the surviving shard keeps serving.

Run:  python examples/fleet_serving.py
"""

import numpy as np

from repro.fleet import Fleet, WorkerCrashedError


def make_model(seed, k=24, n=32):
    rng = np.random.default_rng(seed)
    return rng.integers(-1, 2, (k, n)).astype(np.int8)


def main():
    z_chat, z_code = make_model(1), make_model(2)
    rng = np.random.default_rng(3)

    with Fleet(n_shards=2, n_bits=2, pool_banks=32) as fleet:
        print("=" * 64)
        print("1. Placement: models land on separate shards by budget")
        print("=" * 64)
        fleet.register("chat", z_chat, kind="ternary")
        fleet.register("code", z_code, kind="ternary")
        print(f"chat -> shard {fleet.shard_of('chat')}, "
              f"code -> shard {fleet.shard_of('code')}")

        print()
        print("=" * 64)
        print("2. A concurrent burst coalesces into per-shard waves")
        print("=" * 64)
        xs = rng.integers(-8, 9, (16, 24))
        futures = [fleet.submit("chat" if i % 3 else "code", xs[i])
                   for i in range(16)]
        ys = [f.result().y for f in futures]
        exact = all(
            (y == xs[i] @ (z_chat if i % 3 else z_code).astype(np.int64)
             ).all() for i, y in enumerate(ys))
        summary = fleet.telemetry_summary()
        print(f"16 queries -> {summary.waves} waves, exact={exact}")
        print(f"p50 {summary.latency.p50_ns / 1e3:.1f} us, "
              f"p99 {summary.latency.p99_ns / 1e3:.1f} us")

        print()
        print("=" * 64)
        print("3. Bit-exact relocation between shards")
        print("=" * 64)
        src = fleet.shard_of("chat")
        dst = next(s for s in fleet.shards if s != src)
        x = rng.integers(-8, 9, 24)
        for hop in (dst, src):          # there and back again
            fleet.move("chat", hop)
            y = fleet.query("chat", x).y
            print(f"chat -> shard {hop}; post-move query "
                  f"exact={(y == x @ z_chat.astype(np.int64)).all()}")
        print(f"relocations: {fleet.stats.relocations}")

        print()
        print("=" * 64)
        print("4. A worker crash fails fast; the fleet keeps serving")
        print("=" * 64)
        victim = fleet.shard_of("code")
        fleet.crash_shard(victim)
        try:
            fleet.query("code", x)
        except WorkerCrashedError as exc:
            print(f"code query -> {type(exc).__name__}: {exc}")
        y = fleet.query("chat", x).y
        print(f"chat still serves on shard {fleet.shard_of('chat')}: "
              f"exact={(y == x @ z_chat.astype(np.int64)).all()}")


if __name__ == "__main__":
    main()
