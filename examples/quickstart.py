#!/usr/bin/env python
"""Quickstart: in-memory high-radix counting in five minutes.

Walks through the core Count2Multiply ideas on the gate-level simulator:

1. a vector of Johnson counters living in a DRAM subarray,
2. masked broadcast accumulation (the MAC primitive) and a ternary
   vector-matrix product,
3. Device/Plan sessions: plant the matrix once, stream many queries,
4. what CIM faults do -- and how the ECC protection scheme absorbs them.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import CountingEngine, Device, FaultModel, ternary_gemv


def counting_demo():
    print("=" * 64)
    print("1. Masked in-memory counting")
    print("=" * 64)
    # Radix-4 counters (2-bit Johnson digits), 6 digits -> capacity 4096,
    # one counter per bitline; 8 lanes keeps the printout readable.
    engine = CountingEngine(n_bits=2, n_digits=6, n_lanes=8)
    mask = np.array([1, 0, 1, 0, 1, 0, 1, 0], dtype=np.uint8)
    engine.load_mask(0, mask)

    # The host unpacks 45 into radix-4 digits (231) and broadcasts one
    # k-ary increment per non-zero digit -- no carry chains involved.
    engine.accumulate(45)
    engine.accumulate(7)
    print(f"mask        : {mask}")
    print(f"counters    : {engine.read_values()}")
    print(f"AAP/AP ops  : {engine.measured_ops} "
          f"(model: {engine.model_ops})")


def gemv_demo():
    print()
    print("=" * 64)
    print("2. Integer x ternary vector-matrix product")
    print("=" * 64)
    rng = np.random.default_rng(42)
    x = rng.integers(-20, 21, 8)               # int8-style activations
    z = rng.integers(-1, 2, (8, 12)).astype(np.int8)   # ternary weights
    y = ternary_gemv(x, z)
    print(f"x           : {x}")
    print(f"y = x @ Z   : {y}")
    print(f"numpy check : {(y == x @ z).all()}")


def session_demo():
    print()
    print("=" * 64)
    print("3. Sessions: plant Z once, stream many queries")
    print("=" * 64)
    rng = np.random.default_rng(7)
    z = rng.integers(-1, 2, (16, 24)).astype(np.int8)  # resident weights
    xs = rng.integers(-9, 10, (8, 16))                 # streamed queries
    with Device(n_bits=2) as dev:
        plan = dev.plan_gemv(z, kind="ternary")        # plant once
        ys = plan.run_many(xs)                         # stream many
        single = plan(xs[0])                           # or one at a time
        stats = plan.stats
    print(f"8 queries bit-exact : {(ys == xs @ z).all()} "
          f"(single query too: {(single == xs[0] @ z).all()})")
    print(f"resident mask rows  : {stats.resident_rows} "
          f"(planted once, reused by every query)")
    print(f"broadcast waves     : {stats.broadcasts} for "
          f"{stats.queries} queries")
    print(f"uProgram cache      : {stats.program_compiles} compiled, "
          f"{stats.program_replays} replayed")


def fault_demo():
    print()
    print("=" * 64)
    print("4. CIM faults and the XOR-embedded ECC protection")
    print("=" * 64)
    stream = [9, 14, 3, 27, 5, 18, 2, 30]
    expected = sum(stream)
    for fr_checks, label in ((0, "unprotected"), (2, "protected (r=2)")):
        fm = FaultModel(p_cim=8e-3, seed=7)
        engine = CountingEngine(n_bits=2, n_digits=5, n_lanes=16,
                                fault_model=fm, fr_checks=fr_checks)
        engine.load_mask(0, np.ones(16, dtype=np.uint8))
        for v in stream:
            engine.accumulate(v)
        got = engine.read_values(strict=False)
        wrong = int((got != expected).sum())
        line = (f"{label:18s}: {wrong:2d}/16 lanes wrong "
                f"({fm.injected} faults injected")
        if fr_checks:
            st = engine.protection.stats
            line += (f", {st.detections} detected, "
                     f"retry overhead {st.retry_overhead:.0%}")
        print(line + ")")
    print("\nEvery masking AND is embedded in an in-memory XOR whose "
          "check bits commodity\nECC can predict -- detected faults "
          "simply recompute the block (paper Sec. 6).")


if __name__ == "__main__":
    counting_demo()
    gemv_demo()
    session_demo()
    fault_demo()
