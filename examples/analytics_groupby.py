#!/usr/bin/env python
"""In-memory analytics: histogram, group-by and radix sort as counting.

Count2Multiply's thesis is that high-radix in-memory counters make
*counting* the primitive everything else lowers to.  Database-style
analytics are the purest case: a histogram IS counters, a group-by
aggregate IS counters keyed by group, and an LSD radix sort is just a
histogram plus a host-side prefix sum per digit plane.  This example
walks `repro.apps.analytics`:

1. a `HistogramPlan` streaming key batches (exact vs `np.bincount`),
2. a `GroupByPlan` summing signed values per group,
3. `radix_sort` end to end, counts from the engine,
4. the same models served multi-tenant through the plan-kind seam.

Run:  python examples/analytics_groupby.py
"""

import numpy as np

from repro.apps.analytics import radix_sort
from repro.device import Device
from repro.serve import Server


def histogram_demo():
    print("=" * 64)
    print("1. Histogram: key streams as masked counter increments")
    print("=" * 64)
    rng = np.random.default_rng(1)
    keys = rng.integers(0, 8, (4, 48))            # 4 queries of 48 keys
    with Device(n_bits=2) as dev:
        plan = dev.plan_histogram(n_buckets=8, query_len=48)
        counts = plan.run_many(keys)
        golden = np.stack([np.bincount(q, minlength=8) for q in keys])
        print(f"counts[0]     : {counts[0]}")
        print(f"exact         : {(counts == golden).all()}")
        s = plan.stats
        print(f"stats         : {s.broadcasts} broadcast waves, "
              f"{s.measured_ops} measured AAP/APs, "
              f"{s.megatrace_replays} megatrace replays")


def groupby_demo():
    print()
    print("=" * 64)
    print("2. Group-by: signed per-group sums on the ternary path")
    print("=" * 64)
    rng = np.random.default_rng(2)
    recs = np.stack([rng.integers(0, 4, 64),      # group keys
                     rng.integers(-9, 10, 64)],   # signed values
                    axis=1)
    with Device(n_bits=2) as dev:
        plan = dev.plan_groupby(4, agg="sum")
        sums = plan(recs)
        golden = np.zeros(4, dtype=np.int64)
        np.add.at(golden, recs[:, 0], recs[:, 1])
        print(f"group sums    : {sums}")
        print(f"exact         : {(sums == golden).all()}")


def radix_sort_demo():
    print()
    print("=" * 64)
    print("3. Radix sort: engine histograms + host prefix sums")
    print("=" * 64)
    rng = np.random.default_rng(3)
    keys = rng.integers(0, 1 << 8, 128)
    out, tags = radix_sort(keys, radix_bits=4,
                           payload=np.arange(keys.size))
    print(f"sorted        : {(out == np.sort(keys)).all()}")
    print(f"stable        : {(keys[tags] == out).all()} "
          f"(payload rides along)")


def serving_demo():
    print()
    print("=" * 64)
    print("4. Serving analytics next to matrix models (plan-kind seam)")
    print("=" * 64)
    rng = np.random.default_rng(4)
    z = rng.integers(-1, 2, (16, 24)).astype(np.int8)
    with Server(n_bits=2) as srv:
        srv.register("gemv", z, kind="ternary")
        srv.register("hist", kind="histogram", n_buckets=8, query_len=32)
        keys = rng.integers(0, 8, (6, 32))        # a coalescable burst
        futures = srv.submit_many("hist", keys)
        responses = [f.result() for f in futures]
        exact = all((r.y == np.bincount(k, minlength=8)).all()
                    for r, k in zip(responses, keys))
        rep = responses[0].report
        print(f"burst         : {len(responses)} histogram queries, "
              f"coalesced into a wave of {rep.batch_size}")
        print(f"exact         : {exact}")
        print(f"telemetry     : {rep.measured_ops} measured AAP/APs, "
              f"{rep.latency_ns / 1e3:.2f} us modeled")
        x = rng.integers(-8, 9, 16)
        print(f"gemv tenant   : "
              f"{(srv.query('gemv', x).y == x @ z).all()} (unchanged)")


if __name__ == "__main__":
    histogram_demo()
    groupby_demo()
    radix_sort_demo()
    serving_demo()
