#!/usr/bin/env python
"""Technology portability: counting on Pinatubo and MAGIC NVMs (Sec. 4.6).

Count2Multiply is technology-agnostic: anything with a functionally
complete set of bulk-bitwise row operations can host the counters.  This
example runs the *same* masked increment on three substrates --

* Ambit DRAM (MAJ3 + dual-contact-cell NOT),
* a Pinatubo-style NVM (AND/OR/NOT with writeback),
* a MAGIC-style memristive array (NOR only) --

verifies they agree bit for bit, and compares their op counts
(paper Fig. 10).

Run:  python examples/nvm_portability.py
"""

import numpy as np

from repro.core import johnson as J
from repro.core.opcount import increment_ops
from repro.dram import AmbitSubarray
from repro.isa import (MagicMachine, PinatuboMachine,
                       kary_increment_program, magic_increment_program,
                       magic_op_count, pinatubo_increment_program,
                       pinatubo_op_count)


def main():
    n, lanes = 5, 16
    rng = np.random.default_rng(8)
    values = rng.integers(0, 2 * n, lanes)
    mask = rng.integers(0, 2, lanes).astype(np.uint8)
    state = J.encode_lanes(values, n)
    expected = J.step(state, 1, mask)

    print(f"radix-{2 * n} counters, start values: {values}")
    print(f"mask: {mask}\n")

    # --- Ambit DRAM -----------------------------------------------------
    sa = AmbitSubarray(n + 8, lanes)
    for i in range(n):
        sa.write_data_row(i, state[i])
    sa.write_data_row(n, mask)
    sa.write_data_row(n + 1, np.zeros(lanes, np.uint8))
    prog = kary_increment_program(list(range(n)), n, 1,
                                  list(range(n + 2, n + 2 + n)), n + 1)
    prog.run(sa)
    ambit_ok = (sa.read_rows(list(range(n))) == expected).all()

    # --- Pinatubo and MAGIC ----------------------------------------------
    results = {"Ambit DRAM": (ambit_ok, len(prog),
                              f"7n+7 = {increment_ops(n)}")}
    for name, machine_cls, generator, count_fn, formula in (
            ("Pinatubo NVM", PinatuboMachine, pinatubo_increment_program,
             pinatubo_op_count, f"3n+4 = {3 * n + 4}"),
            ("MAGIC (NOR)", MagicMachine, magic_increment_program,
             magic_op_count, f"6n+4 = {6 * n + 4}")):
        machine = machine_cls(lanes)
        for i in range(n):
            machine.write(f"b{i}", state[i])
        machine.write("m", mask)
        machine.write("On", np.zeros(lanes, np.uint8))
        machine.run(generator(n))
        got = np.stack([machine.read(f"b{i}") for i in range(n)])
        results[name] = ((got == expected).all(), count_fn(n), formula)

    print(f"{'substrate':14s} {'bit-exact':>9} {'ops':>5}  paper formula")
    print("-" * 50)
    for name, (ok, ops, formula) in results.items():
        print(f"{name:14s} {str(bool(ok)):>9} {ops:>5}  {formula}")
    print("\nSame counters, same answer -- only the μProgram dialect "
          "changes.")


if __name__ == "__main__":
    main()
