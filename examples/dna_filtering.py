#!/usr/bin/env python
"""DNA pre-alignment filtering on in-memory counters (paper Secs. 3, 7).

Builds a synthetic genome, bins it GRIM-Filter style with k-mer presence
bitvectors, and filters noisy reads by accumulating their k-mer
repetition counts against every bin *in parallel* -- one Johnson counter
per bin.  Then sweeps the CIM fault rate to show why the paper treats
reliability as a first-class metric: the RCA baseline's F1 collapses two
decades before the Johnson counters', and the ECC scheme holds the line
to 1e-2.

Run:  python examples/dna_filtering.py
"""

from repro.apps.dna import DNAFilterConfig, DNAFilterWorkload


def main():
    config = DNAFilterConfig(genome_len=60_000, bin_len=600, kmer=7,
                             read_len=120, n_reads=40)
    workload = DNAFilterWorkload(config)
    print(f"genome: {config.genome_len} bp, {workload.n_bins} bins, "
          f"{workload.n_tokens} k-mer tokens, {config.n_reads} reads "
          f"({config.mutation_rate:.0%} mutation rate)")

    clean = workload.evaluate("jc", 0.0, "none")
    print(f"\nfault-free filter: F1={clean['f1']:.3f} "
          f"precision={clean['precision']:.3f} "
          f"recall={clean['recall']:.3f}")

    print(f"\n{'fault rate':>10} | {'JC':>6} {'JC+ECC':>7} {'JC+TMR':>7}"
          f" | {'RCA':>6} {'RCA+ECC':>8}")
    print("-" * 56)
    for f in (1e-5, 1e-4, 1e-3, 1e-2, 1e-1):
        jc = workload.evaluate("jc", f, "none")["f1"]
        ecc = workload.evaluate("jc", f, "ecc")["f1"]
        tmr = workload.evaluate("jc", f, "tmr")["f1"]
        rca = workload.evaluate("rca", f, "none")["f1"]
        rcae = workload.evaluate("rca", f, "ecc")["f1"]
        print(f"{f:>10.0e} | {jc:>6.3f} {ecc:>7.3f} {tmr:>7.3f}"
              f" | {rca:>6.3f} {rcae:>8.3f}")

    print("\nReading the table (paper Figs. 4b / 17a):")
    print(" * the JC filter tolerates ~10x higher fault rates than RCA;")
    print(" * ECC protection keeps F1 at the fault-free level to ~1e-2;")
    print(" * TMR costs more ops (3x + vote) yet gives weaker floors.")


if __name__ == "__main__":
    main()
