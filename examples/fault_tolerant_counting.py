#!/usr/bin/env python
"""Anatomy of the fault-tolerance scheme (paper Sec. 6).

Shows the protection machinery piece by piece:

1. XOR homomorphism of the (72, 64) DIMM Hamming code;
2. the in-memory XOR synthesis (IR1/IR2/FR) catching an injected fault;
3. Table 1 regenerated: error/detect rates vs FR-check count;
4. TMR vs ECC on the same gate-level counter bank.

Run:  python examples/fault_tolerant_counting.py
"""

import numpy as np

from repro import CountingEngine, FaultModel
from repro.ecc import (HAMMING_72_64, CIMProtection, protected_detect_rate,
                       protected_error_rate, table1, tmr_error_rate)


def homomorphism_demo(rng):
    print("=" * 66)
    print("1. ECC is homomorphic over XOR (the scheme's foundation)")
    print("=" * 66)
    a = rng.integers(0, 2, 64).astype(np.uint8)
    b = rng.integers(0, 2, 64).astype(np.uint8)
    h = HAMMING_72_64
    lhs = h.parity_bits(a ^ b)
    rhs = h.parity_bits(a) ^ h.parity_bits(b)
    print(f"parity(a XOR b) == parity(a) XOR parity(b)  ->  "
          f"{(lhs == rhs).all()}")
    print("so the ECC chip can *predict* the check bits of an FR row "
          "without reading it.\n")


def detection_demo(rng):
    print("=" * 66)
    print("2. A fault in a masking AND trips the FR syndrome check")
    print("=" * 66)
    prot = CIMProtection()
    m = rng.integers(0, 2, 64).astype(np.uint8)
    src = rng.integers(0, 2, 64).astype(np.uint8)
    expected = prot.predict_xor_checks(m) ^ prot.checks_of(src)
    fr_clean = m ^ src
    fr_faulty = fr_clean.copy()
    fr_faulty[13] ^= 1                   # one CIM upset
    print(f"clean FR  -> detected words: "
          f"{prot.verify_xor(fr_clean, expected).sum()}")
    print(f"faulty FR -> detected words: "
          f"{prot.verify_xor(fr_faulty, expected).sum()}  (recompute!)\n")


def table1_demo():
    print("=" * 66)
    print("3. Table 1: repeating the FR check buys error-rate decades")
    print("=" * 66)
    print(f"{'FR checks':>9} {'ops (n=5)':>10} | "
          f"{'err@1e-2':>10} {'det@1e-2':>10}")
    for row in table1():
        print(f"{row.fr_checks:>9} {row.ambit_ops_n5:>10} | "
              f"{row.error_rates[1e-2]:>10.1e} "
              f"{row.detect_rates[1e-2]:>10.2e}")
    f = 1e-2
    print(f"\nversus TMR at the same fault rate: "
          f"error {tmr_error_rate(f):.1e} for 3x ops + vote "
          f"(ECC r=2: {protected_error_rate(f, 2):.1e})\n")


def end_to_end_demo(rng):
    print("=" * 66)
    print("4. End to end on the gate-level engine @ fault rate 1e-2")
    print("=" * 66)
    stream = rng.integers(1, 50, 12)
    expected = int(stream.sum())
    for fr_checks, label in ((0, "bare counters "),
                             (2, "ECC-protected")):
        fm = FaultModel(p_cim=1e-2, seed=31)
        eng = CountingEngine(n_bits=2, n_digits=5, n_lanes=32,
                             fault_model=fm, fr_checks=fr_checks)
        eng.load_mask(0, np.ones(32, dtype=np.uint8))
        for v in stream:
            eng.accumulate(int(v))
        got = eng.read_values(strict=False)
        wrong = int((got != expected).sum())
        extra = ""
        if fr_checks:
            st = eng.protection.stats
            extra = (f" | detected {st.detections}, retry overhead "
                     f"{st.retry_overhead:.0%}")
        print(f"{label}: {wrong:2d}/32 lanes wrong{extra}")
    print("\nDetected faults cost only recomputation (Sec. 7.3.2: "
          "~19.6% at 1e-4);\nundetected ones need a coincidence of "
          "~f^(r+1) -- see Table 1 above.")


if __name__ == "__main__":
    rng = np.random.default_rng(11)
    homomorphism_demo(rng)
    detection_demo(rng)
    table1_demo()
    end_to_end_demo(rng)
