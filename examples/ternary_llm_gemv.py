#!/usr/bin/env python
"""Ternary LLM GEMV: functional run + full performance projection.

Part 1 runs a scaled-down LLaMA-style projection (integer activations x
ternary weights) bit-accurately on the gate-level engine.

Part 2 projects the full Tab. 3 shapes through the performance models:
Count2Multiply vs SIMDRAM vs an RTX 3090 Ti, with the Fig. 16 sparsity
sweep showing where in-memory counting overtakes the GPU.

Run:  python examples/ternary_llm_gemv.py
"""

import time

import numpy as np

from repro import C2MConfig, C2MModel, Device, GEMMShape, ternary_gemv
from repro.apps.workloads import LLAMA_SHAPES
from repro.perf import gpu_cost, simdram_cost


def functional_part():
    print("=" * 68)
    print("Functional: weights planted once, activation stream (gate level)")
    print("=" * 68)
    rng = np.random.default_rng(3)
    k, n, queries = 24, 32, 16          # scaled-down projection
    w = rng.integers(-1, 2, (k, n)).astype(np.int8)
    xs = rng.integers(-50, 51, (queries, k))

    t0 = time.perf_counter()
    cold = np.stack([ternary_gemv(x, w) for x in xs])
    t_cold = time.perf_counter() - t0

    t0 = time.perf_counter()
    with Device(n_bits=2) as dev:
        plan = dev.plan_gemv(w, kind="ternary")   # plant the weights once
        ys = plan.run_many(xs)                    # stream the activations
        stats = plan.stats
    t_plan = time.perf_counter() - t0

    ok = (ys == xs @ w).all() and (cold == xs @ w).all()
    print(f"K={k}, N={n}, {queries} queries: bit-exact vs numpy -> {ok}")
    print(f"cold kernel calls {t_cold * 1e3:6.1f} ms vs planted session "
          f"{t_plan * 1e3:6.1f} ms ({t_cold / t_plan:.1f}x amortized)")
    print(f"session issued {stats.measured_ops} AAP/AP command sequences "
          f"({stats.broadcasts} broadcast waves, "
          f"{stats.program_replays} uProgram cache replays)\n")


def performance_part():
    print("=" * 68)
    print("Projection: Tab. 3 shapes on C2M:16 / SIMDRAM:16 / RTX 3090 Ti")
    print("=" * 68)
    c2m = C2MModel(C2MConfig(banks=16))
    print(f"{'shape':>6} | {'C2M ms':>10} {'SIMDRAM ms':>11} "
          f"{'GPU ms':>9} | {'speedup':>7} {'C2M GOPS/W':>10}")
    print("-" * 68)
    for name in ("V0", "V2", "V3", "M0", "M2"):
        shape = LLAMA_SHAPES[name]
        c = c2m.cost(shape)
        s = simdram_cost(shape, banks=16)
        g = gpu_cost(shape)
        print(f"{name:>6} | {c.latency_ms:>10.2f} {s.latency_ms:>11.2f} "
              f"{g.latency_ms:>9.2f} | {s.time_s / c.time_s:>6.1f}x "
              f"{c.gops_per_watt:>10.1f}")

    print("\nSparsity sweep on V0 (Fig. 16): where C2M passes the GPU")
    shape = LLAMA_SHAPES["V0"]
    g = gpu_cost(shape)
    for sp in (0.0, 0.2, 0.4, 0.6, 0.8, 0.95):
        c = c2m.cost(shape, sparsity=sp)
        winner = "C2M" if c.time_s < g.time_s else "GPU"
        print(f"  sparsity {sp:4.0%}: C2M {c.latency_ms:7.2f} ms vs "
              f"GPU {g.latency_ms:.2f} ms  -> {winner}")


if __name__ == "__main__":
    functional_part()
    performance_part()
