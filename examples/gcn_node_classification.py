#!/usr/bin/env python
"""GCN node classification on in-memory counters (paper Sec. 7.1).

A two-layer graph convolutional network where *both* the feature
transforms (integer x ternary) and the neighborhood aggregations
(adjacency rows as binary masks) execute on the Count2Multiply kernels
-- aggregation over a graph is masked accumulation in its purest form.

Also projects the full PubMed-scale workload through the performance
model, showing why zero-skipping makes GCNs C2M's best case: the
adjacency operand is 99.98 % sparse, and SIMDRAM must grind through all
of it.

Run:  python examples/gcn_node_classification.py
"""

import numpy as np

from repro.apps.gcn import (GCNConfig, SyntheticCitationGraph,
                            gcn_forward_cim, gcn_forward_reference)
from repro.apps.workloads import layer_inventory
from repro.perf import C2MConfig, C2MModel, simdram_cost


def functional_part():
    print("=" * 66)
    print("Functional: 2-layer GCN forward pass, gate-level CIM")
    print("=" * 66)
    graph = SyntheticCitationGraph(GCNConfig(n_nodes=60, n_edges=220,
                                             n_feats=12, n_hidden=6))
    ref = gcn_forward_reference(graph)
    cim = gcn_forward_cim(graph)
    agree = (ref.argmax(1) == cim.argmax(1)).mean()
    acc = (cim.argmax(1) == graph.labels).mean()
    print(f"nodes={graph.config.n_nodes}, "
          f"edges~{graph.adjacency.sum() // 2}")
    print(f"CIM logits == reference logits : {(ref == cim).all()}")
    print(f"argmax agreement               : {agree:.0%}")
    print(f"node classification accuracy   : {acc:.0%}\n")


def performance_part():
    print("=" * 66)
    print("Projection: PubMed-scale GCN (19717 nodes, 88648 edges)")
    print("=" * 66)
    c2m = C2MModel(C2MConfig(banks=16))
    total_c2m = total_sim = 0.0
    print(f"{'layer':>6} {'sparsity':>9} {'C2M ms':>12} {'SIMDRAM ms':>12}")
    for layer in layer_inventory("GCN"):
        c = c2m.cost(layer.shape, sparsity=layer.sparsity)
        s = simdram_cost(layer.shape, banks=16)
        total_c2m += c.time_s
        total_sim += s.time_s
        print(f"{layer.shape.name:>6} {layer.sparsity:>9.4f} "
              f"{c.latency_ms:>12.2f} {s.latency_ms:>12.2f}")
    print("-" * 44)
    print(f"{'total':>6} {'':>9} {total_c2m * 1e3:>12.2f} "
          f"{total_sim * 1e3:>12.2f}  "
          f"({total_sim / total_c2m:.0f}x speedup)")
    print("\nThe aggregation layers dominate SIMDRAM's time because its "
          "command stream\ncannot skip the 99.98% zero entries of the "
          "adjacency; C2M simply never\nissues increments for them "
          "(Sec. 7.2.3).")


if __name__ == "__main__":
    functional_part()
    performance_part()
