"""Common cost-report container and derived metrics (Sec. 7 figures)."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CostReport"]


@dataclass
class CostReport:
    """Latency/energy/area cost of one kernel on one design point.

    ``nominal_ops`` counts the kernel's arithmetic work (2·M·N·K for a
    GEMM) independent of sparsity -- the accounting the paper uses, which
    is why zero-skipping designs show *rising* GOPS under sparsity while
    the GPU stays flat (Fig. 16).
    """

    name: str
    nominal_ops: float
    time_s: float
    energy_j: float
    area_mm2: float
    aaps: float = 0.0

    @property
    def latency_ms(self) -> float:
        return self.time_s * 1e3

    @property
    def gops(self) -> float:
        """Throughput in giga-operations per second."""
        return self.nominal_ops / self.time_s / 1e9

    @property
    def power_w(self) -> float:
        return self.energy_j / self.time_s

    @property
    def gops_per_watt(self) -> float:
        return self.gops / self.power_w

    @property
    def gops_per_mm2(self) -> float:
        return self.gops / self.area_mm2

    def normalized_to(self, baseline: "CostReport") -> dict:
        """Ratios against a baseline (the Fig. 14 normalization)."""
        return {
            "speedup": baseline.time_s / self.time_s,
            "gops": self.gops / baseline.gops,
            "gops_per_watt": self.gops_per_watt / baseline.gops_per_watt,
            "gops_per_mm2": self.gops_per_mm2 / baseline.gops_per_mm2,
        }
