"""Common cost-report container and derived metrics (Sec. 7 figures).

Two report constructors coexist deliberately:

* the analytical models (:class:`repro.perf.C2MModel`, the baselines)
  build :class:`CostReport` from *predicted* op counts, and
* :func:`measured_cost` builds one from the op count an engine
  *actually issued* (``CountingEngine.measured_ops``, retries and
  protection overhead included), threading it through the same
  :func:`repro.dram.timing.time_for_aaps_ns` latency model and
  :class:`repro.dram.energy.EnergyModel` -- so executed-path telemetry
  and paper-scale projections are directly comparable numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.dram.energy import DDR5_ENERGY, EnergyModel
from repro.dram.timing import (DDR5_4400_TIMING, TimingParams,
                               time_for_aaps_ns)

__all__ = ["CostReport", "measured_cost"]


@dataclass
class CostReport:
    """Latency/energy/area cost of one kernel on one design point.

    ``nominal_ops`` counts the kernel's arithmetic work (2·M·N·K for a
    GEMM) independent of sparsity -- the accounting the paper uses, which
    is why zero-skipping designs show *rising* GOPS under sparsity while
    the GPU stays flat (Fig. 16).
    """

    name: str
    nominal_ops: float
    time_s: float
    energy_j: float
    area_mm2: float
    aaps: float = 0.0

    @property
    def latency_ms(self) -> float:
        return self.time_s * 1e3

    @property
    def gops(self) -> float:
        """Throughput in giga-operations per second."""
        return self.nominal_ops / self.time_s / 1e9

    @property
    def power_w(self) -> float:
        return self.energy_j / self.time_s

    @property
    def gops_per_watt(self) -> float:
        return self.gops / self.power_w

    @property
    def gops_per_mm2(self) -> float:
        return self.gops / self.area_mm2

    def normalized_to(self, baseline: "CostReport") -> dict:
        """Ratios against a baseline (the Fig. 14 normalization)."""
        return {
            "speedup": baseline.time_s / self.time_s,
            "gops": self.gops / baseline.gops,
            "gops_per_watt": self.gops_per_watt / baseline.gops_per_watt,
            "gops_per_mm2": self.gops_per_mm2 / baseline.gops_per_mm2,
        }


def measured_cost(measured_ops: int, n_banks: int,
                  nominal_ops: float = 0.0, name: str = "measured",
                  timing: TimingParams = DDR5_4400_TIMING,
                  energy: Optional[EnergyModel] = None,
                  include_refresh: bool = False) -> CostReport:
    """Cost of an *executed* command stream of ``measured_ops`` AAPs.

    ``measured_ops`` must come from the engines that ran the work
    (:attr:`repro.engine.CountingEngine.measured_ops` deltas), so fault
    retries and protection overhead are priced in -- the executed-path
    counterpart of :meth:`repro.perf.C2MModel.cost`.  ``n_banks`` is the
    bank-level parallelism the stream was actually spread over (the
    plan's leased banks), which sets the AAP issue rate.

    >>> r = measured_cost(1000, n_banks=8)
    >>> round(r.latency_ms, 4)
    0.0065
    >>> r.aaps
    1000.0
    """
    if measured_ops < 0:
        raise ValueError("measured op count must be non-negative")
    energy = energy or DDR5_ENERGY
    time_s = time_for_aaps_ns(measured_ops, n_banks, timing,
                              include_refresh=include_refresh) * 1e-9
    return CostReport(
        name=name,
        nominal_ops=float(nominal_ops),
        time_s=time_s,
        energy_j=energy.energy_for_aaps_j(measured_ops, time_s),
        area_mm2=energy.module_area_mm2(),
        aaps=float(measured_ops))
