"""End-to-end performance models for C2M, SIMDRAM and the GPU (Sec. 7).

The C2M cost of a masked accumulation is *input-dependent*: the host
broadcasts one k-ary increment per non-zero input digit, IARM amortizes
carry rippling, and zero inputs are skipped entirely.  The model samples
a value stream (matching the evaluated distribution), measures the mean
scheduler cost per input, and folds in column tiling, bank-level
parallelism, the protection-scheme op inflation (Tab. 1) and the
detected-fault correction overhead (Sec. 7.3.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.baselines.gpu import GPUModel
from repro.baselines.simdram import SIMDRAMConfig, SIMDRAMModel
from repro.core.iarm import IARMScheduler, NaiveKaryScheduler, UnitScheduler
from repro.core.opcount import (digits_for_capacity, increment_ops,
                                mean_ops_per_value, protected_increment_ops)
from repro.dram.energy import DDR5_ENERGY, EnergyModel
from repro.dram.geometry import DDR5_4400, DRAMGeometry
from repro.dram.timing import DDR5_4400_TIMING, TimingParams, time_for_aaps_ns
from repro.ecc.analysis import correction_overhead
from repro.perf.metrics import CostReport
from repro.util import RngLike, as_rng

__all__ = ["GEMMShape", "C2MConfig", "C2MModel", "simdram_cost", "gpu_cost",
           "uniform_int8_magnitudes"]

_SCHEDULERS = {
    "iarm": IARMScheduler,
    "kary": NaiveKaryScheduler,
    "unit": UnitScheduler,
}


@dataclass(frozen=True)
class GEMMShape:
    """An M x N x K multiplication (M = 1 is a GEMV)."""

    m: int
    n: int
    k: int
    name: str = ""

    @property
    def nominal_ops(self) -> float:
        """2 MACs per multiply-accumulate."""
        return 2.0 * self.m * self.n * self.k


def uniform_int8_magnitudes(count: int = 4096,
                            seed: RngLike = 1234) -> np.ndarray:
    """|x| for uniform signed 8-bit inputs (the Sec. 7.2.1 evaluation).

    Ternary weights let the host fold the input's sign into a mask swap,
    so counters only ever see magnitudes.
    """
    rng = as_rng(seed)
    return np.abs(rng.integers(-128, 128, count))


@dataclass(frozen=True)
class C2MConfig:
    """A C2M:X design point (paper Sec. 7.1).

    Defaults follow Sec. 7.2.1: radix-4 counters, 64-bit accumulation
    capacity, ternary operands, IARM scheduling.
    """

    n_bits: int = 2
    capacity_bits: int = 64
    banks: int = 16
    ternary: bool = True
    scheduler: str = "iarm"
    fr_checks: int = 0                 # 0 = unprotected
    fault_rate: float = 1e-4           # used when protected
    #: All-bank activation (Sec. 7.2.2): one broadcast command drives the
    #: same μProgram in every bank -- and every CIM-enabled subarray per
    #: bank -- at once, so column tiles execute in lockstep.  Higher
    #: throughput for very wide outputs at proportionally higher power
    #: (every engaged subarray's row activates per command).
    all_bank: bool = False
    geometry: DRAMGeometry = DDR5_4400
    timing: TimingParams = DDR5_4400_TIMING
    energy: EnergyModel = DDR5_ENERGY

    @property
    def n_digits(self) -> int:
        return digits_for_capacity(self.n_bits, 2 ** self.capacity_bits)


class C2MModel:
    """Latency/energy/area model for Count2Multiply kernels."""

    def __init__(self, config: C2MConfig = C2MConfig(),
                 value_sample: Optional[Sequence[int]] = None):
        self.config = config
        if config.scheduler not in _SCHEDULERS:
            raise ValueError(f"unknown scheduler {config.scheduler!r}")
        self._sample = (np.asarray(value_sample)
                        if value_sample is not None
                        else uniform_int8_magnitudes())
        self._ops_per_input_cache: Optional[float] = None

    # ------------------------------------------------------------------
    def ops_per_input(self) -> float:
        """Mean command sequences per accumulated input element.

        Measured by running the configured scheduler over the value
        sample (zero inputs are skipped by construction); ternary
        operands double the passes (increments on the +1 mask,
        decrements on the -1 mask); protection inflates each op by the
        Tab. 1 ratio and the correction overhead.
        """
        if self._ops_per_input_cache is None:
            cfg = self.config
            base = mean_ops_per_value(
                _SCHEDULERS[cfg.scheduler], self._sample,
                cfg.n_bits, cfg.n_digits)
            if cfg.ternary:
                base *= 2.0
            if cfg.fr_checks:
                inflation = (protected_increment_ops(cfg.n_bits,
                                                     cfg.fr_checks)
                             / increment_ops(cfg.n_bits))
                base *= inflation
                base *= 1.0 + correction_overhead(cfg.fault_rate,
                                                  cfg.fr_checks)
            self._ops_per_input_cache = float(base)
        return self._ops_per_input_cache

    def gemm_aaps(self, shape: GEMMShape, sparsity: float = 0.0) -> float:
        """Total command sequences for a (possibly sparse) GEMM.

        Sparsity is the fraction of zero input elements, which C2M skips
        entirely (Sec. 7.2.3).
        """
        if not 0.0 <= sparsity < 1.0 + 1e-12:
            raise ValueError("sparsity must be in [0, 1)")
        row_bits = self.config.geometry.rank_row_bits
        col_tiles = -(-shape.n // row_bits)
        if self.config.all_bank:
            # One broadcast command serves a tile in every engaged
            # subarray of every bank simultaneously.
            col_tiles = -(-col_tiles // self._broadcast_width())
        effective_inputs = shape.m * shape.k * (1.0 - sparsity)
        return effective_inputs * col_tiles * self.ops_per_input()

    def _broadcast_width(self) -> int:
        """Tiles one all-bank command covers (banks x subarrays)."""
        return (self.config.banks
                * self.config.geometry.subarrays_per_bank)

    def cost(self, shape: GEMMShape, sparsity: float = 0.0,
             name: str = "") -> CostReport:
        aaps = self.gemm_aaps(shape, sparsity)
        cfg = self.config
        if cfg.all_bank:
            # Broadcast commands serialize on the bus (single-bank rate)
            # but every engaged subarray activates per command: energy
            # scales with the broadcast width actually used.
            row_bits = cfg.geometry.rank_row_bits
            total_tiles = -(-shape.n // row_bits)
            engaged = min(total_tiles, self._broadcast_width())
            time_s = time_for_aaps_ns(aaps, 1, cfg.timing) * 1e-9
            energy = cfg.energy.energy_for_aaps_j(
                aaps * engaged, time_s)
        else:
            time_s = time_for_aaps_ns(aaps, cfg.banks, cfg.timing) * 1e-9
            energy = cfg.energy.energy_for_aaps_j(aaps, time_s)
        return CostReport(
            name=name or f"C2M:{cfg.banks}"
            + (":all-bank" if cfg.all_bank else ""),
            nominal_ops=shape.nominal_ops,
            time_s=time_s, energy_j=energy,
            area_mm2=cfg.energy.module_area_mm2(),
            aaps=aaps)


def simdram_cost(shape: GEMMShape, banks: int = 16,
                 config: Optional[SIMDRAMConfig] = None,
                 name: str = "") -> CostReport:
    """Cost of the SIMDRAM baseline on the same shape (sparsity-blind)."""
    cfg = config or SIMDRAMConfig(banks=banks)
    model = SIMDRAMModel(cfg)
    aaps = model.gemm_aaps(shape.m, shape.n, shape.k)
    time_s = time_for_aaps_ns(aaps, cfg.banks, cfg.timing) * 1e-9
    energy = cfg.energy.energy_for_aaps_j(aaps, time_s)
    return CostReport(
        name=name or f"SIMDRAM:{cfg.banks}",
        nominal_ops=shape.nominal_ops,
        time_s=time_s, energy_j=energy,
        area_mm2=cfg.energy.module_area_mm2(),
        aaps=aaps)


def gpu_cost(shape: GEMMShape, include_transfer: bool = True,
             weights_resident: bool = False,
             model: Optional[GPUModel] = None,
             name: str = "GPU") -> CostReport:
    """Cost of the GPU baseline (latency flat across sparsity)."""
    gpu = model or GPUModel()
    time_s = gpu.total_time_s(shape.m, shape.n, shape.k,
                              include_transfer=include_transfer,
                              weights_resident=weights_resident)
    return CostReport(
        name=name,
        nominal_ops=shape.nominal_ops,
        time_s=time_s,
        energy_j=time_s * gpu.power_w(),
        area_mm2=gpu.area_mm2)
