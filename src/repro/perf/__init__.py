"""Performance models: C2M / SIMDRAM / GPU cost reports over GEMM shapes."""

from repro.perf.metrics import CostReport, measured_cost
from repro.perf.model import (C2MConfig, C2MModel, GEMMShape, gpu_cost,
                              simdram_cost, uniform_int8_magnitudes)

__all__ = ["CostReport", "measured_cost", "C2MConfig", "C2MModel",
           "GEMMShape", "gpu_cost", "simdram_cost",
           "uniform_int8_magnitudes"]
