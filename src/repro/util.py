"""Small shared helpers used across the repro package."""

from __future__ import annotations

from typing import Iterable, Optional, Union

import numpy as np

RngLike = Union[None, int, np.random.Generator]


def as_rng(seed: RngLike = None) -> np.random.Generator:
    """Return a numpy Generator from ``None``, an int seed, or a Generator.

    Every stochastic entry point in the package accepts ``seed`` in this
    form so experiments are reproducible end to end.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def as_bit_array(bits: Iterable[int]) -> np.ndarray:
    """Normalize an iterable of 0/1 values to a uint8 numpy array."""
    arr = np.asarray(list(bits) if not isinstance(bits, np.ndarray) else bits)
    arr = arr.astype(np.uint8)
    if arr.ndim != 1:
        raise ValueError(f"expected a 1-D bit vector, got shape {arr.shape}")
    if not np.isin(arr, (0, 1)).all():
        raise ValueError("bit vector may only contain 0/1 values")
    return arr


def bitstring(bits: Iterable[int]) -> str:
    """Render bits LSB-first, the way the paper prints JC states.

    >>> bitstring([1, 1, 0, 0, 0])
    '11000'
    """
    return "".join(str(int(b)) for b in bits)


def check_probability(p: float, name: str = "probability") -> float:
    """Validate that ``p`` lies in [0, 1] and return it as a float."""
    p = float(p)
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {p}")
    return p


def check_positive(value: int, name: str = "value") -> int:
    """Validate that ``value`` is a positive integer and return it."""
    value = int(value)
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values (used for speedup summaries)."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("geometric mean of empty sequence")
    if (arr <= 0).any():
        raise ValueError("geometric mean requires positive values")
    return float(np.exp(np.mean(np.log(arr))))


def digits_of(value: int, radix: int, n_digits: Optional[int] = None) -> list:
    """Decompose ``value`` into base-``radix`` digits, least significant first.

    >>> digits_of(45, 10)
    [5, 4]
    >>> digits_of(45, 10, n_digits=4)
    [5, 4, 0, 0]
    """
    if value < 0:
        raise ValueError("digits_of expects a non-negative value")
    if radix < 2:
        raise ValueError("radix must be >= 2")
    digits = []
    v = int(value)
    while v:
        digits.append(v % radix)
        v //= radix
    if not digits:
        digits = [0]
    if n_digits is not None:
        if len(digits) > n_digits:
            raise ValueError(
                f"value {value} needs {len(digits)} base-{radix} digits, "
                f"only {n_digits} available"
            )
        digits.extend([0] * (n_digits - len(digits)))
    return digits


def from_digits(digits: Iterable[int], radix: int) -> int:
    """Inverse of :func:`digits_of` (least-significant digit first)."""
    total = 0
    for d in reversed(list(digits)):
        total = total * radix + int(d)
    return total
