"""Ternary weight networks (paper Sec. 7.1 "TWNs": LeNet, VGG-13/16).

Convolutions lower to im2col GEMMs whose shapes live in
:mod:`repro.apps.workloads`; this module adds the *functional* piece: a
numpy ternary convolution executed through the Count2Multiply kernels so
tests can verify end-to-end correctness of a real layer, plus TWN-style
weight ternarization.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.device import Device, EngineConfig
from repro.util import RngLike, as_rng

__all__ = ["ternarize_weights", "im2col", "conv2d_ternary_reference",
           "conv2d_ternary_cim", "PlannedConv2d"]


def ternarize_weights(w: np.ndarray, threshold_factor: float = 0.7
                      ) -> np.ndarray:
    """TWN ternarization: ``sign(w) * (|w| > 0.7 mean|w|)`` (Li et al.)."""
    delta = threshold_factor * np.abs(w).mean()
    return (np.sign(w) * (np.abs(w) > delta)).astype(np.int8)


def im2col(x: np.ndarray, kernel: int) -> Tuple[np.ndarray, int, int]:
    """Unfold ``[C, H, W]`` into ``[H' * W', C * k * k]`` patches."""
    c, h, w = x.shape
    h_out, w_out = h - kernel + 1, w - kernel + 1
    cols = np.zeros((h_out * w_out, c * kernel * kernel), dtype=x.dtype)
    idx = 0
    for i in range(h_out):
        for j in range(w_out):
            cols[idx] = x[:, i:i + kernel, j:j + kernel].ravel()
            idx += 1
    return cols, h_out, w_out


def conv2d_ternary_reference(x: np.ndarray, w: np.ndarray) -> np.ndarray:
    """Reference integer convolution: x [C,H,W] int, w [F,C,k,k] ternary."""
    f, c, k, _ = w.shape
    cols, h_out, w_out = im2col(x, k)
    out = cols.astype(np.int64) @ w.reshape(f, -1).T.astype(np.int64)
    return out.T.reshape(f, h_out, w_out)


class PlannedConv2d:
    """A weight-stationary ternary convolution layer.

    Plants the flattened filter bank once in a
    :class:`~repro.device.GemmPlan`; every ``layer(x)`` call then only
    streams the image's im2col patches past the resident masks -- the
    inference-serving shape of the paper's weight-in-memory model.
    """

    def __init__(self, w: np.ndarray, n_bits: int = None,
                 backend: str = None, device: Device = None,
                 **kernel_kwargs):
        self.f, _, self.kernel, _ = w.shape
        self._own_device = device is None
        if self._own_device:
            device = Device(EngineConfig(
                n_bits=2 if n_bits is None else n_bits,
                backend=backend or "fast", **kernel_kwargs))
        elif n_bits is not None or backend is not None or kernel_kwargs:
            raise ValueError("an explicit device fixes the engine config; "
                             "drop n_bits/backend/engine kwargs or "
                             "configure the Device instead")
        self._device = device
        z = w.reshape(self.f, -1).T.astype(np.int8)    # [C*k*k, F]
        self._plan = self._device.plan_gemm(z, kind="ternary")

    def __call__(self, x: np.ndarray) -> np.ndarray:
        cols, h_out, w_out = im2col(x, self.kernel)
        out = self._plan(cols.astype(np.int64))
        return out.T.reshape(self.f, h_out, w_out)

    @property
    def stats(self):
        """Cost counters of the resident plan (see ``PlanStats``)."""
        return self._plan.stats

    def close(self) -> None:
        if self._own_device:
            self._device.close()
        else:
            self._plan.close()


def conv2d_ternary_cim(x: np.ndarray, w: np.ndarray,
                       n_bits: int = 2, backend: str = "fast",
                       **kernel_kwargs) -> np.ndarray:
    """The same convolution through the gate-level CIM GEMM.

    The im2col patch matrix is the integer operand X (one output pixel
    per row); the flattened filters are the ternary mask matrix Z.
    ``backend`` selects the batched word-parallel cluster (``"fast"``,
    default) or the per-bit reference (``"bit"``); both return identical
    results in fault-free runs.  One-shot wrapper over
    :class:`PlannedConv2d` -- repeated inference over the same filters
    should hold the planned layer instead.
    """
    layer = PlannedConv2d(w, n_bits=n_bits, backend=backend,
                          **kernel_kwargs)
    try:
        return layer(x)
    finally:
        layer.close()


def random_ternary_layer(c_in: int, c_out: int, kernel: int,
                         seed: RngLike = 0) -> np.ndarray:
    """A random TWN-ternarized filter bank for tests/examples."""
    rng = as_rng(seed)
    return ternarize_weights(rng.normal(0, 1, (c_out, c_in, kernel,
                                                kernel)))
