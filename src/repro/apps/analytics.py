"""In-memory analytics: histogram, radix sort and group-by as plans.

The paper's high-radix counters are exactly the *count* phase of a
counting/radix sort, so the same broadcast machinery that accumulates
GEMV dot products serves database-style workloads: each bucket (or
group) owns a counter lane, every record becomes a one-hot masked
increment, and a whole key stream retires as waves of broadcast
``accumulate`` commands.  This module packages that as first-class,
servable plans:

* :class:`HistogramPlan` -- keys are bucketized to per-bucket one-hot
  mask rows; a batch of keys becomes waves of counter increments
  (records dealt across bank shards, repeats into successive waves)
  staged through the bulk packed-row I/O and executed by
  :meth:`~repro.engine.machine.CountingEngine.run_waves`, the same
  megatrace-stitched path GEMV plan waves ride.
* :func:`radix_sort` -- LSD digit-wise counting sort per Wassenberg &
  Sanders' decomposition: histogram (count, on the engine) ->
  exclusive prefix sum over the decoded bucket totals (host) ->
  stable scatter driven by those engine counts (host).
* :class:`GroupByPlan` -- group-by-aggregate (count or sum) over
  batched ``(key, value)`` record streams; per-group value
  accumulation reuses the ternary magnitude path (value-magnitude
  waves against group-membership masks, positive and negative halves
  folded at read-out).

All three are *plannable on a* :class:`~repro.device.Device`
(plan-once/stream-many, :class:`~repro.device.PlanStats` threaded,
``park()`` / ``unpark()`` round-trips bit-exact) and registrable in
:class:`repro.serve.ModelRegistry` next to GEMV models via the serve
layer's plan-kind seam (``kind="histogram"`` / ``kind="groupby"``).
Unlike a resident-Z GEMV, the row traffic here is *data dependent*:
skewed key streams deepen the wave sequence, uniform ones flatten it.

>>> import numpy as np
>>> from repro.device import Device
>>> with Device(n_bits=2) as dev:
...     hist = dev.plan_histogram(4, x_budget=8)
...     counts = hist(np.array([0, 1, 1, 3, 1]))
...     batch = hist.run_many(np.array([[0, 0, 2, 2], [3, 3, 3, 3]]))
>>> counts
array([1, 3, 0, 1])
>>> batch
array([[2, 0, 2, 0],
       [0, 0, 0, 4]])
>>> radix_sort(np.array([170, 45, 75, 90, 2, 24]))
array([  2,  24,  45,  75,  90, 170])
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.dram.faults import FaultModel
from repro.dram.wordline import pack_rows
from repro.engine.cluster import BankCluster
from repro.kernels.lowering import digits_for_budget
from repro.serve.pool import BankLease

__all__ = ["HistogramPlan", "GroupByPlan", "radix_sort",
           "histogram_fault_trial"]

#: Query slots one analytics chunk deals records across.
_MAX_SLOTS = 32

#: Bank shards per query slot (repeats of one magnitude within a slot
#: deal across these before spilling into deeper waves).
_SLOT_BANKS = 4

#: Total lane budget of a chunk's subarray (keeps the wave images
#: cache-friendly; wider plans get proportionally fewer slots).
_MAX_CHUNK_LANES = 1 << 18


class _StreamPlan:
    """Shared lifecycle of the analytics plans (histogram / group-by).

    One :class:`~repro.engine.cluster.BankCluster` of
    ``slots * banks`` bank shards, each ``width`` lanes wide, leased
    from the owning device's :class:`~repro.serve.pool.BankPool`.
    Subclasses translate a query into per-record updates ``(slot,
    lane, magnitude)``; this class deals them into broadcast waves
    (mirroring the GEMV batch path: same-magnitude records from
    different slots share a broadcast, repeats within a slot deal
    across its banks and then into successive waves), stages each wave
    block through :func:`~repro.dram.wordline.pack_rows` and executes
    the whole sequence with
    :meth:`~repro.engine.machine.CountingEngine.run_waves` -- so on the
    word backend an entire key stream replays as stitched megatraces.

    The plan protocol matches :class:`~repro.device.GemvPlan` where the
    serve layer depends on it: ``validate_query`` / ``run_many`` /
    ``stats`` / ``park`` / ``unpark`` / ``close`` / ``wave_banks`` /
    ``nominal_query_ops``, plus :class:`~repro.serve.pool.PoolExhausted`
    raised *before* any mutation so the registry can evict and retry.
    """

    kind = "stream"

    def __init__(self, device, width: int, x_budget: Optional[int] = None,
                 query_len: Optional[int] = None):
        if width < 1:
            raise ValueError("a plan needs at least one counter lane")
        if query_len is not None and query_len < 0:
            raise ValueError("query_len must be non-negative")
        self.config = device.config
        self._device = device
        self._width = int(width)
        self.query_len = None if query_len is None else int(query_len)
        self.x_budget = None if x_budget is None else int(x_budget)
        if self.x_budget is not None and self.x_budget < 0:
            raise ValueError("x_budget must be non-negative")
        self.n_digits = (None if self.x_budget is None else
                         digits_for_budget(self.config.n_bits,
                                           self.x_budget))
        self._cluster: Optional[BankCluster] = None
        self._slots = 0
        self._banks = 0
        self._lease: Optional[BankLease] = None
        self._parked: Optional[tuple] = None
        self._closed = False
        self._close_reason = "plan is closed"
        self._queries = 0
        self._broadcasts = 0
        self._replans = 0
        self._parks = 0
        self._unparks = 0
        # Retired EngineCounters (ops, prog compiles/replays, trace
        # compiles/replays, injected, megatrace compiles/replays).
        self._retired = np.zeros(8, dtype=np.int64)

    # ------------------------------------------------------------------
    # resource management (single cluster role)
    # ------------------------------------------------------------------
    @property
    def is_resident(self) -> bool:
        """Whether the plan currently holds a cluster (and bank lease)."""
        return self._cluster is not None

    @property
    def is_parked(self) -> bool:
        """Whether the plan holds a parked counter image (evicted)."""
        return self._parked is not None

    @property
    def leased_banks(self) -> int:
        """Banks currently leased from the device's pool."""
        return self._lease.n_banks if self._lease is not None else 0

    @property
    def wave_banks(self) -> int:
        """Bank shards a wave's command stream spreads over."""
        if self._cluster is not None:
            return self._cluster.n_banks
        return 1

    def _retire_cluster(self) -> None:
        if self._cluster is not None:
            self._retired += self._cluster.engine.counters
        self._cluster = None

    def _release_lease(self) -> None:
        if self._lease is not None:
            self._lease.release()
            self._lease = None

    def _ensure(self, slots: int, banks: int, n_digits: int) -> BankCluster:
        """(Re)build the wave cluster for at least this geometry.

        The bank lease is exchanged atomically *before* the old cluster
        is torn down (:meth:`~repro.serve.pool.BankPool.exchange`), so
        on :class:`~repro.serve.pool.PoolExhausted` the resident
        resources survive untouched and the serving registry can evict
        another tenant and retry the whole call.
        """
        if self._parked is not None:
            self.unpark()
        cfg = self.config
        if self._cluster is not None:
            if (self._slots >= slots and self._banks == banks
                    and self._cluster.engine.n_digits >= n_digits):
                return self._cluster
            slots = max(slots, self._slots)
            self._replans += 1
        self.n_digits = max(n_digits, self.n_digits or 1)
        self._lease = self._device.pool.exchange(self._lease,
                                                 slots * banks, owner=self)
        self._retire_cluster()
        self._cluster = BankCluster(
            cfg.n_bits, self.n_digits, self._width, n_banks=slots * banks,
            fault_model=cfg.fault_model, fr_checks=cfg.fr_checks,
            backend=cfg.resolved_backend)
        self._slots, self._banks = slots, banks
        return self._cluster

    def park(self) -> None:
        """Evict the plan from its banks, preserving the counter image.

        Exports the cluster's counter rows
        (:meth:`~repro.engine.cluster.BankCluster.export_counters`),
        retires its cost counters, drops it and returns the bank lease
        -- the eviction primitive the serve registry's LRU cache uses.
        The next query (or an explicit :meth:`unpark`) rebuilds the
        cluster and restores the image bit-exactly.  Parking an
        already-parked or resource-less plan is a no-op.
        """
        self._check_open()
        if self._parked is not None or self._cluster is None:
            return
        self._parked = (self._slots, self._banks,
                        self._cluster.engine.n_digits,
                        self._cluster.export_counters())
        self._retire_cluster()
        self._release_lease()
        self._parks += 1

    def unpark(self) -> None:
        """Rebuild the parked cluster and restore its counter image.

        The lease is acquired before anything is rebuilt: a
        :class:`~repro.serve.pool.PoolExhausted` leaves the plan parked
        with its counter image intact.
        """
        self._check_open()
        if self._parked is None:
            return
        slots, banks, n_digits, image = self._parked
        cfg = self.config
        self._lease = self._device.pool.lease(slots * banks, owner=self)
        cluster = BankCluster(
            cfg.n_bits, n_digits, self._width, n_banks=slots * banks,
            fault_model=cfg.fault_model, fr_checks=cfg.fr_checks,
            backend=cfg.resolved_backend)
        cluster.import_counters(image)
        self._cluster = cluster
        self._slots, self._banks = slots, banks
        self._parked = None
        self._unparks += 1

    def export_image(self):
        """Park the plan and hand out its counter image for relocation.

        Mirrors :meth:`repro.device.GemvPlan.export_image`: the
        returned payload (wave geometry + raw counter bit rows) is what
        a twin plan in another process restores bit-exactly through
        :meth:`import_image`.  ``None`` when the plan never ran.
        """
        self._check_open()
        self.park()
        return self._parked

    def import_image(self, parked) -> None:
        """Adopt a twin plan's exported counter image (see
        :meth:`repro.device.GemvPlan.import_image`)."""
        self._check_open()
        if parked is None:
            return
        if self.is_resident or self._parked is not None:
            raise ValueError("plan already holds state; import_image "
                             "needs a fresh (or parked-empty) plan")
        # Adopt the image's digit sizing so the first query never tears
        # the restored counters down for a smaller rebuild.
        self.n_digits = max(self.n_digits or 1, parked[2])
        self._parked = parked
        self.unpark()

    @property
    def footprint_banks(self) -> int:
        """Conservative bank estimate for fleet placement decisions.

        Analytics plans plant one private counter cluster (no row-image
        sharing), so marginal and total footprints coincide.
        """
        if self.leased_banks:
            return self.leased_banks
        return max(1, min(self.config.n_banks, 4))

    @property
    def footprint_banks_total(self) -> int:
        """Gross bank estimate (same as :attr:`footprint_banks`)."""
        return self.footprint_banks

    @property
    def row_digest(self):
        """Analytics plans have no content-addressed row image."""
        return None

    def close(self) -> None:
        """Release the cluster, lease and any parked image (idempotent)."""
        self._close("plan is closed")

    def _close(self, reason: str) -> None:
        if self._closed:
            return
        self._retire_cluster()
        self._release_lease()
        self._parked = None
        self._closed = True
        self._close_reason = reason
        self._device._forget(self)

    def _check_open(self) -> None:
        if self._closed:
            from repro.device import PlanClosedError
            raise PlanClosedError(self._close_reason)

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    @property
    def stats(self):
        """Snapshot of this plan's cost counters (:class:`PlanStats`)."""
        from repro.device import PlanStats
        ops = self._retired.copy()
        if self._cluster is not None:
            ops += self._cluster.engine.counters
        return PlanStats(queries=self._queries,
                         broadcasts=self._broadcasts,
                         replans=self._replans,
                         resident_rows=0,
                         measured_ops=int(ops[0]),
                         program_compiles=int(ops[1]),
                         program_replays=int(ops[2]),
                         parks=self._parks,
                         unparks=self._unparks,
                         trace_compiles=int(ops[3]),
                         trace_replays=int(ops[4]),
                         injected_faults=int(ops[5]),
                         megatrace_compiles=int(ops[6]),
                         megatrace_replays=int(ops[7]))

    def protection_stats(self):
        """ECC detection/retry stats of the live cluster (zeros if none)."""
        from repro.ecc.protection import ProtectionStats
        total = ProtectionStats()
        if self._cluster is not None \
                and self._cluster.engine.protection is not None:
            total.merge(self._cluster.engine.protection.stats)
        return total

    def nominal_query_ops(self, xs: np.ndarray) -> float:
        """Analytical op count of a query batch: one per record.

        The serve telemetry divides this into the *measured* op delta
        for its efficiency ratio; for record-stream plans the natural
        nominal unit is one masked increment per record.
        """
        xs = np.asarray(xs)
        return float(xs.shape[0] * (xs.shape[1] if xs.ndim > 1 else 1))

    # ------------------------------------------------------------------
    # record-stream execution
    # ------------------------------------------------------------------
    def _run_records(self, q_idx: np.ndarray, lanes: np.ndarray,
                     mags: np.ndarray, n_queries: int) -> np.ndarray:
        """Deal per-record updates into waves, chunked by slot budget.

        ``q_idx`` / ``lanes`` / ``mags`` are parallel arrays (one entry
        per surviving record).  Returns ``[n_queries, width]`` decoded
        lane totals.
        """
        pool = self._device.pool
        banks = pool.clamp(_SLOT_BANKS)
        slot_cap = _MAX_CHUNK_LANES // max(1, banks * self._width)
        if pool.bounded:
            slot_cap = min(slot_cap, pool.n_banks // banks)
        slots = max(1, min(_MAX_SLOTS, n_queries, slot_cap))
        out = np.zeros((n_queries, self._width), dtype=np.int64)
        for start in range(0, n_queries, slots):
            n_chunk = min(slots, n_queries - start)
            sel = (q_idx >= start) & (q_idx < start + n_chunk)
            out[start:start + n_chunk] = self._run_chunk(
                q_idx[sel] - start, lanes[sel], mags[sel],
                n_chunk, slots, banks)
        # Queries count once per completed call, after every chunk ran:
        # a PoolExhausted mid-stream (caught by the registry, which
        # evicts and re-invokes the whole call) never double-counts.
        self._queries += n_queries
        return out

    def _run_chunk(self, q_idx: np.ndarray, lanes: np.ndarray,
                   mags: np.ndarray, n_chunk: int, slots: int,
                   banks: int) -> np.ndarray:
        """One chunk: same-magnitude waves of one-hot lane increments.

        Mirrors the GEMV batch path's dealing: records are sorted by
        ``(magnitude, slot, lane)``, position ``p`` of each
        ``(magnitude, slot)`` queue lands in bank ``p % banks`` of wave
        ``p // banks``, so the worst-case lane sees ``depth(m) =
        max_slot ceil(count / banks)`` hits per magnitude -- the bound
        the digit sizing uses.  Unlike GEMV, the same lane may repeat
        within a queue (duplicate keys); repeats simply occupy later
        positions and accumulate across banks/waves.
        """
        keep = mags > 0
        q_idx, lanes, mags = q_idx[keep], lanes[keep], mags[keep]
        if mags.size == 0:
            return np.zeros((n_chunk, self._width), dtype=np.int64)
        order = np.lexsort((lanes, q_idx, mags))
        q_s, l_s, m_s = q_idx[order], lanes[order], mags[order]
        upd = np.arange(m_s.size)
        new_queue = np.ones(m_s.size, dtype=bool)
        new_queue[1:] = (m_s[1:] != m_s[:-1]) | (q_s[1:] != q_s[:-1])
        pos = upd - np.maximum.accumulate(np.where(new_queue, upd, 0))
        new_mag = np.ones(m_s.size, dtype=bool)
        new_mag[1:] = m_s[1:] != m_s[:-1]
        mag_id = np.cumsum(new_mag) - 1
        depth = np.zeros(int(mag_id[-1]) + 1, dtype=np.int64)
        np.maximum.at(depth, mag_id, pos // banks + 1)
        wave_base = np.concatenate(([0], np.cumsum(depth)[:-1]))
        wave_id = wave_base[mag_id] + pos // banks
        bank_col = q_s * banks + pos % banks
        n_waves = int(depth.sum())
        mag_of_wave = np.repeat(m_s[new_mag], depth)
        bound = int((m_s[new_mag] * depth).sum())
        cluster = self._ensure(
            slots, banks, max(digits_for_budget(self.config.n_bits, bound),
                              self.n_digits or 1))
        cluster.reset()
        slots, banks = self._slots, self._banks      # cached may be wider
        eng = cluster.engine
        # Scatter one-hot bucket masks into wave images blockwise, pack
        # the whole block once, and broadcast every wave from its packed
        # image (the bulk packed-row I/O path).
        block = max(1, (1 << 24) // max(1, cluster.n_lanes))
        for lo in range(0, n_waves, block):
            hi = min(lo + block, n_waves)
            sel = (wave_id >= lo) & (wave_id < hi)
            wide = np.zeros((hi - lo, slots * banks, self._width),
                            dtype=np.uint8)
            wide[wave_id[sel] - lo, bank_col[sel], l_s[sel]] = 1
            packed = pack_rows(wide.reshape(hi - lo, -1))
            eng.run_waves(mag_of_wave[lo:hi], packed)
        self._broadcasts += n_waves
        partials = cluster.read_bank_values(
            strict=self.config.strict_reads)
        per_slot = partials.reshape(slots, banks, self._width).sum(axis=1)
        return per_slot[:n_chunk]


class HistogramPlan(_StreamPlan):
    """A planted histogram: ``plan(keys)`` counts keys per bucket.

    Keys are either integer bucket ids in ``[0, n_buckets)`` (the
    default) or real values bucketized against monotonic ``edges``
    (``n_buckets = len(edges) - 1`` bins, last bin closed, exactly
    :func:`numpy.histogram`'s convention).  Every key becomes one
    magnitude-1 one-hot increment of its bucket's counter lane, so the
    engine -- not the host -- does the counting; the host only decodes
    lane totals at read-out.  The result is bit-exact
    ``np.bincount(buckets, minlength=n_buckets)``.

    ``x_budget`` bounds the count any single bucket may reach in one
    query (a fully skewed stream of ``L`` keys reaches ``L``); pass it
    -- or ``query_len``, which implies it -- to size digits once and
    avoid mid-stream re-plans.

    Created through :meth:`repro.device.Device.plan_histogram`.
    """

    kind = "histogram"

    def __init__(self, device, n_buckets: Optional[int] = None,
                 edges: Optional[np.ndarray] = None,
                 query_len: Optional[int] = None,
                 x_budget: Optional[int] = None):
        if edges is not None:
            edges = np.asarray(edges, dtype=np.float64)
            if edges.ndim != 1 or edges.size < 2:
                raise ValueError("edges must be a 1-D array of >= 2 "
                                 "bin boundaries")
            if not (np.diff(edges) > 0).all():
                raise ValueError("edges must be strictly increasing")
            if n_buckets is not None and n_buckets != edges.size - 1:
                raise ValueError(f"n_buckets={n_buckets} contradicts "
                                 f"edges ({edges.size - 1} bins)")
            n_buckets = edges.size - 1
        if n_buckets is None:
            raise ValueError("provide n_buckets or edges")
        if n_buckets < 1:
            raise ValueError("n_buckets must be positive")
        self.n_buckets = int(n_buckets)
        self.edges = edges
        if x_budget is None and query_len is not None:
            x_budget = query_len
        super().__init__(device, self.n_buckets, x_budget=x_budget,
                         query_len=query_len)

    # ------------------------------------------------------------------
    def bucketize(self, keys: np.ndarray) -> np.ndarray:
        """Map keys to bucket ids (domain-checked, no execution)."""
        if self.edges is None:
            keys = np.asarray(keys)
            buckets = keys.astype(np.int64)
            if keys.size and ((buckets < 0).any()
                              or (buckets >= self.n_buckets).any()):
                raise ValueError(f"keys must lie in [0, {self.n_buckets})")
            return buckets
        keys = np.asarray(keys, dtype=np.float64)
        if keys.size and ((keys < self.edges[0]).any()
                          or (keys > self.edges[-1]).any()):
            raise ValueError("keys outside the edge range")
        buckets = np.searchsorted(self.edges, keys, side="right") - 1
        # np.histogram convention: the last bin is closed on the right.
        return np.minimum(buckets, self.n_buckets - 1).astype(np.int64)

    def validate_query(self, keys: np.ndarray) -> np.ndarray:
        """Shape/domain-check one key stream without executing it."""
        self._check_open()
        keys = np.asarray(keys)
        if keys.ndim != 1:
            raise ValueError("a histogram query is a 1-D key stream")
        if self.query_len is not None and keys.size != self.query_len:
            raise ValueError(f"query must stream exactly "
                             f"{self.query_len} keys")
        self.bucketize(keys)                     # domain check only
        return (keys.astype(np.float64) if self.edges is not None
                else keys.astype(np.int64))

    def __call__(self, keys: np.ndarray) -> np.ndarray:
        """Count one key stream: ``[n_buckets]`` int64 totals."""
        keys = self.validate_query(keys)
        return self.run_many(keys[None])[0]

    def run_many(self, keys: np.ndarray) -> np.ndarray:
        """Count a batch of key streams ``[Q, L]`` -> ``[Q, n_buckets]``.

        Queries are dealt across bank-shard slots exactly like the GEMV
        batch path: same-magnitude increments from different queries
        share one broadcast wave, so coalesced serve waves amortize the
        command stream across tenants' concurrent streams.
        """
        self._check_open()
        keys = np.asarray(keys)
        if keys.ndim != 2:
            raise ValueError("queries must be [Q, L] key streams")
        if self.query_len is not None and keys.shape[1] != self.query_len:
            raise ValueError(f"queries must stream exactly "
                             f"{self.query_len} keys")
        n_q, length = keys.shape
        if n_q == 0:
            return np.zeros((0, self.n_buckets), dtype=np.int64)
        lanes = self.bucketize(keys.ravel())
        q_idx = np.repeat(np.arange(n_q), length)
        mags = np.ones(lanes.size, dtype=np.int64)
        return self._run_records(q_idx, lanes, mags, n_q)


class GroupByPlan(_StreamPlan):
    """Group-by-aggregate over batched ``(key, value)`` record streams.

    A query is an ``[L, 2]`` int array of records (column 0 the group
    key in ``[0, n_groups)``, column 1 a signed value).  ``agg``
    selects the aggregate:

    * ``"count"`` -- records per group (values ignored); one
      magnitude-1 increment of the group's counter lane per record.
    * ``"sum"`` -- signed per-group value totals; each record becomes a
      magnitude-``|value|`` increment against the group-membership
      one-hot mask, routed to the positive or negative lane half by the
      value's sign -- the ternary GEMV magnitude path -- and the halves
      are folded to a signed total at read-out.

    Results are bit-exact against the host dict-reduce.  ``x_budget``
    bounds the per-group accumulated magnitude (``sum(|value|)`` of one
    group's records in one query; the record count for ``"count"``).

    Created through :meth:`repro.device.Device.plan_groupby`.
    """

    kind = "groupby"

    #: Supported aggregates.
    AGGREGATES = ("count", "sum")

    def __init__(self, device, n_groups: int, agg: str = "sum",
                 query_len: Optional[int] = None,
                 x_budget: Optional[int] = None):
        if agg not in self.AGGREGATES:
            raise ValueError(f"agg must be one of {self.AGGREGATES}, "
                             f"got {agg!r}")
        if n_groups < 1:
            raise ValueError("n_groups must be positive")
        self.n_groups = int(n_groups)
        self.agg = agg
        if agg == "count" and x_budget is None and query_len is not None:
            x_budget = query_len
        width = self.n_groups if agg == "count" else 2 * self.n_groups
        super().__init__(device, width, x_budget=x_budget,
                         query_len=query_len)

    # ------------------------------------------------------------------
    def validate_query(self, records: np.ndarray) -> np.ndarray:
        """Shape/domain-check one record stream without executing it."""
        self._check_open()
        records = np.asarray(records, dtype=np.int64)
        if records.ndim != 2 or records.shape[1] != 2:
            raise ValueError("a group-by query is an [L, 2] array of "
                             "(key, value) records")
        if self.query_len is not None \
                and records.shape[0] != self.query_len:
            raise ValueError(f"query must stream exactly "
                             f"{self.query_len} records")
        keys = records[:, 0]
        if keys.size and ((keys < 0).any()
                          or (keys >= self.n_groups).any()):
            raise ValueError(f"group keys must lie in "
                             f"[0, {self.n_groups})")
        return records

    def _updates(self, records: np.ndarray
                 ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-record ``(lane, magnitude)`` arrays for one query."""
        keys, vals = records[:, 0], records[:, 1]
        if self.agg == "count":
            return keys, np.ones(keys.size, dtype=np.int64)
        lanes = keys + self.n_groups * (vals < 0)
        return lanes, np.abs(vals)

    def _reduce(self, per_slot: np.ndarray) -> np.ndarray:
        if self.agg == "count":
            return per_slot
        return (per_slot[:, :self.n_groups]
                - per_slot[:, self.n_groups:])

    def __call__(self, records: np.ndarray) -> np.ndarray:
        """Aggregate one record stream: ``[n_groups]`` int64 totals."""
        records = self.validate_query(records)
        return self.run_many(records[None])[0]

    def run_many(self, batches: np.ndarray) -> np.ndarray:
        """Aggregate ``[Q, L, 2]`` record streams -> ``[Q, n_groups]``."""
        self._check_open()
        batches = np.asarray(batches, dtype=np.int64)
        if batches.ndim != 3 or batches.shape[2] != 2:
            raise ValueError("queries must be [Q, L, 2] record streams")
        if self.query_len is not None \
                and batches.shape[1] != self.query_len:
            raise ValueError(f"queries must stream exactly "
                             f"{self.query_len} records")
        n_q, length = batches.shape[0], batches.shape[1]
        if n_q == 0:
            return np.zeros((0, self.n_groups), dtype=np.int64)
        flat = batches.reshape(-1, 2)
        keys = flat[:, 0]
        if keys.size and ((keys < 0).any()
                          or (keys >= self.n_groups).any()):
            raise ValueError(f"group keys must lie in "
                             f"[0, {self.n_groups})")
        lanes, mags = self._updates(flat)
        q_idx = np.repeat(np.arange(n_q), length)
        return self._reduce(self._run_records(q_idx, lanes, mags, n_q))


# ----------------------------------------------------------------------
# radix sort: count (engine) -> prefix sum (host) -> scatter (host)
# ----------------------------------------------------------------------
def radix_sort(keys: np.ndarray, radix_bits: int = 4,
               payload: Optional[np.ndarray] = None,
               device=None, n_bits: int = 2, backend: str = "fast"):
    """LSD radix sort of non-negative integer keys on the counting engine.

    Each digit plane runs Wassenberg & Sanders' counting-sort
    decomposition: the **count** phase is a :class:`HistogramPlan`
    query over the plane's digits (one plan planted once, one engine
    query per plane -- the whole pass rides the megatrace path), the
    **prefix sum** is an exclusive cumulative sum over the *decoded
    engine counts* on the host, and the **scatter** places every record
    at ``offset[digit] + rank-within-digit``, stably, driven by those
    engine-derived offsets -- a count corrupted by an injected fault
    shows up as a misplaced record, never a crash (destinations are
    clipped to the array bounds).

    ``payload`` optionally reorders alongside the keys (the stability
    witness: tag records with their original index and equal keys keep
    ascending tags).  Pass an open :class:`~repro.device.Device` to
    reuse its pool/backend; otherwise a private one is created for the
    call.  Returns the sorted keys, or ``(keys, payload)`` when a
    payload rides along.

    >>> radix_sort(np.array([3, 1, 2, 1]), payload=np.arange(4))
    (array([1, 1, 2, 3]), array([1, 3, 2, 0]))
    """
    if radix_bits < 1:
        raise ValueError("radix_bits must be positive")
    keys = np.asarray(keys)
    if keys.ndim != 1:
        raise ValueError("keys must be 1-D")
    out_keys = keys.astype(np.int64)
    if out_keys.size and (out_keys < 0).any():
        raise ValueError("radix_sort handles non-negative keys")
    out_pay = None
    if payload is not None:
        out_pay = np.asarray(payload).copy()
        if out_pay.shape[0] != out_keys.size:
            raise ValueError("payload must match keys in length")
    if out_keys.size <= 1:
        return (out_keys.copy(), out_pay) if out_pay is not None \
            else out_keys.copy()
    out_keys = out_keys.copy()
    n_buckets = 1 << radix_bits
    max_key = int(out_keys.max())
    n_planes = max(1, -(-max(max_key.bit_length(), 1) // radix_bits))
    from repro.device import Device
    own = device is None
    if own:
        device = Device(n_bits=n_bits, backend=backend)
    plan = None
    try:
        plan = device.plan_histogram(n_buckets,
                                     query_len=out_keys.size,
                                     x_budget=out_keys.size)
        size = out_keys.size
        for plane in range(n_planes):
            digits = (out_keys >> (plane * radix_bits)) & (n_buckets - 1)
            counts = plan(digits)                        # engine count
            offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
            order = np.argsort(digits, kind="stable")    # stable grouping
            sorted_digits = digits[order]
            boundary = np.ones(size, dtype=bool)
            boundary[1:] = sorted_digits[1:] != sorted_digits[:-1]
            starts = np.flatnonzero(boundary)
            group_len = np.diff(np.append(starts, size))
            within = np.arange(size) - np.repeat(starts, group_len)
            # Destinations come from the *engine* counts: a faulted
            # count misplaces records (approximate sort), never crashes.
            dest = np.clip(offsets[sorted_digits] + within, 0, size - 1)
            scattered = np.empty_like(out_keys)
            scattered[dest] = out_keys[order]
            out_keys = scattered
            if out_pay is not None:
                shuffled = np.empty_like(out_pay)
                shuffled[dest] = out_pay[order]
                out_pay = shuffled
    finally:
        if plan is not None:
            plan.close()
        if own:
            device.close()
    return (out_keys, out_pay) if out_pay is not None else out_keys


# ----------------------------------------------------------------------
# reliability campaign hook
# ----------------------------------------------------------------------
def histogram_fault_trial(keys: np.ndarray, n_buckets: int,
                          n_bits: int = 2, backend: str = "fast"
                          ) -> Callable:
    """A :class:`~repro.reliability.Campaign` ``trial=`` callable.

    Each seeded trial builds a private device under the grid point's
    fault model, streams ``keys`` through a fresh
    :class:`HistogramPlan`, and accounts the approximate result against
    the exact ``np.bincount`` -- wrong buckets and total absolute count
    error, never a crash.  This is how the analytics workload rides the
    same Monte-Carlo fault grids as the paper's GEMV campaigns.
    """
    keys = np.asarray(keys, dtype=np.int64)
    golden = np.bincount(keys, minlength=n_buckets)

    def trial(point, rng) -> Dict[str, float]:
        from repro.device import Device
        fault_model = FaultModel(p_cim=point.p_cim, p_read=point.p_read,
                                 margin_aware=point.margin_aware,
                                 seed=rng)
        with Device(n_bits=n_bits, fault_model=fault_model,
                    fr_checks=point.fr_checks, backend=backend) as dev:
            plan = dev.plan_histogram(n_buckets, x_budget=keys.size)
            counts = plan(keys)
            stats = plan.stats
        wrong = int((counts != golden).sum())
        return {
            "injected": int(stats.injected_faults),
            "wrong_buckets": wrong,
            "abs_count_error": int(np.abs(counts - golden).sum()),
            "exact": int(wrong == 0),
            "measured_ops": int(stats.measured_ops),
        }

    return trial
