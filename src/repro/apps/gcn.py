"""Graph convolutional network workload (paper Sec. 7.1, PubMed).

A two-layer GCN node classifier: ``softmax(Â relu(Â X W1) W2)``.  The
neighborhood aggregation ``Â H`` is exactly Count2Multiply's masked
accumulation -- the (binary) adjacency rows are the masks and the node
features the broadcast integers -- so both the feature transforms and
the aggregations run on the CIM kernels.

PubMed itself is replaced by a size-matched synthetic citation graph
(19717 nodes / 88648 edges at full scale; tests use a scaled-down graph
with the same construction), per the substitution policy in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import networkx as nx
import numpy as np

from repro.kernels.gemm import binary_gemm, ternary_gemm
from repro.util import RngLike, as_rng

__all__ = ["GCNConfig", "SyntheticCitationGraph", "gcn_forward_cim",
           "gcn_forward_reference"]


@dataclass
class GCNConfig:
    """Synthetic citation-graph GCN (PubMed-like statistics)."""

    n_nodes: int = 120
    n_edges: int = 540
    n_feats: int = 24
    n_hidden: int = 8
    n_classes: int = 3
    feat_scale: int = 7          # features are small non-negative ints
    seed: RngLike = 23


@dataclass
class SyntheticCitationGraph:
    """Random graph + integer features + ternary GCN weights."""

    config: GCNConfig = field(default_factory=GCNConfig)

    def __post_init__(self):
        cfg = self.config
        rng = as_rng(cfg.seed)
        graph = nx.gnm_random_graph(cfg.n_nodes, cfg.n_edges,
                                    seed=int(rng.integers(2 ** 31)))
        self.adjacency = (nx.to_numpy_array(graph, dtype=np.uint8)
                          + np.eye(cfg.n_nodes, dtype=np.uint8))
        self.adjacency = (self.adjacency > 0).astype(np.uint8)
        # Class-correlated small-integer features (TF counts).
        self.labels = rng.integers(0, cfg.n_classes, cfg.n_nodes)
        prototypes = rng.integers(0, cfg.feat_scale,
                                  (cfg.n_classes, cfg.n_feats))
        noise = rng.integers(0, 2, (cfg.n_nodes, cfg.n_feats))
        self.features = (prototypes[self.labels] + noise).astype(np.int64)
        w1 = rng.normal(0, 1, (cfg.n_feats, cfg.n_hidden))
        w2 = rng.normal(0, 1, (cfg.n_hidden, cfg.n_classes))
        delta1 = 0.7 * np.abs(w1).mean()
        delta2 = 0.7 * np.abs(w2).mean()
        self.w1 = (np.sign(w1) * (np.abs(w1) > delta1)).astype(np.int8)
        self.w2 = (np.sign(w2) * (np.abs(w2) > delta2)).astype(np.int8)


def gcn_forward_reference(graph: SyntheticCitationGraph) -> np.ndarray:
    """Pure-numpy forward pass (integer arithmetic throughout)."""
    a = graph.adjacency.astype(np.int64)
    h = a @ (graph.features @ graph.w1.astype(np.int64))
    h = np.maximum(h, 0)
    return a @ (h @ graph.w2.astype(np.int64))


def gcn_forward_cim(graph: SyntheticCitationGraph,
                    n_bits: int = 2, backend: str = "fast",
                    **kernel_kwargs) -> np.ndarray:
    """Forward pass with every matmul on the CIM kernels.

    Feature transforms use the ternary GEMM; aggregations use the binary
    GEMM with the adjacency rows as masks (values must be non-negative,
    so aggregation happens after the ReLU and on split pos/neg parts for
    the first layer).  ``backend="fast"`` (default) routes every GEMM
    through the batched word-parallel bank cluster.
    """
    kernel_kwargs = dict(kernel_kwargs, backend=backend)
    xw = ternary_gemm(graph.features, graph.w1, n_bits=n_bits,
                      **kernel_kwargs)
    # Aggregate signed values as pos/neg masked accumulations.
    pos = binary_gemm(np.maximum(xw, 0).T, graph.adjacency.T,
                      n_bits=n_bits, **kernel_kwargs).T
    neg = binary_gemm(np.maximum(-xw, 0).T, graph.adjacency.T,
                      n_bits=n_bits, **kernel_kwargs).T
    h = np.maximum(pos - neg, 0)
    hw = ternary_gemm(h, graph.w2, n_bits=n_bits, **kernel_kwargs)
    pos = binary_gemm(np.maximum(hw, 0).T, graph.adjacency.T,
                      n_bits=n_bits, **kernel_kwargs).T
    neg = binary_gemm(np.maximum(-hw, 0).T, graph.adjacency.T,
                      n_bits=n_bits, **kernel_kwargs).T
    return pos - neg


def classification_agreement(graph: SyntheticCitationGraph,
                             **kwargs) -> Dict[str, float]:
    """Fraction of nodes where CIM and reference logits pick the same
    class (1.0 when fault-free)."""
    ref = gcn_forward_reference(graph)
    cim = gcn_forward_cim(graph, **kwargs)
    agree = (ref.argmax(axis=1) == cim.argmax(axis=1)).mean()
    exact = float((ref == cim).all())
    return {"argmax_agreement": float(agree), "exact": exact}
