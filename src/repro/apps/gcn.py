"""Graph convolutional network workload (paper Sec. 7.1, PubMed).

A two-layer GCN node classifier: ``softmax(Â relu(Â X W1) W2)``.  The
neighborhood aggregation ``Â H`` is exactly Count2Multiply's masked
accumulation -- the (binary) adjacency rows are the masks and the node
features the broadcast integers -- so both the feature transforms and
the aggregations run on the CIM kernels.

PubMed itself is replaced by a size-matched synthetic citation graph
(19717 nodes / 88648 edges at full scale; tests use a scaled-down graph
with the same construction), per the substitution policy in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import networkx as nx
import numpy as np

from repro.device import Device, EngineConfig
from repro.util import RngLike, as_rng

__all__ = ["GCNConfig", "SyntheticCitationGraph", "gcn_forward_cim",
           "gcn_forward_reference"]


@dataclass
class GCNConfig:
    """Synthetic citation-graph GCN (PubMed-like statistics)."""

    n_nodes: int = 120
    n_edges: int = 540
    n_feats: int = 24
    n_hidden: int = 8
    n_classes: int = 3
    feat_scale: int = 7          # features are small non-negative ints
    seed: RngLike = 23


@dataclass
class SyntheticCitationGraph:
    """Random graph + integer features + ternary GCN weights."""

    config: GCNConfig = field(default_factory=GCNConfig)

    def __post_init__(self):
        cfg = self.config
        rng = as_rng(cfg.seed)
        graph = nx.gnm_random_graph(cfg.n_nodes, cfg.n_edges,
                                    seed=int(rng.integers(2 ** 31)))
        self.adjacency = (nx.to_numpy_array(graph, dtype=np.uint8)
                          + np.eye(cfg.n_nodes, dtype=np.uint8))
        self.adjacency = (self.adjacency > 0).astype(np.uint8)
        # Class-correlated small-integer features (TF counts).
        self.labels = rng.integers(0, cfg.n_classes, cfg.n_nodes)
        prototypes = rng.integers(0, cfg.feat_scale,
                                  (cfg.n_classes, cfg.n_feats))
        noise = rng.integers(0, 2, (cfg.n_nodes, cfg.n_feats))
        self.features = (prototypes[self.labels] + noise).astype(np.int64)
        w1 = rng.normal(0, 1, (cfg.n_feats, cfg.n_hidden))
        w2 = rng.normal(0, 1, (cfg.n_hidden, cfg.n_classes))
        delta1 = 0.7 * np.abs(w1).mean()
        delta2 = 0.7 * np.abs(w2).mean()
        self.w1 = (np.sign(w1) * (np.abs(w1) > delta1)).astype(np.int8)
        self.w2 = (np.sign(w2) * (np.abs(w2) > delta2)).astype(np.int8)


def gcn_forward_reference(graph: SyntheticCitationGraph) -> np.ndarray:
    """Pure-numpy forward pass (integer arithmetic throughout)."""
    a = graph.adjacency.astype(np.int64)
    h = a @ (graph.features @ graph.w1.astype(np.int64))
    h = np.maximum(h, 0)
    return a @ (h @ graph.w2.astype(np.int64))


def gcn_forward_cim(graph: SyntheticCitationGraph,
                    n_bits: int = None, backend: str = None,
                    device: Device = None,
                    **kernel_kwargs) -> np.ndarray:
    """Forward pass with every matmul on planted CIM plans.

    Plan-once/stream-many *within the pass*: the two ternary weight
    matrices and the binary adjacency are each planted once, and the
    adjacency plan serves all four aggregations (pos/neg split, two
    layers) from the same resident masks.  Aggregations run after the
    ReLU on split pos/neg parts so every streamed value is non-negative.

    Pass an existing ``device`` to share its engine configuration and
    resources; the plans themselves are created per call and closed on
    exit.  Engine knobs (``n_bits``, ``backend``, ``kernel_kwargs``)
    belong to the device, so combining them with an explicit ``device``
    raises instead of silently ignoring them.
    """
    own = device is None
    if own:
        device = Device(EngineConfig(n_bits=2 if n_bits is None else n_bits,
                                     backend=backend or "fast",
                                     **kernel_kwargs))
    elif n_bits is not None or backend is not None or kernel_kwargs:
        raise ValueError("an explicit device fixes the engine config; "
                         "drop n_bits/backend/engine kwargs or configure "
                         "the Device instead")
    plans = []
    try:
        w1_plan = device.plan_gemm(graph.w1, kind="ternary")
        plans.append(w1_plan)
        w2_plan = device.plan_gemm(graph.w2, kind="ternary")
        plans.append(w2_plan)
        # One adjacency plant serves all four aggregations below.
        agg_plan = device.plan_gemm(graph.adjacency.T, kind="binary")
        plans.append(agg_plan)
        xw = w1_plan(graph.features)
        pos = agg_plan(np.maximum(xw, 0).T).T
        neg = agg_plan(np.maximum(-xw, 0).T).T
        h = np.maximum(pos - neg, 0)
        hw = w2_plan(h)
        pos = agg_plan(np.maximum(hw, 0).T).T
        neg = agg_plan(np.maximum(-hw, 0).T).T
        return pos - neg
    finally:
        if own:
            device.close()
        else:
            for plan in plans:
                plan.close()


def classification_agreement(graph: SyntheticCitationGraph,
                             **kwargs) -> Dict[str, float]:
    """Fraction of nodes where CIM and reference logits pick the same
    class (1.0 when fault-free)."""
    ref = gcn_forward_reference(graph)
    cim = gcn_forward_cim(graph, **kwargs)
    agree = (ref.argmax(axis=1) == cim.argmax(axis=1)).mean()
    exact = float((ref == cim).all())
    return {"argmax_agreement": float(agree), "exact": exact}
