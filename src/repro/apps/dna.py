"""DNA pre-alignment filtering (GRIM-Filter style; paper Secs. 3, 7.1).

Seed-location filtering for read mapping: the reference genome is split
into bins, each bin stores a **k-mer presence bitvector**; a read's
k-mer *repetition counts* (small integers, Fig. 3a) are accumulated
against the presence bitvectors -- an integer-vector x binary-matrix
product where every bin is one counter lane.  Bins whose score clears a
threshold are candidate mapping locations; comparing against the true
(planted) origins yields the F1 score of Figs. 4b / 17a.

The paper uses a human genome; we generate a synthetic genome with
planted, noisily mutated reads -- the score statistics that determine
filtering quality are preserved (DESIGN.md Sec. 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.apps.fastsim import FastJCAccumulator, FastRCAAccumulator
from repro.util import RngLike, as_rng

__all__ = ["DNAFilterConfig", "DNAFilterWorkload", "filtering_f1",
           "token_repetition_histogram"]

_BASES = np.array(list("ACGT"))


def _kmer_ids(seq: np.ndarray, k: int) -> np.ndarray:
    """Rolling k-mer ids (base-4) of an integer-coded sequence."""
    ids = np.zeros(len(seq) - k + 1, dtype=np.int64)
    for i in range(k):
        ids = ids * 4 + seq[i:len(seq) - k + 1 + i]
    return ids


@dataclass
class DNAFilterConfig:
    """Workload knobs (defaults sized for second-scale simulation)."""

    genome_len: int = 60_000
    bin_len: int = 600
    kmer: int = 7                      # 4^7 tokens: ~4 % bin presence
    read_len: int = 120
    n_reads: int = 150
    mutation_rate: float = 0.03
    threshold_fraction: float = 0.5    # of the read's max possible score
    seed: RngLike = 7


@dataclass
class DNAFilterWorkload:
    """Synthetic genome + reads + bin bitvectors."""

    config: DNAFilterConfig = field(default_factory=DNAFilterConfig)

    def __post_init__(self):
        cfg = self.config
        rng = as_rng(cfg.seed)
        self.genome = rng.integers(0, 4, cfg.genome_len)
        self.n_bins = cfg.genome_len // cfg.bin_len
        self.n_tokens = 4 ** cfg.kmer
        # Bin presence bitvectors: token x bin.
        self.presence = np.zeros((self.n_tokens, self.n_bins),
                                 dtype=np.uint8)
        for b in range(self.n_bins):
            lo = b * cfg.bin_len
            hi = min(lo + cfg.bin_len + cfg.read_len, cfg.genome_len)
            self.presence[np.unique(_kmer_ids(self.genome[lo:hi],
                                              cfg.kmer)), b] = 1
        # Reads planted at random positions with substitution noise.
        self.reads: List[np.ndarray] = []
        self.true_bins: List[int] = []
        for _ in range(cfg.n_reads):
            pos = int(rng.integers(0, cfg.genome_len - cfg.read_len))
            read = self.genome[pos:pos + cfg.read_len].copy()
            muts = rng.random(cfg.read_len) < cfg.mutation_rate
            read[muts] = rng.integers(0, 4, int(muts.sum()))
            self.reads.append(read)
            self.true_bins.append(pos // cfg.bin_len)

    # ------------------------------------------------------------------
    def read_token_counts(self, read: np.ndarray) -> Dict[int, int]:
        """k-mer repetition counts of one read (the Fig. 3a integers)."""
        ids, counts = np.unique(_kmer_ids(read, self.config.kmer),
                                return_counts=True)
        return dict(zip(ids.tolist(), counts.tolist()))

    def exact_scores(self, read: np.ndarray) -> np.ndarray:
        """Reference (fault-free) bin scores for one read."""
        scores = np.zeros(self.n_bins, dtype=np.int64)
        for token, count in self.read_token_counts(read).items():
            scores += count * self.presence[token].astype(np.int64)
        return scores

    def accumulate_scores(self, read: np.ndarray, accumulator) -> np.ndarray:
        """Bin scores through a (possibly faulty) accumulator model."""
        for token, count in self.read_token_counts(read).items():
            accumulator.accumulate(count, self.presence[token])
        return accumulator.read()

    def make_accumulator(self, kind: str, fault_rate: float, scheme: str,
                         seed: RngLike = None):
        """Right-sized accumulators for the bin scores (<= read length).

        Radix-10 Johnson counters (the Sec. 3 configuration) with two
        digits -- the O_next flag extends the range past the read
        length -- versus a 16-bit RCA whose carry chain exposes
        high-order bits to faults.
        """
        if kind == "jc":
            return FastJCAccumulator(n_bits=5, n_digits=2,
                                     n_lanes=self.n_bins,
                                     fault_rate=fault_rate, scheme=scheme,
                                     seed=seed)
        if kind == "rca":
            return FastRCAAccumulator(width=16, n_lanes=self.n_bins,
                                      fault_rate=fault_rate, scheme=scheme,
                                      seed=seed)
        raise ValueError(f"unknown accumulator kind {kind!r}")

    # ------------------------------------------------------------------
    def evaluate(self, kind: str = "jc", fault_rate: float = 0.0,
                 scheme: str = "none", seed: RngLike = 0,
                 max_reads: int = None) -> Dict[str, float]:
        """Run the filter; returns F1 / precision / recall and RMSE.

        A bin is predicted positive when its (possibly faulty) score
        clears the per-read threshold; ground truth is the bin(s)
        containing the read's planted origin.
        """
        cfg = self.config
        rng = as_rng(seed)
        tp = fp = fn = 0
        sq_err = 0.0
        count = 0
        reads = self.reads[:max_reads] if max_reads else self.reads
        # Plan-style reuse: the bin bitvectors are the resident matrix,
        # so one accumulator serves every read -- counters reset between
        # reads while the seeded fault stream continues.
        acc = self.make_accumulator(kind, fault_rate, scheme,
                                    seed=rng.integers(2 ** 31))
        for idx, read in enumerate(reads):
            acc.reset()
            scores = self.accumulate_scores(read, acc)
            exact = self.exact_scores(read)
            sq_err += float(((scores - exact) ** 2).mean())
            count += 1
            threshold = cfg.threshold_fraction * exact.max()
            predicted = set(np.flatnonzero(scores >= threshold).tolist())
            truth = {self.true_bins[idx]}
            # The origin may straddle a bin boundary; accept either side.
            truth.add(min(self.true_bins[idx] + 1, self.n_bins - 1))
            hits = predicted & truth
            tp += 1 if hits else 0
            fn += 0 if hits else 1
            fp += len(predicted - truth)
        precision = tp / max(tp + fp, 1)
        recall = tp / max(tp + fn, 1)
        f1 = (2 * precision * recall / max(precision + recall, 1e-12))
        return {"f1": f1, "precision": precision, "recall": recall,
                "rmse": float(np.sqrt(sq_err / max(count, 1)))}


def filtering_f1(fault_rate: float, kind: str = "jc",
                 scheme: str = "none",
                 config: DNAFilterConfig = None) -> float:
    """Convenience wrapper for the sweep harnesses."""
    workload = DNAFilterWorkload(config or DNAFilterConfig())
    return workload.evaluate(kind, fault_rate, scheme)["f1"]


def token_repetition_histogram(config: DNAFilterConfig = None
                               ) -> Tuple[np.ndarray, np.ndarray]:
    """Fig. 3a: distribution of k-mer repetition counts across reads."""
    workload = DNAFilterWorkload(config or DNAFilterConfig())
    values: List[int] = []
    for read in workload.reads:
        values.extend(workload.read_token_counts(read).values())
    return np.unique(np.array(values), return_counts=True)
