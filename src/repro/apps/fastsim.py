"""Fast fault-injected accumulator models for application studies.

The gate-level engine is bit-exact but too slow for application-scale
fault sweeps (Figs. 4 and 17), so this module provides vectorized
models that preserve the failure modes that drive those figures:

* **Johnson counters** -- a fault flips one bit of a digit's ring state,
  perturbing the (lenient) decode by roughly ±1 *within the digit*:
  errors stay low-order unless they land on high digits.
* **RCA binary accumulators** -- a fault in the carry chain perturbs all
  higher-order bits of a wide binary total: errors are frequently
  catastrophic (Sec. 3's motivation).

Both support the three protection schemes of Figs. 4/17: ``none``,
``tmr`` (replica voting; residual ``3 f²``) and ``ecc`` (the Sec. 6
XOR-embedding; residual ``1.5 f^(r+1)``).
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from repro.core import johnson
from repro.core.iarm import CarryResolve, IARMScheduler, Increment
from repro.ecc.analysis import protected_error_rate
from repro.ecc.tmr import tmr_error_rate
from repro.util import RngLike, as_rng, check_probability

__all__ = ["effective_bit_fault_rate", "FastJCAccumulator",
           "FastRCAAccumulator"]

#: Multi-row activations per bit-row update that can fault (the two
#: masking TRAs), scaled by the average contested fraction (Sec. 6.1).
_OPS_PER_BIT_UPDATE = 2 * 0.75


def effective_bit_fault_rate(raw_rate: float, scheme: str,
                             fr_checks: int = 2) -> float:
    """Per-bit-row silent-flip probability for one counting step."""
    f = check_probability(raw_rate, "raw_rate")
    if scheme == "none":
        return min(1.0, _OPS_PER_BIT_UPDATE * f)
    if scheme == "tmr":
        return min(1.0, _OPS_PER_BIT_UPDATE * tmr_error_rate(f))
    if scheme == "ecc":
        return min(1.0, 2 * protected_error_rate(f, fr_checks))
    raise ValueError(f"unknown scheme {scheme!r}")


@dataclass
class FastJCAccumulator:
    """Vector of multi-digit Johnson counters with per-step bit faults.

    State is the actual ring encoding ``[n_digits, n_bits, n_lanes]``;
    every scheduler event applies the true transition pattern and then
    flips each bit row independently at the effective rate, so fault
    propagation (including corrupted O_next flags) is structural, not
    statistical.
    """

    n_bits: int
    n_digits: int
    n_lanes: int
    fault_rate: float = 0.0
    scheme: str = "none"
    fr_checks: int = 2
    seed: RngLike = None

    def __post_init__(self):
        self._rng = as_rng(self.seed)
        self.bits = np.zeros((self.n_digits, self.n_bits, self.n_lanes),
                             dtype=np.uint8)
        self.onext = np.zeros((self.n_digits, self.n_lanes), dtype=np.uint8)
        self.scheduler = IARMScheduler(self.n_bits, self.n_digits)
        self._p = effective_bit_fault_rate(self.fault_rate, self.scheme,
                                           self.fr_checks)

    # ------------------------------------------------------------------
    def _inject(self, rows: np.ndarray) -> np.ndarray:
        if self._p <= 0:
            return rows
        flips = self._rng.random(rows.shape) < self._p
        return rows ^ flips.astype(np.uint8)

    def _step_digit(self, digit: int, k: int, mask: np.ndarray) -> None:
        lanes = self.bits[digit]
        old_msb = lanes[-1].copy()
        new = johnson.step(lanes, k, mask)
        new = self._inject(new)
        self.bits[digit] = new
        flag_fn = (johnson.overflow_after_step if k > 0
                   else johnson.underflow_after_step)
        flag = flag_fn(old_msb, new[-1], abs(k), self.n_bits, mask)
        self.onext[digit] = self._inject(self.onext[digit] | flag)

    def _resolve(self, digit: int, direction: int) -> None:
        mask = self.onext[digit]
        if mask.any():
            self._step_digit(digit + 1, direction, mask)
        self.onext[digit] = 0

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Zero counters for the next query; the fault stream continues.

        The plan-style reuse path: applications keep one accumulator
        per weight matrix and reset it between queries instead of
        reallocating (mirrors ``CountingEngine.reset_counters``).
        """
        self.bits[:] = 0
        self.onext[:] = 0
        self.scheduler.reset()

    def accumulate(self, value: int, mask: np.ndarray) -> None:
        """Masked accumulation of one (signed) input value."""
        mask = np.asarray(mask, dtype=np.uint8)
        for ev in self.scheduler.schedule_value(int(value)):
            if isinstance(ev, Increment):
                self._step_digit(ev.digit, ev.k, mask)
            elif isinstance(ev, CarryResolve):
                self._resolve(ev.digit, ev.direction)

    def read(self) -> np.ndarray:
        """Lenient decode of every lane (flushes pending carries)."""
        for ev in self.scheduler.flush():
            if isinstance(ev, CarryResolve):
                self._resolve(ev.digit, ev.direction)
        totals = np.zeros(self.n_lanes, dtype=np.int64)
        weight = 1
        radix = 2 * self.n_bits
        for d in range(self.n_digits):
            totals += johnson.decode_lanes(self.bits[d],
                                           strict=False) * weight
            totals += self.onext[d].astype(np.int64) * weight * radix
            weight *= radix
        return totals


@dataclass
class FastRCAAccumulator:
    """Vector of W-bit binary accumulators with faulty bit-serial adds.

    Mirrors :func:`repro.baselines.rca.rca_masked_add_fast` but holds
    state and applies the protection-scheme residual rates, so it plugs
    into the same sweep harness as :class:`FastJCAccumulator`.
    """

    width: int
    n_lanes: int
    fault_rate: float = 0.0
    scheme: str = "none"
    fr_checks: int = 2
    seed: RngLike = None

    def __post_init__(self):
        self._rng = as_rng(self.seed)
        self.bits = np.zeros((self.width, self.n_lanes), dtype=np.uint8)
        self._p = effective_bit_fault_rate(self.fault_rate, self.scheme,
                                           self.fr_checks)

    def _inject(self, row: np.ndarray) -> np.ndarray:
        if self._p <= 0:
            return row
        flips = self._rng.random(row.shape) < self._p
        return row ^ flips.astype(np.uint8)

    def reset(self) -> None:
        """Zero accumulators for the next query (fault stream continues)."""
        self.bits[:] = 0

    def accumulate(self, value: int, mask: np.ndarray) -> None:
        mask = np.asarray(mask, dtype=np.uint8)
        x = int(value) % (1 << self.width)
        carry = np.zeros(self.n_lanes, dtype=np.uint8)
        for i in range(self.width):
            b = mask if ((x >> i) & 1) else np.zeros_like(mask)
            a = self.bits[i]
            s = self._inject(a ^ b ^ carry)
            carry = self._inject(
                ((a.astype(np.int16) + b + carry) >= 2).astype(np.uint8))
            self.bits[i] = s

    def read(self, signed: bool = True) -> np.ndarray:
        weights = (1 << np.arange(self.width, dtype=np.int64))
        vals = (self.bits.astype(np.int64) * weights[:, None]).sum(axis=0)
        if signed:
            half = 1 << (self.width - 1)
            vals = np.where(vals >= half, vals - (1 << self.width), vals)
        return vals
