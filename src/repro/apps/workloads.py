"""Workload inventories for the evaluation (paper Tab. 3 and Sec. 7.1).

Every Fig. 14-16/18 workload reduces to a list of GEMM shapes (convs via
im2col), each tagged with the input sparsity the paper's sparsity
discussion attributes to it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.perf.model import GEMMShape

__all__ = ["LLAMA_SHAPES", "WorkloadLayer", "layer_inventory",
           "WORKLOAD_NAMES"]

#: Tab. 3 -- GEMV and GEMM dimensions from LLaMA / LLaMA-2.
LLAMA_SHAPES: Dict[str, GEMMShape] = {
    "V0": GEMMShape(1, 22016, 8192, "V0"),
    "V1": GEMMShape(1, 8192, 22016, "V1"),
    "V2": GEMMShape(1, 8192, 8192, "V2"),
    "V3": GEMMShape(1, 28672, 8192, "V3"),
    "V4": GEMMShape(1, 8192, 28672, "V4"),
    "M0": GEMMShape(8192, 22016, 8192, "M0"),
    "M1": GEMMShape(8192, 8192, 22016, "M1"),
    "M2": GEMMShape(8192, 8192, 8192, "M2"),
    "M3": GEMMShape(8192, 28672, 8192, "M3"),
    "M4": GEMMShape(8192, 8192, 28672, "M4"),
}


@dataclass(frozen=True)
class WorkloadLayer:
    """One GEMM-decomposed layer with its typical input sparsity."""

    shape: GEMMShape
    sparsity: float = 0.0


def _conv(h_out: int, w_out: int, c_in: int, k: int, c_out: int,
          name: str, sparsity: float = 0.5) -> WorkloadLayer:
    """im2col GEMM of a k x k convolution (ReLU inputs ~50 % sparse)."""
    return WorkloadLayer(GEMMShape(h_out * w_out, c_out, k * k * c_in,
                                   name), sparsity)


def _fc(m: int, k: int, n: int, name: str,
        sparsity: float = 0.5) -> WorkloadLayer:
    return WorkloadLayer(GEMMShape(m, n, k, name), sparsity)


def _lenet() -> List[WorkloadLayer]:
    """LeNet-5 on 28x28 MNIST."""
    return [
        _conv(24, 24, 1, 5, 6, "conv1", sparsity=0.2),
        _conv(8, 8, 6, 5, 16, "conv2"),
        _fc(1, 256, 120, "fc1"),
        _fc(1, 120, 84, "fc2"),
        _fc(1, 84, 10, "fc3"),
    ]


def _vgg(cfg: List, name: str) -> List[WorkloadLayer]:
    """VGG conv stack on 224x224x3 + the three FC layers."""
    layers: List[WorkloadLayer] = []
    h = w = 224
    c_in = 3
    idx = 1
    for entry in cfg:
        if entry == "M":
            h //= 2
            w //= 2
            continue
        layers.append(_conv(h, w, c_in, 3, entry, f"{name}-conv{idx}",
                            sparsity=0.1 if idx == 1 else 0.5))
        c_in = entry
        idx += 1
    layers.append(_fc(1, 512 * 7 * 7, 4096, f"{name}-fc1"))
    layers.append(_fc(1, 4096, 4096, f"{name}-fc2"))
    layers.append(_fc(1, 4096, 1000, f"{name}-fc3"))
    return layers


_VGG13 = [64, 64, "M", 128, 128, "M", 256, 256, "M",
          512, 512, "M", 512, 512, "M"]
_VGG16 = [64, 64, "M", 128, 128, "M", 256, 256, 256, "M",
          512, 512, 512, "M", 512, 512, 512, "M"]


def _bert_attention(seq: int = 128, d_model: int = 768, heads: int = 12,
                    layers: int = 12) -> List[WorkloadLayer]:
    """All GEMMs in BERT-base attention blocks (ternary weights [32])."""
    d_head = d_model // heads
    per_layer = [
        _fc(seq, d_model, 3 * d_model, "qkv", sparsity=0.3),
        # Attention scores and context, one GEMM per head.
        *[WorkloadLayer(GEMMShape(seq, seq, d_head, f"scores-h{h}"), 0.3)
          for h in range(heads)],
        *[WorkloadLayer(GEMMShape(seq, d_head, seq, f"context-h{h}"), 0.6)
          for h in range(heads)],
        _fc(seq, d_model, d_model, "out-proj", sparsity=0.3),
        _fc(seq, d_model, 4 * d_model, "ffn-up", sparsity=0.3),
        _fc(seq, 4 * d_model, d_model, "ffn-down", sparsity=0.6),
    ]
    return per_layer * layers


def _gcn_pubmed() -> List[WorkloadLayer]:
    """Two-layer GCN on PubMed (19717 nodes, 88648 edges, 500 feats).

    Aggregation over the adjacency is a GEMM whose operand sparsity is
    the graph's (~99.98 %); feature transforms see the natural feature
    sparsity.
    """
    n, feats, hidden, classes = 19717, 500, 16, 3
    adj_sparsity = 1.0 - (2 * 88648 + n) / (n * n)
    return [
        _fc(n, feats, hidden, "xw1", sparsity=0.9),
        WorkloadLayer(GEMMShape(n, hidden, n, "agg1"), adj_sparsity),
        _fc(n, hidden, classes, "hw2", sparsity=0.5),
        WorkloadLayer(GEMMShape(n, classes, n, "agg2"), adj_sparsity),
    ]


def _dna_filter() -> List[WorkloadLayer]:
    """Pre-alignment filtering of one human-scale read batch.

    GRIM-Filter bins a 3.2 Gbp genome at ~4.5 M bins; a batch of 100k
    reads accumulates ~110 token counts each against the bin
    bitvectors.  Expressed as a masked accumulation shape: K = tokens
    per read x reads, N = bins per subarray tile.
    """
    return [WorkloadLayer(GEMMShape(1, 4_500_000, 110 * 100_000, "dna"),
                          sparsity=0.0)]


_INVENTORIES = {
    "LeNET": _lenet,
    "VGG13": lambda: _vgg(_VGG13, "vgg13"),
    "VGG16": lambda: _vgg(_VGG16, "vgg16"),
    "BERT": _bert_attention,
    "DNA filt": _dna_filter,
    "GCN": _gcn_pubmed,
    "GEMV": lambda: [WorkloadLayer(LLAMA_SHAPES["V0"], 0.3)],
    "GEMM": lambda: [WorkloadLayer(LLAMA_SHAPES["M0"], 0.3)],
}

WORKLOAD_NAMES = tuple(_INVENTORIES)


def layer_inventory(name: str) -> List[WorkloadLayer]:
    """GEMM decomposition of one Fig. 18 workload."""
    if name not in _INVENTORIES:
        raise KeyError(f"unknown workload {name!r}; "
                       f"choose from {WORKLOAD_NAMES}")
    return _INVENTORIES[name]()
