"""Application workloads: DNA pre-alignment filtering, the BERT attention
proxy, ternary-weight CNNs, GCNs, in-memory analytics (histogram, radix
sort, group-by), workload inventories, and the fast fault-injected
accumulator models they share."""

from repro.apps.analytics import (GroupByPlan, HistogramPlan,
                                  histogram_fault_trial, radix_sort)
from repro.apps.bert import BertProxy, BertProxyConfig, embedding_histogram
from repro.apps.dna import (DNAFilterConfig, DNAFilterWorkload, filtering_f1,
                            token_repetition_histogram)
from repro.apps.fastsim import (FastJCAccumulator, FastRCAAccumulator,
                                effective_bit_fault_rate)
from repro.apps.gcn import (GCNConfig, SyntheticCitationGraph,
                            classification_agreement, gcn_forward_cim,
                            gcn_forward_reference)
from repro.apps.twn import (conv2d_ternary_cim, conv2d_ternary_reference,
                            im2col, random_ternary_layer, ternarize_weights)
from repro.apps.workloads import (LLAMA_SHAPES, WORKLOAD_NAMES, WorkloadLayer,
                                  layer_inventory)

__all__ = [
    "GroupByPlan", "HistogramPlan", "histogram_fault_trial", "radix_sort",
    "BertProxy", "BertProxyConfig", "embedding_histogram",
    "DNAFilterConfig", "DNAFilterWorkload", "filtering_f1",
    "token_repetition_histogram",
    "FastJCAccumulator", "FastRCAAccumulator", "effective_bit_fault_rate",
    "GCNConfig", "SyntheticCitationGraph", "classification_agreement",
    "gcn_forward_cim", "gcn_forward_reference",
    "conv2d_ternary_cim", "conv2d_ternary_reference", "im2col",
    "random_ternary_layer", "ternarize_weights",
    "LLAMA_SHAPES", "WORKLOAD_NAMES", "WorkloadLayer", "layer_inventory",
]
