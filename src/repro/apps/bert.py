"""BERT attention-block proxy for the fault-impact study (Fig. 17b).

The paper measures BERT-base on GLUE/MNLI; we substitute a compact
numpy attention classifier on a synthetic NLI-like 3-class task whose
software accuracy lands in BERT's usable band (~78 %), then route every
matmul through the fault-injected accumulator models.  The observable
the experiment cares about -- a sharp accuracy collapse once faults
perturb the deep stack of accumulations, and the scheme ordering
SW ≈ JC+ECC > JC+TMR > JC > RCA+* -- is preserved (DESIGN.md Sec. 5).

Weights are ternarized (TWN-style [3, 32]) and activations quantized to
int8, so every layer is exactly the integer-ternary masked accumulation
Count2Multiply executes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from repro.apps.fastsim import FastJCAccumulator, FastRCAAccumulator
from repro.util import RngLike, as_rng

__all__ = ["BertProxyConfig", "BertProxy", "embedding_histogram"]


def _ternarize(w: np.ndarray) -> np.ndarray:
    """TWN ternarization: threshold at 0.7 * mean(|w|) (Li et al. [3])."""
    delta = 0.7 * np.abs(w).mean()
    return np.sign(w) * (np.abs(w) > delta)


def _quantize(x: np.ndarray, bits: int = 8) -> np.ndarray:
    """Symmetric int quantization of activations."""
    scale = np.abs(x).max() / (2 ** (bits - 1) - 1) or 1.0
    return np.clip(np.round(x / scale), -(2 ** (bits - 1)),
                   2 ** (bits - 1) - 1).astype(np.int64), scale


@dataclass
class BertProxyConfig:
    """Tiny attention classifier sized for second-scale fault sweeps."""

    seq_len: int = 10
    d_model: int = 24
    n_classes: int = 3
    n_train: int = 400
    n_test: int = 120
    class_sep: float = 1.1
    seed: RngLike = 17


@dataclass
class BertProxy:
    """Synthetic NLI-ish task + one ternary attention block + head."""

    config: BertProxyConfig = field(default_factory=BertProxyConfig)

    def __post_init__(self):
        cfg = self.config
        rng = as_rng(cfg.seed)
        d = cfg.d_model
        # Class-conditional token patterns with shared noise.
        self._prototypes = rng.normal(0, cfg.class_sep,
                                      (cfg.n_classes, cfg.seq_len, d))
        self._wq = _ternarize(rng.normal(0, 1, (d, d)))
        self._wk = _ternarize(rng.normal(0, 1, (d, d)))
        self._wv = _ternarize(rng.normal(0, 1, (d, d)))
        x_train, y_train = self._sample(cfg.n_train, rng)
        self.x_test, self.y_test = self._sample(cfg.n_test, rng)
        # Train a softmax head on clean features (closed-form-ish SGD).
        feats = np.stack([self._features(x) for x in x_train])
        self._head = self._train_head(feats, y_train, rng)

    # ------------------------------------------------------------------
    def _sample(self, count, rng):
        cfg = self.config
        y = rng.integers(0, cfg.n_classes, count)
        x = (self._prototypes[y]
             + rng.normal(0, 1.0, (count, cfg.seq_len, cfg.d_model)))
        return x, y

    def _attention(self, x: np.ndarray, matmul) -> np.ndarray:
        """One attention block; ``matmul(A_int, W_ternary)`` is injected."""
        xq, sx = _quantize(x)
        q = matmul(xq, self._wq) * sx
        k = matmul(xq, self._wk) * sx
        v = matmul(xq, self._wv) * sx
        scores = q @ k.T / np.sqrt(self.config.d_model)
        scores -= scores.max(axis=1, keepdims=True)
        attn = np.exp(scores)
        attn /= attn.sum(axis=1, keepdims=True)
        return (attn @ v).mean(axis=0)          # mean-pooled features

    def _features(self, x: np.ndarray) -> np.ndarray:
        exact = lambda a, w: a @ w.astype(np.int64)
        return self._attention(x, exact)

    def _train_head(self, feats, labels, rng, epochs=200, lr=0.05):
        cfg = self.config
        w = rng.normal(0, 0.01, (feats.shape[1], cfg.n_classes))
        onehot = np.eye(cfg.n_classes)[labels]
        for _ in range(epochs):
            logits = feats @ w
            logits -= logits.max(axis=1, keepdims=True)
            p = np.exp(logits)
            p /= p.sum(axis=1, keepdims=True)
            w -= lr * feats.T @ (p - onehot) / len(feats)
        return w

    # ------------------------------------------------------------------
    def _make_acc(self, kind: str, n: int, fault_rate: float, scheme: str,
                  rng):
        if kind == "jc":
            return FastJCAccumulator(n_bits=2, n_digits=7, n_lanes=n,
                                     fault_rate=fault_rate, scheme=scheme,
                                     seed=rng.integers(2 ** 31))
        return FastRCAAccumulator(width=16, n_lanes=n,
                                  fault_rate=fault_rate, scheme=scheme,
                                  seed=rng.integers(2 ** 31))

    def _faulty_matmul(self, kind: str, fault_rate: float, scheme: str,
                       rng) -> callable:
        """int x ternary matmul routed through faulty accumulators.

        Signed partial sums use the two-bank (pos/neg) form: the input's
        sign is folded into the mask choice, so both banks only count
        upward (Sec. 5.1's host-side trick).
        """
        def matmul(a_int: np.ndarray, w_ternary: np.ndarray) -> np.ndarray:
            m, k = a_int.shape
            n = w_ternary.shape[1]
            out = np.zeros((m, n), dtype=np.int64)
            plus = (w_ternary > 0).astype(np.uint8)
            minus = (w_ternary < 0).astype(np.uint8)
            # Plan-style reuse: one pos/neg accumulator pair per weight
            # matrix, counters reset between rows (the fault stream runs
            # on -- only the counter state restarts).
            pos = self._make_acc(kind, n, fault_rate, scheme, rng)
            neg = self._make_acc(kind, n, fault_rate, scheme, rng)
            for row in range(m):
                pos.reset()
                neg.reset()
                for j in range(k):
                    v = int(a_int[row, j])
                    if v == 0:
                        continue
                    up, down = (plus[j], minus[j]) if v > 0 else \
                               (minus[j], plus[j])
                    if up.any():
                        pos.accumulate(abs(v), up)
                    if down.any():
                        neg.accumulate(abs(v), down)
                out[row] = pos.read() - neg.read()
            return out
        return matmul

    def accuracy(self, kind: str = None, fault_rate: float = 0.0,
                 scheme: str = "none", seed: RngLike = 0,
                 max_samples: int = None) -> float:
        """Test accuracy with matmuls on the chosen substrate.

        ``kind=None`` runs the clean software baseline (the Fig. 17b
        "SW" line).
        """
        rng = as_rng(seed)
        n = max_samples or len(self.x_test)
        correct = 0
        for x, y in zip(self.x_test[:n], self.y_test[:n]):
            if kind is None:
                feats = self._features(x)
            else:
                matmul = self._faulty_matmul(kind, fault_rate, scheme, rng)
                feats = self._attention(x, matmul)
            pred = int(np.argmax(feats @ self._head))
            correct += int(pred == y)
        return correct / n


def embedding_histogram(config: BertProxyConfig = None,
                        bits: int = 8) -> Dict[int, int]:
    """Fig. 3b: distribution of the int8-quantized input embeddings."""
    proxy = BertProxy(config or BertProxyConfig())
    values: Dict[int, int] = {}
    for x in proxy.x_test:
        q, _ = _quantize(x, bits)
        for v, c in zip(*np.unique(q, return_counts=True)):
            values[int(v)] = values.get(int(v), 0) + int(c)
    return values
