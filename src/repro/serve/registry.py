"""Plan cache keyed by model name, with counter-image eviction.

The serving runtime keeps one weight-stationary plan per registered
model.  Plans are cheap to *hold* (host-side mask images) but expensive
to keep *resident* (engines occupy leased banks), so the registry treats
residency as the cached resource: when a wave cannot lease banks
(:class:`~repro.serve.pool.PoolExhausted`), the least-recently-used
resident plan is **parked** -- its counter image leaves via
``export_counters()``, its engines are dropped and its bank leases
return to the pool -- and the wave retries.  A later query against a
parked plan transparently re-plants its masks and
``import_counters()`` the image back (see :meth:`GemvPlan.park` /
:meth:`~repro.device.GemvPlan.unpark`).

Models are not all GEMVs: ``register`` takes a plan ``kind`` seam, so
analytics plans (:mod:`repro.apps.analytics`) cache, evict and coalesce
exactly like matrix models -- ``kind="histogram"`` / ``"groupby"``
build key-stream plans (no ``z``), anything unknown raises
:class:`UnsupportedPlanKindError` up front rather than failing deep in
the scheduler.

>>> import numpy as np
>>> from repro.device import Device
>>> from repro.serve.pool import BankPool
>>> dev = Device(pool=BankPool(16))
>>> reg = ModelRegistry(dev)
>>> plan = reg.register("tiny", np.eye(2, dtype=np.uint8), kind="binary")
>>> reg.run("tiny", lambda p: p(np.array([3, 5])))
array([3, 5])
>>> hist = reg.register("hist", kind="histogram", n_buckets=4)
>>> reg.run("hist", lambda p: p(np.array([0, 2, 2, 3])))
array([1, 0, 2, 1])
>>> sorted(reg.names()), reg.stats.misses
(['hist', 'tiny'], 2)
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.device import Device
from repro.serve.pool import PoolExhausted

__all__ = ["ModelRegistry", "RegistryStats", "UnsupportedPlanKindError",
           "PLAN_KINDS"]

#: Plan kinds the registry knows how to build.  ``None`` falls back to
#: GEMV kind inference (see :func:`repro.kernels.lowering.infer_kind`).
PLAN_KINDS = ("binary", "ternary", "histogram", "groupby")


class UnsupportedPlanKindError(ValueError):
    """``register`` was asked for a plan kind the serve layer lacks.

    Raised at registration -- the one place the kind is declared --
    so a typo or an unported workload fails with a clear message
    instead of surfacing as a shape error deep inside a coalesced
    scheduler wave.
    """


@dataclass(frozen=True)
class RegistryStats:
    """Cache behavior counters (snapshot).

    ``hits`` are runs that found the plan resident, ``misses`` runs
    that had to (re)build engines -- first touch or post-eviction --
    and ``evictions`` counts plans parked to free bank budget.
    ``dedup_hits`` / ``rows_shared`` / ``rows_private`` mirror the
    device's :class:`~repro.serve.rowstore.RowImageStore` accounting:
    how often registrations found their row image already planted, and
    how the logical planted rows split between multi-referenced and
    private images.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    relocations: int = 0
    dedup_hits: int = 0
    rows_shared: int = 0
    rows_private: int = 0


class _Entry:
    __slots__ = ("name", "plan", "last_used")

    def __init__(self, name: str, plan):
        self.name = name
        self.plan = plan
        self.last_used = 0


class ModelRegistry:
    """Named plans over one shared device/pool, LRU-evicted by parking.

    Parameters
    ----------
    device:
        The shared :class:`~repro.device.Device` (typically a view over
        a bounded :class:`~repro.serve.pool.BankPool`).
    max_resident:
        Optional cap on simultaneously resident (engine-holding) plans,
        enforced after every run in addition to the pool's bank budget.
    """

    def __init__(self, device: Device,
                 max_resident: Optional[int] = None):
        if max_resident is not None and max_resident < 1:
            raise ValueError("max_resident must be positive (or None)")
        self.device = device
        self.max_resident = max_resident
        self._entries: Dict[str, _Entry] = {}
        self._clock = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._relocations = 0
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    def register(self, name: str, z: Optional[np.ndarray] = None,
                 kind: Optional[str] = None,
                 x_budget: Optional[int] = None, **plan_kwargs):
        """Register one model's plan under ``name`` and return it (lazy).

        ``kind`` selects the plan family: ``None`` / ``"binary"`` /
        ``"ternary"`` plant the operand matrix ``z`` as a GEMV plan;
        ``"histogram"`` / ``"groupby"`` build analytics plans (``z``
        must be omitted; ``plan_kwargs`` carry their geometry --
        ``n_buckets``/``edges`` or ``n_groups``/``agg``, plus
        ``query_len``).  Any other kind raises
        :class:`UnsupportedPlanKindError`.  Planting is host-side only;
        engines are built -- and banks leased -- on first use.
        Re-registering a live name raises; :meth:`unregister` first to
        replace a model.
        """
        if kind is not None and kind not in PLAN_KINDS:
            raise UnsupportedPlanKindError(
                f"plan kind {kind!r} is not servable; supported kinds: "
                f"{list(PLAN_KINDS)}")
        with self._lock:
            if name in self._entries:
                raise ValueError(f"model {name!r} is already registered")
            if kind == "histogram":
                if z is not None:
                    raise ValueError("histogram models take no operand "
                                     "matrix z")
                plan = self.device.plan_histogram(x_budget=x_budget,
                                                  **plan_kwargs)
            elif kind == "groupby":
                if z is not None:
                    raise ValueError("groupby models take no operand "
                                     "matrix z")
                plan = self.device.plan_groupby(x_budget=x_budget,
                                                **plan_kwargs)
            else:
                if z is None:
                    raise ValueError(f"a {kind or 'GEMV'} model needs "
                                     f"its operand matrix z")
                plan = self.device.plan_gemv(z, kind=kind,
                                             x_budget=x_budget,
                                             **plan_kwargs)
            self._entries[name] = _Entry(name, plan)
            return plan

    def unregister(self, name: str) -> None:
        """Close and drop one model's plan."""
        with self._lock:
            entry = self._entries.pop(name, None)
        if entry is not None:
            entry.plan.close()

    def names(self) -> List[str]:
        with self._lock:
            return list(self._entries)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._entries

    def get(self, name: str):
        """The plan for ``name`` (touches LRU recency)."""
        with self._lock:
            entry = self._touch(name)
            return entry.plan

    # ------------------------------------------------------------------
    def run(self, name: str, fn: Callable):
        """Execute ``fn(plan)`` with evict-and-retry on bank pressure.

        A :class:`~repro.serve.pool.PoolExhausted` from the plan's
        resource build parks the least-recently-used *other* resident
        plan and retries; when nothing is left to evict the error
        propagates (the model genuinely does not fit the pool).

        The registry lock covers only bookkeeping (touch, hit/miss,
        eviction), never ``fn`` itself -- a wave takes milliseconds of
        engine simulation and must not block concurrent ``get()``
        lookups (e.g. submission validation).  Plan *execution* is
        single-threaded by contract: only one dispatcher (the server's
        scheduler thread) calls ``run``.
        """
        with self._lock:
            entry = self._touch(name)
            if entry.plan.is_resident:
                self._hits += 1
            else:
                self._misses += 1
        while True:
            try:
                result = fn(entry.plan)
                break
            except PoolExhausted:
                with self._lock:
                    if not self._evict_one(exclude=name):
                        raise
        with self._lock:
            self._enforce_max_resident(exclude=name)
        return result

    def export_model(self, name: str):
        """Park ``name``'s plan and return its relocation image.

        The image (see :meth:`repro.device.GemvPlan.export_image`) is
        the counter state a twin registry -- typically in another
        fleet shard's worker process -- restores with
        :meth:`import_model`.  The plan stays registered here but
        parked; the mover unregisters it once the destination has
        imported.  Counted as a relocation, not an eviction.
        """
        with self._lock:
            entry = self._touch(name)
            self._relocations += 1
        return entry.plan.export_image()

    def import_model(self, name: str, image) -> None:
        """Restore an exported relocation image into ``name``'s plan.

        The plan must already be registered (from the same operand
        spec that produced the image) and must not have run yet;
        geometry mismatches raise rather than corrupt.  Like
        :meth:`run_with`, bank exhaustion evicts the LRU resident plan
        and retries -- unparking is all-or-nothing, so a failed
        attempt leaves the plan parked on the adopted image and the
        retry is a plain :meth:`~repro.device.GemvPlan.unpark`.
        """
        with self._lock:
            entry = self._touch(name)
        adopted = False
        while True:
            try:
                if adopted:
                    entry.plan.unpark()
                else:
                    # Image adoption happens before any lease can fail,
                    # so a PoolExhausted here means "adopted but still
                    # parked", never "not adopted".
                    adopted = True
                    entry.plan.import_image(image)
                return
            except PoolExhausted:
                with self._lock:
                    if not self._evict_one(exclude=name):
                        raise

    def evict(self, name: Optional[str] = None) -> bool:
        """Park one plan: ``name`` if given, else the LRU resident one."""
        with self._lock:
            if name is not None:
                entry = self._entries[name]
                if not entry.plan.is_resident:
                    return False
                entry.plan.park()
                self._evictions += 1
                return True
            return self._evict_one(exclude=None)

    @property
    def stats(self) -> RegistryStats:
        store = self.device.store.stats()
        return RegistryStats(hits=self._hits, misses=self._misses,
                             evictions=self._evictions,
                             relocations=self._relocations,
                             dedup_hits=store.dedup_hits,
                             rows_shared=store.rows_shared,
                             rows_private=store.rows_private)

    @property
    def resident_names(self) -> List[str]:
        """Models currently holding engines (and bank leases)."""
        with self._lock:
            return [e.name for e in self._entries.values()
                    if e.plan.is_resident]

    def close(self) -> None:
        """Close every registered plan (idempotent)."""
        with self._lock:
            entries = list(self._entries.values())
            self._entries.clear()
        for entry in entries:
            entry.plan.close()

    # ------------------------------------------------------------------
    def _touch(self, name: str) -> _Entry:
        if name not in self._entries:
            raise KeyError(f"unknown model {name!r}; registered: "
                           f"{sorted(self._entries)}")
        entry = self._entries[name]
        self._clock += 1
        entry.last_used = self._clock
        return entry

    def _evict_one(self, exclude: Optional[str]) -> bool:
        candidates = [e for e in self._entries.values()
                      if e.name != exclude and e.plan.is_resident]
        if not candidates:
            return False
        # Refcount-aware LRU: parking a tenant whose every resource is
        # shared frees zero banks (the survivors keep the lease live),
        # so prefer victims whose eviction actually returns budget --
        # the marginal footprint -- breaking ties by recency.
        victim = min(candidates,
                     key=lambda e: (e.plan.footprint_banks == 0,
                                    e.last_used))
        victim.plan.park()
        self._evictions += 1
        return True

    def _enforce_max_resident(self, exclude: Optional[str]) -> None:
        if self.max_resident is None:
            return
        while len(self.resident_names) > self.max_resident:
            if not self._evict_one(exclude):
                break
