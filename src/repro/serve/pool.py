"""Process-wide bank/subarray budget shared by every device and plan.

The paper's deployment picture (Sec. 5) is many weight-stationary
matrices resident in one DRAM module: the banks are a *shared* physical
budget, not a per-kernel resource.  :class:`BankPool` owns that budget.
Devices are views over a pool, and every engine or cluster a plan builds
first takes a :class:`BankLease` for the banks it occupies; releasing
the resources returns the banks.  A finite pool makes over-subscription
an explicit, catchable condition (:class:`PoolExhausted`) instead of
unbounded simulator growth -- the serving registry reacts to it by
evicting the least-recently-used resident plan and retrying.

>>> pool = BankPool(8)
>>> lease = pool.lease(6)
>>> pool.banks_free
2
>>> pool.lease(4)                    # doctest: +IGNORE_EXCEPTION_DETAIL
Traceback (most recent call last):
    ...
repro.serve.pool.PoolExhausted: lease of 4 banks exceeds the pool \
budget (6/8 leased, 2 free)
>>> lease.release()
>>> pool.banks_free
8
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Optional

__all__ = ["BankPool", "BankLease", "PoolExhausted", "PoolSnapshot"]


@dataclass(frozen=True)
class PoolSnapshot:
    """Picklable point-in-time view of a pool's lease accounting.

    Leases themselves are process-local handles and never cross a
    process boundary; what *does* cross is this snapshot -- each fleet
    shard worker reports its pool's occupancy so the front door's
    placement layer can weigh shards by accounted bank budget without
    sharing lock state.  ``n_banks`` is ``None`` for unaccounted pools.
    """

    n_banks: Optional[int]
    banks_leased: int
    n_live_leases: int
    #: Banks under leases attached by more than one tenant (the
    #: row-image store's shared engine bodies).
    banks_shared: int = 0
    #: Effective-over-actual bank ratio: how many banks the attached
    #: tenants would occupy if each planted privately, divided by the
    #: banks actually leased (1.0 when nothing is shared).
    dedup_ratio: float = 1.0

    @property
    def banks_free(self) -> Optional[int]:
        if self.n_banks is None:
            return None
        return self.n_banks - self.banks_leased


class PoolExhausted(RuntimeError):
    """A lease request exceeds the pool's remaining bank budget.

    Raised *before* any state changes: the pool and the requesting
    plan are unchanged, so the caller may free capacity (e.g. evict a
    resident plan) and simply retry.
    """


class BankLease:
    """A granted slice of a pool's bank budget.

    Leases are handles, not containers: the resources occupying the
    banks (engines, clusters) are owned by the plan that took the
    lease.  ``release()`` is idempotent.
    """

    __slots__ = ("pool", "n_banks", "owner", "_live", "n_attached")

    def __init__(self, pool: "BankPool", n_banks: int, owner=None):
        self.pool = pool
        self.n_banks = n_banks
        self.owner = owner
        self._live = True
        # Tenants multiplexed onto this lease's banks (row-image
        # sharing); the lease itself counts as the first.
        self.n_attached = 1

    @property
    def live(self) -> bool:
        return self._live

    def release(self) -> None:
        """Return the banks to the pool (idempotent, thread-safe --
        the live flag flips under the pool's lock, so a concurrent
        double release can never decrement the accounting twice)."""
        self.pool._release(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "live" if self._live else "released"
        return f"BankLease({self.n_banks} banks, {state})"


class BankPool:
    """Accounted owner of the process-wide bank/subarray budget.

    Parameters
    ----------
    n_banks:
        Total banks available to lease.  ``None`` means unaccounted
        (infinite) -- the default for standalone devices, which keeps
        single-tenant sessions exactly as cheap as before.

    The pool is thread-safe: the serving scheduler leases and releases
    from its dispatch thread while callers construct plans elsewhere.
    """

    def __init__(self, n_banks: Optional[int] = None):
        if n_banks is not None and n_banks < 1:
            raise ValueError("pool budget must be positive (or None for "
                             "an unaccounted pool)")
        self.n_banks = n_banks
        self._leased = 0
        self._n_leases = 0
        # Banks under multi-attached leases, and the banks the extra
        # attachments would have cost if planted privately.
        self._shared = 0
        self._extra = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    @property
    def bounded(self) -> bool:
        """Whether the pool enforces a finite budget."""
        return self.n_banks is not None

    @property
    def banks_leased(self) -> int:
        return self._leased

    @property
    def banks_free(self) -> Optional[int]:
        """Remaining budget (``None`` when the pool is unaccounted)."""
        if self.n_banks is None:
            return None
        return self.n_banks - self._leased

    @property
    def n_live_leases(self) -> int:
        return self._n_leases

    def clamp(self, n_banks: int) -> int:
        """Largest bank count <= ``n_banks`` the *total* budget allows.

        Sizing helper for batch shards: a bounded pool can never grant
        more than its total budget, so plans size their bank groups
        against it up front (and rely on eviction, not shrinking, for
        banks currently leased to other plans).
        """
        if self.n_banks is None:
            return n_banks
        return max(1, min(n_banks, self.n_banks))

    # ------------------------------------------------------------------
    def lease(self, n_banks: int, owner=None) -> BankLease:
        """Take ``n_banks`` from the budget or raise :class:`PoolExhausted`."""
        return self.exchange(None, n_banks, owner=owner)

    def exchange(self, old: Optional[BankLease], n_banks: int,
                 owner=None) -> BankLease:
        """Atomically replace ``old`` (may be ``None``) with a new lease.

        The capacity swap happens under one lock hold: a lessee
        resizing its lease is charged only the *difference*, so a
        concurrent tenant can never steal the banks it already held
        between a release and a re-acquire (the failure mode of a
        naive release-then-lease pair).  On :class:`PoolExhausted`,
        ``old`` stays live and the pool is unchanged.
        """
        n_banks = int(n_banks)
        if n_banks < 1:
            raise ValueError("a lease must cover at least one bank")
        if old is not None and old.pool is not self:
            raise ValueError("cannot exchange a lease from another pool")
        with self._lock:
            if old is not None and old._live and old.n_attached > 1:
                raise ValueError("cannot exchange a lease other tenants "
                                 "are attached to; detach them first")
            held = old.n_banks if old is not None and old._live else 0
            if self.n_banks is not None \
                    and self._leased - held + n_banks > self.n_banks:
                raise PoolExhausted(
                    f"lease of {n_banks} banks exceeds the pool budget "
                    f"({self._leased}/{self.n_banks} leased, "
                    f"{self.n_banks - self._leased} free"
                    + (f", {held} exchangeable" if held else "") + ")")
            if held:
                old._live = False
                self._leased -= held
                self._n_leases -= 1
            self._leased += n_banks
            self._n_leases += 1
        return BankLease(self, n_banks, owner=owner)

    # ------------------------------------------------------------------
    @property
    def banks_shared(self) -> int:
        """Banks under leases attached by more than one tenant."""
        return self._shared

    @property
    def dedup_ratio(self) -> float:
        """Effective-over-actual bank occupancy (1.0 = no sharing)."""
        if self._leased == 0:
            return 1.0
        return (self._leased + self._extra) / self._leased

    def attach(self, lease: BankLease) -> None:
        """Account one more tenant multiplexed onto ``lease``'s banks.

        Attachments are free against the budget -- that is the whole
        point of row-image sharing -- but they are *visible*: the
        snapshot's ``banks_shared`` / ``dedup_ratio`` report how much
        private planting the sharing displaced.
        """
        if lease.pool is not self:
            raise ValueError("cannot attach a lease from another pool")
        with self._lock:
            if not lease._live:
                raise ValueError("cannot attach a released lease")
            lease.n_attached += 1
            self._extra += lease.n_banks
            if lease.n_attached == 2:
                self._shared += lease.n_banks

    def detach(self, lease: BankLease) -> None:
        """Undo one :meth:`attach` (the lease itself stays live)."""
        if lease.pool is not self:
            raise ValueError("cannot detach a lease from another pool")
        with self._lock:
            if not lease._live or lease.n_attached <= 1:
                raise ValueError("lease has no extra attachments")
            lease.n_attached -= 1
            self._extra -= lease.n_banks
            if lease.n_attached == 1:
                self._shared -= lease.n_banks

    def snapshot(self) -> PoolSnapshot:
        """One consistent, picklable view of the lease accounting.

        Taken under the pool lock, so ``banks_leased`` and
        ``n_live_leases`` always agree -- the cross-process lease
        protocol's reporting half (fleet workers ship this to the
        placement layer; the granting half stays process-local).
        """
        with self._lock:
            if self._leased:
                ratio = (self._leased + self._extra) / self._leased
            else:
                ratio = 1.0
            return PoolSnapshot(n_banks=self.n_banks,
                                banks_leased=self._leased,
                                n_live_leases=self._n_leases,
                                banks_shared=self._shared,
                                dedup_ratio=ratio)

    def _release(self, lease: BankLease) -> None:
        with self._lock:
            if not lease._live:
                return
            lease._live = False
            self._leased -= lease.n_banks
            self._n_leases -= 1
            if lease.n_attached > 1:
                self._extra -= (lease.n_attached - 1) * lease.n_banks
                self._shared -= lease.n_banks
                lease.n_attached = 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        total = "unbounded" if self.n_banks is None else str(self.n_banks)
        return (f"BankPool(budget={total}, leased={self._leased}, "
                f"leases={self._n_leases})")
