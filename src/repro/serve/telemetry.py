"""Per-query execution telemetry for the serving runtime.

Every response out of :class:`repro.serve.Server` carries an
:class:`ExecutionReport` priced from the wave's *executed* command
stream: the plan's ``measured_ops`` delta (AAP/AP sequences the engines
actually issued, fault retries and protection overhead included) goes
through :func:`repro.dram.timing.time_for_aaps_ns` for latency and
:class:`repro.dram.energy.EnergyModel` for energy, via
:func:`repro.perf.metrics.measured_cost`.  Nominal op counts never enter
the report -- a query that triggered retries or carry flushes costs
more, and the report says so.

The report is *plan-kind agnostic*: nothing here assumes GEMV shapes.
Each plan prices its own nominal unit through ``nominal_query_ops``
(GEMV waves: dense multiply-adds; analytics histogram/group-by waves:
one masked increment per record), and every other field is a delta of
the plan's monotonic :class:`~repro.device.PlanStats` counters around
the wave -- which the analytics plans thread identically.

>>> r = ExecutionReport.from_measured("m", batch_size=4, measured_ops=800,
...                                   broadcasts=40, n_banks=8)
>>> r.coalesced, r.measured_ops
(True, 800)
>>> r.latency_ns == r.cost.time_s * 1e9
True
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.dram.energy import DDR5_ENERGY, EnergyModel
from repro.dram.timing import DDR5_4400_TIMING, TimingParams
from repro.perf.metrics import CostReport, measured_cost

__all__ = ["ExecutionReport", "LatencySummary", "LatencyWindow",
           "TelemetrySummary"]


@dataclass(frozen=True)
class LatencySummary:
    """Percentile summary of a set of per-query latencies.

    The *one* aggregation code path every front door uses: the
    single-process :class:`~repro.serve.server.Server` and the
    multi-process :class:`repro.fleet.Fleet` both fold their per-query
    ``ExecutionReport.latency_ns`` values through :meth:`from_ns`, and
    the throughput benchmarks summarize wall-clock latencies with the
    same method -- so a fleet-vs-server comparison never mixes two
    percentile definitions.

    >>> s = LatencySummary.from_ns([100.0] * 99 + [1000.0])
    >>> s.count, s.p50_ns, s.max_ns
    (100, 100.0, 1000.0)
    >>> s.p99_ns > s.p50_ns
    True
    >>> LatencySummary.from_ns([]).count
    0
    """

    count: int
    mean_ns: float
    p50_ns: float
    p99_ns: float
    max_ns: float

    @classmethod
    def from_ns(cls, values: Sequence[float]) -> "LatencySummary":
        """Summarize latencies (ns): mean, p50, p99, max."""
        a = np.asarray(list(values), dtype=float)
        if a.size == 0:
            return cls(0, 0.0, 0.0, 0.0, 0.0)
        return cls(count=int(a.size), mean_ns=float(a.mean()),
                   p50_ns=float(np.percentile(a, 50)),
                   p99_ns=float(np.percentile(a, 99)),
                   max_ns=float(a.max()))


class LatencyWindow:
    """Bounded reservoir of the most recent per-query latencies.

    A serving front door observes one latency per query; under heavy
    traffic an unbounded list would grow forever, so the window keeps
    the last ``maxlen`` observations and the summary covers exactly
    that sliding window.  Appends are GIL-atomic, so the scheduler
    thread (or asyncio dispatcher) records without locking.
    """

    def __init__(self, maxlen: int = 1 << 16):
        if maxlen < 1:
            raise ValueError("maxlen must be positive")
        self._values: deque = deque(maxlen=maxlen)

    def observe(self, latency_ns: float, n: int = 1) -> None:
        """Record ``n`` queries that each saw ``latency_ns``."""
        self._values.extend([float(latency_ns)] * int(n))

    def __len__(self) -> int:
        return len(self._values)

    def summary(self) -> LatencySummary:
        return LatencySummary.from_ns(list(self._values))


@dataclass(frozen=True)
class TelemetrySummary:
    """Front-door roll-up: scheduler counters + latency percentiles.

    Both :meth:`repro.serve.Server.telemetry_summary` and
    :meth:`repro.fleet.Fleet.telemetry_summary` return this shape, so
    fleet-vs-server comparisons read one structure.  ``latency`` is the
    window summary of per-query *modeled* latencies (each query's
    :attr:`ExecutionReport.latency_ns` -- the makespan of the wave it
    rode in, priced from measured ops).
    """

    queries: int
    waves: int
    max_wave: int
    rejected: int
    latency: LatencySummary
    #: Row-image dedup accounting (registry/store roll-up; a fleet
    #: sums these over its live shards): how many registrations found
    #: their row image already planted, and how the planted rows split
    #: between shared and private images.
    dedup_hits: int = 0
    rows_shared: int = 0
    rows_private: int = 0


@dataclass(frozen=True)
class ExecutionReport:
    """What one served query actually cost, modeled from measured ops.

    Attributes
    ----------
    model:
        Registry name of the plan that answered the query.
    batch_size:
        Queries coalesced into the wave that carried this one
        (``coalesced`` is true when > 1).
    measured_ops / broadcasts:
        The wave's executed AAP/AP sequence count and broadcast
        (``accumulate``) count -- deltas of the plan's monotonic
        counters around the wave.
    n_banks:
        Bank-level parallelism the wave's command stream was spread
        over (the plan's leased banks), which sets the AAP issue rate.
    trace_compiles / trace_replays:
        The wave's fused-trace cache activity on the word backend
        (deltas of the plan's counters): programs lowered to compiled
        traces vs. traces re-executed from cache.  A steady-state query
        against a warm plan replays only; compiles indicate cold
        programs (new magnitudes, re-plans).  Both are zero on the bit
        backend (which never fuses).
    megatrace_compiles / megatrace_replays:
        The wave's *stitched* whole-sequence trace activity (deltas of
        the plan's counters): on the word path each query's entire
        wave sequence executes as a handful of megatraces, so a warm
        plan's steady state shows megatrace replays with near-zero
        per-μProgram activity.  Both stay zero on the bit backend and
        inside :func:`repro.isa.trace.megatrace_disabled` scopes.
    cost:
        The wave's :class:`~repro.perf.metrics.CostReport` built by
        :func:`~repro.perf.metrics.measured_cost` -- latency from
        ``time_for_aaps_ns(measured_ops, n_banks)``, energy from
        ``EnergyModel.energy_for_aaps_j`` over that makespan.
    dynamic_energy_j:
        The command-proportional part of the wave's energy
        (:meth:`~repro.dram.energy.EnergyModel.dynamic_energy_j`); the
        remainder of ``energy_j`` is makespan-proportional background
        power the coalesced batch shares.
    query_energy_j:
        This query's attributed share: an even split of the wave's
        dynamic *and* background energy across its queries.
    evictions:
        Plans the registry had to park to make bank room for this wave.
    injected_faults:
        Fault-model bit flips injected while the wave executed (delta
        of the plan's monotonic counter) -- zero for fault-free
        configs, and identical whether the word backend replayed fused
        fault traces or interpreted per op.
    """

    model: str
    batch_size: int
    measured_ops: int
    broadcasts: int
    n_banks: int
    cost: CostReport
    dynamic_energy_j: float
    query_energy_j: float
    evictions: int = 0
    trace_compiles: int = 0
    trace_replays: int = 0
    injected_faults: int = 0
    megatrace_compiles: int = 0
    megatrace_replays: int = 0

    @property
    def coalesced(self) -> bool:
        """Whether the wave batched this query with concurrent ones."""
        return self.batch_size > 1

    @property
    def latency_ns(self) -> float:
        """Modeled makespan of the wave this query rode in."""
        return self.cost.time_s * 1e9

    @property
    def energy_j(self) -> float:
        """Modeled energy of the whole wave."""
        return self.cost.energy_j

    @classmethod
    def from_measured(cls, model: str, batch_size: int, measured_ops: int,
                      broadcasts: int, n_banks: int,
                      nominal_ops: float = 0.0, evictions: int = 0,
                      trace_compiles: int = 0, trace_replays: int = 0,
                      injected_faults: int = 0,
                      megatrace_compiles: int = 0,
                      megatrace_replays: int = 0,
                      timing: TimingParams = DDR5_4400_TIMING,
                      energy: Optional[EnergyModel] = None
                      ) -> "ExecutionReport":
        """Price one wave's executed command stream."""
        if batch_size < 1:
            raise ValueError("a wave carries at least one query")
        energy = energy or DDR5_ENERGY
        cost = measured_cost(measured_ops, n_banks,
                             nominal_ops=nominal_ops,
                             name=f"serve:{model}", timing=timing,
                             energy=energy)
        return cls(model=model, batch_size=batch_size,
                   measured_ops=int(measured_ops),
                   broadcasts=int(broadcasts), n_banks=int(n_banks),
                   cost=cost,
                   dynamic_energy_j=energy.dynamic_energy_j(measured_ops),
                   query_energy_j=cost.energy_j / batch_size,
                   evictions=int(evictions),
                   trace_compiles=int(trace_compiles),
                   trace_replays=int(trace_replays),
                   injected_faults=int(injected_faults),
                   megatrace_compiles=int(megatrace_compiles),
                   megatrace_replays=int(megatrace_replays))
