"""Content-addressed, reference-counted resident row-image store.

Planting Z is the expensive half of a weight-stationary plan: the mask
rows occupy host memory, and the engines built to stream queries
against them occupy leased banks of the shared
:class:`~repro.serve.pool.BankPool` budget.  When tenants overlap --
fine-tunes of one base model, mirrored ternary orientations, shared
embedding blocks -- planting each copy privately wastes both.

:class:`RowImageStore` deduplicates that state by *content address*:

* Every planted row image is keyed by a digest of its packed mask
  rows, orientation (plan kind) and digit sizing (counter radix bits).
  Plans :meth:`~RowImageStore.acquire` a :class:`RowImageHandle`
  instead of planting blindly; identical operands share one read-only
  image (a *dedup hit*), and the image is dropped when the last
  handle releases.
* Live engine resources (clusters, engine lists, their bank leases)
  hang off the image's entry as :class:`SharedResource` bodies.
  Same-digest tenants with matching geometry **attach** to one body --
  the pool is charged once -- and multiplex their *counter state*
  through per-tenant stashes: activating a tenant exports the previous
  tenant's counter rows and imports (or zeroes) its own.  Counter
  images therefore stay bit-exact and private while the much larger
  mask rows and the bank budget are shared.
* Mutating a tenant's Z is copy-on-write: the plan re-derives only the
  diverging rows, acquires the new content address (which may re-merge
  with another tenant's image) and releases the old one.  Every entry
  carries a monotonic ``generation``; engines built for an entry adopt
  it as their compiled-trace ``cache_epoch``, so no stale μProgram or
  megatrace replays against swapped rows.

Counter-state multiplexing is exact because the plan layer already
resets counters at the start of every query and flushes pending
carries at every read-out: a tenant swap between queries is a pure
host-side row copy that draws nothing from the fault model's RNG
stream, so seeded fault campaigns see the identical draw sequence the
private-planting path produces.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

__all__ = ["RowImageStore", "RowImageHandle", "SharedResource",
           "StoreStats", "row_digest"]


def row_digest(kind: str, n_bits: int, masks: np.ndarray) -> str:
    """Content address of one planted row image.

    Covers the plan kind (a ternary image carries both sign
    orientations per row, so orientation is part of the content), the
    counter digit sizing (``n_bits`` -- images only interchange between
    engines of the same radix) and the exact packed mask bytes.
    """
    masks = np.ascontiguousarray(masks, dtype=np.uint8)
    h = hashlib.blake2b(digest_size=16)
    h.update(kind.encode("ascii"))
    h.update(str(int(n_bits)).encode("ascii"))
    h.update(repr(masks.shape).encode("ascii"))
    h.update(masks.tobytes())
    return h.hexdigest()


@dataclass(frozen=True)
class StoreStats:
    """Snapshot of one store's dedup accounting.

    ``rows_resident`` counts physically planted mask rows (one per
    image), ``rows_total`` the logical rows all handles reference;
    ``rows_shared`` are logical rows backed by a multi-referenced
    image, ``rows_private`` physical rows referenced exactly once.
    ``generation`` is the monotonic entry counter the compiled-trace
    cache epochs derive from.
    """

    images: int = 0
    rows_resident: int = 0
    rows_total: int = 0
    rows_shared: int = 0
    rows_private: int = 0
    dedup_hits: int = 0
    cow_clones: int = 0
    generation: int = 0


class SharedResource:
    """One live engine body multiplexed across same-image tenants.

    The body is either a :class:`~repro.engine.cluster.BankCluster`
    (``cluster``) or a list of bit-backend
    :class:`~repro.engine.machine.CountingEngine` (``engines``) -- the
    store never constructs engines itself, it only multiplexes them.
    The resource owns exactly one :class:`~repro.serve.pool.BankLease`;
    the first tenant pays it, later tenants attach for free
    (:meth:`BankPool.attach`), and the last detach releases it.

    At most one tenant is *active* at a time.  :meth:`activate` swaps
    counter state: the outgoing tenant's counter rows are exported into
    its stash and its accrued cost-counter delta is credited to its
    ``_retired`` sink; the incoming tenant's stash is imported (or the
    counters are zeroed on first activation).  The swap is host-side
    I/O only -- no fault-model RNG draw, no command issued.
    """

    __slots__ = ("role", "token", "geometry", "n_digits", "entry",
                 "lease", "cluster", "engines", "attached", "active",
                 "_stash", "_base")

    def __init__(self, role: str, token: tuple, geometry: tuple,
                 n_digits: int, entry: "_Entry", lease,
                 cluster=None, engines: Optional[list] = None):
        self.role = role
        self.token = token
        self.geometry = geometry
        self.n_digits = int(n_digits)
        self.entry = entry
        self.lease = lease
        self.cluster = cluster
        self.engines = engines or []
        self.attached: List[object] = []
        self.active = None
        self._stash: Dict[int, object] = {}
        self._base = self._counters_now()

    # ------------------------------------------------------------------
    @property
    def n_banks(self) -> int:
        return self.lease.n_banks

    @property
    def n_attached(self) -> int:
        return len(self.attached)

    def is_sole(self, plan) -> bool:
        return self.attached == [plan]

    def _all_engines(self) -> list:
        if self.cluster is not None:
            return [self.cluster.engine]
        return list(self.engines)

    def _counters_now(self) -> np.ndarray:
        total = np.zeros(8, dtype=np.int64)
        for eng in self._all_engines():
            total += np.asarray(eng.counters, dtype=np.int64)
        return total

    def _export(self):
        if self.cluster is not None:
            return self.cluster.export_counters()
        return [eng.export_counters() for eng in self.engines]

    def _import(self, image) -> None:
        if self.cluster is not None:
            self.cluster.import_counters(image)
            return
        for eng, img in zip(self.engines, image):
            eng.import_counters(img)

    def _reset(self) -> None:
        if self.cluster is not None:
            self.cluster.reset()
            return
        for eng in self.engines:
            eng.reset_counters()

    def _zeros_image(self):
        """A freshly-reset counter image (shape-only read of the body)."""
        if self.cluster is not None:
            return np.zeros_like(self._export())
        return [np.zeros_like(img) for img in self._export()]

    def _credit_active(self) -> None:
        """Retire the active tenant's cost-counter delta into its sink."""
        now = self._counters_now()
        if self.active is not None:
            self.active._retired += now - self._base
        self._base = now

    # ------------------------------------------------------------------
    def attach(self, plan, stash=None) -> None:
        """Join this resource (the tenant's counter state starts from
        ``stash`` -- or all zeros -- at its first :meth:`activate`)."""
        if plan in self.attached:
            raise ValueError("plan is already attached to this resource")
        self.attached.append(plan)
        if stash is not None:
            self._stash[id(plan)] = stash
        if len(self.attached) > 1:
            self.lease.pool.attach(self.lease)

    def detach(self, plan) -> bool:
        """Leave this resource; returns True when it emptied (lease
        released and the entry's resource record dropped)."""
        if plan not in self.attached:
            return False
        if self.active is plan:
            self._credit_active()
            self.active = None
        self.attached.remove(plan)
        self._stash.pop(id(plan), None)
        if not self.attached:
            self.lease.release()
            if self in self.entry.resources:
                self.entry.resources.remove(self)
            return True
        self.lease.pool.detach(self.lease)
        return False

    def activate(self, plan) -> None:
        """Make ``plan`` the tenant whose counter state is live."""
        if plan not in self.attached:
            raise ValueError("plan is not attached to this resource")
        if self.active is plan:
            return
        self._credit_active()
        if self.active is not None:
            self._stash[id(self.active)] = self._export()
        incoming = self._stash.pop(id(plan), None)
        if incoming is not None:
            self._import(incoming)
        else:
            self._reset()
        self.active = plan

    def image_of(self, plan):
        """``plan``'s current counter image, without changing state."""
        if self.active is plan:
            return self._export()
        stashed = self._stash.get(id(plan))
        if stashed is not None:
            return stashed
        return self._zeros_image()

    def delta_for(self, plan) -> np.ndarray:
        """Live cost-counter delta attributable to ``plan`` (zeros
        unless it is the active tenant)."""
        if self.active is plan:
            return self._counters_now() - self._base
        return np.zeros(8, dtype=np.int64)


class _Entry:
    """One content-addressed row image plus its live resources."""

    __slots__ = ("digest", "kind", "masks", "flat_masks",
                 "planted_nonzero", "width", "generation", "handles",
                 "resources")

    def __init__(self, digest: str, kind: str, masks: np.ndarray,
                 width: int, generation: int):
        self.digest = digest
        self.kind = kind
        masks = np.ascontiguousarray(masks, dtype=np.uint8).copy()
        masks.setflags(write=False)
        self.masks = masks
        self.width = int(width)
        flat = masks.reshape(-1, self.width)
        self.flat_masks = flat
        self.planted_nonzero = flat.any(axis=1)
        self.generation = generation
        self.handles: set = set()
        self.resources: List[SharedResource] = []

    @property
    def rows(self) -> int:
        return self.flat_masks.shape[0]


class RowImageHandle:
    """One plan's reference on a content-addressed row image.

    The handle is the plan's window onto the shared (read-only) mask
    arrays and the entry's live resources; releasing the last handle
    drops the image.  ``dedup_hit`` records whether this acquire found
    the image already planted.
    """

    __slots__ = ("store", "_entry", "dedup_hit", "_released")

    def __init__(self, store: "RowImageStore", entry: _Entry,
                 dedup_hit: bool):
        self.store = store
        self._entry = entry
        self.dedup_hit = dedup_hit
        self._released = False

    # ------------------------------------------------------------------
    @property
    def digest(self) -> str:
        return self._entry.digest

    @property
    def masks(self) -> np.ndarray:
        return self._entry.masks

    @property
    def flat_masks(self) -> np.ndarray:
        return self._entry.flat_masks

    @property
    def planted_nonzero(self) -> np.ndarray:
        return self._entry.planted_nonzero

    @property
    def rows(self) -> int:
        return self._entry.rows

    @property
    def generation(self) -> int:
        return self._entry.generation

    @property
    def refcount(self) -> int:
        return len(self._entry.handles)

    @property
    def shared(self) -> bool:
        return self.refcount > 1

    # ------------------------------------------------------------------
    def find_resource(self, role: str, token: tuple,
                      match) -> Optional[SharedResource]:
        """First live resource of this image with this role + config
        token that satisfies ``match(resource)`` (geometry predicate:
        the query path accepts any wide-enough body, a counter-image
        restore needs an exact shape)."""
        for res in self._entry.resources:
            if res.role == role and res.token == token and match(res):
                return res
        return None

    def new_resource(self, role: str, token: tuple, geometry: tuple,
                     n_digits: int, lease, cluster=None,
                     engines: Optional[list] = None) -> SharedResource:
        """Register a freshly built engine body under this image.

        Its engines adopt the image's generation as their compiled
        trace ``cache_epoch`` -- the cache-generation invariant that
        keeps copy-on-write row swaps from replaying stale traces.
        """
        res = SharedResource(role, token, geometry, n_digits,
                             self._entry, lease, cluster=cluster,
                             engines=engines)
        self._entry.resources.append(res)
        for eng in res._all_engines():
            eng.cache_epoch = self._entry.generation
        return res

    def entry_has_live_resources(self) -> bool:
        return bool(self._entry.resources)

    def release(self) -> None:
        if self._released:
            return
        self._released = True
        self.store._release(self)


class RowImageStore:
    """Process-local registry of content-addressed planted row images.

    One store per :class:`~repro.device.Device` by default (pass a
    shared store -- alongside a shared pool -- to dedup across
    devices).  Reliability campaigns build per-trial devices, so their
    per-device default stores keep seeded fault streams private, while
    a serving registry's single device dedups across every tenant.
    """

    def __init__(self):
        self._entries: Dict[str, _Entry] = {}
        self._lock = threading.RLock()
        self._generation = 0
        self._dedup_hits = 0
        self._cow_clones = 0

    # ------------------------------------------------------------------
    def acquire(self, kind: str, masks: np.ndarray, width: int,
                n_bits: int, cow: bool = False) -> RowImageHandle:
        """Reference the image planted for ``masks`` (planting it if
        this content address is new).  ``cow`` marks the acquire as a
        copy-on-write clone for the stats."""
        digest = row_digest(kind, n_bits, masks)
        with self._lock:
            entry = self._entries.get(digest)
            hit = entry is not None
            if entry is None:
                self._generation += 1
                entry = _Entry(digest, kind, masks, width,
                               self._generation)
                self._entries[digest] = entry
            else:
                self._dedup_hits += 1
            if cow:
                self._cow_clones += 1
            handle = RowImageHandle(self, entry, dedup_hit=hit)
            entry.handles.add(handle)
            return handle

    def _release(self, handle: RowImageHandle) -> None:
        with self._lock:
            entry = handle._entry
            entry.handles.discard(handle)
            if not entry.handles and not entry.resources:
                self._entries.pop(entry.digest, None)

    def __contains__(self, digest: str) -> bool:
        with self._lock:
            return digest in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def generation(self) -> int:
        return self._generation

    def stats(self) -> StoreStats:
        with self._lock:
            rows_resident = rows_total = rows_shared = rows_private = 0
            for entry in self._entries.values():
                refs = len(entry.handles)
                rows_resident += entry.rows
                rows_total += entry.rows * refs
                if refs >= 2:
                    rows_shared += entry.rows * refs
                elif refs == 1:
                    rows_private += entry.rows
            return StoreStats(images=len(self._entries),
                              rows_resident=rows_resident,
                              rows_total=rows_total,
                              rows_shared=rows_shared,
                              rows_private=rows_private,
                              dedup_hits=self._dedup_hits,
                              cow_clones=self._cow_clones,
                              generation=self._generation)
