"""Multi-tenant serving runtime over the session API.

The layer cake, bottom up:

* :class:`BankPool` (:mod:`repro.serve.pool`) owns the process-wide
  bank/subarray budget; every device is a view over a pool and every
  plan leases the banks its engines occupy.
* :class:`RowImageStore` (:mod:`repro.serve.rowstore`) content-addresses
  planted row images: tenants with identical operands share one
  read-only mask image *and* its live engine bodies (the pool is
  charged once), with per-tenant counter stashes keeping answers
  bit-exact and copy-on-write isolating mutations.
* :class:`ModelRegistry` (:mod:`repro.serve.registry`) is the plan
  cache: one weight-stationary plan per model name, LRU-evicted under
  bank pressure by *parking* (counter image exported via
  ``export_counters()``, engines dropped, leases returned) and restored
  transparently on the next query (masks re-planted,
  ``import_counters()``).
* :class:`Server` (:mod:`repro.serve.server`) is the front door:
  ``submit(model, x)`` futures, a scheduler that coalesces concurrent
  same-model queries into single ``run_many()`` waves, and a
  per-query :class:`ExecutionReport` (:mod:`repro.serve.telemetry`)
  whose latency/energy are modeled from the wave's *measured* op
  delta through :func:`repro.dram.timing.time_for_aaps_ns` and
  :class:`repro.dram.energy.EnergyModel`.

``repro.device`` imports :mod:`repro.serve.pool`, so this package
re-exports the higher layers lazily (PEP 562) to keep the import graph
acyclic.
"""

from repro.serve.pool import BankLease, BankPool, PoolExhausted
from repro.serve.rowstore import (RowImageHandle, RowImageStore,
                                  StoreStats, row_digest)

__all__ = ["BankPool", "BankLease", "PoolExhausted", "ModelRegistry",
           "RegistryStats", "Server", "Response", "ServerStats",
           "ExecutionReport", "UnsupportedPlanKindError", "PLAN_KINDS",
           "RowImageStore", "RowImageHandle", "StoreStats", "row_digest"]

_LAZY = {
    "ModelRegistry": "repro.serve.registry",
    "RegistryStats": "repro.serve.registry",
    "UnsupportedPlanKindError": "repro.serve.registry",
    "PLAN_KINDS": "repro.serve.registry",
    "Server": "repro.serve.server",
    "Response": "repro.serve.server",
    "ServerStats": "repro.serve.server",
    "ExecutionReport": "repro.serve.telemetry",
}


def __getattr__(name):
    if name in _LAZY:
        import importlib
        return getattr(importlib.import_module(_LAZY[name]), name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
