"""Multi-tenant serving front door with a coalescing batch scheduler.

:class:`Server` is the "heavy traffic" entry point the paper's
deployment story implies (many weight-stationary matrices resident in
one DRAM module, streams of queries from many clients):

* ``submit(model, x)`` enqueues one query and returns a
  :class:`concurrent.futures.Future`; a single scheduler thread drains
  the queue, **coalesces concurrent same-model queries into one
  ``run_many()`` wave** (bank-sharded, broadcast-shared), and resolves
  every future with a :class:`Response`.
* All models share one :class:`~repro.serve.pool.BankPool` budget
  through a :class:`~repro.serve.registry.ModelRegistry`: when a wave
  cannot lease banks, the LRU resident plan is parked (counter image
  exported) and the wave retries -- tenants that stop being queried
  automatically yield their banks.
* Every response carries an :class:`~repro.serve.telemetry.
  ExecutionReport` priced from the wave's *measured* op delta, so
  latency/energy reflect the command stream that actually executed.

Tenants need not be GEMVs: any plan kind the registry knows (the
analytics histogram / group-by plans included) shares the same pool,
cache, scheduler and telemetry -- the per-query
:class:`~repro.serve.telemetry.ExecutionReport` is priced from measured
op deltas, never from matrix shapes.

>>> import numpy as np
>>> with Server(n_bits=2, pool_banks=16) as srv:
...     _ = srv.register("eye", np.eye(3, dtype=np.uint8), kind="binary")
...     _ = srv.register("hist", kind="histogram", n_buckets=3)
...     resp = srv.query("eye", np.array([4, 0, 9]))
...     counts = srv.query("hist", np.array([0, 2, 2])).y
>>> resp.y
array([4, 0, 9])
>>> counts
array([1, 0, 2])
>>> resp.report.measured_ops > 0
True
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.device import Device, EngineConfig
from repro.dram.energy import DDR5_ENERGY, EnergyModel
from repro.dram.timing import DDR5_4400_TIMING, TimingParams
from repro.serve.pool import BankPool
from repro.serve.registry import ModelRegistry
from repro.serve.telemetry import (ExecutionReport, LatencyWindow,
                                   TelemetrySummary)

__all__ = ["Server", "Response", "ServerStats", "execute_wave"]

#: Queries one wave will coalesce at most (queue beyond this forms the
#: next wave; run_many() additionally chunks by its own slot budget).
_DEFAULT_MAX_BATCH = 64


@dataclass(frozen=True)
class Response:
    """One served query: the result and its execution telemetry."""

    y: np.ndarray
    report: ExecutionReport

    @property
    def model(self) -> str:
        return self.report.model


@dataclass(frozen=True)
class ServerStats:
    """Scheduler-level counters (snapshot).

    ``waves`` counts dispatched ``run_many()`` batches, ``queries``
    the individual requests they carried; ``queries > waves`` is the
    coalescing win.  ``rejected`` counts submissions that failed
    validation before enqueueing.
    """

    waves: int = 0
    queries: int = 0
    max_wave: int = 0
    rejected: int = 0


class _Pending:
    __slots__ = ("model", "x", "future")

    def __init__(self, model: str, x: np.ndarray):
        self.model = model
        self.x = x
        self.future: Future = Future()


def execute_wave(registry: ModelRegistry, model: str, xs: np.ndarray):
    """Run one coalesced same-model wave and account its cost deltas.

    Returns ``(ys, deltas)`` where ``deltas`` is exactly the keyword
    set :meth:`ExecutionReport.from_measured` prices a wave from
    (measured/broadcast/cache/fault deltas, wave banks, nominal ops,
    evictions).  This is the single wave-execution code path: the
    in-process :class:`Server` scheduler calls it directly, and the
    fleet's shard workers call it inside their own processes and
    marshal the deltas back for the front door to price -- so the two
    runtimes can never drift in what a wave's telemetry means.

    The stats baseline is captured on the *same* plan object the
    registry hands the wave (inside the callback), never a second name
    lookup -- an unregister/re-register racing the dispatch can
    otherwise split the two resolutions across different plans and
    zero out the telemetry.
    """
    ev_before = registry.stats.evictions
    executed: Dict[str, object] = {}

    def wave(plan):
        executed["plan"] = plan
        executed.setdefault("before", plan.stats)
        return plan.run_many(xs)

    ys = registry.run(model, wave)
    plan = executed["plan"]
    before = executed["before"]
    after = plan.stats
    deltas = dict(
        measured_ops=after.measured_ops - before.measured_ops,
        broadcasts=after.broadcasts - before.broadcasts,
        n_banks=plan.wave_banks,
        # Every plan kind prices its own nominal unit (GEMV: dense
        # multiply-adds; analytics: one op per record), so non-GEMV
        # telemetry never assumes matrix shapes.
        nominal_ops=plan.nominal_query_ops(xs),
        evictions=registry.stats.evictions - ev_before,
        trace_compiles=after.trace_compiles - before.trace_compiles,
        trace_replays=after.trace_replays - before.trace_replays,
        injected_faults=after.injected_faults - before.injected_faults,
        megatrace_compiles=(after.megatrace_compiles
                            - before.megatrace_compiles),
        megatrace_replays=(after.megatrace_replays
                           - before.megatrace_replays))
    return ys, deltas


class Server:
    """Shared-pool, plan-cached, batch-scheduled serving runtime.

    Parameters
    ----------
    config / overrides:
        The :class:`~repro.device.EngineConfig` every model's plan runs
        under (same knobs as :class:`~repro.device.Device`).
    pool_banks:
        Total bank budget shared by *all* models (``None`` =
        unaccounted).  A budget smaller than the registered models'
        combined footprint is the normal operating point: the registry
        parks cold plans (exported counter images) to make room for hot
        ones.
    max_resident:
        Optional cap on simultaneously resident plans (on top of the
        bank budget).
    max_batch:
        Most queries one wave coalesces.
    timing / energy:
        The DDR timing and energy models the per-query telemetry is
        priced with.
    """

    def __init__(self, config: Optional[EngineConfig] = None,
                 pool_banks: Optional[int] = None,
                 max_resident: Optional[int] = None,
                 max_batch: int = _DEFAULT_MAX_BATCH,
                 timing: TimingParams = DDR5_4400_TIMING,
                 energy: EnergyModel = DDR5_ENERGY,
                 **overrides):
        if max_batch < 1:
            raise ValueError("max_batch must be positive")
        self.pool = BankPool(pool_banks)
        self.device = Device(config, pool=self.pool, **overrides)
        self.registry = ModelRegistry(self.device,
                                      max_resident=max_resident)
        self.max_batch = max_batch
        self.timing = timing
        self.energy = energy
        self._cv = threading.Condition()
        self._queue: List[_Pending] = []
        self._closed = False
        self._waves = 0
        self._queries = 0
        self._max_wave = 0
        self._rejected = 0
        self._latency = LatencyWindow()
        self._thread = threading.Thread(target=self._loop, daemon=True,
                                        name="repro-serve-scheduler")
        self._thread.start()

    # ------------------------------------------------------------------
    # model management
    # ------------------------------------------------------------------
    def register(self, name: str, z: Optional[np.ndarray] = None,
                 kind: Optional[str] = None,
                 x_budget: Optional[int] = None, **plan_kwargs):
        """Register a model under ``name`` (lazy engines).

        GEMV kinds plant ``z``; analytics kinds (``"histogram"`` /
        ``"groupby"``) take their geometry through ``plan_kwargs``
        instead of a matrix, and unknown kinds raise
        :class:`~repro.serve.registry.UnsupportedPlanKindError` -- see
        :meth:`ModelRegistry.register`.  Analytics queries coalesce
        into ``run_many`` waves exactly like GEMV queries, so give
        such models a fixed ``query_len``: a wave stacks its queries
        into one array.
        """
        return self.registry.register(name, z, kind=kind,
                                      x_budget=x_budget, **plan_kwargs)

    def unregister(self, name: str) -> None:
        self.registry.unregister(name)

    @property
    def models(self) -> List[str]:
        return self.registry.names()

    # ------------------------------------------------------------------
    # query path
    # ------------------------------------------------------------------
    def submit(self, model: str, x: np.ndarray) -> Future:
        """Enqueue one query; the future resolves to a :class:`Response`.

        Validation errors (unknown model, wrong query shape, closed
        server) raise immediately at submission, never through the
        future -- a rejected request must not occupy the scheduler.
        """
        self._check_open()
        pending = self._validate(model, x)
        with self._cv:
            self._check_open()
            self._queue.append(pending)
            self._cv.notify()
        return pending.future

    def submit_many(self, model: str, xs: np.ndarray) -> List[Future]:
        """Enqueue a burst atomically so it coalesces into waves.

        All queries enter the queue under one lock hold, which is what
        a burst of concurrent clients looks like to the scheduler --
        the benchmark's coalesced side uses exactly this.  The leading
        axis is the query axis; what one query *is* depends on the
        model's plan kind (a GEMV burst is ``[Q, K]``, a group-by burst
        ``[Q, L, 2]``).
        """
        self._check_open()
        try:
            xs = np.asarray(xs)
            if xs.ndim < 2:
                raise ValueError("xs must batch queries along its "
                                 "leading axis")
            # One registry lookup (one lock hold, one LRU touch) for
            # the whole burst; per-row validation is plan-local.
            plan = self.registry.get(model)
            pendings = [_Pending(model, plan.validate_query(x))
                        for x in xs]
        except (KeyError, ValueError):
            with self._cv:
                self._rejected += 1
            raise
        with self._cv:
            self._check_open()
            self._queue.extend(pendings)
            self._cv.notify()
        return [p.future for p in pendings]

    def query(self, model: str, x: np.ndarray) -> Response:
        """Submit one query and block for its response."""
        return self.submit(model, x).result()

    def _validate(self, model: str, x: np.ndarray) -> _Pending:
        """Full shape *and domain* validation at submission time.

        Delegating to the plan's own ``validate_query`` keeps the two
        in lockstep: anything the wave would reject mid-flight (wrong
        length, signed input against a binary plan) is rejected here,
        so one bad query can never fail the coalesced wave its
        innocent neighbors ride in.
        """
        try:
            plan = self.registry.get(model)      # KeyError if unknown
            x = plan.validate_query(x)
        except (KeyError, ValueError):
            with self._cv:                       # count under the lock
                self._rejected += 1
            raise
        return _Pending(model, x)

    # ------------------------------------------------------------------
    # scheduler
    # ------------------------------------------------------------------
    def _loop(self) -> None:
        while True:
            with self._cv:
                while not self._queue and not self._closed:
                    self._cv.wait()
                if not self._queue and self._closed:
                    return
                drained, self._queue = self._queue, []
            groups: "OrderedDict[str, List[_Pending]]" = OrderedDict()
            for pending in drained:
                groups.setdefault(pending.model, []).append(pending)
            for model, pendings in groups.items():
                for lo in range(0, len(pendings), self.max_batch):
                    self._execute(model, pendings[lo:lo + self.max_batch])

    def _execute(self, model: str, pendings: List[_Pending]) -> None:
        """One coalesced wave: run_many + per-query telemetry.

        Everything fallible stays inside the try: a failure resolves
        the wave's futures with the exception instead of unwinding --
        and killing -- the scheduler thread.  Marking each future
        *running* up front also closes the cancel/set_result race: a
        future that reports cancelled here never resolves, one that
        does not can no longer be cancelled.
        """
        live = [p for p in pendings
                if p.future.set_running_or_notify_cancel()]
        if not live:
            return
        try:
            xs = np.stack([p.x for p in live])
            ys, deltas = execute_wave(self.registry, model, xs)
            report = ExecutionReport.from_measured(
                model=model, batch_size=len(live),
                timing=self.timing, energy=self.energy, **deltas)
        except BaseException as exc:          # noqa: BLE001 - to futures
            for pending in live:
                pending.future.set_exception(exc)
            return
        self._waves += 1
        self._queries += len(live)
        self._max_wave = max(self._max_wave, len(live))
        self._latency.observe(report.latency_ns, len(live))
        for pending, y in zip(live, ys):
            pending.future.set_result(Response(y=y, report=report))

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def stats(self) -> ServerStats:
        return ServerStats(waves=self._waves, queries=self._queries,
                           max_wave=self._max_wave,
                           rejected=self._rejected)

    def telemetry_summary(self) -> TelemetrySummary:
        """Scheduler counters plus p50/p99/mean latency percentiles.

        The latency summary folds every served query's modeled
        ``latency_ns`` (the wave makespan priced from measured ops)
        through :meth:`~repro.serve.telemetry.LatencySummary.from_ns`
        -- the same aggregation the multi-process fleet uses, so
        fleet-vs-server comparisons read one code path.
        """
        reg = self.registry.stats
        return TelemetrySummary(queries=self._queries, waves=self._waves,
                                max_wave=self._max_wave,
                                rejected=self._rejected,
                                latency=self._latency.summary(),
                                dedup_hits=reg.dedup_hits,
                                rows_shared=reg.rows_shared,
                                rows_private=reg.rows_private)

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("server is closed")

    def _reject_stranded(self) -> None:
        """Deterministically resolve anything still queued after close.

        ``submit`` re-checks ``_closed`` *under the condition lock*, so
        with the current locking nothing can be enqueued once the
        scheduler thread has exited -- but that invariant lives in two
        methods that evolve independently.  This sweep makes shutdown
        robust by construction: any pending future found in the queue
        after the scheduler is gone is rejected (or confirmed
        cancelled) instead of being stranded forever un-resolved,
        which is what a submitter racing ``close()`` would otherwise
        observe as a hang in ``future.result()``.
        """
        with self._cv:
            stranded, self._queue = self._queue, []
        for pending in stranded:
            if pending.future.set_running_or_notify_cancel():
                pending.future.set_exception(
                    RuntimeError("server is closed"))

    def close(self) -> None:
        """Drain queued work, stop the scheduler, release all plans.

        Idempotent.  Queries already queued complete (their futures
        resolve); submissions after close raise; a submission racing
        the close either completes or raises -- never hangs (the
        stranded-future sweep rejects anything left in the queue once
        the scheduler thread has exited).
        """
        with self._cv:
            if self._closed:
                return
            self._closed = True
            self._cv.notify_all()
        self._thread.join()
        self._reject_stranded()
        self.registry.close()
        self.device.close()

    def __enter__(self) -> "Server":
        self._check_open()
        return self

    def __exit__(self, *exc) -> None:
        self.close()
