"""Error correction substrate: GF(2^m), Hamming SEC-DED, BCH, TMR, and
the XOR-embedding CIM protection scheme with its Table-1 analysis."""

from repro.ecc.analysis import (correction_overhead, monte_carlo_protection,
                                protected_detect_rate, protected_error_rate,
                                row_detect_rate, table1, table1_row)
from repro.ecc.bch import BatchedBCH, BCHCode, BCHDecodeResult
from repro.ecc.gf2 import GF2m
from repro.ecc.hamming import HAMMING_72_64, DecodingResult, HammingCode
from repro.ecc.protection import (CIMProtection, ProtectionStats,
                                  RetryExhaustedError)
from repro.ecc.tmr import run_with_tmr, tmr_error_rate, tmr_ops, vote_rows

__all__ = [
    "correction_overhead", "monte_carlo_protection",
    "protected_detect_rate", "protected_error_rate",
    "row_detect_rate", "table1", "table1_row",
    "BatchedBCH", "BCHCode", "BCHDecodeResult",
    "GF2m",
    "HAMMING_72_64", "DecodingResult", "HammingCode",
    "CIMProtection", "ProtectionStats", "RetryExhaustedError",
    "run_with_tmr", "tmr_error_rate", "tmr_ops", "vote_rows",
]
