"""Galois field GF(2^m) arithmetic for BCH codes (built from scratch).

Log/antilog-table implementation over the standard primitive polynomials.
Elements are ints in ``[0, 2^m - 1]``; 0 is the additive identity.
"""

from __future__ import annotations

from typing import List

__all__ = ["GF2m", "PRIMITIVE_POLYS"]

#: Primitive polynomials (bitmask form, degree m term included).
PRIMITIVE_POLYS = {
    2: 0b111,          # x^2 + x + 1
    3: 0b1011,         # x^3 + x + 1
    4: 0b10011,        # x^4 + x + 1
    5: 0b100101,       # x^5 + x^2 + 1
    6: 0b1000011,      # x^6 + x + 1
    7: 0b10001001,     # x^7 + x^3 + 1
    8: 0b100011101,    # x^8 + x^4 + x^3 + x^2 + 1
    9: 0b1000010001,   # x^9 + x^4 + 1
    10: 0b10000001001, # x^10 + x^3 + 1
}


class GF2m:
    """The finite field GF(2^m) with exp/log tables."""

    def __init__(self, m: int):
        if m not in PRIMITIVE_POLYS:
            raise ValueError(f"unsupported field degree {m}")
        self.m = m
        self.size = 1 << m
        self.poly = PRIMITIVE_POLYS[m]
        self.exp: List[int] = [0] * (2 * self.size)
        self.log: List[int] = [0] * self.size
        x = 1
        for i in range(self.size - 1):
            self.exp[i] = x
            self.log[x] = i
            x <<= 1
            if x & self.size:
                x ^= self.poly
        # Duplicate for mod-free exponent addition.
        for i in range(self.size - 1, 2 * self.size):
            self.exp[i] = self.exp[i - (self.size - 1)]

    # ------------------------------------------------------------------
    def add(self, a: int, b: int) -> int:
        """Addition = XOR in characteristic 2."""
        return a ^ b

    def mul(self, a: int, b: int) -> int:
        if a == 0 or b == 0:
            return 0
        return self.exp[self.log[a] + self.log[b]]

    def div(self, a: int, b: int) -> int:
        if b == 0:
            raise ZeroDivisionError("division by zero in GF(2^m)")
        if a == 0:
            return 0
        return self.exp[self.log[a] - self.log[b] + self.size - 1]

    def inv(self, a: int) -> int:
        if a == 0:
            raise ZeroDivisionError("zero has no inverse")
        return self.exp[self.size - 1 - self.log[a]]

    def pow(self, a: int, e: int) -> int:
        if a == 0:
            return 0 if e else 1
        return self.exp[(self.log[a] * e) % (self.size - 1)]

    def alpha_pow(self, e: int) -> int:
        """α^e for the primitive element α."""
        return self.exp[e % (self.size - 1)]

    # ------------------------------------------------------------------
    # polynomials over GF(2^m), coefficient lists lowest-degree first
    # ------------------------------------------------------------------
    def poly_eval(self, coeffs: List[int], x: int) -> int:
        acc = 0
        for c in reversed(coeffs):
            acc = self.add(self.mul(acc, x), c)
        return acc

    def poly_mul(self, p: List[int], q: List[int]) -> List[int]:
        out = [0] * (len(p) + len(q) - 1)
        for i, a in enumerate(p):
            if a == 0:
                continue
            for j, b in enumerate(q):
                if b:
                    out[i + j] ^= self.mul(a, b)
        return out

    def minimal_polynomial(self, element: int) -> List[int]:
        """Minimal polynomial of ``element`` over GF(2) (binary coeffs)."""
        # Conjugacy class {e, e^2, e^4, ...}
        conj = []
        x = element
        while x not in conj:
            conj.append(x)
            x = self.mul(x, x)
        poly = [1]
        for root in conj:
            poly = self.poly_mul(poly, [root, 1])
        if any(c not in (0, 1) for c in poly):  # pragma: no cover
            raise ArithmeticError("minimal polynomial not binary")
        return poly
