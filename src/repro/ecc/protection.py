"""CIM fault protection via XOR embedding + row-wise ECC (paper Sec. 6).

The scheme: every masking ``AND`` inside a counter update is surrounded
by the ops completing an in-memory **XOR** (``IR1 = a OR b``, ``IR2 = a
AND b``, ``FR = IR1 AND NOT IR2``).  Because commodity ECC (Hamming /
BCH) is homomorphic over XOR, the ECC engine can *predict* FR's check
bits from the operands' stored check bits and syndrome-check the
computed FR -- any likely CIM fault flips FR and trips the check, which
triggers recomputation (Sec. 6.2's restart).

:class:`CIMProtection` is the engine-side implementation: it shadows
check bits for protected rows, validates FR checkpoints, validates the
final disjoint-OR via the same homomorphism, and counts retries (the
correction overhead of Fig. 18).
"""

from __future__ import annotations

from dataclasses import dataclass, field
import numpy as np

from repro.ecc.hamming import HAMMING_72_64, HammingCode

__all__ = ["CIMProtection", "ProtectionStats", "RetryExhaustedError"]


class RetryExhaustedError(RuntimeError):
    """A protected block kept failing its syndrome checks."""


@dataclass
class ProtectionStats:
    """Detection/retry accounting for overhead reporting.

    ``detections`` counts syndrome checks that tripped, ``retries``
    block re-executions; ``corrected`` counts *blocks* that failed at
    least one check and then re-executed to a clean validation, and
    ``exhausted`` blocks that burned every retry without validating
    (the reliability campaigns report these outcome-level numbers).
    """

    blocks: int = 0
    checks: int = 0
    detections: int = 0
    retries: int = 0
    corrected: int = 0
    exhausted: int = 0

    def merge(self, other: "ProtectionStats") -> "ProtectionStats":
        """Accumulate ``other``'s counters into this one (all fields,
        by introspection, so aggregators never trail new counters)."""
        from dataclasses import fields
        for f in fields(self):
            setattr(self, f.name,
                    getattr(self, f.name) + getattr(other, f.name))
        return self

    @property
    def retry_overhead(self) -> float:
        """Extra work fraction: retried blocks / useful blocks."""
        if self.blocks == 0:
            return 0.0
        return self.retries / self.blocks


@dataclass
class CIMProtection:
    """Row-wise ECC checker for protected CIM blocks.

    Parameters
    ----------
    code:
        Any XOR-homomorphic block code exposing ``parity_bits`` (batched)
        -- the (72, 64) Hamming by default, as on commodity DIMMs.
    word_bits:
        ECC word granularity across a row (64 for x72 DIMMs).
    """

    code: HammingCode = field(default_factory=lambda: HAMMING_72_64)
    word_bits: int = 64
    stats: ProtectionStats = field(default_factory=ProtectionStats)

    def _words(self, row: np.ndarray) -> np.ndarray:
        """Split a row into ECC words, zero-padding the tail."""
        row = np.asarray(row, dtype=np.uint8)
        n = row.size
        pad = (-n) % self.word_bits
        if pad:
            row = np.concatenate([row, np.zeros(pad, dtype=np.uint8)])
        return row.reshape(-1, self.word_bits)

    def checks_of(self, row: np.ndarray) -> np.ndarray:
        """Check bits of every ECC word of a row (ECC-chip generation)."""
        return self.code.parity_bits(self._words(row))

    # ------------------------------------------------------------------
    def verify_xor(self, fr_row: np.ndarray, expected_checks: np.ndarray
                   ) -> np.ndarray:
        """Syndrome-check an FR row against homomorphically predicted
        check bits; returns the per-word detection flags."""
        self.stats.checks += 1
        actual = self.checks_of(fr_row)
        detected = (actual != expected_checks).any(axis=1)
        if detected.any():
            self.stats.detections += 1
        return detected

    def predict_xor_checks(self, *operand_rows: np.ndarray) -> np.ndarray:
        """Check bits of ``a XOR b XOR ...`` from the operands' rows.

        In hardware the operands' check bits are already stored on the
        ECC chip; here we regenerate them from the trusted row images.
        """
        acc = None
        for row in operand_rows:
            checks = self.checks_of(row)
            acc = checks if acc is None else (acc ^ checks)
        return acc

    def complement_checks(self, row: np.ndarray) -> np.ndarray:
        """Check bits of ``NOT row``, via ``checks(row ^ all-ones)``.

        Homomorphism keeps even complements linear: ``checks(NOT row) ==
        checks(row) XOR checks(ones)``, so the ECC chip never needs to
        read the complemented data.
        """
        row = np.asarray(row, dtype=np.uint8)
        ones = np.ones(row.size, dtype=np.uint8)
        return self.checks_of(row) ^ self.checks_of(ones)

    # ------------------------------------------------------------------
    def run_protected(self, execute_block, validate, max_retries: int = 16):
        """Run ``execute_block`` until ``validate()`` reports no faults.

        ``execute_block()`` (re)issues the μProgram ops; ``validate()``
        returns True when every syndrome check passed.  Raises
        :class:`RetryExhaustedError` after ``max_retries`` attempts --
        at realistic fault rates this is astronomically unlikely and in
        tests indicates a modeling bug rather than bad luck.
        """
        self.stats.blocks += 1
        for attempt in range(max_retries):
            execute_block()
            if validate():
                if attempt:
                    self.stats.corrected += 1
                return attempt
            self.stats.retries += 1
        self.stats.exhausted += 1
        raise RetryExhaustedError(
            f"protected block failed {max_retries} consecutive checks")
