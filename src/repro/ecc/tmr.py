"""Triple modular redundancy baseline (Secs. 2.3, 3, 6.3).

TMR triplicates the computation and majority-votes the replicas.  In CIM
the vote itself is *one TRA* over the three replica rows -- and because
the replicas agree wherever no fault struck, the vote activation is
unanimous on almost every column, so (margin-aware, Sec. 6.1) it adds
almost no new faults.  TMR's weakness is coincident replica faults:
``P(error) ≈ 3 f²``, far worse than the protection scheme's
``1.5 f^(r+1)``, which is Fig. 4/17's result.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.dram.ambit import AmbitSubarray

__all__ = ["tmr_error_rate", "tmr_ops", "vote_rows", "run_with_tmr"]


def tmr_error_rate(fault_rate: float) -> float:
    """Per-bit silent error probability of TMR under per-op rate ``f``.

    Two or three replicas must fault on the same bit:
    ``3 f² (1 - f) + f³``.
    """
    f = float(fault_rate)
    return 3 * f * f * (1 - f) + f ** 3


def tmr_ops(base_ops: int) -> int:
    """Operation count: three replicas plus the voting activation.

    The paper (Sec. 3) describes TMR as "circa 4x overhead in operation
    count (three repeated operations and the voting operation)".
    """
    return 3 * base_ops + 1


def vote_rows(subarray: AmbitSubarray, replica_rows: Sequence[int],
              out_row: int) -> None:
    """Majority-vote three replica rows into ``out_row`` with one TRA.

    Stages the replicas into ``{T0, T1, T2}`` and activates B12; the
    staging copies are ordinary AAPs.
    """
    if len(replica_rows) != 3:
        raise ValueError("TMR votes exactly three replicas")
    subarray.aap(replica_rows[0], "B0")
    subarray.aap(replica_rows[1], "B1")
    subarray.aap(replica_rows[2], "B2")
    subarray.aap("B12", out_row)


def run_with_tmr(run_replica: Callable[[int], np.ndarray]) -> np.ndarray:
    """Functional TMR: run a computation three times and vote bitwise.

    ``run_replica(i)`` performs replica ``i`` and returns its result row;
    used by the application-level fault studies where the computation
    does not live in a single subarray.
    """
    replicas = np.stack([np.asarray(run_replica(i), dtype=np.uint8)
                         for i in range(3)])
    return (replicas.sum(axis=0) >= 2).astype(np.uint8)
