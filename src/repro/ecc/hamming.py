"""Extended Hamming SEC-DED codes, e.g. the DRAM-standard (72, 64).

Single-error-correcting, double-error-detecting codes built from the
classic power-of-two parity positions plus an overall parity bit.  The
code is linear over GF(2), hence **homomorphic over XOR** -- the property
Count2Multiply's protection scheme exploits (Sec. 6.1): the check bits of
``a XOR b`` are the XOR of the check bits of ``a`` and ``b``.

All operations are vectorized over a batch of words.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = ["HammingCode", "DecodingResult", "HAMMING_72_64"]


@dataclass
class DecodingResult:
    """Outcome of decoding a batch of codewords."""

    data: np.ndarray            # corrected data bits [batch, k]
    detected: np.ndarray        # any error detected per word [batch]
    corrected: np.ndarray       # single error corrected per word [batch]
    uncorrectable: np.ndarray   # double error detected per word [batch]


class HammingCode:
    """Extended Hamming code for ``k`` data bits.

    The layout uses 1-based positions ``1..n-1`` with parity bits at
    powers of two, plus an appended overall-parity bit.  For ``k = 64``
    this yields the (72, 64) SEC-DED code used on DRAM DIMMs (Tab. 2's
    ECC chip).
    """

    def __init__(self, k: int = 64):
        if k < 1:
            raise ValueError("k must be positive")
        self.k = k
        r = 1
        while (1 << r) < k + r + 1:
            r += 1
        self.r = r                      # Hamming parity bits
        self.n = k + r + 1              # + overall parity
        positions = []
        for pos in range(1, k + r + 1):
            if pos & (pos - 1):         # not a power of two -> data
                positions.append(pos)
        self.data_positions = np.array(positions)
        self.parity_positions = np.array([1 << i for i in range(r)])
        # Parity-check masks: parity i covers positions with bit i set.
        self._cover = [
            (self.data_positions & (1 << i)) != 0 for i in range(r)]

    # ------------------------------------------------------------------
    def _as_batch(self, bits: np.ndarray, width: int) -> np.ndarray:
        bits = np.asarray(bits, dtype=np.uint8)
        if bits.ndim == 1:
            bits = bits[None, :]
        if bits.shape[1] != width:
            raise ValueError(f"expected width {width}, got {bits.shape[1]}")
        return bits

    def parity_bits(self, data: np.ndarray) -> np.ndarray:
        """Check bits (r Hamming + 1 overall) for a batch of data words.

        Linear in the data, so ``parity(a ^ b) == parity(a) ^ parity(b)``.
        """
        data = self._as_batch(data, self.k)
        checks = np.stack(
            [data[:, mask].sum(axis=1) % 2 for mask in self._cover],
            axis=1).astype(np.uint8)
        overall = (data.sum(axis=1) + checks.sum(axis=1)) % 2
        return np.concatenate([checks, overall[:, None].astype(np.uint8)],
                              axis=1)

    def encode(self, data: np.ndarray) -> np.ndarray:
        """Systematic codewords ``[data | checks]`` for a batch."""
        data = self._as_batch(data, self.k)
        return np.concatenate([data, self.parity_bits(data)], axis=1)

    # ------------------------------------------------------------------
    def syndrome(self, codeword: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """(Hamming syndrome value, overall parity) per word."""
        cw = self._as_batch(codeword, self.n)
        data, checks = cw[:, :self.k], cw[:, self.k:]
        syn = np.zeros(cw.shape[0], dtype=np.int64)
        for i, mask in enumerate(self._cover):
            bit = (data[:, mask].sum(axis=1) + checks[:, i]) % 2
            syn += bit.astype(np.int64) << i
        overall = cw.sum(axis=1) % 2
        return syn, overall.astype(np.uint8)

    def decode(self, codeword: np.ndarray) -> DecodingResult:
        """Correct single errors, flag double errors."""
        cw = self._as_batch(codeword, self.n).copy()
        syn, overall = self.syndrome(cw)
        detected = (syn != 0) | (overall != 0)
        # Single error: overall parity trips (odd number of flips).
        single = detected & (overall == 1)
        double = detected & (overall == 0)
        for w in np.flatnonzero(single):
            s = syn[w]
            if s == 0:
                # The overall parity bit itself flipped; data intact.
                cw[w, self.n - 1] ^= 1
                continue
            if s in self.parity_positions:
                idx = int(np.log2(s))
                cw[w, self.k + idx] ^= 1
            else:
                hits = np.flatnonzero(self.data_positions == s)
                if hits.size:
                    cw[w, hits[0]] ^= 1
                else:
                    # Syndrome points outside the code: uncorrectable.
                    double[w] = True
                    single[w] = False
        return DecodingResult(data=cw[:, :self.k], detected=detected,
                              corrected=single, uncorrectable=double)

    def check(self, data: np.ndarray, checks: np.ndarray) -> np.ndarray:
        """Fast detect-only path: True per word when the checks mismatch.

        This is the CIM validation primitive: the engine predicts the
        check bits of an FR row via XOR homomorphism and compares with
        the check bits recomputed from the (possibly faulty) FR data.
        """
        data = self._as_batch(data, self.k)
        checks = self._as_batch(checks, self.r + 1)
        return (self.parity_bits(data) != checks).any(axis=1)


#: The DRAM-standard SEC-DED code (one extra x4/x8 device per rank).
HAMMING_72_64 = HammingCode(64)
