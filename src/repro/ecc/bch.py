"""Binary BCH codes with Berlekamp-Massey decoding (paper Sec. 6 intro).

Count2Multiply's protection integrates with "traditional row-wise error
correction codes, such as Hamming and BCH".  This is a from-scratch
binary BCH implementation: generator construction from minimal
polynomials, systematic encoding, syndrome computation, Berlekamp-Massey
error-locator synthesis and Chien search.  Shortening supports protecting
64-bit CIM words with, e.g., BCH(127, 106, t=3).

Like every binary linear code, BCH is XOR-homomorphic, so it can replace
Hamming in the CIM protection scheme when higher fault rates demand
multi-error correction (Sec. 6.3's "two error detection and beyond").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.ecc.gf2 import GF2m

__all__ = ["BCHCode", "BCHDecodeResult"]


@dataclass
class BCHDecodeResult:
    """Outcome of decoding one shortened codeword."""

    data: np.ndarray
    detected: bool
    corrected: bool
    failure: bool            # more errors than the code can handle


class BCHCode:
    """Binary BCH code over GF(2^m) correcting ``t`` errors.

    Parameters
    ----------
    m:
        Field degree; block length is ``n = 2^m - 1``.
    t:
        Designed error-correction capability.
    data_bits:
        Shortened payload size (defaults to the full dimension ``k``).
    """

    def __init__(self, m: int, t: int, data_bits: int = None):
        self.field = GF2m(m)
        self.n = (1 << m) - 1
        self.t = int(t)
        if self.t < 1:
            raise ValueError("t must be >= 1")

        # Generator = LCM of minimal polynomials of alpha^1 .. alpha^2t.
        seen_polys = set()
        gen = [1]
        for i in range(1, 2 * self.t + 1):
            mp = tuple(self.field.minimal_polynomial(self.field.alpha_pow(i)))
            if mp in seen_polys:
                continue
            seen_polys.add(mp)
            gen = self._poly_mul_gf2(gen, list(mp))
        self.generator = gen
        self.n_parity = len(gen) - 1
        self.k = self.n - self.n_parity
        if self.k <= 0:
            raise ValueError("code has no payload; reduce t or increase m")
        self.data_bits = self.k if data_bits is None else int(data_bits)
        if not 0 < self.data_bits <= self.k:
            raise ValueError(f"data_bits must be in (0, {self.k}]")

    # ------------------------------------------------------------------
    @staticmethod
    def _poly_mul_gf2(p: List[int], q: List[int]) -> List[int]:
        out = [0] * (len(p) + len(q) - 1)
        for i, a in enumerate(p):
            if a:
                for j, b in enumerate(q):
                    out[i + j] ^= a & b
        return out

    def _poly_mod_gf2(self, dividend: List[int]) -> List[int]:
        """Remainder of division by the generator (binary polynomials)."""
        rem = list(dividend)
        g = self.generator
        for i in range(len(rem) - 1, len(g) - 2, -1):
            if rem[i]:
                shift = i - (len(g) - 1)
                for j, c in enumerate(g):
                    rem[shift + j] ^= c
        return rem[:len(g) - 1]

    # ------------------------------------------------------------------
    def parity_bits(self, data) -> np.ndarray:
        """Systematic parity bits for a (shortened) data word.

        Linear over GF(2): ``parity(a ^ b) == parity(a) ^ parity(b)``.
        """
        data = np.asarray(data, dtype=np.uint8)
        if data.shape != (self.data_bits,):
            raise ValueError(f"expected {self.data_bits} data bits")
        # Message polynomial x^(n-k) * d(x), shortened leading zeros.
        dividend = [0] * self.n_parity + data.tolist()
        return np.array(self._poly_mod_gf2(dividend), dtype=np.uint8)

    def encode(self, data) -> np.ndarray:
        """Shortened systematic codeword ``[parity | data]``."""
        data = np.asarray(data, dtype=np.uint8)
        return np.concatenate([self.parity_bits(data), data])

    # ------------------------------------------------------------------
    def _syndromes(self, codeword: np.ndarray) -> List[int]:
        f = self.field
        syn = []
        for i in range(1, 2 * self.t + 1):
            s = 0
            for pos in np.flatnonzero(codeword):
                s ^= f.alpha_pow(i * int(pos))
            syn.append(s)
        return syn

    def _berlekamp_massey(self, syn: List[int]) -> List[int]:
        """Error-locator polynomial sigma(x), lowest degree first."""
        f = self.field
        sigma = [1]
        b = [1]
        L, shift = 0, 1
        delta_prev = 1
        for r, s in enumerate(syn):
            delta = s
            for j in range(1, L + 1):
                if j < len(sigma):
                    delta ^= f.mul(sigma[j], syn[r - j])
            if delta == 0:
                shift += 1
                continue
            coeff = f.div(delta, delta_prev)
            candidate = sigma[:]
            shifted = [0] * shift + [f.mul(coeff, c) for c in b]
            width = max(len(candidate), len(shifted))
            candidate += [0] * (width - len(candidate))
            shifted += [0] * (width - len(shifted))
            new_sigma = [a ^ c for a, c in zip(candidate, shifted)]
            if 2 * L <= r:
                b = sigma
                delta_prev = delta
                L = r + 1 - L
                shift = 1
            else:
                shift += 1
            sigma = new_sigma
        return sigma

    def _chien_search(self, sigma: List[int]) -> List[int]:
        """Error positions from the locator polynomial roots."""
        f = self.field
        positions = []
        for pos in range(self.n):
            # X_j = alpha^pos is an error locator iff sigma(X_j^-1) == 0.
            x_inv = f.alpha_pow((-pos) % (self.n))
            if f.poly_eval(sigma, x_inv) == 0:
                positions.append(pos)
        return positions

    def decode(self, codeword) -> BCHDecodeResult:
        """Correct up to ``t`` bit errors in a (shortened) codeword."""
        cw = np.asarray(codeword, dtype=np.uint8).copy()
        expect = self.n_parity + self.data_bits
        if cw.shape != (expect,):
            raise ValueError(f"expected {expect} codeword bits")
        syn = self._syndromes(cw)
        if not any(syn):
            return BCHDecodeResult(data=cw[self.n_parity:], detected=False,
                                   corrected=False, failure=False)
        sigma = self._berlekamp_massey(syn)
        n_errors = len(sigma) - 1
        positions = [p for p in self._chien_search(sigma) if p < expect]
        if n_errors > self.t or len(positions) != n_errors:
            return BCHDecodeResult(data=cw[self.n_parity:], detected=True,
                                   corrected=False, failure=True)
        for p in positions:
            cw[p] ^= 1
        if any(self._syndromes(cw)):  # residual errors -> miscorrection
            return BCHDecodeResult(data=cw[self.n_parity:], detected=True,
                                   corrected=False, failure=True)
        return BCHDecodeResult(data=cw[self.n_parity:], detected=True,
                               corrected=True, failure=False)

    def check(self, data, parity) -> bool:
        """Detect-only: True when (data, parity) is not a valid codeword."""
        data = np.asarray(data, dtype=np.uint8)
        parity = np.asarray(parity, dtype=np.uint8)
        cw = np.concatenate([parity, data])
        return bool(any(self._syndromes(cw)))


class BatchedBCH:
    """Adapter exposing the batched ``parity_bits`` interface that
    :class:`repro.ecc.protection.CIMProtection` expects, so BCH can stand
    in for Hamming on the CIM rows (Sec. 6.3's stronger codes).

    Parity generation stays XOR-homomorphic because the underlying code
    is linear; batching is a convenience loop (a real memory controller
    has one encoder per ECC word lane).
    """

    def __init__(self, code: BCHCode):
        self.code = code
        self.k = code.data_bits
        self.r = code.n_parity

    def parity_bits(self, data: np.ndarray) -> np.ndarray:
        data = np.asarray(data, dtype=np.uint8)
        if data.ndim == 1:
            data = data[None, :]
        return np.stack([self.code.parity_bits(word) for word in data])
