"""Analytical + Monte-Carlo reliability models for Table 1 (Sec. 6.3).

Closed forms (derivation in DESIGN.md Sec. 7):

* **Undetectable error rate.**  A silent error needs a fault in a
  masking ``IR2`` *and* a compensating fault in every one of the ``r``
  FR recomputations.  A masking MAJ is contested (CIM-faultable) with
  probability 3/4 under uniform operands, FR is always contested, and a
  masked update protects two ANDs, giving ``2 · (3/4) f · f^r =
  1.5 f^(r+1)`` -- exactly the coefficient of every Table 1 cell.  The
  rate is floored at the DRAM read-fault rate (1e-20), which bounds the
  "unlikely" data-dependent fault modes; the italicized Table 1 cells
  sit on this floor.

* **Detect rate.**  Any fault in one protected AND's exposed ops trips a
  syndrome: ``IR1`` and ``IR2`` are each contested w.p. 3/4 and each of
  the ``r`` FR computations w.p. 1, so the per-bit detect rate is
  ``1 - (1 - f)^(r + 1.5)``.

The Monte-Carlo model simulates the same gate dance with margin-aware
faults and is used in the tests to cross-validate the closed forms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.core.opcount import protected_op_formula
from repro.dram.faults import DRAM_READ_FAULT_RATE
from repro.util import RngLike, as_rng, check_probability

__all__ = ["protected_error_rate", "protected_detect_rate",
           "table1_row", "table1", "monte_carlo_protection",
           "row_detect_rate", "correction_overhead"]

#: Fault rates of the published Table 1 columns.
TABLE1_FAULT_RATES = (1e-1, 1e-2, 1e-4)
#: FR-check counts of the published Table 1 rows.
TABLE1_FR_CHECKS = (2, 4, 6)


def protected_error_rate(fault_rate: float, fr_checks: int) -> float:
    """Per-bit undetectable error rate: ``1.5 f^(r+1)``, floored."""
    f = check_probability(fault_rate, "fault_rate")
    r = int(fr_checks)
    if r < 1:
        raise ValueError("fr_checks must be >= 1")
    return max(1.5 * f ** (r + 1), DRAM_READ_FAULT_RATE)


def protected_detect_rate(fault_rate: float, fr_checks: int) -> float:
    """Per-bit detectable fault rate: ``1 - (1-f)^(r + 1.5)``."""
    f = check_probability(fault_rate, "fault_rate")
    r = int(fr_checks)
    return 1.0 - (1.0 - f) ** (r + 1.5)


def row_detect_rate(fault_rate: float, fr_checks: int,
                    row_bits: int = 512) -> float:
    """Probability a protected row-level block needs recomputation.

    Sec. 7.3.2: at f = 1e-4 with one FR repeat the per-bit detect rate
    3.5e-4 becomes ~0.16 per 512-bit row.
    """
    p_bit = protected_detect_rate(fault_rate, fr_checks)
    return 1.0 - (1.0 - p_bit) ** row_bits


def correction_overhead(fault_rate: float, fr_checks: int,
                        row_bits: int = 512) -> float:
    """Expected recomputation overhead: geometric retry series ``d/(1-d)``.

    Reproduces the 19.6 % correction overhead quoted in Sec. 7.3.2.
    """
    d = row_detect_rate(fault_rate, fr_checks, row_bits)
    if d >= 1.0:
        raise ValueError("detect rate saturates; block never completes")
    return d / (1.0 - d)


@dataclass
class Table1Row:
    """One row group of Table 1 for a given number of FR checks."""

    fr_checks: int
    error_rates: Dict[float, float]
    detect_rates: Dict[float, float]
    ambit_ops_formula: str
    ambit_ops_n5: int


def table1_row(fr_checks: int) -> Table1Row:
    """Compute one column group of Table 1."""
    r = int(fr_checks)
    coeff_n = 5 * r + 3
    coeff_c = 5 * r + 6
    return Table1Row(
        fr_checks=r,
        error_rates={f: protected_error_rate(f, r)
                     for f in TABLE1_FAULT_RATES},
        detect_rates={f: protected_detect_rate(f, r)
                      for f in TABLE1_FAULT_RATES},
        ambit_ops_formula=f"{coeff_n}n + {coeff_c}",
        ambit_ops_n5=protected_op_formula(5, r),
    )


def table1() -> List[Table1Row]:
    """The full reproduced Table 1."""
    return [table1_row(r) for r in TABLE1_FR_CHECKS]


def monte_carlo_protection(fault_rate: float, fr_checks: int,
                           trials: int = 200_000,
                           seed: RngLike = 0) -> Dict[str, float]:
    """Gate-level Monte Carlo of one protected masked bit update.

    Simulates the two masking ANDs of a bit update with margin-aware
    faults: ``IR1/IR2`` fault only when their majority is contested, each
    FR recomputation faults independently, and a silent error requires
    the faulty IR2 to survive every FR comparison.  Returns empirical
    ``error_rate`` and ``detect_rate`` per bit update.
    """
    f = check_probability(fault_rate, "fault_rate")
    r = int(fr_checks)
    rng = as_rng(seed)

    # Uniform operand bits for the two protected ANDs of one update.
    a = rng.integers(0, 2, (trials, 2)).astype(np.uint8)
    b = rng.integers(0, 2, (trials, 2)).astype(np.uint8)
    ir1_true = a | b
    ir2_true = a & b
    xor_true = a ^ b

    def faults(contested: np.ndarray) -> np.ndarray:
        roll = rng.random(contested.shape) < f
        return roll & contested

    # Contested = not unanimous (operand triple with the constant).
    ir1_contested = ~((a == 1) & (b == 1))        # MAJ(1, a, b)
    ir2_contested = ~((a == 0) & (b == 0))        # MAJ(0, a, b)
    ir1 = ir1_true ^ faults(ir1_contested)
    ir2 = ir2_true ^ faults(ir2_contested)

    detected = np.zeros(trials, dtype=bool)
    for _ in range(r):
        # FR = MAJ(0, IR1, NOT IR2) is contested unless IR1==0, IR2==1,
        # which cannot happen fault-free; model it as always contested.
        fr = (ir1 & (1 - ir2)) ^ faults(np.ones_like(ir1, dtype=bool))
        detected |= (fr != xor_true).any(axis=1)

    wrong = (ir2 != ir2_true).any(axis=1)
    silent = wrong & ~detected
    return {
        "error_rate": float(silent.mean()),
        "detect_rate": float(detected.mean()),
    }
