"""Multi-bank batched dispatch of masked increments (paper Secs. 2.1, 5.2).

The broadcast command stream of a k-ary increment is *mask-oblivious*:
the IARM scheduler bounds every lane as if each increment could land on
it, so the exact same event list is sound for any mask contents.
:class:`BankCluster` exploits that to batch GEMV work across bank
shards: ``n_banks`` replicas of the counter lanes live side by side in
one wide subarray, each bank's slice of the single mask row holds a
*different* operand mask, and one broadcast μProgram advances all banks
in a single pass of packed word-parallel ops.

Masked updates that share the same increment value are grouped into
waves of ``n_banks`` masks: one ``accumulate(value)`` retires a whole
wave, so a 64-row GEMV with repeated input values collapses into a few
dozen broadcasts.  Each bank accumulates a partial sum; the host folds
the bank axis at read-out (the paper's subarray-level parallelism,
Sec. 2.1, with the command stream shared rank-wide as in Sec. 5.1).

>>> import numpy as np
>>> from repro.engine import BankCluster
>>> cluster = BankCluster(n_bits=2, n_digits=4, lanes_per_bank=4,
...                       n_banks=2)
>>> cluster.dispatch([(3, [1, 0, 1, 0]),      # wave 1, bank 0
...                   (3, [1, 1, 0, 0]),      # wave 1, bank 1
...                   (5, [0, 0, 1, 1])])     # wave 2, bank 0
>>> cluster.read_reduced()
array([6, 3, 8, 5])
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.core.iarm import BaseScheduler
from repro.dram.faults import FAULT_FREE, FaultModel
from repro.dram.wordline import pack_rows
from repro.engine.machine import CountingEngine

__all__ = ["BankCluster"]


class BankCluster:
    """Counter lanes sharded over ``n_banks`` broadcast-lockstep banks.

    Parameters
    ----------
    n_bits, n_digits:
        Digit geometry of every counter (radix ``2 * n_bits``).
    lanes_per_bank:
        Output lanes replicated into each bank shard.
    n_banks:
        Bank shards executing the broadcast stream in lockstep; also the
        wave width of :meth:`dispatch`.
    fault_model, fr_checks, scheduler, backend:
        Forwarded to the underlying :class:`~repro.engine.machine.
        CountingEngine`; the backend defaults to the word-parallel fast
        subarray (pass ``backend="bit"`` for the bit-accurate reference).
    """

    def __init__(self, n_bits: int, n_digits: int, lanes_per_bank: int,
                 n_banks: int = 8,
                 fault_model: FaultModel = FAULT_FREE,
                 fr_checks: int = 0,
                 scheduler: Optional[BaseScheduler] = None,
                 backend: str = "word"):
        if n_banks < 1:
            raise ValueError("n_banks must be positive")
        if lanes_per_bank < 0:
            raise ValueError("lanes_per_bank must be non-negative")
        self.n_banks = int(n_banks)
        self.lanes_per_bank = int(lanes_per_bank)
        self.n_lanes = self.n_banks * self.lanes_per_bank
        self.engine = CountingEngine(n_bits, n_digits, self.n_lanes,
                                     fault_model=fault_model,
                                     fr_checks=fr_checks,
                                     scheduler=scheduler,
                                     backend=backend)
        self.engine.reset_counters()
        self.broadcasts = 0      # accumulate() calls actually issued

    # ------------------------------------------------------------------
    def dispatch(self, updates: Iterable[Tuple[int, Sequence[int]]]) -> None:
        """Execute a batch of ``(value, mask)`` masked accumulations.

        Updates are grouped by value (first-occurrence order, so batches
        replay deterministically) and dealt across banks in waves of
        ``n_banks``; every wave costs a single broadcast accumulate.
        All-zero masks and zero values are skipped.

        Wave assembly is fully vectorized: one NumPy group-by over the
        update values, one pad/reshape scattering every mask into its
        ``(wave, bank)`` slot, and one :func:`~repro.dram.wordline.
        pack_rows` staging the whole wave block in packed form -- the
        per-wave work left in Python is just the broadcast itself.
        """
        pairs = [(int(v), m) for v, m in updates if int(v) != 0]
        if not pairs:
            return
        values = np.array([v for v, _ in pairs], dtype=np.int64)
        try:
            masks = np.asarray([m for _, m in pairs], dtype=np.uint8)
        except ValueError:
            raise ValueError(
                "mask width must equal lanes_per_bank") from None
        if masks.ndim != 2 or masks.shape[1] != self.lanes_per_bank:
            raise ValueError("mask width must equal lanes_per_bank")
        keep = masks.any(axis=1)
        values, masks = values[keep], masks[keep]
        if values.size == 0:
            return
        # Group by value, ranked by first occurrence so the broadcast
        # order is exactly the insertion-ordered dict the scalar loop
        # used to build (deterministic replay).
        uniq, first, inverse = np.unique(values, return_index=True,
                                         return_inverse=True)
        rank_of_uniq = np.empty(uniq.size, dtype=np.int64)
        rank_of_uniq[np.argsort(first)] = np.arange(uniq.size)
        rank = rank_of_uniq[inverse]
        order = np.argsort(rank, kind="stable")
        counts = np.bincount(rank, minlength=uniq.size)
        # Deal position p of a group into bank p % n_banks of its wave
        # p // n_banks; groups occupy consecutive wave ranges.
        waves_per_group = -(-counts // self.n_banks)
        wave_base = np.concatenate(([0], np.cumsum(waves_per_group)[:-1]))
        group_start = np.concatenate(([0], np.cumsum(counts)[:-1]))
        pos = np.arange(values.size) - np.repeat(group_start, counts)
        wave_id = wave_base[rank[order]] + pos // self.n_banks
        n_waves = int(waves_per_group.sum())
        wide = np.zeros((n_waves, self.n_banks, self.lanes_per_bank),
                        dtype=np.uint8)
        wide[wave_id, pos % self.n_banks] = masks[order]
        packed = pack_rows(wide.reshape(n_waves, self.n_lanes))
        magnitudes = np.repeat(uniq[np.argsort(first)], waves_per_group)
        # One stitched pass over the whole wave sequence (megatrace on
        # the word path; the per-wave load/accumulate loop otherwise).
        self.engine.run_waves(magnitudes, packed)
        self.broadcasts += n_waves

    # ------------------------------------------------------------------
    def read_bank_values(self, strict: bool = True) -> np.ndarray:
        """Flush and read every bank's partial sums, ``[n_banks, lanes]``."""
        return self.engine.read_values(strict=strict).reshape(
            self.n_banks, self.lanes_per_bank)

    def read_reduced(self, strict: bool = True) -> np.ndarray:
        """Fold the bank axis: the host-side reduction of the partials."""
        return self.read_bank_values(strict=strict).sum(axis=0)

    def reset(self) -> None:
        """Zero all counters; loaded mask rows stay resident.

        The between-queries reset of the session layer (and of GEMM
        output-row reuse): counter and O_next rows are cleared and the
        scheduler restarts, but planted masks are untouched -- see
        :meth:`~repro.engine.machine.CountingEngine.reset_counters`.
        """
        self.engine.reset_counters()

    # ------------------------------------------------------------------
    # counter-row relocation (plan eviction / GEMM row reuse)
    # ------------------------------------------------------------------
    def export_counters(self) -> np.ndarray:
        """Copy the cluster's counter rows out (all banks, one image).

        The bank shards live side by side in one wide subarray, so the
        whole cluster parks as a single row image -- the serving layer
        evicts a resident plan by exporting this image and dropping the
        cluster, and restores it with :meth:`import_counters`.
        """
        return self.engine.export_counters()

    def import_counters(self, image: np.ndarray) -> None:
        """Restore a previously exported cluster counter image."""
        self.engine.import_counters(image)

    @property
    def measured_ops(self) -> int:
        """AAP+AP sequences issued by the shared broadcast stream."""
        return self.engine.measured_ops
