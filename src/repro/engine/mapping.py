"""Counter/mask row layout inside a CIM subarray (Fig. 1b, Fig. 5).

All bits of a counter live in one column: each Johnson digit occupies
``n`` consecutive D-group rows (LSB first) plus one ``O_next`` row
(Sec. 4's ``n + 1`` rows per digit); mask rows hold the packed binary
operand Z; scratch rows serve the μProgram's cycle saves and -- in
protected mode -- the IR1/IR2/FR/T2 working set of Sec. 6.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.util import check_positive

__all__ = ["CounterLayout"]


@dataclass
class CounterLayout:
    """Row assignment for a bank of multi-digit counters plus masks.

    Parameters
    ----------
    n_bits, n_digits:
        Johnson digit width and digit count (radix ``2 * n_bits``).
    n_masks:
        Mask rows to reserve (one per Z row resident in this subarray).
    protected:
        Reserve the four ECC working rows.
    """

    n_bits: int
    n_digits: int
    n_masks: int = 1
    protected: bool = False
    digit_bit_rows: List[List[int]] = field(init=False)
    onext_rows: List[int] = field(init=False)
    mask_rows: List[int] = field(init=False)
    scratch_rows: List[int] = field(init=False)
    ir1_row: int = field(init=False, default=-1)
    ir2_row: int = field(init=False, default=-1)
    fr_row: int = field(init=False, default=-1)
    t2_row: int = field(init=False, default=-1)

    def __post_init__(self):
        check_positive(self.n_bits, "n_bits")
        check_positive(self.n_digits, "n_digits")
        if self.n_masks < 0:
            raise ValueError("n_masks must be non-negative")
        row = 0
        self.digit_bit_rows = []
        self.onext_rows = []
        for _ in range(self.n_digits):
            self.digit_bit_rows.append(list(range(row, row + self.n_bits)))
            row += self.n_bits
            self.onext_rows.append(row)
            row += 1
        self.mask_rows = list(range(row, row + self.n_masks))
        row += self.n_masks
        # Cycle saves need up to n rows (gcd(n, k) <= n); one extra row
        # snapshots O_next so protected overflow checks are retry-safe.
        self.scratch_rows = list(range(row, row + self.n_bits))
        row += self.n_bits
        self.onext_snapshot_row = row
        row += 1
        # General-purpose spare (e.g. the cycle save of Algorithm 2's
        # unit increments while the scratch pool holds copied operands).
        self.aux_row = row
        row += 1
        if self.protected:
            self.ir1_row, self.ir2_row, self.fr_row, self.t2_row = (
                row, row + 1, row + 2, row + 3)
            row += 4
        self.total_rows = row

    @property
    def rows_per_counter(self) -> int:
        """The paper's ``D * (n + 1)`` storage rows per counter column."""
        return self.n_digits * (self.n_bits + 1)

    def fits(self, available_data_rows: int) -> bool:
        """Whether this layout fits a subarray's D-group."""
        return self.total_rows <= available_data_rows
