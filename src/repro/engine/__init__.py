"""The gate-level Count2Multiply engine: counter row mapping and the
broadcast counting machine with optional ECC protection."""

from repro.engine.bank import BankedEngine
from repro.engine.machine import CountingEngine
from repro.engine.mapping import CounterLayout

__all__ = ["BankedEngine", "CountingEngine", "CounterLayout"]
