"""The gate-level Count2Multiply engine: counter row mapping, the
broadcast counting machine with optional ECC protection, and the
multi-bank batched dispatcher."""

from repro.engine.bank import BankedEngine
from repro.engine.cluster import BankCluster
from repro.engine.machine import CountingEngine
from repro.engine.mapping import CounterLayout

__all__ = ["BankCluster", "BankedEngine", "CountingEngine", "CounterLayout"]
