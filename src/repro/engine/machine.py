"""The Count2Multiply counting engine (paper Secs. 4-6 end to end).

:class:`CountingEngine` owns one CIM subarray holding a vector of
multi-digit Johnson counters (one per bitline), executes broadcast
accumulation through the IARM scheduler as actual AAP/AP μPrograms, and
optionally wraps every masking AND in the XOR-embedded ECC protection of
Sec. 6 with retry-on-detection.

This is the *functional* engine: bit-accurate, fault-injectable, and
validated against the golden :class:`~repro.core.counter.CounterArray`.
It runs on either subarray backend -- the per-bit reference
(``backend="bit"``) or the packed-uint64 word-parallel fast path
(``backend="word"``), which are cell-state and fault-stream identical.
Large-shape performance questions go through :mod:`repro.perf` instead.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import NamedTuple, Optional, Sequence

import numpy as np

from repro.core.iarm import (BaseScheduler, CarryResolve, Event,
                             IARMScheduler, Increment)
from repro.core.johnson import decode_lanes, transition_pattern
from repro.core.opcount import event_ops
from repro.dram.ambit import AmbitSubarray
from repro.dram.faults import FAULT_FREE, FaultModel
from repro.dram.wordline import WordlineSubarray
from repro.ecc.protection import CIMProtection
from repro.engine.mapping import CounterLayout
from repro.isa.templates import (kary_increment_program, masked_update_ops,
                                 overflow_check_ops,
                                 protected_masked_update_ops,
                                 underflow_check_ops)
from repro.isa.microprogram import MicroProgram, aap, concat
from repro.isa.trace import MegaProgram, fusion_enabled, megatrace_enabled

__all__ = ["CountingEngine", "EngineCounters"]

#: Bound on the engine-level μProgram LRU cache.  Per-event keys are
#: naturally bounded by (digit, k, mask row), but macro-fusion adds one
#: entry per distinct *event batch* -- unbounded over a long-running
#: serving process -- so the cache evicts least-recently-used programs.
#: Entries are small (a MicroProgram is a few KB); the subarray's own
#: bounded cache governs the compiled-trace side independently.
ENGINE_PROGRAM_CACHE = 4096

#: Bound on the engine-level megaprogram LRU cache (stitched whole-wave
#: sequences keyed by their event signatures).  A serving process sees
#: one distinct signature per (resident plan, magnitude profile) chunk;
#: the subarray's own bounded megatrace cache governs the compiled side.
ENGINE_MEGATRACE_CACHE = 256


class EngineCounters(NamedTuple):
    """Cost counters one engine has accrued (snapshot, monotonic).

    ``measured_ops`` is the ground truth the serving telemetry models
    latency/energy from: AAP/AP command sequences the subarray actually
    executed, retries included -- as opposed to the analytical op counts
    of :mod:`repro.perf` which never see the executed path.
    ``trace_compiles`` / ``trace_replays`` split the word backend's
    fused-trace cache the same way ``prog_compiles`` / ``prog_replays``
    split the μProgram cache; both stay zero on the bit backend (which
    never fuses).  ``injected_faults`` is the monotonic count of fault-
    model bit flips this engine's subarray injected (identical on the
    interpreted and fused paths) -- the serving telemetry reports its
    per-query delta, and ``FaultModel.injected`` itself resets each
    scheduler epoch.
    """

    measured_ops: int
    prog_compiles: int
    prog_replays: int
    trace_compiles: int = 0
    trace_replays: int = 0
    injected_faults: int = 0
    #: Whole-sequence stitched traces (see :meth:`CountingEngine.
    #: run_waves`): compile/replay split of the megatrace cache, the
    #: same way ``trace_compiles`` / ``trace_replays`` split the
    #: per-μProgram trace cache.  Zero on the bit backend and on any
    #: path that never coalesces waves.
    megatrace_compiles: int = 0
    megatrace_replays: int = 0


class CountingEngine:
    """A vector of in-memory high-radix counters with broadcast updates.

    Parameters
    ----------
    n_bits, n_digits:
        Digit geometry (radix ``2 * n_bits``; capacity ``(2n)^D``).
    n_lanes:
        Number of parallel counters (bitlines in use).
    n_masks:
        Mask rows resident in the subarray (rows of the Z operand).
    fault_model:
        Optional CIM fault injection.
    fr_checks:
        0 disables protection; >= 1 wraps masking ANDs in the Sec. 6
        scheme with that many FR syndrome checks per AND.
    scheduler:
        Any :class:`~repro.core.iarm.BaseScheduler`; defaults to IARM.
    backend:
        ``"bit"`` runs on the per-bit :class:`~repro.dram.ambit.
        AmbitSubarray` reference; ``"word"`` (aliases ``"fast"``,
        ``"vectorized"``) runs the same μPrograms on the packed-uint64
        :class:`~repro.dram.wordline.WordlineSubarray`.  Both backends
        are cell-state and fault-stream identical; ``"word"`` is simply
        orders of magnitude faster.
    """

    #: Accepted spellings of the two functional backends.
    BACKENDS = {"bit": "bit", "bitwise": "bit",
                "word": "word", "fast": "word", "vectorized": "word"}

    @classmethod
    def normalize_backend(cls, backend: str) -> str:
        """Resolve a backend alias to ``"bit"`` or ``"word"``.

        The single source of truth for backend spellings: the kernels'
        ``backend=`` routing and the engine constructor both go through
        here, so an alias accepted anywhere is accepted everywhere.
        """
        try:
            return cls.BACKENDS[backend]
        except KeyError:
            raise ValueError(f"unknown backend {backend!r}; expected one "
                             f"of {sorted(cls.BACKENDS)}") from None

    def __init__(self, n_bits: int, n_digits: int, n_lanes: int,
                 n_masks: int = 1,
                 fault_model: FaultModel = FAULT_FREE,
                 fr_checks: int = 0,
                 scheduler: Optional[BaseScheduler] = None,
                 protection_code=None,
                 max_retries: int = 64,
                 backend: str = "bit"):
        self.n_bits = n_bits
        self.n_digits = n_digits
        self.n_lanes = n_lanes
        self.radix = 2 * n_bits
        self.fr_checks = int(fr_checks)
        self.layout = CounterLayout(n_bits, n_digits, n_masks,
                                    protected=self.fr_checks > 0)
        self.backend = self.normalize_backend(backend)
        subarray_cls = (WordlineSubarray if self.backend == "word"
                        else AmbitSubarray)
        self.subarray = subarray_cls(self.layout.total_rows, n_lanes,
                                     fault_model)
        # Increment/resolve μPrograms depend only on (digit, k, mask
        # row) and macro-fused batches on the full event signature, so
        # they compile once and replay from this bounded LRU cache.
        # The plan layer surfaces the compile/replay split through
        # Plan.stats.
        self._prog_cache: "OrderedDict" = OrderedDict()
        self.prog_compiles = 0   # cache misses: μPrograms built
        self.prog_replays = 0    # cache hits: compiled μPrograms reused
        # Stitched wave-sequence megaprograms, keyed by the chunk's
        # event signatures (bounded LRU; see run_waves).
        self._mega_cache: "OrderedDict" = OrderedDict()
        # Cache namespace for compiled μPrograms/megatraces.  The
        # row-image store stamps the owning image's generation here
        # when it builds shared engines, so a copy-on-write row swap
        # can never replay a trace compiled against the old rows.
        self.cache_epoch = 0
        self.scheduler = scheduler or IARMScheduler(n_bits, n_digits)
        if self.fr_checks:
            # Any XOR-homomorphic code works; Hamming (72,64) by default,
            # BCH via repro.ecc.bch.BatchedBCH for stronger detection.
            if protection_code is not None:
                self.protection = CIMProtection(
                    code=protection_code,
                    word_bits=protection_code.k)
            else:
                self.protection = CIMProtection()
        else:
            self.protection = None
        self.max_retries = max_retries
        self.model_ops = 0       # paper-formula op accounting
        self._flushed = True
        # Static part of the macro-fusion predicate (backend and
        # protection are fixed at construction; only the process-wide
        # fusion switch is re-checked per batch).  An active fault
        # model does NOT disable fusion: the word backend compiles
        # fault-aware traces whose pre-drawn flip masks preserve the
        # seeded stream exactly.
        self._fusable = self.backend == "word" and not self.fr_checks

    # ------------------------------------------------------------------
    # operand staging
    # ------------------------------------------------------------------
    def load_mask(self, index: int, bits) -> None:
        """Write one Z mask row (host WR path)."""
        bits = np.asarray(bits, dtype=np.uint8)
        self.subarray.write_data_row(self.layout.mask_rows[index], bits)

    def load_mask_packed(self, index: int, words) -> None:
        """Write one Z mask row from pre-packed ``uint64`` words.

        The batched dispatchers stage whole blocks of wave masks with
        one :func:`~repro.dram.wordline.pack_rows` call and land each
        wave through here -- masks never round-trip through per-wave
        bit unpacking (both backends accept the packed form).
        """
        self.subarray.write_data_row_packed(self.layout.mask_rows[index],
                                            words)

    def reset_counters(self) -> None:
        """Zero all digit and O_next rows; masks stay resident.

        This is the session layer's between-queries reset: counter state
        (including pending-carry flags) is cleared, the scheduler's
        virtual counter restarts from the all-zero bound, but loaded
        mask rows are untouched -- plan reuse depends on that invariant
        (pinned by ``tests/test_device.py``).  The zeroing lands as one
        batched ``write_rows`` (a single slice-assign on the word
        backend), not a per-row host write.
        """
        rows = [r for digit in self.layout.digit_bit_rows for r in digit]
        rows.extend(self.layout.onext_rows)
        self.subarray.write_rows(
            rows, np.zeros((len(rows), self.n_lanes), dtype=np.uint8))
        # Zeroed rows mean no outstanding carries anywhere: the next
        # read needs no flush and the scheduler restarts tight.
        self.scheduler.reset()
        # The fault model's flip counter is per scheduler epoch: plan
        # reuse and shared models would otherwise accumulate it without
        # bound.  The subarray's monotonic ``fault_injections`` (and
        # ``EngineCounters.injected_faults``) are deliberately NOT
        # reset -- telemetry takes deltas of those.
        self.subarray.fault_model.reset_counts()
        self._flushed = True

    # ------------------------------------------------------------------
    # protected building blocks
    # ------------------------------------------------------------------
    def _read(self, row: int) -> np.ndarray:
        return self.subarray.read_data_row(row)

    def _run_ops(self, ops: Sequence) -> None:
        MicroProgram("block", tuple(ops)).run(self.subarray)

    def _protected_update(self, dst_row: int, src_row: int, mask_row: int,
                          invert_src: bool) -> None:
        """One masked bit update with FR syndrome checks and retries."""
        lay = self.layout
        prog = protected_masked_update_ops(
            dst_row, src_row, mask_row, invert_src,
            ir1_row=lay.ir1_row, ir2_row=lay.ir2_row,
            fr_row=lay.fr_row, t2_row=lay.t2_row)
        cp1, cp2 = prog.checkpoints
        block_a = prog.ops[:cp1 + 1]          # term1 + its FR
        t2_copy = prog.ops[cp1 + 1:cp1 + 2]   # save IR2 -> T2
        block_b = prog.ops[cp1 + 2:cp2 + 1]   # term2 + its FR
        block_c = prog.ops[cp2 + 1:]          # disjoint OR into dst

        prot = self.protection
        mask_bits = self._read(mask_row)
        src_bits = self._read(src_row)
        expect_a = prot.predict_xor_checks(mask_bits) ^ (
            prot.complement_checks(src_bits) if invert_src
            else prot.checks_of(src_bits))

        def fr_ok(expected) -> bool:
            detected = prot.verify_xor(self._read(lay.fr_row), expected)
            return not detected.any()

        prot.run_protected(lambda: self._run_ops(block_a),
                           lambda: self._check_repeated(fr_ok, expect_a,
                                                        block_a[-5:]),
                           self.max_retries)
        self._run_ops(t2_copy)

        dst_bits = self._read(dst_row)
        expect_b = (prot.checks_of(dst_bits)
                    ^ prot.complement_checks(mask_bits))
        prot.run_protected(lambda: self._run_ops(block_b),
                           lambda: self._check_repeated(fr_ok, expect_b,
                                                        block_b[-5:]),
                           self.max_retries)

        def c_ok() -> bool:
            expected = prot.predict_xor_checks(self._read(lay.t2_row),
                                               self._read(lay.ir2_row))
            detected = prot.verify_xor(self._read(dst_row), expected)
            return not detected.any()

        prot.run_protected(lambda: self._run_ops(block_c), c_ok,
                           self.max_retries)

    def _check_repeated(self, fr_ok, expected, fr_tail_ops) -> bool:
        """Recompute FR ``fr_checks`` times (Tab. 1's repeat knob)."""
        if not fr_ok(expected):
            return False
        for _ in range(self.fr_checks - 1):
            self._run_ops(fr_tail_ops)       # recompute FR only
            if not fr_ok(expected):
                return False
        return True

    # ------------------------------------------------------------------
    # event execution
    # ------------------------------------------------------------------
    def _cached_program(self, key):
        """LRU lookup in the engine μProgram cache (counts a replay)."""
        key = (self.cache_epoch,) + tuple(key)
        prog = self._prog_cache.get(key)
        if prog is not None:
            self._prog_cache.move_to_end(key)
            self.prog_replays += 1
        return prog

    def _store_program(self, key, prog):
        """Insert into the bounded μProgram cache (counts a compile)."""
        key = (self.cache_epoch,) + tuple(key)
        self._prog_cache[key] = prog
        self.prog_compiles += 1
        while len(self._prog_cache) > ENGINE_PROGRAM_CACHE:
            self._prog_cache.popitem(last=False)
        return prog

    def _run_increment(self, digit: int, k: int, mask_row: int) -> None:
        lay = self.layout
        bit_rows = lay.digit_bit_rows[digit]
        if not self.fr_checks:
            key = (digit, k, mask_row)
            prog = self._cached_program(key)
            if prog is None:
                prog = self._store_program(key, kary_increment_program(
                    bit_rows, mask_row, k, lay.scratch_rows,
                    lay.onext_rows[digit]))
            self.subarray.run_program(prog)
            return

        # Protected path: cycle saves + protected per-bit updates +
        # plain overflow check (Sec. 6.2 protects the masking ANDs).
        pattern = transition_pattern(self.n_bits, k)
        saves = {}
        save_indices = list(pattern.cycle_saves)
        if self.n_bits - 1 not in save_indices:
            save_indices = [self.n_bits - 1] + save_indices
        for scratch, idx in zip(lay.scratch_rows, save_indices):
            self._run_ops([aap(bit_rows[idx], scratch)])
            saves[idx] = scratch
        written = set()
        for a in pattern.assignments:
            if a.src in saves and (a.src in written or a.src == a.dst):
                src_row = saves[a.src]
            else:
                src_row = bit_rows[a.src]
            self._protected_update(bit_rows[a.dst], src_row, mask_row,
                                   a.inverted)
            written.add(a.dst)
        self._protected_overflow(digit, k, mask_row, saves[self.n_bits - 1])

    def _protected_overflow(self, digit: int, k: int, mask_row: int,
                            theta_row: int) -> None:
        """Overflow/underflow update with detect-and-retry.

        The block reads the old flags from a snapshot row, so a detected
        fault simply re-executes it.  Validation compares against the
        host-predicted flag (Alg. 1's expression on trusted reads) -- the
        ECC-engine analogue for the non-XOR-embeddable final OR.
        """
        from repro.core.johnson import (overflow_after_step,
                                        underflow_after_step)
        lay = self.layout
        onext = lay.onext_rows[digit]
        snap = lay.onext_snapshot_row
        bit_rows = lay.digit_bit_rows[digit]
        self._run_ops([aap(onext, snap)])
        old_flags = self._read(snap)
        old_msb = self._read(theta_row)
        new_msb = self._read(bit_rows[-1])
        mask = self._read(mask_row)
        flag_fn = overflow_after_step if k > 0 else underflow_after_step
        expected = old_flags | flag_fn(old_msb, new_msb, abs(k),
                                       self.n_bits, mask)
        checker = overflow_check_ops if k > 0 else underflow_check_ops
        block = checker(onext, theta_row, bit_rows[-1], abs(k),
                        self.n_bits, mask_row, onext_src=snap)
        self.protection.run_protected(
            lambda: self._run_ops(block),
            lambda: bool((self._read(onext) == expected).all()),
            self.max_retries)

    def _run_resolve(self, digit: int, direction: int) -> None:
        """Carry ripple: ±1 on the next digit masked by this O_next row."""
        onext = self.layout.onext_rows[digit]
        self._run_increment(digit + 1, direction, mask_row=onext)
        key = ("clear", onext)
        prog = self._cached_program(key)
        if prog is None:
            prog = self._store_program(key, MicroProgram(
                "clear_onext", (aap("C0", onext),)))
        self.subarray.run_program(prog)

    def _fused_batch_program(self, events: Sequence[Event],
                             mask_row: int) -> MicroProgram:
        """One concatenated μProgram covering a whole event batch.

        The word backend's macro-fusion: every event of an
        ``accumulate()`` is straight-line dataflow, so the batch
        concatenates into a single program whose compiled trace
        level-schedules *across* events -- independent digit updates
        (distinct counter rows; the shared B-group temporaries are
        renamed away by the trace compiler's SSA form) execute in the
        same batched levels, and per-program dispatch overhead is paid
        once per broadcast instead of once per event.  Cached alongside
        the per-event μPrograms, keyed by the full event batch.
        """
        key = ("batch", mask_row) + tuple(
            (ev.digit, ev.k) if isinstance(ev, Increment)
            else ("resolve", ev.digit, ev.direction) for ev in events)
        prog = self._cached_program(key)
        if prog is None:
            lay = self.layout
            parts = []
            for ev in events:
                if isinstance(ev, Increment):
                    parts.append(kary_increment_program(
                        lay.digit_bit_rows[ev.digit], mask_row, ev.k,
                        lay.scratch_rows, lay.onext_rows[ev.digit]))
                elif isinstance(ev, CarryResolve):
                    onext = lay.onext_rows[ev.digit]
                    parts.append(kary_increment_program(
                        lay.digit_bit_rows[ev.digit + 1], onext,
                        ev.direction, lay.scratch_rows,
                        lay.onext_rows[ev.digit + 1]))
                    parts.append(MicroProgram("clear_onext",
                                              (aap("C0", onext),)))
                else:  # pragma: no cover - defensive
                    raise TypeError(f"unknown event {ev!r}")
            prog = self._store_program(
                key, concat(f"batch[{len(events)}]", parts))
        return prog

    def _can_fuse_batch(self) -> bool:
        """Macro-fusion applies on the unprotected word path.

        Exactly the conditions under which the subarray itself would
        fuse each program -- active fault models included, since the
        fault pre-pass draws the per-activation random stream in
        original op order.  ECC protection (which interleaves host
        reads and retries between ops) falls back to per-event
        execution, as does an explicit
        :func:`repro.isa.trace.fusion_disabled` scope.
        """
        return self._fusable and fusion_enabled()

    def execute_events(self, events: Sequence[Event],
                       mask_index: int = 0) -> None:
        """Run scheduler events against the subarray.

        On the unprotected word path (fault-injected or not) the whole
        batch is fused into one
        concatenated μProgram (see :meth:`_fused_batch_program`) and
        replayed as a single compiled trace; otherwise events execute
        one by one.  Cell states and AAP/AP/activation accounting are
        identical either way -- concatenation preserves op order and
        the totals are additive -- only the compile/replay cache
        counters see different (per-batch vs per-event) granularity.
        """
        events = list(events)
        mask_row = self.layout.mask_rows[mask_index]
        if len(events) > 1 and self._can_fuse_batch():
            self.subarray.run_program(
                self._fused_batch_program(events, mask_row))
            for ev in events:
                self.model_ops += event_ops(ev, self.n_bits,
                                            fr_checks=self.fr_checks)
            return
        for ev in events:
            if isinstance(ev, Increment):
                self._run_increment(ev.digit, ev.k, mask_row)
            elif isinstance(ev, CarryResolve):
                self._run_resolve(ev.digit, ev.direction)
            else:  # pragma: no cover - defensive
                raise TypeError(f"unknown event {ev!r}")
            self.model_ops += event_ops(ev, self.n_bits,
                                        fr_checks=self.fr_checks)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def accumulate(self, value: int, mask_index: int = 0) -> None:
        """Add ``value`` to every counter whose mask bit is set."""
        self._flushed = False
        self.execute_events(self.scheduler.schedule_value(int(value)),
                            mask_index)

    def run_waves(self, magnitudes, packed_masks,
                  mask_index: int = 0) -> None:
        """Execute a whole sequence of (mask, magnitude) waves at once.

        Semantically identical to the per-wave loop::

            for mag, mask in zip(magnitudes, packed_masks):
                engine.load_mask_packed(mask_index, mask)
                engine.accumulate(int(mag), mask_index)

        but on the unprotected word path the entire sequence -- every
        wave's event batch plus the interleaved host mask writes --
        stitches into :class:`~repro.isa.trace.MegaProgram` chunks that
        replay as single compiled traces (see
        :meth:`~repro.dram.wordline.WordlineSubarray.run_megaprogram`).
        Cell states, AAP/AP/activation accounting, the paper-formula
        ``model_ops``, and a seeded fault stream are exactly what the
        per-wave loop produces; only the compile/replay cache counters
        see the coarser (per-chunk) granularity.

        The IARM scheduler still runs wave by wave -- its event stream
        is state-dependent, so the stitched sequence is keyed by the
        *scheduled* event signatures, never by magnitudes alone.  Long
        sequences split into chunks under a fixed replay-scratch
        budget; chunk boundaries are deterministic in the event
        signatures, so cache keys stay stable across identical queries.
        """
        n_waves = len(magnitudes)
        if n_waves == 0:
            return
        if not (self._fusable and fusion_enabled()
                and megatrace_enabled()):
            for w in range(n_waves):
                self.load_mask_packed(mask_index, packed_masks[w])
                self.accumulate(int(magnitudes[w]), mask_index)
            return
        self._flushed = False
        mask_row = self.layout.mask_rows[mask_index]
        wave_events, sigs = [], []
        for w in range(n_waves):
            events = list(self.scheduler.schedule_value(
                int(magnitudes[w])))
            wave_events.append(events)
            sigs.append(tuple(
                (ev.digit, ev.k) if isinstance(ev, Increment)
                else ("resolve", ev.digit, ev.direction)
                for ev in events))
            for ev in events:
                self.model_ops += event_ops(ev, self.n_bits,
                                            fr_checks=self.fr_checks)
        # Replay scratch grows with the stitched value graph; bound it
        # by splitting the sequence into chunks of roughly
        # budget-many value slots (coarse per-wave estimate).
        budget = max(8, (1 << 24) // (2 * self.subarray.n_words))
        chunks, start, used = [], 0, 0
        for w in range(n_waves):
            cost = 8 + 48 * len(wave_events[w])
            if w > start and used + cost > budget:
                chunks.append((start, w))
                start, used = w, 0
            used += cost
        chunks.append((start, n_waves))
        for lo, hi in chunks:
            key = (self.cache_epoch, mask_row) + tuple(sigs[lo:hi])
            mega = self._mega_cache.get(key)
            if mega is not None:
                self._mega_cache.move_to_end(key)
            else:
                segments = tuple(
                    self._fused_batch_program(wave_events[w], mask_row)
                    if wave_events[w] else MicroProgram("noop", ())
                    for w in range(lo, hi))
                mega = MegaProgram(f"mega[{hi - lo}]", segments,
                                   mask_row)
                self._mega_cache[key] = mega
                while len(self._mega_cache) > ENGINE_MEGATRACE_CACHE:
                    self._mega_cache.popitem(last=False)
            self.subarray.run_megaprogram(mega, packed_masks[lo:hi])

    def flush(self) -> None:
        """Resolve all pending carries (read-out barrier)."""
        self.execute_events(self.scheduler.flush())
        self._flushed = True

    def read_values(self, strict: bool = True) -> np.ndarray:
        """Decode every lane's counter value (flushes first).

        ``strict=False`` decodes invalid (fault-corrupted) Johnson states
        leniently and folds surviving O_next flags in -- the behavior the
        accuracy studies rely on.
        """
        if not self._flushed:
            self.flush()
        d_count, n, lanes = self.n_digits, self.n_bits, self.n_lanes
        planes = self.subarray.read_rows(
            [r for rows in self.layout.digit_bit_rows for r in rows])
        # One decode call covers all digits: [D, n, L] -> [n, D*L].  The
        # flattened order is digit-major, so a strict invalid-state
        # error still reports the lowest corrupted digit first.
        values = decode_lanes(
            planes.reshape(d_count, n, lanes).transpose(1, 0, 2)
            .reshape(n, d_count * lanes),
            strict=strict).reshape(d_count, lanes)
        onext = self.subarray.read_rows(self.layout.onext_rows)
        if strict and onext[-1].any():
            raise OverflowError("counter capacity exceeded")
        weights = self.radix ** np.arange(d_count, dtype=np.int64)
        totals = weights @ values
        if onext.any():       # surviving flags only occur in faulty runs
            totals = totals + (weights * self.radix) @ onext.astype(np.int64)
        return totals

    # ------------------------------------------------------------------
    # counter-row relocation (Sec. 5.2.2's GEMM row reuse)
    # ------------------------------------------------------------------
    def counter_image_rows(self) -> list:
        """Subarray rows of the counter image, digit-major.

        The single source of truth for what :meth:`export_counters`
        captures and :meth:`import_counters` restores: every digit's bit
        rows followed by its ``O_next`` row.  Mask rows are deliberately
        excluded -- relocating counters never copies the much larger Z.
        """
        rows = []
        for d in range(self.n_digits):
            rows.extend(self.layout.digit_bit_rows[d])
            rows.append(self.layout.onext_rows[d])
        return rows

    @property
    def counter_image_shape(self) -> tuple:
        """Shape of the row image export/import round-trips."""
        return (self.n_digits * (self.n_bits + 1), self.n_lanes)

    def export_counters(self) -> np.ndarray:
        """Copy all counter rows out (RowClone to another subarray).

        Returns the raw row image ``[rows_per_counter, n_lanes]`` -- the
        paper moves each finished output row of Y elsewhere and reuses
        the counter rows for the next row of the result, avoiding any
        copy of the much larger mask matrix Z.  The serving layer's plan
        eviction rests on the same primitive: a parked plan is exactly
        its counter image plus its host-side operand spec.
        """
        if not self._flushed:
            self.flush()
        return self.subarray.read_rows(self.counter_image_rows())

    def import_counters(self, image: np.ndarray) -> None:
        """Restore a previously exported counter image (one bulk write)."""
        image = np.asarray(image, dtype=np.uint8)
        rows = self.counter_image_rows()
        if image.shape != (len(rows), self.n_lanes):
            raise ValueError("counter image shape mismatch")
        self.subarray.write_rows(rows, image)
        self._flushed = True

    @property
    def counters(self) -> EngineCounters:
        """Snapshot of this engine's accrued cost counters."""
        return EngineCounters(self.measured_ops, self.prog_compiles,
                              self.prog_replays,
                              self.subarray.trace_compiles,
                              self.subarray.trace_replays,
                              self.subarray.fault_injections,
                              self.subarray.megatrace_compiles,
                              self.subarray.megatrace_replays)

    @property
    def measured_ops(self) -> int:
        """AAP+AP sequences actually issued (includes retries)."""
        return self.subarray.ops_issued
