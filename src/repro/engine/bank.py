"""Multi-subarray execution: wide outputs across a bank (Secs. 2.1, 5.2).

A single subarray row offers ``rank_row_bits`` counter lanes; wider
output vectors tile across subarrays (and banks), all consuming the same
broadcast command stream -- each tile holds its own slice of the mask
matrix Z, so one k-ary increment sequence advances every tile at once.
:class:`BankedEngine` models that: one scheduler, one command stream,
many :class:`~repro.engine.machine.CountingEngine` tiles.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.iarm import BaseScheduler, IARMScheduler
from repro.dram.faults import FAULT_FREE, FaultModel
from repro.engine.machine import CountingEngine

__all__ = ["BankedEngine"]


class BankedEngine:
    """A wide counter vector tiled over multiple subarrays.

    Parameters mirror :class:`CountingEngine`; ``lanes_per_subarray``
    caps each tile's width (the rank-level row size in a real module --
    small here so tests exercise real tiling).
    """

    def __init__(self, n_bits: int, n_digits: int, n_lanes: int,
                 lanes_per_subarray: int,
                 fault_model: FaultModel = FAULT_FREE,
                 fr_checks: int = 0,
                 scheduler: Optional[BaseScheduler] = None):
        if lanes_per_subarray < 1:
            raise ValueError("lanes_per_subarray must be positive")
        self.n_lanes = int(n_lanes)
        self.lanes_per_subarray = int(lanes_per_subarray)
        # One shared scheduler: the broadcast command stream is identical
        # for every tile (Sec. 5.1), so carry bookkeeping is global.
        self.scheduler = scheduler or IARMScheduler(n_bits, n_digits)
        self.tiles: List[CountingEngine] = []
        self._bounds: List[tuple] = []
        start = 0
        while start < self.n_lanes:
            width = min(self.lanes_per_subarray, self.n_lanes - start)
            self.tiles.append(CountingEngine(
                n_bits, n_digits, width, fault_model=fault_model,
                fr_checks=fr_checks,
                scheduler=_NullScheduler(n_bits, n_digits)))
            self._bounds.append((start, start + width))
            start += width

    @property
    def n_tiles(self) -> int:
        return len(self.tiles)

    # ------------------------------------------------------------------
    def load_mask(self, bits) -> None:
        """Distribute a full-width mask across the tiles' mask rows."""
        bits = np.asarray(bits, dtype=np.uint8)
        if bits.shape != (self.n_lanes,):
            raise ValueError("mask width mismatch")
        for tile, (lo, hi) in zip(self.tiles, self._bounds):
            tile.load_mask(0, bits[lo:hi])

    def accumulate(self, value: int) -> None:
        """Broadcast one value's command stream to every tile."""
        events = self.scheduler.schedule_value(int(value))
        for tile in self.tiles:
            tile.execute_events(events)
            tile._flushed = False

    def read_values(self, strict: bool = True) -> np.ndarray:
        """Flush and concatenate every tile's counters."""
        flush = self.scheduler.flush()
        out = np.zeros(self.n_lanes, dtype=np.int64)
        for tile, (lo, hi) in zip(self.tiles, self._bounds):
            tile.execute_events(flush)
            tile._flushed = True
            out[lo:hi] = tile.read_values(strict=strict)
        return out

    @property
    def measured_ops(self) -> int:
        """Commands consumed across all tiles (broadcast counts once
        per tile here; a real rank executes them in lockstep)."""
        return sum(tile.measured_ops for tile in self.tiles)


class _NullScheduler(BaseScheduler):
    """Tiles never schedule on their own -- the bank drives them."""

    def schedule_value(self, value: int):  # pragma: no cover - guard
        raise RuntimeError("tile schedulers are driven by the bank")
