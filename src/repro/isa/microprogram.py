"""μProgram intermediate representation (paper Secs. 4.2, 5.1).

A μProgram is the sequence of ``AAP``/``AP`` command sequences the memory
controller broadcasts to execute one logical step (a k-ary increment, an
overflow check, a protected masking op).  Programs are built from
symbolic row addresses (the Ambit B/C-group names plus ``D<i>`` data
rows) and execute directly on :class:`repro.dram.ambit.AmbitSubarray`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Tuple, Union

from repro.dram.ambit import AmbitSubarray

__all__ = ["MicroOp", "MicroProgram", "aap", "ap"]

Address = Union[str, int]


@dataclass(frozen=True)
class MicroOp:
    """One DRAM command sequence: ``AAP src, dst`` or ``AP target``."""

    kind: str                  # "AAP" or "AP"
    src: Address
    dst: Address = None

    def __post_init__(self):
        if self.kind not in ("AAP", "AP"):
            raise ValueError(f"unknown μOp kind {self.kind!r}")
        if self.kind == "AAP" and self.dst is None:
            raise ValueError("AAP needs a destination address")

    def render(self) -> str:
        if self.kind == "AAP":
            return f"AAP {self.src}, {self.dst}"
        return f"AP  {self.src}"


def aap(src: Address, dst: Address) -> MicroOp:
    """Shorthand constructor for an activate-activate-precharge op."""
    return MicroOp("AAP", src, dst)


def ap(target: Address) -> MicroOp:
    """Shorthand constructor for an activate-precharge op."""
    return MicroOp("AP", target)


@dataclass
class MicroProgram:
    """A named, executable sequence of μOps.

    ``checkpoints`` marks op indices after which the ECC engine performs a
    syndrome check in protected mode (the FR rows of Sec. 6.1); plain
    programs leave it empty.
    """

    name: str
    ops: Tuple[MicroOp, ...] = ()
    checkpoints: Tuple[int, ...] = ()

    def __post_init__(self):
        self.ops = tuple(self.ops)
        self.checkpoints = tuple(self.checkpoints)

    def __len__(self) -> int:
        return len(self.ops)

    def __add__(self, other: "MicroProgram") -> "MicroProgram":
        shifted = tuple(c + len(self.ops) for c in other.checkpoints)
        return MicroProgram(f"{self.name}+{other.name}",
                            self.ops + other.ops,
                            self.checkpoints + shifted)

    @property
    def aap_count(self) -> int:
        return sum(1 for op in self.ops if op.kind == "AAP")

    @property
    def ap_count(self) -> int:
        return sum(1 for op in self.ops if op.kind == "AP")

    def run(self, subarray: AmbitSubarray) -> None:
        """Execute every op in order against a subarray."""
        for op in self.ops:
            if op.kind == "AAP":
                subarray.aap(op.src, op.dst)
            else:
                subarray.ap(op.src)

    def listing(self) -> str:
        """Human-readable listing in the style of paper Fig. 6b."""
        lines = [f"// {self.name}"]
        lines += [f"{i:3d}: {op.render()}" for i, op in enumerate(self.ops)]
        return "\n".join(lines)


def concat(name: str, programs: Iterable[MicroProgram]) -> MicroProgram:
    """Concatenate programs, re-based checkpoints included."""
    ops: List[MicroOp] = []
    checkpoints: List[int] = []
    for prog in programs:
        base = len(ops)
        ops.extend(prog.ops)
        checkpoints.extend(base + c for c in prog.checkpoints)
    return MicroProgram(name, tuple(ops), tuple(checkpoints))
