"""Host-side μProgram generation pipeline (paper Sec. 5.1, Fig. 11).

Implements the ❶→❷→❸ flow: read an element of X, unpack it into counter
digits, select/instantiate the optimized μProgram template per non-zero
digit, and emit the memory-command stream the MCU broadcasts.  The
output is a *command trace* -- the exact ACT/PRE sequence -- plus
generation statistics, which is what feeds the timing scheduler and
what a FPGA/MCU integration would consume.

The paper notes the host-side generation overhead is negligible because
the DRAM's AAP processing rate is far below a CPU's template-stamping
rate; :func:`generation_throughput_estimate` makes that argument
quantitative for this implementation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Sequence

from repro.core.iarm import (BaseScheduler, CarryResolve, IARMScheduler,
                             Increment)
from repro.dram.commands import Command, expand_aap, expand_ap
from repro.engine.mapping import CounterLayout
from repro.isa.microprogram import MicroOp, MicroProgram
from repro.isa.templates import carry_resolve_program, kary_increment_program

__all__ = ["CommandStream", "MicroProgramGenerator",
           "generation_throughput_estimate"]


@dataclass
class CommandStream:
    """A generated broadcast stream plus its accounting."""

    micro_ops: List[MicroOp] = field(default_factory=list)
    values_processed: int = 0
    increments: int = 0
    carry_resolves: int = 0

    @property
    def op_count(self) -> int:
        return len(self.micro_ops)

    def commands(self, bank: int = 0) -> Iterator[Command]:
        """Expand μOps into primitive DRAM commands (ACT/PRE)."""
        for op in self.micro_ops:
            if op.kind == "AAP":
                yield from expand_aap(bank, str(op.src), str(op.dst))
            else:
                yield from expand_ap(bank, str(op.src))

    def extend(self, program: MicroProgram) -> None:
        self.micro_ops.extend(program.ops)


class MicroProgramGenerator:
    """Stamps counting μPrograms for an input stream (the Fig. 11 host).

    Templates are pre-instantiated per (digit, k) against a concrete
    :class:`~repro.engine.mapping.CounterLayout` and cached -- the paper's
    "optimized CIM sequence template" -- so per-value generation is a
    dictionary lookup plus list appends.
    """

    def __init__(self, layout: CounterLayout,
                 scheduler: Optional[BaseScheduler] = None,
                 mask_index: int = 0):
        self.layout = layout
        self.scheduler = scheduler or IARMScheduler(layout.n_bits,
                                                    layout.n_digits)
        self.mask_row = layout.mask_rows[mask_index]
        self._increment_cache = {}
        self._resolve_cache = {}

    # ------------------------------------------------------------------
    def _increment_program(self, digit: int, k: int) -> MicroProgram:
        key = (digit, k)
        if key not in self._increment_cache:
            lay = self.layout
            self._increment_cache[key] = kary_increment_program(
                lay.digit_bit_rows[digit], self.mask_row, k,
                lay.scratch_rows, lay.onext_rows[digit])
        return self._increment_cache[key]

    def _resolve_program(self, digit: int, direction: int) -> MicroProgram:
        key = (digit, direction)
        if key not in self._resolve_cache:
            lay = self.layout
            self._resolve_cache[key] = carry_resolve_program(
                lay.digit_bit_rows[digit + 1], lay.onext_rows[digit],
                lay.onext_rows[digit + 1], lay.scratch_rows, direction)
        return self._resolve_cache[key]

    # ------------------------------------------------------------------
    def generate_value(self, value: int,
                       stream: CommandStream) -> CommandStream:
        """Append the broadcast sequence for one input value."""
        for event in self.scheduler.schedule_value(int(value)):
            if isinstance(event, Increment):
                stream.extend(self._increment_program(event.digit,
                                                      event.k))
                stream.increments += 1
            elif isinstance(event, CarryResolve):
                stream.extend(self._resolve_program(event.digit,
                                                    event.direction))
                stream.carry_resolves += 1
        stream.values_processed += 1
        return stream

    def generate_stream(self, values: Iterable[int],
                        flush: bool = True) -> CommandStream:
        """Full stream for a value sequence (plus the read-out flush)."""
        stream = CommandStream()
        for v in values:
            self.generate_value(v, stream)
        if flush:
            for event in self.scheduler.flush():
                if isinstance(event, CarryResolve):
                    stream.extend(self._resolve_program(event.digit,
                                                        event.direction))
                    stream.carry_resolves += 1
        return stream


def generation_throughput_estimate(values: Sequence[int],
                                   n_bits: int = 2,
                                   n_digits: int = 32) -> dict:
    """Host-side generation rate vs the DRAM's AAP consumption rate.

    Returns ops/second the generator produces and the ratio against the
    16-bank AAP issue rate.  The paper's Sec. 5.1 claim ("negligible,
    even on a single-core processor") concerns a compiled MCU routine
    whose per-op work is a template lookup and address patch; this
    pure-Python generator under-reports that rate by the interpreter
    overhead, so treat ``headroom`` as a lower bound on the argument,
    not a refutation.
    """
    from repro.dram.timing import aap_rate_per_s
    layout = CounterLayout(n_bits, n_digits)
    generator = MicroProgramGenerator(layout)
    start = time.perf_counter()
    stream = generator.generate_stream(values)
    elapsed = max(time.perf_counter() - start, 1e-9)
    gen_rate = stream.op_count / elapsed
    dram_rate = aap_rate_per_s(16)
    return {"ops_generated": stream.op_count,
            "generation_ops_per_s": gen_rate,
            "dram_aap_rate_per_s": dram_rate,
            "headroom": gen_rate / dram_rate}
