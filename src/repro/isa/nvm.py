"""NVM CIM backends: Pinatubo (AND/OR/NOT) and MAGIC (NOR-only), Sec. 4.6.

The counting mechanism only needs a functionally complete set of bulk
bitwise row operations, so it ports to non-volatile memories.  This
module provides:

* small row-machine simulators for both logic styles (every op is one
  in-memory command on full rows);
* generators for the masked unit-increment + overflow μPrograms of
  Fig. 10, whose measured op counts are compared against the paper's
  ``3n + 4 (+3)`` (Pinatubo) and ``6n + 4`` (MAGIC, optimized) figures
  in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.dram.faults import FAULT_FREE, FaultModel

__all__ = ["LogicOp", "PinatuboMachine", "MagicMachine",
           "pinatubo_increment_program", "magic_increment_program",
           "pinatubo_op_count", "magic_op_count"]


@dataclass(frozen=True)
class LogicOp:
    """One bulk-bitwise row operation.

    ``kind`` ∈ {AND, OR, NOT, NOR, LD}; operands name rows, with a
    leading ``!`` selecting the complemented wordline (Pinatubo senses
    both polarities, Fig. 10a's ``!m``).
    """

    kind: str
    operands: Tuple[str, ...]
    out: str


class _RowMachine:
    """Shared row-register machinery for the NVM simulators."""

    def __init__(self, n_cols: int, fault_model: FaultModel = FAULT_FREE):
        self.n_cols = n_cols
        self.rows: Dict[str, np.ndarray] = {}
        self.fault_model = fault_model
        self.ops_executed = 0

    def write(self, name: str, values) -> None:
        values = np.asarray(values, dtype=np.uint8)
        if values.shape != (self.n_cols,):
            raise ValueError("row width mismatch")
        self.rows[name] = values.copy()

    def read(self, name: str) -> np.ndarray:
        return self.rows[name].copy()

    def _operand(self, spec: str) -> np.ndarray:
        if spec.startswith("!"):
            return 1 - self.rows[spec[1:]]
        return self.rows[spec]


class PinatuboMachine(_RowMachine):
    """Non-stateful AND/OR/NOT row logic with writeback (Pinatubo [9])."""

    def execute(self, op: LogicOp) -> None:
        if op.kind == "AND":
            a, b = (self._operand(s) for s in op.operands)
            result = a & b
        elif op.kind == "OR":
            a, b = (self._operand(s) for s in op.operands)
            result = a | b
        elif op.kind == "NOT":
            result = 1 - self._operand(op.operands[0])
        elif op.kind == "LD":
            result = self._operand(op.operands[0]).copy()
        else:
            raise ValueError(f"Pinatubo cannot execute {op.kind}")
        multi = op.kind in ("AND", "OR")
        self.rows[op.out] = self.fault_model.corrupt(result, multi)
        self.ops_executed += 1

    def run(self, program: Sequence[LogicOp]) -> None:
        for op in program:
            self.execute(op)


class MagicMachine(_RowMachine):
    """Stateful NOR-only logic (MAGIC [7]): every op is a 2-input NOR."""

    def execute(self, op: LogicOp) -> None:
        if op.kind != "NOR":
            raise ValueError("MAGIC supports only NOR")
        a, b = (self._operand(s) for s in op.operands)
        result = 1 - (a | b)
        self.rows[op.out] = self.fault_model.corrupt(result, multi_row=True)
        self.ops_executed += 1

    def run(self, program: Sequence[LogicOp]) -> None:
        for op in program:
            self.execute(op)


# ----------------------------------------------------------------------
# program generators (masked unit increment + overflow, Fig. 10)
# ----------------------------------------------------------------------
def _bit(i: int) -> str:
    return f"b{i}"


def pinatubo_increment_program(n_bits: int) -> List[LogicOp]:
    """Masked unit increment of an n-bit JC plus overflow, for Pinatubo.

    Rows: ``b0..b{n-1}`` (LSB first), mask ``m``, overflow ``On``,
    scratch ``t0/t1/o1/o2``.  Shifts walk MSB-down so each source is
    intact; the saved old MSB feeds both the inverted feedback and the
    overflow check.
    """
    n = n_bits
    prog: List[LogicOp] = [
        LogicOp("LD", (_bit(n - 1),), "t0"),         # t0 <- old MSB
    ]
    for i in range(n - 1, 0, -1):                    # forward shifts
        prog += [
            LogicOp("AND", ("m", _bit(i - 1)), "o1"),
            LogicOp("AND", ("!m", _bit(i)), "o2"),
            LogicOp("OR", ("o1", "o2"), _bit(i)),
        ]
    prog += [                                        # inverted feedback
        LogicOp("AND", ("m", "!t0"), "o1"),
        LogicOp("AND", ("!m", _bit(0)), "o2"),
        LogicOp("OR", ("o1", "o2"), _bit(0)),
    ]
    prog += [                                        # overflow checking
        LogicOp("NOT", (_bit(n - 1),), "t1"),        # t1 <- NOT new MSB
        LogicOp("AND", ("t0", "t1"), "o1"),
        LogicOp("OR", ("On", "o1"), "On"),
    ]
    return prog


def pinatubo_op_count(n_bits: int) -> int:
    """Measured length of the generated Pinatubo program (``3n + 4``)."""
    return len(pinatubo_increment_program(n_bits))


def magic_increment_program(n_bits: int) -> List[LogicOp]:
    """Masked unit increment + overflow in NOR-only logic (optimized).

    The optimization the paper alludes to is reuse of the complemented
    mask ``nm = NOR(m, m)`` across all bit positions, bringing the cost
    to six NORs per bit plus a small constant.
    """
    n = n_bits

    def nor(a: str, b: str, out: str) -> LogicOp:
        return LogicOp("NOR", (a, b), out)

    prog: List[LogicOp] = [
        nor("m", "m", "nm"),                         # nm <- NOT m
        nor(_bit(n - 1), _bit(n - 1), "s"),          # s  <- NOT old MSB
    ]
    for i in range(n - 1, 0, -1):                    # forward shifts
        prog += [
            nor(_bit(i - 1), _bit(i - 1), "t1"),     # t1 <- NOT b[i-1]
            nor("nm", "t1", "o1"),                   # o1 <- m AND b[i-1]
            nor(_bit(i), _bit(i), "t2"),             # t2 <- NOT b[i]
            nor("m", "t2", "o2"),                    # o2 <- NOT m AND b[i]
            nor("o1", "o2", "t1"),                   # t1 <- NOT(o1 OR o2)
            nor("t1", "t1", _bit(i)),                # b[i] <- o1 OR o2
        ]
    prog += [                                        # inverted feedback
        nor("s", "s", "t1"),                         # t1 <- old MSB
        nor("nm", "t1", "o1"),                       # o1 <- m AND NOT MSB'?
        nor(_bit(0), _bit(0), "t2"),
        nor("m", "t2", "o2"),                        # o2 <- NOT m AND b0
        nor("o1", "o2", "t1"),
        nor("t1", "t1", _bit(0)),
    ]
    prog += [                                        # overflow checking
        nor("s", _bit(n - 1), "o1"),                 # old MSB AND NOT new
        nor("On", "o1", "t1"),
        nor("t1", "t1", "On"),
    ]
    return prog


def magic_op_count(n_bits: int) -> int:
    """Measured length of the generated MAGIC program (≈ ``6n + 5``)."""
    return len(magic_increment_program(n_bits))


def pinatubo_decrement_program(n_bits: int) -> List[LogicOp]:
    """Masked unit decrement + underflow for Pinatubo (Sec. 4.4).

    Backward shift (LSB-up order keeps sources intact) with inverted
    feed-forward into the MSB; underflow when the MSB transitions
    0 -> 1.
    """
    n = n_bits
    prog: List[LogicOp] = [
        LogicOp("LD", (_bit(0),), "t0"),             # t0 <- old LSB
        LogicOp("LD", (_bit(n - 1),), "t2"),         # t2 <- old MSB
    ]
    for i in range(0, n - 1):                        # backward shifts
        prog += [
            LogicOp("AND", ("m", _bit(i + 1)), "o1"),
            LogicOp("AND", ("!m", _bit(i)), "o2"),
            LogicOp("OR", ("o1", "o2"), _bit(i)),
        ]
    prog += [                                        # inverted feed-forward
        LogicOp("AND", ("m", "!t0"), "o1"),
        LogicOp("AND", ("!m", _bit(n - 1)), "o2"),
        LogicOp("OR", ("o1", "o2"), _bit(n - 1)),
    ]
    prog += [                                        # underflow checking
        LogicOp("AND", ("!t2", _bit(n - 1)), "o1"),  # NOT old AND new MSB
        LogicOp("OR", ("On", "o1"), "On"),
    ]
    return prog
