"""μProgram ISA: the AAP/AP intermediate representation, executable
counting templates (Fig. 6b / 13a), majority-inverter graphs with Ambit
lowering, and NVM (Pinatubo / MAGIC) backends."""

from repro.isa.microprogram import MicroOp, MicroProgram, aap, ap
from repro.isa.mig import CONST0, CONST1, MIG
from repro.isa.codegen import (CommandStream, MicroProgramGenerator,
                               generation_throughput_estimate)
from repro.isa.nvm import (LogicOp, MagicMachine, PinatuboMachine,
                           magic_increment_program, magic_op_count,
                           pinatubo_decrement_program,
                           pinatubo_increment_program, pinatubo_op_count)
from repro.isa.synthesis import LoweringError, lower_to_ambit
from repro.isa.trace import (CompiledTrace, compile_trace, fusion_disabled,
                             fusion_enabled)
from repro.isa.templates import (carry_resolve_program, kary_increment_program,
                                 masked_update_ops, overflow_check_ops,
                                 protected_masked_update_ops,
                                 row_clear_program, row_copy_program,
                                 underflow_check_ops)

__all__ = [
    "MicroOp", "MicroProgram", "aap", "ap",
    "CONST0", "CONST1", "MIG",
    "CommandStream", "MicroProgramGenerator",
    "generation_throughput_estimate",
    "LogicOp", "MagicMachine", "PinatuboMachine",
    "magic_increment_program", "magic_op_count",
    "pinatubo_decrement_program",
    "pinatubo_increment_program", "pinatubo_op_count",
    "LoweringError", "lower_to_ambit",
    "CompiledTrace", "compile_trace", "fusion_disabled", "fusion_enabled",
    "carry_resolve_program", "kary_increment_program", "masked_update_ops",
    "overflow_check_ops", "protected_masked_update_ops",
    "row_clear_program", "row_copy_program", "underflow_check_ops",
]
