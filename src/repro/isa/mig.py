"""Majority-Inverter Graphs (paper Sec. 4.2, Fig. 6a; Amarù et al. [34]).

A MIG is a DAG of 3-input majority nodes with optionally complemented
edges.  It is the natural IR for Ambit-style CIM because MAJ3 is the
hardware primitive and NOT is free on dual-contact cells.  This
implementation provides structural hashing plus the classic
simplification axioms applied eagerly at construction:

* majority:      ``M(x, x, y) = x``, ``M(x, ~x, y) = y``
* complement:    ``M(~x, ~y, ~z) = ~M(x, y, z)`` (canonicalized so at
  most one child edge is complemented)
* commutativity: children are stored sorted

Literals are ints: ``2 * node_id + complemented``.  Node 0 is the
constant 0; primary inputs are nodes ``1 .. n_inputs``.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

import numpy as np

__all__ = ["MIG", "CONST0", "CONST1"]

CONST0 = 0  #: literal for constant false
CONST1 = 1  #: literal for constant true


def _negate(lit: int) -> int:
    return lit ^ 1


class MIG:
    """A majority-inverter graph over ``n_inputs`` primary inputs."""

    def __init__(self, n_inputs: int):
        if n_inputs < 0:
            raise ValueError("n_inputs must be non-negative")
        self.n_inputs = n_inputs
        # node id -> (a, b, c) child literals; only internal nodes stored.
        self._children: Dict[int, Tuple[int, int, int]] = {}
        self._hash: Dict[Tuple[int, int, int], int] = {}
        self._next_node = n_inputs + 1

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def input_lit(self, index: int) -> int:
        """Literal of primary input ``index`` (0-based)."""
        if not 0 <= index < self.n_inputs:
            raise IndexError(f"input {index} out of range")
        return 2 * (index + 1)

    def maj(self, a: int, b: int, c: int) -> int:
        """Majority of three literals with eager simplification."""
        a, b, c = sorted((a, b, c))
        # M(x, x, y) = x
        if a == b or b == c:
            return b
        # M(x, ~x, y) = y
        if a == _negate(b):
            return c
        if b == _negate(c):
            return a
        if a == _negate(c):  # pragma: no cover - impossible when sorted
            return b
        # Canonicalize: at most one complemented child edge.
        n_compl = (a & 1) + (b & 1) + (c & 1)
        flip = n_compl >= 2
        if flip:
            a, b, c = sorted((_negate(a), _negate(b), _negate(c)))
        key = (a, b, c)
        node = self._hash.get(key)
        if node is None:
            node = self._next_node
            self._next_node += 1
            self._children[node] = key
            self._hash[key] = node
        lit = 2 * node
        return _negate(lit) if flip else lit

    def and_(self, a: int, b: int) -> int:
        """AND as ``M(0, a, b)`` (paper Fig. 6a)."""
        return self.maj(CONST0, a, b)

    def or_(self, a: int, b: int) -> int:
        """OR as ``M(1, a, b)``."""
        return self.maj(CONST1, a, b)

    def not_(self, a: int) -> int:
        """Complement: free edge attribute."""
        return _negate(a)

    def xor_(self, a: int, b: int) -> int:
        """XOR synthesized from the OR/AND pair of Sec. 6.1."""
        ir1 = self.or_(a, b)
        ir2 = self.and_(a, b)
        return self.and_(ir1, self.not_(ir2))

    def mux(self, sel: int, on_true: int, on_false: int) -> int:
        """``sel ? on_true : on_false`` -- the masked-update primitive."""
        return self.or_(self.and_(sel, on_true),
                        self.and_(self.not_(sel), on_false))

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def children(self, node: int) -> Tuple[int, int, int]:
        return self._children[node]

    def is_input(self, node: int) -> bool:
        return 1 <= node <= self.n_inputs

    def reachable(self, outputs: Sequence[int]) -> Set[int]:
        """Internal nodes reachable from the given output literals."""
        seen: Set[int] = set()
        stack = [lit >> 1 for lit in outputs]
        while stack:
            node = stack.pop()
            if node in seen or node == 0 or self.is_input(node):
                continue
            seen.add(node)
            stack.extend(lit >> 1 for lit in self._children[node])
        return seen

    def topo_order(self, outputs: Sequence[int]) -> List[int]:
        """Reachable internal nodes in dependency order."""
        keep = self.reachable(outputs)
        return sorted(keep)  # node ids are allocated in topological order

    def maj_count(self, outputs: Sequence[int]) -> int:
        """MAJ3 gates needed for these outputs (after simplification)."""
        return len(self.reachable(outputs))

    def inverter_count(self, outputs: Sequence[int]) -> int:
        """Complemented edges among reachable nodes plus output edges."""
        count = sum(lit & 1 for lit in outputs)
        for node in self.reachable(outputs):
            count += sum(lit & 1 for lit in self._children[node])
        return count

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def evaluate(self, outputs: Sequence[int],
                 inputs: np.ndarray) -> np.ndarray:
        """Evaluate output literals on ``[n_inputs, n_lanes]`` bit rows."""
        inputs = np.asarray(inputs, dtype=np.uint8)
        if inputs.shape[0] != self.n_inputs:
            raise ValueError("input row count mismatch")
        lanes = inputs.shape[1]
        values: Dict[int, np.ndarray] = {0: np.zeros(lanes, dtype=np.uint8)}
        for i in range(self.n_inputs):
            values[i + 1] = inputs[i]
        for node in self.topo_order(outputs):
            a, b, c = self._children[node]
            va = self._lit_value(a, values)
            vb = self._lit_value(b, values)
            vc = self._lit_value(c, values)
            values[node] = ((va.astype(np.int16) + vb + vc) >= 2).astype(
                np.uint8)
        return np.stack([self._lit_value(lit, values) for lit in outputs])

    @staticmethod
    def _lit_value(lit: int, values: Dict[int, np.ndarray]) -> np.ndarray:
        v = values[lit >> 1]
        return (1 - v) if (lit & 1) else v
