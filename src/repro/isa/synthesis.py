"""Lower a MIG to an executable Ambit μProgram (Secs. 4.2, 5.1).

Every reachable MAJ node stages its three operands into the B11 triple
``{T0, T1, DCC0}`` -- T0/T1 take plain operands, DCC0 absorbs the (at
most one, thanks to MIG canonicalization) complemented operand through
its negated port -- executes one ``AP B11`` and copies the result to a
dedicated D-group scratch row.  This is the generic five-ops-per-gate
lowering; the hand-scheduled templates in :mod:`repro.isa.templates`
show what MIG-level optimization buys on the counting kernels (the
paper's Fig. 6 flow).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.isa.microprogram import MicroOp, MicroProgram, aap, ap
from repro.isa.mig import MIG

__all__ = ["lower_to_ambit", "LoweringError"]


class LoweringError(RuntimeError):
    """The MIG cannot be lowered with the rows provided."""


def _stage(ops: List[MicroOp], slot: str, row, negated: bool) -> None:
    """Load one operand into a B11 slot.

    ``slot`` is "T0", "T1" or "DCC0"; only the DCC0 slot can complement.
    """
    if slot == "T0":
        target = "B0"
    elif slot == "T1":
        target = "B1"
    else:
        target = "B5" if negated else "B4"
    if negated and slot != "DCC0":
        raise LoweringError("only the DCC0 slot supports complementation")
    ops.append(aap(row, target))


def lower_to_ambit(mig: MIG, outputs: Sequence[int],
                   input_rows: Sequence, output_rows: Sequence,
                   scratch_rows: Sequence,
                   name: str = "mig") -> MicroProgram:
    """Emit a μProgram computing ``outputs`` into ``output_rows``.

    ``input_rows[i]`` holds primary input ``i``; ``scratch_rows`` must
    provide one row per reachable MAJ node.  Constant operands come from
    the C-group.  Returns an executable :class:`MicroProgram`.
    """
    if len(input_rows) != mig.n_inputs:
        raise LoweringError("need one row per primary input")
    if len(outputs) != len(output_rows):
        raise LoweringError("outputs and output_rows length mismatch")

    order = mig.topo_order(outputs)
    if len(order) > len(scratch_rows):
        raise LoweringError(
            f"MIG has {len(order)} gates but only {len(scratch_rows)} "
            "scratch rows were provided")
    node_row: Dict[int, object] = {
        node: scratch_rows[i] for i, node in enumerate(order)}

    def row_of(node: int):
        if node == 0:
            return "C0"
        if mig.is_input(node):
            return input_rows[node - 1]
        return node_row[node]

    ops: List[MicroOp] = []
    for node in order:
        # Normalize each child to (row, negated); a complemented constant
        # becomes a plain load from the other C-group row.
        operands = []
        for lit in mig.children(node):
            if lit == 0:
                operands.append(("C0", False))
            elif lit == 1:
                operands.append(("C1", False))
            else:
                operands.append((row_of(lit >> 1), bool(lit & 1)))
        negated = [o for o in operands if o[1]]
        plain = [o for o in operands if not o[1]]
        if len(negated) > 1:  # pragma: no cover - canonical form forbids
            raise LoweringError("more than one complemented child")
        # The (at most one) complemented operand takes the DCC0 slot.
        if negated:
            dcc_row, dcc_neg = negated[0]
        else:
            dcc_row, dcc_neg = plain.pop()
        _stage(ops, "T0", plain[0][0], negated=False)
        _stage(ops, "T1", plain[1][0], negated=False)
        _stage(ops, "DCC0", dcc_row, negated=dcc_neg)
        ops.append(ap("B11"))
        ops.append(aap("B0", node_row[node]))

    # Copy (possibly complemented) outputs to their destination rows.
    for lit, out_row in zip(outputs, output_rows):
        src = row_of(lit >> 1)
        if lit & 1:
            ops.append(aap(src, "B8"))      # DCC0 <- NOT src
            ops.append(aap("B4", out_row))
        else:
            ops.append(aap(src, out_row))
    return MicroProgram(name, tuple(ops))
