"""Ahead-of-time trace compilation of fault-free μPrograms (Sec. 5.1).

The paper's throughput story rests on one broadcast command stream
driving thousands of lanes at once.  The word-parallel backend already
executes each AAP/AP as a handful of bulk bitwise NumPy calls, but the
*stream* is still interpreted one op at a time in Python -- and a
fault-free increment program is pure straight-line bitwise dataflow, so
interpreter overhead, not bitwise work, bounds the hot path.

:func:`compile_trace` lowers a resolved μProgram into a
:class:`CompiledTrace`: a small SSA dataflow IR over physical rows.

* **Copy aliasing** -- a single-source ``AAP`` (RowClone) binds the
  destination rows to the source *value*; copies cost nothing at
  replay.  Dual-contact destinations alias the complemented value
  through a polarity bit instead of materializing a NOT.
* **Constant folding** -- reads of the ``C0``/``C1`` control rows are
  known constants; a majority with two constant (or two identical, or
  two complementary) operands folds to a plain value reference.
* **Dead-write elimination** -- only values transitively needed by the
  subarray's *final* row bindings are computed; overwritten
  intermediates vanish.
* **Level scheduling** -- surviving majority nodes are grouped into
  dependence levels; one level replays as a single fancy-indexed
  gather, one vectorized three-way majority over all nodes in the
  level, and one contiguous scatter -- no per-op Python loop.

Replay is *bit-exact* against the interpreted path, including the
don't-care tail bits of the last packed word, because every fold above
is a per-bit identity and the executed word operations are the same
ones the interpreter would have issued.  Command accounting is exact
too: the trace carries the program's precomputed AAP/AP/activation
totals, so ``measured_ops``, ``stats()`` and the serving telemetry
cannot tell which path ran.

Fusion is *fault-aware*: fault injection is defined per activation --
one ``FaultModel.corrupt`` draw sequence per sensed row in program
order -- but ``corrupt`` draws its Bernoulli masks from shapes and
flags only, never from the sensed data.  A fault trace therefore
pre-draws the whole program's flip masks in original op order (the
**fault pre-pass**, one batched ``Generator.random`` call consuming
exactly the stream the interpreter would) and applies them per node
during replay; only the margin-aware *selection* between the CIM and
read-rate masks is data-dependent, and that is computed from the
sensed words at replay time.  Replay under an active fault model is
therefore bit-, counter- and fault-stream-identical to the interpreted
path and to the bit-level backend (``tests/test_fault_fusion_parity.
py`` pins all three).  :func:`fusion_disabled` is the explicit escape
hatch (benchmark baselines, differential tests).

>>> from repro.isa.microprogram import MicroProgram, aap, ap
>>> from repro.dram.wordline import WordlineSubarray
>>> sa = WordlineSubarray(n_data_rows=2, n_cols=8)
>>> prog = MicroProgram("and", (aap(0, "B8"), aap("C0", "B9"),
...                             aap(1, "B2"), ap("B12"), aap("B2", 1)))
>>> trace = compile_trace(prog, sa.resolve)
>>> trace.n_nodes, trace.n_aap, trace.n_ap       # one surviving MAJ
(1, 4, 1)
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.dram.ambit import _C0, _C1

__all__ = ["CompiledTrace", "CompiledFaultTrace", "FaultSpec",
           "TraceScratch", "compile_trace", "fusion_enabled",
           "fusion_disabled", "MegaProgram", "MegaTrace",
           "MegaFaultTrace", "compile_megatrace", "megatrace_enabled",
           "megatrace_disabled"]

#: A value reference: (SSA value id, complemented).
_Ref = Tuple[int, bool]

#: Row width (in 64-bit words) above which replay switches from the
#: level-batched gather strategy to per-node view execution: narrow
#: rows are NumPy-call-overhead bound (batch them), wide rows are
#: memory-bandwidth bound (avoid the gather copies).
_NODE_EXEC_WORDS = 256

#: Process-wide fusion switch (see :func:`fusion_disabled`).
_fusion_on = True

#: Process-wide megatrace switch (see :func:`megatrace_disabled`).
#: Independent of the fusion switch so the differential harness can pin
#: three word-backend regimes: megatrace replay, per-μProgram fused
#: replay (megatraces off), and per-op interpretation (fusion off).
_megatrace_on = True

# repro.dram.wordline transitively imports this module, so its packing
# helper is resolved lazily at the first fault replay and cached.
_pack_rows = None


def _packer():
    global _pack_rows
    if _pack_rows is None:
        from repro.dram.wordline import pack_rows
        _pack_rows = pack_rows
    return _pack_rows


def fusion_enabled() -> bool:
    """Whether fault-free μProgram replay may use compiled traces."""
    return _fusion_on


@contextmanager
def fusion_disabled():
    """Temporarily force the interpreted per-op path.

    The differential escape hatch: parity tests and the trace-fusion
    benchmark run the same programs with and without fusion and pin the
    results (cell states *and* counters) identical.

    >>> with fusion_disabled():
    ...     fusion_enabled()
    False
    >>> fusion_enabled()
    True
    """
    global _fusion_on
    previous = _fusion_on
    _fusion_on = False
    try:
        yield
    finally:
        _fusion_on = previous


def megatrace_enabled() -> bool:
    """Whether whole-plan replay sequences may stitch into megatraces."""
    return _megatrace_on


@contextmanager
def megatrace_disabled():
    """Temporarily force per-μProgram execution of wave sequences.

    The megatrace-level escape hatch: with megatraces off (but fusion
    on) a coalesced wave sequence falls back to one fused μProgram
    replay per wave -- the PR 5 behavior -- which is what the
    differential parity harness and the megatrace benchmark compare
    against.  Composes with :func:`fusion_disabled`, which disables
    both levels.

    >>> with megatrace_disabled():
    ...     megatrace_enabled()
    False
    >>> megatrace_enabled()
    True
    """
    global _megatrace_on
    previous = _megatrace_on
    _megatrace_on = False
    try:
        yield
    finally:
        _megatrace_on = previous


@dataclass(frozen=True)
class FaultSpec:
    """Static fault-regime signature a fault trace is compiled against.

    Captures exactly the :class:`~repro.dram.faults.FaultModel` fields
    that shape ``corrupt``'s *draw sequence* (rates and margin
    awareness) -- everything else about injection is either structural
    (which activations sense multiple rows) or data-dependent and
    resolved at replay.  The subarray re-derives the spec on every
    ``run_program`` call and recompiles if the model's knobs moved
    under a cached trace.

    >>> from repro.dram.faults import FaultModel
    >>> FaultSpec.of(FaultModel(p_cim=1e-2)).active
    True
    >>> FaultSpec.of(FaultModel()) is None
    True
    """

    p_cim: float
    p_read: float
    margin_aware: bool

    @classmethod
    def of(cls, fault_model) -> "FaultSpec | None":
        """The model's spec, or ``None`` when it can never flip a bit."""
        if fault_model.p_cim <= 0.0 and fault_model.p_read <= 0.0:
            return None
        return cls(float(fault_model.p_cim), float(fault_model.p_read),
                   bool(fault_model.margin_aware))

    @property
    def active(self) -> bool:
        return self.p_cim > 0.0 or self.p_read > 0.0

    @property
    def multi_mode(self) -> "str | None":
        """How a multi-row activation's flip mask is built.

        Mirrors the branch structure of ``FaultModel.corrupt`` exactly:

        * ``None`` -- ``p_cim == 0``: multi-row senses are exact (no
          draw, no flips);
        * ``"all"`` -- one CIM draw flips unconditionally (margin
          awareness off, or ``p_read >= p_cim``);
        * ``"contested"`` -- margin-aware with ``p_read == 0``: one CIM
          draw, applied only to contested columns;
        * ``"select"`` -- margin-aware with ``0 < p_read < p_cim``:
          a CIM draw *and* a read-rate draw, selected per column by the
          contested flags computed from the sensed words.
        """
        if self.p_cim <= 0.0:
            return None
        if not self.margin_aware or self.p_read >= self.p_cim:
            return "all"
        return "select" if self.p_read > 0.0 else "contested"


@dataclass(frozen=True)
class _Level:
    """One dependence level: ``hi - lo`` independent majority nodes.

    ``idx[3 * L]`` holds the flat operand slot of each node's three
    inputs (operand polarity is encoded in the slot id -- a complement
    lives ``n_slots`` above its value), and the outputs land
    contiguously in slots ``[lo, hi)``.  The first ``n_mirror`` nodes
    of the level are used complemented somewhere downstream, so their
    mirror slots are materialized with a single prefix invert.
    """

    lo: int
    hi: int
    idx: np.ndarray
    n_mirror: int


class TraceScratch:
    """Replay scratch shared by every compiled trace of one subarray.

    One growable pair of buffers -- value slots (``vals``) and
    auxiliary rows (gather/temporary/readout, ``aux``) -- serves every
    trace the owning subarray replays, so a subarray's scratch
    footprint is one buffer set, not one per cached trace.  Buffers
    only ever grow; ``version`` bumps on every (re)allocation so traces
    know to rebuild their precomputed views.
    """

    __slots__ = ("version", "n_words", "cap_slots", "cap_aux", "vals",
                 "aux")

    def __init__(self):
        self.version = 0
        self.n_words = -1
        self.cap_slots = 0
        self.cap_aux = 0
        self.vals = None
        self.aux = None

    def ensure(self, n_slots: int, n_aux: int, n_words: int) -> None:
        """Grow the buffers to cover a trace's requirements."""
        if (n_words == self.n_words and n_slots <= self.cap_slots
                and n_aux <= self.cap_aux):
            return
        self.cap_slots = max(self.cap_slots, 64,
                             1 << (max(n_slots, 1) - 1).bit_length())
        self.cap_aux = max(self.cap_aux, 16,
                           1 << (max(n_aux, 1) - 1).bit_length())
        self.n_words = n_words
        self.vals = np.empty((self.cap_slots, n_words), np.uint64)
        self.aux = np.empty((self.cap_aux, n_words), np.uint64)
        self.version += 1


@dataclass(eq=False)
class CompiledTrace:
    """A μProgram lowered to level-scheduled batched word operations.

    Execution staging: one gather of the live input rows into the value
    buffer, one batched majority step per dependence level, one final
    scatter of surviving row bindings back into the cell matrix.  The
    value buffer is mirrored -- slot ``n_slots + s`` holds the
    complement of slot ``s`` (materialized lazily, only for values some
    consumer reads negated) -- so DCC port polarity costs an index, not
    an XOR pass.  Every view the replay loop touches is precomputed
    into a shared :class:`TraceScratch`, and every word operation
    writes into preallocated ``out=`` buffers: a replay allocates
    nothing on the hot path.

    Counter totals (``n_aap``, ``n_ap``, ``n_activations``,
    ``n_multi``) replicate exactly what the interpreted path would have
    accrued.
    """

    input_rows: np.ndarray           # gathered into slots [0, n_inputs)
    n_input_mirror: int              # prefix of inputs used complemented
    n_slots: int
    levels: Tuple[_Level, ...]
    out_rows: np.ndarray             # cells[rows] <- vals[slots]
    out_slots: np.ndarray            # (polarity encoded in the slot id)
    n_aap: int
    n_ap: int
    n_activations: int
    n_multi: int

    #: Dispatch tag for ``WordlineSubarray.run_program`` (fault traces
    #: carry ``faulty = True`` and take the fault model at replay).
    faulty = False

    def __post_init__(self):
        self._plan = None            # cached views into a TraceScratch
        self._own_scratch = None     # fallback when none is supplied

    @property
    def n_inputs(self) -> int:
        return int(self.input_rows.size)

    @property
    def n_nodes(self) -> int:
        """Majority nodes surviving folding + dead-write elimination."""
        return self.n_slots - self.n_inputs

    @property
    def n_levels(self) -> int:
        return len(self.levels)

    def _fill_plan(self, vals: np.ndarray) -> tuple:
        """Input-fill segments: ``(from_stream, indices, dst_view)``.

        The base trace gathers every live input from the cell matrix in
        one contiguous ``take``; :class:`MegaTrace` overrides this with
        its mixed cell/stream fill segments.
        """
        return ((False, self.input_rows,
                 vals[:self.input_rows.size]),)

    def _build_plan(self, scratch: TraceScratch, n_words: int) -> tuple:
        """Width-specialized replay plan: all views precomputed.

        Two strategies, chosen by row width:

        * **narrow rows** (call-overhead bound): each dependence level
          executes as one fancy-indexed gather plus one four-call
          vectorized majority over all its nodes;
        * **wide rows** (``>= _NODE_EXEC_WORDS``, bandwidth bound):
          each node executes on direct row *views* of the value buffer
          -- no gather copies at all, operand reads stream straight
          from the slots.
        """
        batched = n_words < _NODE_EXEC_WORDS
        width_max = max([1] + [level.hi - level.lo
                               for level in self.levels])
        n_out = self.out_rows.size
        n_aux = (5 * width_max + n_out) if batched else (2 + n_out)
        scratch.ensure(2 * self.n_slots, n_aux, n_words)
        vals, aux = scratch.vals, scratch.aux
        mirror = self.n_slots
        steps = []
        if batched:
            gather = aux[:3 * width_max]
            t1 = aux[3 * width_max:4 * width_max]
            t2 = aux[4 * width_max:5 * width_max]
            out = aux[5 * width_max:5 * width_max + n_out]
            for level in self.levels:
                lo, hi = level.lo, level.hi
                width = hi - lo
                g = gather[:3 * width]
                m = level.n_mirror
                steps.append((
                    level.idx, g, g[:width], g[width:2 * width],
                    g[2 * width:], t1[:width], t2[:width], vals[lo:hi],
                    vals[lo:lo + m] if m else None,
                    vals[mirror + lo:mirror + lo + m] if m else None))
        else:
            u, v = aux[0], aux[1]
            out = aux[2:2 + n_out]
            for level in self.levels:
                lo, width = level.lo, level.hi - level.lo
                idx = level.idx
                for j in range(width):
                    steps.append((
                        vals[idx[j]], vals[idx[width + j]],
                        vals[idx[2 * width + j]], u, v, vals[lo + j],
                        vals[mirror + lo + j]
                        if j < level.n_mirror else None))
        im = self.n_input_mirror
        plan = (scratch, scratch.version, batched, vals,
                self._fill_plan(vals),
                vals[:im] if im else None,
                vals[mirror:mirror + im] if im else None,
                tuple(steps), out)
        self._plan = plan
        return plan

    def execute(self, cells: np.ndarray, scratch: TraceScratch = None,
                stream: np.ndarray = None) -> None:
        """Replay the trace against a packed ``uint64`` cell matrix."""
        if scratch is None:
            if self._own_scratch is None:
                self._own_scratch = TraceScratch()
            scratch = self._own_scratch
        plan = self._plan
        if (plan is None or plan[0] is not scratch
                or plan[1] != scratch.version
                or scratch.n_words != cells.shape[1]):
            plan = self._build_plan(scratch, cells.shape[1])
        _, _, batched, vals, fills, im_src, im_dst, steps, out = plan
        take, and_, or_, invert = (np.take, np.bitwise_and,
                                   np.bitwise_or, np.invert)
        for from_stream, idx, dst in fills:
            if dst.shape[0]:
                take(stream if from_stream else cells, idx, axis=0,
                     out=dst)
        if im_dst is not None:
            invert(im_src, out=im_dst)
        if batched:
            for idx, g, a, b, c, u, v, dst, m_src, m_dst in steps:
                take(vals, idx, axis=0, out=g)
                # MAJ3 in four ufunc calls: (a & (b | c)) | (b & c).
                or_(b, c, out=u)
                and_(a, u, out=u)
                and_(b, c, out=v)
                or_(u, v, out=dst)
                if m_dst is not None:
                    invert(m_src, out=m_dst)
        else:
            for a, b, c, u, v, dst, m_dst in steps:
                or_(b, c, out=u)
                and_(a, u, out=u)
                and_(b, c, out=v)
                or_(u, v, out=dst)
                if m_dst is not None:
                    invert(dst, out=m_dst)
        if out.shape[0]:
            take(vals, self.out_slots, axis=0, out=out)
            cells[self.out_rows] = out


@dataclass(eq=False)
class CompiledFaultTrace:
    """A μProgram lowered for replay under an *active* fault model.

    Differences from the fault-free :class:`CompiledTrace`:

    * **No folding of faulty activations.**  Every multi-row sense
      (when ``p_cim > 0``) and every single-port sense (when
      ``p_read > 0``) yields fresh randomness, so each becomes a real
      node whose output is the ideal value XOR its flip mask; the
      corrupted value is written back through every activated port
      (read disturb), exactly as the interpreter does.  With
      ``p_read == 0`` single-port senses stay exact, so RowClone
      copies still alias for free.
    * **No dead-node elimination.**  ``FaultModel.injected`` counts
      the flips of *every* activation, and under margin-aware
      selection that count depends on the contested flags of the
      sensed data -- so every faulty node is kept live and computed.
    * **The fault pre-pass.**  Each replay first draws the program's
      complete flip-mask block in original op order -- one
      ``Generator.random((n_draws, n_cols))`` call, which consumes
      the generator's stream exactly as the interpreter's sequential
      per-activation ``random(n_cols)`` calls would (pinned by
      ``tests/test_fault_fusion_parity.py``) -- thresholds it
      per-row (CIM vs read rate) and packs it to ``uint64``.  Replay
      then applies mask rows per node, computing the margin-aware
      contested-column selection from the sensed words.

    ``execute`` returns the number of injected flips (and adds it to
    ``fault_model.injected``), so the subarray's accounting matches
    the interpreted path bit for bit.
    """

    spec: FaultSpec
    input_rows: np.ndarray           # gathered into slots [0, n_inputs)
    n_input_mirror: int              # prefix of inputs used complemented
    n_slots: int
    steps: Tuple[tuple, ...]         # per-node specs, creation order
    out_rows: np.ndarray             # cells[rows] <- vals[slots]
    out_slots: np.ndarray            # (polarity encoded in the slot id)
    draw_thresholds: np.ndarray      # per pre-pass draw row, op order
    n_aap: int
    n_ap: int
    n_activations: int
    n_multi: int

    #: Dispatch tag for ``WordlineSubarray.run_program``.
    faulty = True

    def __post_init__(self):
        # Nodes whose flip mask is data-dependent (margin-aware
        # contested selection): they stage masks in the scratch for
        # one batched popcount per replay.
        self._n_masked = (sum(1 for s in self.steps if s[0] == "mj")
                          if self.spec.multi_mode in ("contested",
                                                      "select") else 0)

    @property
    def n_inputs(self) -> int:
        return int(self.input_rows.size)

    @property
    def n_nodes(self) -> int:
        return len(self.steps)

    @property
    def n_draws(self) -> int:
        """RNG draw rows one replay consumes (== interpreter draws)."""
        return int(self.draw_thresholds.size)

    def _draw_flips(self, fault_model, n_cols: int) -> np.ndarray:
        """Fault pre-pass: the whole program's draws in op order."""
        uniform = fault_model.predraw(self.draw_thresholds.size, n_cols)
        return _packer()(uniform < self.draw_thresholds[:, None])

    def _fill_inputs(self, cells: np.ndarray, stream, vals) -> None:
        """Gather the live input rows into the value-slot prefix."""
        n_in = self.input_rows.size
        if n_in:
            np.take(cells, self.input_rows, axis=0, out=vals[:n_in])

    def execute(self, cells: np.ndarray, scratch: TraceScratch,
                fault_model, n_cols: int, stream: np.ndarray = None) -> int:
        """Replay against packed cells, injecting one fresh fault epoch.

        Returns the flip count (``corrupt``'s ``injected`` delta).
        """
        n_words = cells.shape[1]
        n_out = self.out_rows.size
        n_masked = self._n_masked        # nodes with data-dependent masks
        scratch.ensure(2 * self.n_slots, 3 + n_out + n_masked, n_words)
        vals, aux = scratch.vals, scratch.aux
        mirror = self.n_slots
        flips = row_pop = None
        if self.draw_thresholds.size:
            flips = self._draw_flips(fault_model, n_cols)
            # Flip counts of the raw masks (tails are zero by packing):
            # nodes that apply a draw row unmodified charge these.
            row_pop = np.bitwise_count(flips).sum(axis=1)
        self._fill_inputs(cells, stream, vals)
        im = self.n_input_mirror
        if im:
            np.invert(vals[:im], out=vals[mirror:mirror + im])
        t1, t2, t3 = aux[0], aux[1], aux[2]
        masked = aux[3 + n_out:3 + n_out + n_masked]
        band, bor, bxor = np.bitwise_and, np.bitwise_or, np.bitwise_xor
        mode = self.spec.multi_mode
        injected = 0
        n_sel = 0
        for step in self.steps:
            kind = step[0]
            if kind == "rd":
                _, src, dst, mir, rrow = step
                bxor(vals[src], flips[rrow], out=vals[dst])
                injected += int(row_pop[rrow])
            else:
                _, a, b, c, dst, mir, crow, rrow = step
                va, vb, vc = vals[a], vals[b], vals[c]
                # MAJ3 ideal value: (a & (b | c)) | (b & c).
                bor(vb, vc, out=t1)
                band(va, t1, out=t1)
                band(vb, vc, out=t2)
                bor(t1, t2, out=t1)
                if kind == "mx":                  # exact multi sense
                    vals[dst][...] = t1
                    if mir:
                        np.invert(vals[dst], out=vals[mirror + dst])
                    continue
                if mode == "all":
                    mask = flips[crow]
                    injected += int(row_pop[crow])
                else:
                    # Contested columns: any disagreeing operand pair.
                    # Data-dependent masks land in the ``masked``
                    # block and are popcounted in one batched call.
                    bxor(va, vb, out=t2)
                    bxor(va, vc, out=t3)
                    bor(t2, t3, out=t2)
                    mask = masked[n_sel]
                    n_sel += 1
                    if mode == "contested":
                        band(t2, flips[crow], out=mask)
                    else:  # "select": read ^ (contested & (cim^read))
                        bxor(flips[crow], flips[rrow], out=t3)
                        band(t2, t3, out=t3)
                        bxor(t3, flips[rrow], out=mask)
                bxor(t1, mask, out=vals[dst])
            if mir:
                np.invert(vals[dst], out=vals[mirror + dst])
        if n_sel:
            injected += int(np.bitwise_count(masked[:n_sel]).sum())
        if n_out:
            out = aux[3:3 + n_out]
            np.take(vals, self.out_slots, axis=0, out=out)
            cells[self.out_rows] = out
        fault_model.injected += injected
        return injected


class _Builder:
    """Value-numbering walk over a resolved op stream."""

    def __init__(self):
        # Value defs: ("in", row) or ("maj", a_ref, b_ref, c_ref).
        self.defs: List[tuple] = []
        # Current binding of every physical row touched or read.
        self.current: Dict[int, _Ref] = {}
        # Initial (trace-entry) input value of each read-before-write row.
        self.inputs: Dict[int, int] = {}

    # -- values --------------------------------------------------------
    def read(self, row: int) -> _Ref:
        ref = self.current.get(row)
        if ref is None:
            vid = self.inputs.get(row)
            if vid is None:
                vid = len(self.defs)
                self.defs.append(("in", row))
                self.inputs[row] = vid
            ref = (vid, False)
            self.current[row] = ref
        return ref

    def const_of(self, ref: _Ref):
        """0/1 when ``ref`` is a known constant, else ``None``.

        Only trace-entry reads of the C0/C1 control rows are constant:
        the engine never writes them, and a (pathological) in-trace
        overwrite simply rebinds the row to a non-constant value.
        """
        definition = self.defs[ref[0]]
        if definition[0] != "in":
            return None
        if definition[1] == _C0:
            return 1 if ref[1] else 0
        if definition[1] == _C1:
            return 0 if ref[1] else 1
        return None

    def maj(self, a: _Ref, b: _Ref, c: _Ref) -> _Ref:
        """MAJ3 with per-bit-exact folds (identical / complement /
        two-constant operand pairs); falls back to a new node."""
        for x, y, z in ((a, b, c), (a, c, b), (b, c, a)):
            if x == y:
                return x                      # MAJ(v, v, w) = v
            if x == (y[0], not y[1]):
                return z                      # MAJ(v, ~v, w) = w
            cx, cy = self.const_of(x), self.const_of(y)
            if cx is not None and cy is not None:
                return x if cx == cy else z   # MAJ(k, k, w)=k; (0,1,w)=w
        vid = len(self.defs)
        self.defs.append(("maj", a, b, c))
        return (vid, False)

    def write(self, row: int, ref: _Ref, negated: bool) -> None:
        self.current[row] = (ref[0], ref[1] ^ negated)

    def rebind_stream(self, row: int, index: int) -> None:
        """Bind ``row`` to external stream input ``index``.

        Models a host write landing between stitched program segments
        (``load_mask_packed`` of the next wave's mask): the row's value
        becomes a fresh trace input gathered from the *stream* operand
        at replay, not from the cell matrix.  ``("ext", i)`` defs are
        deliberately opaque to :meth:`const_of` -- stream contents are
        never compile-time constants.
        """
        vid = len(self.defs)
        self.defs.append(("ext", index))
        self.current[row] = (vid, False)


def _walk_ops(builder: _Builder, ops, resolve: Callable) -> tuple:
    """Value-number a fault-free op stream; returns (aap, ap, multi).

    Shared by :func:`compile_trace` (one program) and
    :func:`compile_megatrace` (many stitched segments, one builder) --
    copy aliasing, constant folding and majority folds therefore work
    identically *across* μProgram boundaries.
    """
    n_aap = n_ap = n_multi = 0
    for op in ops:
        src_ports = resolve(op.src)
        if len(src_ports) == 1:
            row, neg = src_ports[0]
            ref = builder.read(row)
            sensed = (ref[0], ref[1] ^ neg)
        else:
            if len(src_ports) % 2 == 0:
                raise ValueError(
                    "simultaneous activation needs an odd row count for "
                    "a defined majority; use an AAP destination for "
                    "copies")
            operands = []
            for row, neg in src_ports[:3]:
                ref = builder.read(row)
                operands.append((ref[0], ref[1] ^ neg))
            sensed = builder.maj(*operands)
            n_multi += 1
            # Destructive write-back through every activated port.
            for row, neg in src_ports:
                builder.write(row, sensed, neg)
        if op.kind == "AAP":
            for row, neg in resolve(op.dst):
                builder.write(row, sensed, neg)
            n_aap += 1
        else:
            n_ap += 1
    return n_aap, n_ap, n_multi


def compile_trace(program, resolve: Callable, fault: FaultSpec = None):
    """Lower ``program`` (via ``resolve``: address -> port tuples) into a
    :class:`CompiledTrace` (or, under an active ``fault`` spec, a
    :class:`CompiledFaultTrace`).

    ``resolve`` is the word backend's address map
    (:meth:`~repro.dram.wordline.WordlineSubarray.resolve`): it returns
    ``((physical_row, negated), ...)`` port tuples.  Compilation mirrors
    the interpreted fault-free semantics op by op -- single-port senses
    are pure reads, multi-row senses are destructive majorities written
    back through every activated port, AAP destinations latch the
    sensed value through each port's polarity.  With a fault spec, the
    faulty activations additionally become XOR-flip nodes fed by the
    replay-time fault pre-pass (see :class:`CompiledFaultTrace`).
    """
    if fault is not None and fault.active:
        return _compile_fault(program, resolve, fault)
    builder = _Builder()
    n_aap, n_ap, n_multi = _walk_ops(builder, program.ops, resolve)

    # Final bindings: skip identity (row still holds its own entry value).
    finals: Dict[int, _Ref] = {}
    for row, ref in builder.current.items():
        if builder.defs[ref[0]] == ("in", row) and not ref[1]:
            continue
        finals[row] = ref

    # Dead-write elimination: walk back from the final bindings.
    live = set()
    stack = [ref[0] for ref in finals.values()]
    while stack:
        vid = stack.pop()
        if vid in live:
            continue
        live.add(vid)
        definition = builder.defs[vid]
        if definition[0] == "maj":
            stack.extend(ref[0] for ref in definition[1:])

    # Which live values does some consumer read complemented?  Their
    # mirror slots must be materialized at replay.
    mirrored = {ref[0] for ref in finals.values() if ref[1]}
    for vid in live:
        definition = builder.defs[vid]
        if definition[0] == "maj":
            mirrored.update(ref[0] for ref in definition[1:] if ref[1])

    # Slot assignment: live inputs first (mirror-needing prefix), then
    # nodes by (level, mirror-needing first) so each level's mirrors
    # materialize with one contiguous prefix invert.
    slot: Dict[int, int] = {}
    input_vids = [vid for vid in sorted(live)
                  if builder.defs[vid][0] == "in"]
    input_vids.sort(key=lambda vid: vid not in mirrored)
    input_rows = [builder.defs[vid][1] for vid in input_vids]
    for position, vid in enumerate(input_vids):
        slot[vid] = position
    n_input_mirror = sum(1 for vid in input_vids if vid in mirrored)
    depth: Dict[int, int] = {vid: 0 for vid in slot}
    by_level: Dict[int, List[int]] = {}
    for vid in sorted(live):                     # creation = program order
        definition = builder.defs[vid]
        if definition[0] != "maj":
            continue
        level = 1 + max(depth[ref[0]] for ref in definition[1:])
        depth[vid] = level
        by_level.setdefault(level, []).append(vid)
    next_slot = len(input_rows)
    level_specs: List[List[int]] = []
    for level in sorted(by_level):
        vids = sorted(by_level[level], key=lambda vid: vid not in mirrored)
        lo = next_slot
        for vid in vids:
            slot[vid] = next_slot
            next_slot += 1
        n_mirror = sum(1 for vid in vids if vid in mirrored)
        level_specs.append((lo, next_slot, n_mirror, vids))

    def flat_slot(ref: _Ref) -> int:
        """Operand slot with polarity encoded (+n_slots = complement)."""
        return slot[ref[0]] + (next_slot if ref[1] else 0)

    levels: List[_Level] = []
    for lo, hi, n_mirror, vids in level_specs:
        idx = np.empty(3 * len(vids), dtype=np.intp)
        for j, vid in enumerate(vids):
            for i, ref in enumerate(builder.defs[vid][1:]):
                idx[i * len(vids) + j] = flat_slot(ref)
        levels.append(_Level(lo, hi, idx, n_mirror))

    out_rows = np.asarray(sorted(finals), dtype=np.intp)
    out_slots = np.asarray([flat_slot(finals[row]) for row in out_rows],
                           dtype=np.intp)

    return CompiledTrace(
        input_rows=np.asarray(input_rows, dtype=np.intp),
        n_input_mirror=n_input_mirror,
        n_slots=next_slot,
        levels=tuple(levels),
        out_rows=out_rows,
        out_slots=out_slots,
        n_aap=n_aap,
        n_ap=n_ap,
        n_activations=2 * n_aap + n_ap,
        n_multi=n_multi)


def _walk_fault_ops(builder: _Builder, ops, resolve: Callable,
                    spec: FaultSpec, draw_kinds: List[str],
                    fault_meta: Dict[int, tuple]) -> tuple:
    """Value-number a faulty op stream; returns (aap, ap, multi).

    Appends one entry to ``draw_kinds`` per RNG draw the interpreter
    would take, in original op order -- callers stitching several
    segments through one builder pass the same lists back in, so the
    cross-segment draw schedule stays stream-identical to sequential
    execution.
    """
    n_aap = n_ap = n_multi = 0
    single_faulty = spec.p_read > 0.0
    multi_mode = spec.multi_mode
    for op in ops:
        src_ports = resolve(op.src)
        if len(src_ports) == 1:
            row, neg = src_ports[0]
            ref = builder.read(row)
            sensed = (ref[0], ref[1] ^ neg)
            if single_faulty:
                # Faulty plain read: value ^ read-rate flips, written
                # back through the port (read disturb), so downstream
                # consumers see the corrupted value -- no copy alias.
                vid = len(builder.defs)
                builder.defs.append(("rd", sensed))
                fault_meta[vid] = (None, len(draw_kinds))
                draw_kinds.append("read")
                sensed = (vid, False)
                builder.write(row, sensed, neg)
        else:
            if len(src_ports) % 2 == 0:
                raise ValueError(
                    "simultaneous activation needs an odd row count for "
                    "a defined majority; use an AAP destination for "
                    "copies")
            operands = []
            for row, neg in src_ports[:3]:
                ref = builder.read(row)
                operands.append((ref[0], ref[1] ^ neg))
            if multi_mode is None:
                # p_cim == 0: multi-row senses are exact and foldable.
                sensed = builder.maj(*operands)
            else:
                # Faulty majority: never folds -- the output carries
                # this activation's fresh flip mask.
                vid = len(builder.defs)
                builder.defs.append(("maj",) + tuple(operands))
                cim_row = len(draw_kinds)
                draw_kinds.append("cim")
                read_row = None
                if multi_mode == "select":
                    read_row = len(draw_kinds)
                    draw_kinds.append("read")
                fault_meta[vid] = (cim_row, read_row)
                sensed = (vid, False)
            n_multi += 1
            for row, neg in src_ports:
                builder.write(row, sensed, neg)
        if op.kind == "AAP":
            for row, neg in resolve(op.dst):
                builder.write(row, sensed, neg)
            n_aap += 1
        else:
            n_ap += 1
    return n_aap, n_ap, n_multi


def _compile_fault(program, resolve: Callable,
                   spec: FaultSpec) -> CompiledFaultTrace:
    """Fault-aware lowering: every draw-taking activation is a node.

    The walk mirrors the interpreted faulty semantics op by op.  A
    multi-row sense (when ``p_cim > 0``) and a single-port sense (when
    ``p_read > 0``) each allocate a fresh value -- ideal result XOR
    flip mask -- and write it back destructively through every
    activated port.  The per-activation draw schedule is recorded in
    *original op order* so the replay-time pre-pass consumes the fault
    model's RNG stream exactly as sequential ``corrupt`` calls would.
    """
    builder = _Builder()
    draw_kinds: List[str] = []        # op-order rows: "cim" | "read"
    fault_meta: Dict[int, tuple] = {}  # vid -> (cim/read draw rows)
    n_aap, n_ap, n_multi = _walk_fault_ops(builder, program.ops, resolve,
                                           spec, draw_kinds, fault_meta)

    # Final bindings: skip identity (row still holds its own entry value).
    finals: Dict[int, _Ref] = {}
    for row, ref in builder.current.items():
        if builder.defs[ref[0]] == ("in", row) and not ref[1]:
            continue
        finals[row] = ref

    # Liveness: final bindings AND every fault node -- the injected
    # count of a margin-aware activation depends on its contested
    # columns, so even an overwritten faulty intermediate must compute.
    live = set()
    stack = [ref[0] for ref in finals.values()] + list(fault_meta)
    while stack:
        vid = stack.pop()
        if vid in live:
            continue
        live.add(vid)
        definition = builder.defs[vid]
        if definition[0] in ("maj", "rd"):
            stack.extend(ref[0] for ref in definition[1:])

    mirrored = {ref[0] for ref in finals.values() if ref[1]}
    for vid in live:
        definition = builder.defs[vid]
        if definition[0] in ("maj", "rd"):
            mirrored.update(ref[0] for ref in definition[1:] if ref[1])

    # Slot assignment: live inputs (mirror-needing prefix), then nodes
    # in creation order -- which is already a topological order.
    slot: Dict[int, int] = {}
    input_vids = [vid for vid in sorted(live)
                  if builder.defs[vid][0] == "in"]
    input_vids.sort(key=lambda vid: vid not in mirrored)
    input_rows = [builder.defs[vid][1] for vid in input_vids]
    for position, vid in enumerate(input_vids):
        slot[vid] = position
    n_input_mirror = sum(1 for vid in input_vids if vid in mirrored)
    node_vids = [vid for vid in sorted(live)
                 if builder.defs[vid][0] != "in"]
    next_slot = len(input_vids)
    for vid in node_vids:
        slot[vid] = next_slot
        next_slot += 1
    n_slots = next_slot

    def flat_slot(ref: _Ref) -> int:
        return slot[ref[0]] + (n_slots if ref[1] else 0)

    steps: List[tuple] = []
    for vid in node_vids:
        definition = builder.defs[vid]
        mir = vid in mirrored
        meta = fault_meta.get(vid)
        if definition[0] == "rd":
            steps.append(("rd", flat_slot(definition[1]), slot[vid],
                          mir, meta[1]))
        elif meta is None:
            steps.append(("mx", flat_slot(definition[1]),
                          flat_slot(definition[2]),
                          flat_slot(definition[3]), slot[vid], mir,
                          -1, -1))
        else:
            steps.append(("mj", flat_slot(definition[1]),
                          flat_slot(definition[2]),
                          flat_slot(definition[3]), slot[vid], mir,
                          meta[0], -1 if meta[1] is None else meta[1]))

    out_rows = np.asarray(sorted(finals), dtype=np.intp)
    out_slots = np.asarray([flat_slot(finals[row]) for row in out_rows],
                           dtype=np.intp)
    thresholds = np.asarray(
        [spec.p_cim if kind == "cim" else spec.p_read
         for kind in draw_kinds], dtype=np.float64)

    return CompiledFaultTrace(
        spec=spec,
        input_rows=np.asarray(input_rows, dtype=np.intp),
        n_input_mirror=n_input_mirror,
        n_slots=n_slots,
        steps=tuple(steps),
        out_rows=out_rows,
        out_slots=out_slots,
        draw_thresholds=thresholds,
        n_aap=n_aap,
        n_ap=n_ap,
        n_activations=2 * n_aap + n_ap,
        n_multi=n_multi)


# ----------------------------------------------------------------------
# Whole-plan megatraces: many μPrograms + interleaved host mask writes
# stitched into one trace (paper Secs. 5.1-5.2 at query granularity).
# ----------------------------------------------------------------------
class MegaProgram:
    """A whole replay sequence stitched across host mask writes.

    ``segments[i]`` is the (already engine-assembled) μProgram of wave
    ``i``; before each segment the ``stream_row`` data row is rebound
    to row ``i`` of the replay-time *stream* operand (the packed wave
    masks) -- exactly the ``load_mask_packed`` + ``run_program``
    sequence the per-wave path executes, expressed as one dataflow
    graph.  Compiled and LRU-cached per subarray by
    :meth:`~repro.dram.wordline.WordlineSubarray.run_megaprogram`.
    """

    __slots__ = ("name", "segments", "stream_row")

    def __init__(self, name: str, segments, stream_row):
        self.name = name
        self.segments = tuple(segments)
        self.stream_row = stream_row

    @property
    def n_segments(self) -> int:
        return len(self.segments)


@dataclass(eq=False)
class MegaTrace(CompiledTrace):
    """A stitched multi-segment replay (fault-free lowering).

    Identical replay machinery to :class:`CompiledTrace`; the only
    difference is the input stage: live inputs gather from *two*
    sources -- the cell matrix and the external per-segment stream --
    as at most four contiguous ``take`` segments (``fills``), ordered
    [mirrored cells, mirrored exts, plain cells, plain exts] so the
    mirrored prefix still materializes with one prefix invert.  The
    final scatter includes the stream row's last binding, so the mask
    row ends exactly as the per-wave ``load_mask_packed`` sequence
    leaves it.
    """

    fills: Tuple[tuple, ...] = ()     # (from_stream, indices, lo, hi)
    n_segments: int = 0

    @property
    def n_inputs(self) -> int:
        return int(sum(hi - lo for _, _, lo, hi in self.fills))

    def _fill_plan(self, vals: np.ndarray) -> tuple:
        return tuple((from_stream, idx, vals[lo:hi])
                     for from_stream, idx, lo, hi in self.fills)


@dataclass(eq=False)
class MegaFaultTrace(CompiledFaultTrace):
    """A stitched multi-segment replay under an active fault model.

    The fault pre-pass covers the *whole stitched sequence*: draw rows
    of every segment are recorded in original op order across segment
    boundaries, so one replay consumes the fault model's RNG stream
    exactly as the per-wave sequence of ``corrupt`` calls would (and
    leaves the generator in the identical terminal state).  Pre-draws
    run blockwise so a long mega never materializes the full uniform
    block at once -- block splits are stream-transparent because
    ``Generator.random`` fills row-major.
    """

    fills: Tuple[tuple, ...] = ()     # (from_stream, indices, lo, hi)
    n_segments: int = 0

    @property
    def n_inputs(self) -> int:
        return int(sum(hi - lo for _, _, lo, hi in self.fills))

    def _draw_flips(self, fault_model, n_cols: int) -> np.ndarray:
        n_draws = self.draw_thresholds.size
        block = max(1, (1 << 24) // max(1, int(n_cols)))
        if n_draws <= block:
            return super()._draw_flips(fault_model, n_cols)
        pack_rows = _packer()
        flips = np.empty((n_draws, (int(n_cols) + 63) // 64),
                         dtype=np.uint64)
        for lo in range(0, n_draws, block):
            hi = min(lo + block, n_draws)
            uniform = fault_model.predraw(hi - lo, n_cols)
            flips[lo:hi] = pack_rows(
                uniform < self.draw_thresholds[lo:hi, None])
        return flips

    def _fill_inputs(self, cells: np.ndarray, stream, vals) -> None:
        for from_stream, idx, lo, hi in self.fills:
            if hi > lo:
                np.take(stream if from_stream else cells, idx, axis=0,
                        out=vals[lo:hi])


def _assign_input_slots(builder: _Builder, live, mirrored,
                        slot: Dict[int, int]) -> tuple:
    """Slot the live inputs (``("in", row)`` and ``("ext", i)`` defs).

    Orders them [mirrored cells, mirrored exts, plain cells, plain
    exts]: the mirrored prefix stays contiguous (one prefix invert at
    replay) and each source gathers as at most two contiguous ``take``
    segments.  Returns ``(fills, n_input_mirror, n_inputs)``.
    """
    input_vids = [vid for vid in sorted(live)
                  if builder.defs[vid][0] in ("in", "ext")]
    input_vids.sort(key=lambda vid: (vid not in mirrored,
                                     builder.defs[vid][0] == "ext"))
    for position, vid in enumerate(input_vids):
        slot[vid] = position
    n_input_mirror = sum(1 for vid in input_vids if vid in mirrored)
    runs: List[list] = []
    for position, vid in enumerate(input_vids):
        kind, index = builder.defs[vid]
        if runs and runs[-1][0] == (kind == "ext"):
            runs[-1][1].append(index)
        else:
            runs.append([kind == "ext", [index], position])
    fills = tuple(
        (from_stream, np.asarray(indices, dtype=np.intp), lo,
         lo + len(indices))
        for from_stream, indices, lo in runs)
    return fills, n_input_mirror, len(input_vids)


def compile_megatrace(mega: MegaProgram, resolve: Callable,
                      fault: FaultSpec = None):
    """Lower a :class:`MegaProgram` into one stitched trace.

    One :class:`_Builder` walks every segment in sequence -- the same
    copy-aliasing / constant-folding / dead-write-elimination /
    level-scheduling passes as :func:`compile_trace`, now working
    *across* μProgram boundaries: a wave's final counter-row writes
    feed the next wave's reads as SSA values, so cross-wave
    intermediate scatters fold away entirely.  Before each segment the
    mega's stream row is rebound to that segment's external input (the
    host mask write).  Under an active ``fault`` spec the lowering
    mirrors :func:`_compile_fault` with the draw schedule spanning all
    segments in op order.
    """
    if fault is not None and fault.active:
        return _compile_fault_mega(mega, resolve, fault)
    builder = _Builder()
    stream_row = resolve(mega.stream_row)[0][0]
    n_aap = n_ap = n_multi = 0
    for index, segment in enumerate(mega.segments):
        builder.rebind_stream(stream_row, index)
        aap, ap, multi = _walk_ops(builder, segment.ops, resolve)
        n_aap += aap
        n_ap += ap
        n_multi += multi

    # Final bindings: skip identity (row still holds its own entry value).
    finals: Dict[int, _Ref] = {}
    for row, ref in builder.current.items():
        if builder.defs[ref[0]] == ("in", row) and not ref[1]:
            continue
        finals[row] = ref

    # Dead-write elimination across the whole stitched sequence.
    live = set()
    stack = [ref[0] for ref in finals.values()]
    while stack:
        vid = stack.pop()
        if vid in live:
            continue
        live.add(vid)
        definition = builder.defs[vid]
        if definition[0] == "maj":
            stack.extend(ref[0] for ref in definition[1:])

    mirrored = {ref[0] for ref in finals.values() if ref[1]}
    for vid in live:
        definition = builder.defs[vid]
        if definition[0] == "maj":
            mirrored.update(ref[0] for ref in definition[1:] if ref[1])

    slot: Dict[int, int] = {}
    fills, n_input_mirror, n_inputs = _assign_input_slots(
        builder, live, mirrored, slot)
    depth: Dict[int, int] = {vid: 0 for vid in slot}
    by_level: Dict[int, List[int]] = {}
    for vid in sorted(live):                     # creation = program order
        definition = builder.defs[vid]
        if definition[0] != "maj":
            continue
        level = 1 + max(depth[ref[0]] for ref in definition[1:])
        depth[vid] = level
        by_level.setdefault(level, []).append(vid)
    next_slot = n_inputs
    level_specs: List[tuple] = []
    for level in sorted(by_level):
        vids = sorted(by_level[level], key=lambda vid: vid not in mirrored)
        lo = next_slot
        for vid in vids:
            slot[vid] = next_slot
            next_slot += 1
        n_mirror = sum(1 for vid in vids if vid in mirrored)
        level_specs.append((lo, next_slot, n_mirror, vids))

    def flat_slot(ref: _Ref) -> int:
        return slot[ref[0]] + (next_slot if ref[1] else 0)

    levels: List[_Level] = []
    for lo, hi, n_mirror, vids in level_specs:
        idx = np.empty(3 * len(vids), dtype=np.intp)
        for j, vid in enumerate(vids):
            for i, ref in enumerate(builder.defs[vid][1:]):
                idx[i * len(vids) + j] = flat_slot(ref)
        levels.append(_Level(lo, hi, idx, n_mirror))

    out_rows = np.asarray(sorted(finals), dtype=np.intp)
    out_slots = np.asarray([flat_slot(finals[row]) for row in out_rows],
                           dtype=np.intp)

    return MegaTrace(
        input_rows=np.empty(0, dtype=np.intp),
        n_input_mirror=n_input_mirror,
        n_slots=next_slot,
        levels=tuple(levels),
        out_rows=out_rows,
        out_slots=out_slots,
        n_aap=n_aap,
        n_ap=n_ap,
        n_activations=2 * n_aap + n_ap,
        n_multi=n_multi,
        fills=fills,
        n_segments=len(mega.segments))


def _compile_fault_mega(mega: MegaProgram, resolve: Callable,
                        spec: FaultSpec) -> MegaFaultTrace:
    """Fault-aware stitched lowering (see :func:`_compile_fault`)."""
    builder = _Builder()
    stream_row = resolve(mega.stream_row)[0][0]
    draw_kinds: List[str] = []
    fault_meta: Dict[int, tuple] = {}
    n_aap = n_ap = n_multi = 0
    for index, segment in enumerate(mega.segments):
        builder.rebind_stream(stream_row, index)
        aap, ap, multi = _walk_fault_ops(builder, segment.ops, resolve,
                                         spec, draw_kinds, fault_meta)
        n_aap += aap
        n_ap += ap
        n_multi += multi

    finals: Dict[int, _Ref] = {}
    for row, ref in builder.current.items():
        if builder.defs[ref[0]] == ("in", row) and not ref[1]:
            continue
        finals[row] = ref

    # Liveness: final bindings AND every fault node (see _compile_fault).
    live = set()
    stack = [ref[0] for ref in finals.values()] + list(fault_meta)
    while stack:
        vid = stack.pop()
        if vid in live:
            continue
        live.add(vid)
        definition = builder.defs[vid]
        if definition[0] in ("maj", "rd"):
            stack.extend(ref[0] for ref in definition[1:])

    mirrored = {ref[0] for ref in finals.values() if ref[1]}
    for vid in live:
        definition = builder.defs[vid]
        if definition[0] in ("maj", "rd"):
            mirrored.update(ref[0] for ref in definition[1:] if ref[1])

    slot: Dict[int, int] = {}
    fills, n_input_mirror, n_inputs = _assign_input_slots(
        builder, live, mirrored, slot)
    node_vids = [vid for vid in sorted(live)
                 if builder.defs[vid][0] not in ("in", "ext")]
    next_slot = n_inputs
    for vid in node_vids:
        slot[vid] = next_slot
        next_slot += 1
    n_slots = next_slot

    def flat_slot(ref: _Ref) -> int:
        return slot[ref[0]] + (n_slots if ref[1] else 0)

    steps: List[tuple] = []
    for vid in node_vids:
        definition = builder.defs[vid]
        mir = vid in mirrored
        meta = fault_meta.get(vid)
        if definition[0] == "rd":
            steps.append(("rd", flat_slot(definition[1]), slot[vid],
                          mir, meta[1]))
        elif meta is None:
            steps.append(("mx", flat_slot(definition[1]),
                          flat_slot(definition[2]),
                          flat_slot(definition[3]), slot[vid], mir,
                          -1, -1))
        else:
            steps.append(("mj", flat_slot(definition[1]),
                          flat_slot(definition[2]),
                          flat_slot(definition[3]), slot[vid], mir,
                          meta[0], -1 if meta[1] is None else meta[1]))

    out_rows = np.asarray(sorted(finals), dtype=np.intp)
    out_slots = np.asarray([flat_slot(finals[row]) for row in out_rows],
                           dtype=np.intp)
    thresholds = np.asarray(
        [spec.p_cim if kind == "cim" else spec.p_read
         for kind in draw_kinds], dtype=np.float64)

    return MegaFaultTrace(
        spec=spec,
        input_rows=np.empty(0, dtype=np.intp),
        n_input_mirror=n_input_mirror,
        n_slots=n_slots,
        steps=tuple(steps),
        out_rows=out_rows,
        out_slots=out_slots,
        draw_thresholds=thresholds,
        n_aap=n_aap,
        n_ap=n_ap,
        n_activations=2 * n_aap + n_ap,
        n_multi=n_multi,
        fills=fills,
        n_segments=len(mega.segments))
