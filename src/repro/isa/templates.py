"""Executable μProgram templates for in-memory counting (Figs. 6b, 13a).

Every template returns a :class:`~repro.isa.microprogram.MicroProgram`
over symbolic D-group row indices; callers (the engine's row mapper) bind
concrete rows.  The seven-op masked bit update is Fig. 6b's sequence, and
we exploit the same two destructive-TRA absorption tricks the paper's
listing relies on (see the inline proofs).

Op-count accounting: the plain k-ary increment measures ``7n + g + V``
ops, where ``g = gcd(n, k mod n)`` cycle saves (1 for the unit case --
Fig. 6b line 0) and ``V`` ops of overflow checking (7 for ``k <= n``, 11
for the wider ``k > n`` expression).  The paper reports the coprime-case
``7n + 7``; tests pin both numbers and EXPERIMENTS.md notes the delta.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.core.johnson import TransitionPattern, transition_pattern
from repro.isa.microprogram import MicroOp, MicroProgram, aap, ap

__all__ = [
    "masked_update_ops", "overflow_check_ops", "underflow_check_ops",
    "kary_increment_program", "carry_resolve_program", "row_copy_program",
    "row_clear_program", "protected_masked_update_ops",
]

Address = object  # str | int; kept loose for symbolic rows


def masked_update_ops(dst_row: Address, src_row: Address, mask_row: Address,
                      invert_src: bool) -> List[MicroOp]:
    """``dst <- (m AND [NOT] src) OR (NOT m AND dst)`` in seven ops.

    Plain variant (Fig. 6b "ForwardShift"):

    ====  ================  ==========================================
    op    command           effect
    ====  ================  ==========================================
    1     AAP m,   B8       T0 <- m, DCC0 <- NOT m
    2     AAP C0,  B9       T1 <- 0, DCC1 <- 1
    3     AAP src, B2       T2 <- src
    4     AP  B12           T0,T1,T2 <- MAJ(m, 0, src) = m AND src
    5     AAP dst, B2       T2 <- dst (old value)
    6     AAP B14, B3       T3 <- MAJ(T1, dst, NOT m)
    7     AAP B15, dst      dst <- MAJ(T0, T3, 1) = T0 OR T3
    ====  ================  ==========================================

    After op 4, T1 holds ``m AND src`` rather than 0, so op 6 computes
    ``MAJ(m AND src, dst, NOT m)``; the final OR with ``T0 = m AND src``
    absorbs the extra minterm (``dst AND src AND m``), giving exactly the
    masked multiplexer.  The inverted variant mirrors Fig. 6b's
    "InvertedFeedback" block, where op 6's destructive TRA leaves
    ``dst AND NOT m`` in T1/DCC0 and op 7's B11 majority
    ``MAJ(m, dst AND NOT m, NOT src)`` ORed with T3 again absorbs.
    """
    if not invert_src:
        return [
            aap(mask_row, "B8"),
            aap("C0", "B9"),
            aap(src_row, "B2"),
            ap("B12"),
            aap(dst_row, "B2"),
            aap("B14", "B3"),
            aap("B15", dst_row),
        ]
    return [
        aap(dst_row, "B2"),
        aap(mask_row, "B8"),
        aap("C0", "B9"),
        aap("B14", "B3"),
        aap(src_row, "B5"),
        ap("B11"),
        aap("B15", dst_row),
    ]


def overflow_check_ops(onext_row: Address, theta_msb_row: Address,
                       msb_row: Address, k: int, n_bits: int,
                       mask_row: Address,
                       onext_src: Address = None) -> List[MicroOp]:
    """Update O_next after a +k step (Alg. 1 lines 6 / 13).

    ``k <= n``: ``O <- O OR (old_MSB AND NOT new_MSB)`` -- the mask is
    implicit because unmasked lanes keep their MSB.  ``k > n``: the wider
    ``O <- O OR ((old_MSB OR NOT new_MSB) AND m)`` needs the explicit
    mask conjunction.  ``onext_src`` lets protected mode read the old
    flags from a snapshot row so the block is retry-safe.
    """
    src = onext_row if onext_src is None else onext_src
    if k <= n_bits:
        return [
            aap("C0", "B1"),            # T1 <- 0
            aap(msb_row, "B5"),         # DCC0 <- NOT new_MSB
            aap(theta_msb_row, "B2"),   # T2 <- old MSB
            ap("B14"),                  # T1,T2,DCC0 <- old AND NOT new
            aap(src, "B3"),             # T3 <- O_next
            aap("C1", "B6"),            # DCC1 <- 1
            aap("B13", onext_row),      # O <- MAJ(T2, T3, 1) = T2 OR T3
        ]
    return [
        aap("C1", "B1"),                # T1 <- 1
        aap(msb_row, "B5"),             # DCC0 <- NOT new_MSB
        aap(theta_msb_row, "B2"),       # T2 <- old MSB
        ap("B14"),                      # T1,T2,DCC0 <- old OR NOT new
        aap("B1", "B0"),                # T0 <- (old OR NOT new)
        aap(mask_row, "B1"),            # T1 <- m
        aap("C0", "B2"),                # T2 <- 0
        ap("B12"),                      # T0..T2 <- (...) AND m
        aap(src, "B3"),                 # T3 <- O_next
        aap("C1", "B6"),                # DCC1 <- 1
        aap("B15", onext_row),          # O <- MAJ(T0, T3, 1)
    ]


def underflow_check_ops(onext_row: Address, theta_msb_row: Address,
                        msb_row: Address, k: int, n_bits: int,
                        mask_row: Address,
                        onext_src: Address = None) -> List[MicroOp]:
    """Update O_next after a -k step (Sec. 4.4 "Decrements").

    Mirror image of overflow: MSB transitions 0 -> 1 for small steps,
    ``(NOT old_MSB OR new_MSB) AND m`` for ``k > n``.
    """
    src = onext_row if onext_src is None else onext_src
    if k <= n_bits:
        return [
            aap("C0", "B1"),            # T1 <- 0
            aap(theta_msb_row, "B5"),   # DCC0 <- NOT old_MSB
            aap(msb_row, "B2"),         # T2 <- new MSB
            ap("B14"),                  # NOT old AND new
            aap(src, "B3"),             # T3 <- O_next
            aap("C1", "B6"),            # DCC1 <- 1
            aap("B13", onext_row),
        ]
    return [
        aap("C1", "B1"),                # T1 <- 1
        aap(theta_msb_row, "B5"),       # DCC0 <- NOT old_MSB
        aap(msb_row, "B2"),             # T2 <- new MSB
        ap("B14"),                      # NOT old OR new
        aap("B1", "B0"),
        aap(mask_row, "B1"),
        aap("C0", "B2"),
        ap("B12"),
        aap(src, "B3"),
        aap("C1", "B6"),
        aap("B15", onext_row),
    ]


def kary_increment_program(bit_rows: Sequence[Address], mask_row: Address,
                           k: int, scratch_rows: Sequence[Address],
                           onext_row: Address = None,
                           check_overflow: bool = True) -> MicroProgram:
    """Full masked k-ary step of one JC digit (|k| in ``[1, 2n-1]``).

    ``bit_rows`` lists the digit's rows LSB first; ``scratch_rows`` must
    provide ``gcd(n, |k| mod n)`` rows (but at least one so the old MSB is
    available for overflow checking).  Negative ``k`` decrements.
    """
    n = len(bit_rows)
    pattern: TransitionPattern = transition_pattern(n, k)
    ops: List[MicroOp] = []

    # Save each permutation cycle's seed row (Fig. 6b line 0 generalized);
    # always save the MSB so the overflow check has the old value.
    saves: Dict[int, Address] = {}
    save_indices = list(pattern.cycle_saves)
    if n - 1 not in save_indices:
        save_indices = [n - 1] + save_indices
    if len(save_indices) > len(scratch_rows):
        raise ValueError(
            f"k={k} on a {n}-bit digit needs {len(save_indices)} scratch "
            f"rows, got {len(scratch_rows)}")
    for scratch, idx in zip(scratch_rows, save_indices):
        ops.append(aap(bit_rows[idx], scratch))
        saves[idx] = scratch

    written = set()
    for assign in pattern.assignments:
        if assign.src in saves and assign.src in written:
            src_row = saves[assign.src]
        elif assign.src in saves and assign.src == assign.dst:
            src_row = saves[assign.src]
        else:
            src_row = bit_rows[assign.src]
        ops.extend(masked_update_ops(bit_rows[assign.dst], src_row,
                                     mask_row, assign.inverted))
        written.add(assign.dst)

    if check_overflow:
        if onext_row is None:
            raise ValueError("overflow checking needs an O_next row")
        checker = overflow_check_ops if k > 0 else underflow_check_ops
        ops.extend(checker(onext_row, saves[n - 1], bit_rows[n - 1],
                           abs(k), n, mask_row))
    return MicroProgram(f"kary_increment(k={k}, n={n})", tuple(ops))


def carry_resolve_program(next_bit_rows: Sequence[Address],
                          onext_row: Address,
                          next_onext_row: Address,
                          scratch_rows: Sequence[Address],
                          direction: int = 1) -> MicroProgram:
    """Ripple a pending carry: ±1 step of the next digit masked by O_next.

    After the masked unit step (which may itself set the *next* digit's
    O_next), the consumed flag row is cleared (one extra op, footnote 3).
    """
    if direction not in (1, -1):
        raise ValueError("direction must be +1 or -1")
    prog = kary_increment_program(next_bit_rows, onext_row, direction,
                                  scratch_rows, next_onext_row)
    clear = MicroProgram("clear_onext", (aap("C0", onext_row),))
    combined = prog + clear
    return MicroProgram(f"carry_resolve(direction={direction})",
                        combined.ops)


def row_copy_program(src: Address, dst: Address) -> MicroProgram:
    """RowClone: one AAP."""
    return MicroProgram(f"copy({src}->{dst})", (aap(src, dst),))


def row_clear_program(row: Address) -> MicroProgram:
    """Initialize a row to zero from the C0 control row."""
    return MicroProgram(f"clear({row})", (aap("C0", row),))


def protected_masked_update_ops(dst_row: Address, src_row: Address,
                                mask_row: Address, invert_src: bool,
                                ir1_row: Address, ir2_row: Address,
                                fr_row: Address, t2_row: Address
                                ) -> MicroProgram:
    """ECC-protected masked update (Fig. 13a): both masking ANDs are
    embedded in XOR computations whose results (the FR rows) traditional
    ECC can syndrome-check.

    Per masking term ``a AND b̃`` (``b̃`` possibly complemented) the scheme
    computes ``IR1 = a OR b̃``, ``IR2 = a AND b̃`` and ``FR = IR1 AND NOT
    IR2`` (= ``a XOR b̃``); a parity check of FR validates all three.
    Checkpoints mark the two FR completion points.  Each AND/OR lowers to
    a staged TRA through B11 -- ``MAJ(a, const, DCC0)`` with the constant
    selecting AND (0) or OR (1) and DCC0's port polarity providing the
    free complement -- at 5 ops each.  The final OR of the two protected
    minterms is homomorphic to XOR because the mask makes them mutually
    exclusive (Sec. 6.2).

    The executable sequence costs 51 ops/bit; the paper's hand-optimized
    count for the same dataflow is ``13n + 16`` total (Tab. 1), which the
    performance models use.  EXPERIMENTS.md records the delta.
    """
    def gate(a, b, out, is_or, negate_b):
        const = "C1" if is_or else "C0"
        load_b = aap(b, "B5") if negate_b else aap(b, "B4")
        return [aap(a, "B0"), aap(const, "B1"), load_b,
                ap("B11"), aap("B0", out)]

    def and2(a, b, out, negate_b=False):
        return gate(a, b, out, is_or=False, negate_b=negate_b)

    def or2(a, b, out, negate_b=False):
        return gate(a, b, out, is_or=True, negate_b=negate_b)

    ops: List[MicroOp] = []
    checkpoints: List[int] = []

    # Term 1: m AND src (forward shift) or m AND NOT src (feedback).
    ops.extend(or2(mask_row, src_row, ir1_row, negate_b=invert_src))
    ops.extend(and2(mask_row, src_row, ir2_row, negate_b=invert_src))
    ops.extend(and2(ir1_row, ir2_row, fr_row, negate_b=True))  # XOR
    checkpoints.append(len(ops) - 1)
    ops.append(aap(ir2_row, t2_row))          # keep the masking result

    # Term 2: dst AND NOT m.
    ops.extend(or2(dst_row, mask_row, ir1_row, negate_b=True))
    ops.extend(and2(dst_row, mask_row, ir2_row, negate_b=True))
    ops.extend(and2(ir1_row, ir2_row, fr_row, negate_b=True))  # XOR
    checkpoints.append(len(ops) - 1)

    # dst <- term1 OR term2 (mutually exclusive => XOR-homomorphic).
    ops.extend(or2(t2_row, ir2_row, dst_row))
    return MicroProgram("protected_masked_update", tuple(ops),
                        tuple(checkpoints))
