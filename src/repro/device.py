"""Session API: weight-stationary plans over resident operand matrices.

The paper's premise is that the matrix Z lives *in memory* while inputs
stream past it (masked matrix accumulation, Sec. 5): planting Z's rows
is a one-time cost, and every further query only broadcasts its input
values.  The one-shot kernels in :mod:`repro.kernels` hide that -- each
call rebuilds engines, replants masks and recompiles μPrograms.  This
module is the session-oriented front door:

* :class:`EngineConfig` collects the knobs previously scattered across
  kernel signatures (``n_bits``, ``fault_model``, ``fr_checks``,
  ``backend``, ``n_banks``) into one validated dataclass.
* :class:`Device` is a *view over a bank pool*
  (:class:`repro.serve.pool.BankPool`): every engine or cluster a plan
  builds leases its banks from the pool, so many devices and plans
  coexist under one accounted budget.  A standalone ``Device()`` gets a
  private unaccounted pool and behaves exactly as before; the serving
  runtime (:mod:`repro.serve`) shares one bounded pool across tenants.
* :class:`GemvPlan` / :class:`GemmPlan` plant one Z, size digits from a
  declared input budget (with an automatic re-plan guard when a query
  exceeds it), cache compiled μPrograms across queries, and reset
  *counters only* -- never the planted masks -- between queries.
  ``plan.run_many(X)`` additionally batches whole query groups across
  bank shards so repeated traffic amortizes both planting and command
  broadcasts (the recorded speedup lives in
  ``benchmarks/results/plan_amortization.txt``).
* ``plan.park()`` / ``plan.unpark()`` relocate a plan off its banks:
  parking exports the counter image (``export_counters``), drops the
  engines and returns the bank leases; unparking (done transparently on
  the next query) rebuilds the engines, re-plants masks and
  ``import_counters()`` the image back.  This is the eviction primitive
  the :class:`repro.serve.ModelRegistry` plan cache is built on.

>>> import numpy as np
>>> from repro.device import Device
>>> z = np.array([[1, -1], [1, 0], [0, 1]], dtype=np.int8)
>>> with Device(n_bits=2) as dev:
...     plan = dev.plan_gemv(z, kind="ternary")
...     y = plan(np.array([3, -2, 1]))          # plant once ...
...     ys = plan.run_many(np.array([[3, -2, 1], [1, 1, 1]]))
>>> y
array([ 1, -2])
>>> ys
array([[ 1, -2],
       [ 2,  0]])
>>> plan.stats.queries, plan.stats.resident_rows
(3, 6)
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.dram.faults import FAULT_FREE, FaultModel
from repro.dram.wordline import pack_rows
from repro.engine.cluster import BankCluster
from repro.engine.machine import CountingEngine
from repro.kernels.lowering import (DEFAULT_BANKS, digits_for_budget,
                                    infer_kind, ternary_row_masks)
from repro.serve.pool import BankPool, PoolExhausted
from repro.serve.rowstore import RowImageStore, SharedResource

__all__ = ["EngineConfig", "Device", "GemvPlan", "GemmPlan", "PlanStats",
           "AmbiguousKindWarning", "DeviceClosedError", "PlanClosedError"]

#: Query slots a single run_many() chunk spreads across bank shards.
_MAX_BATCH_SLOTS = 32

#: Bank shards dealt to each query slot inside a batched chunk.
_BATCH_BANKS = 4

#: Total lane budget of a batched chunk's subarray (keeps row images
#: cache-friendly; larger matrices get proportionally fewer slots).
_MAX_BATCH_LANES = 1 << 18


class DeviceClosedError(RuntimeError):
    """Operation on a device after :meth:`Device.close`."""


class PlanClosedError(RuntimeError):
    """Query against a plan whose resources have been released.

    Raised both when the plan itself was closed and when its owning
    device was shut down -- the message says which.
    """


class AmbiguousKindWarning(UserWarning):
    """Z had no ``-1`` entry, so binary-vs-ternary inference guessed.

    An all-zero or all-{0, 1} matrix lowers correctly under either
    kind, but the guess becomes observable the moment signed inputs
    stream against the plan (binary plans reject them).  Pass ``kind=``
    explicitly to silence the warning and pin the contract.
    """


@dataclass(frozen=True)
class EngineConfig:
    """Unified engine/cluster configuration for a :class:`Device`.

    Collects the kwargs the one-shot kernels used to take one by one.

    >>> EngineConfig(backend="fast").resolved_backend
    'word'
    >>> EngineConfig(backend="sideways")
    Traceback (most recent call last):
        ...
    ValueError: unknown backend 'sideways'; expected one of ['bit', \
'bitwise', 'fast', 'vectorized', 'word']
    """

    n_bits: int = 2
    fault_model: FaultModel = field(
        default_factory=lambda: FAULT_FREE)
    fr_checks: int = 0
    backend: str = "fast"
    n_banks: int = DEFAULT_BANKS

    def __post_init__(self):
        if self.n_bits < 1:
            raise ValueError("n_bits must be positive")
        if self.n_banks < 1:
            raise ValueError("n_banks must be positive")
        if self.fr_checks < 0:
            raise ValueError("fr_checks must be non-negative")
        CountingEngine.normalize_backend(self.backend)   # early validation

    @property
    def resolved_backend(self) -> str:
        """The canonical backend name (``"bit"`` or ``"word"``)."""
        return CountingEngine.normalize_backend(self.backend)

    @property
    def strict_reads(self) -> bool:
        """Fault-free configs read counters strictly (exact decode)."""
        return self.fault_model.p_cim == 0


@dataclass(frozen=True)
class PlanStats:
    """Observable cost counters of one plan (see ``Plan.stats``).

    ``measured_ops`` counts AAP/AP command sequences actually issued and
    is directly comparable with the analytical
    :class:`repro.perf.C2MModel` op accounting (the serving telemetry
    prices latency/energy from exactly this number);
    ``program_compiles`` / ``program_replays`` split μProgram cache
    misses from hits and ``trace_compiles`` / ``trace_replays`` do the
    same for the word backend's fused-trace cache (zero on the bit
    backend and under active fault models, which bypass fusion),
    ``resident_rows`` is the number of planted mask-row images (binary:
    one per Z row; ternary: both sign orientations per row), and
    ``parks`` / ``unparks`` count eviction round-trips through the
    counter-image relocation path, and ``injected_faults`` is the
    monotonic count of fault-model bit flips the plan's engines
    injected (zero for fault-free configs; identical whether the word
    backend replayed fused fault traces or interpreted) -- serve
    telemetry reports its per-query delta.
    ``megatrace_compiles`` / ``megatrace_replays`` split the stitched
    whole-sequence trace cache (see
    :meth:`~repro.engine.machine.CountingEngine.run_waves`): on the
    word path a query's entire wave sequence replays as a handful of
    megatraces, so these counters -- not ``trace_replays`` -- carry
    steady-state replay traffic.
    ``dedup_hits`` counts the times this plan's row-image acquires
    (planting and copy-on-write swaps) found the content address
    already planted by another tenant; ``rows_shared`` /
    ``rows_private`` classify the plan's planted rows by whether its
    image is currently multi-referenced in the device's
    :class:`~repro.serve.rowstore.RowImageStore`.
    """

    queries: int = 0
    broadcasts: int = 0
    replans: int = 0
    resident_rows: int = 0
    measured_ops: int = 0
    program_compiles: int = 0
    program_replays: int = 0
    parks: int = 0
    unparks: int = 0
    trace_compiles: int = 0
    trace_replays: int = 0
    injected_faults: int = 0
    megatrace_compiles: int = 0
    megatrace_replays: int = 0
    dedup_hits: int = 0
    rows_shared: int = 0
    rows_private: int = 0


class GemvPlan:
    """A planted GEMV: one resident Z matrix, many streamed queries.

    Created through :meth:`Device.plan_gemv`.  ``plan(x)`` answers one
    query; :meth:`run_many` streams a batch with cross-query bank
    sharding.  Between queries only counters are reset -- planted masks
    and compiled μPrograms stay resident, which is where the amortized
    speedup over the one-shot kernels comes from.

    ``x_budget`` declares the largest total magnitude ``sum(|x|)`` any
    query will accumulate (pass ``K * max|x|`` when only an element
    bound is known).  Digits are sized once from it; a query exceeding
    the declared budget triggers an automatic re-plan to more digits
    (counted in ``stats.replans``) instead of a counter overflow.

    Every engine/cluster the plan builds leases its banks from the
    owning device's :class:`~repro.serve.pool.BankPool`; when the pool
    is bounded and exhausted, resource builds raise
    :class:`~repro.serve.pool.PoolExhausted` without disturbing the
    plan, so a caller (the serving registry) can evict another resident
    plan and retry.
    """

    def __init__(self, device: "Device", z: np.ndarray, kind: str,
                 x_budget: Optional[int] = None):
        if kind not in ("binary", "ternary"):
            raise ValueError(f"kind must be 'binary' or 'ternary', "
                             f"got {kind!r}")
        self.kind = kind
        self.config = device.config
        self._device = device
        z = np.asarray(z)
        if z.ndim != 2:
            raise ValueError("z must be [K, N]")
        # Validate on the caller's values *before* any dtype cast, so
        # out-of-range entries raise instead of wrapping modulo 256.
        if kind == "ternary":
            if not np.isin(z, (-1, 0, 1)).all():
                raise ValueError("z must be ternary (-1/0/1)")
            z = z.astype(np.int8)
        else:
            if not np.isin(z, (0, 1)).all():
                raise ValueError("z must be binary (0/1)")
            z = z.astype(np.uint8)
        self.k, self.n = z.shape
        # Plant Z once, *content-addressed*: the device's row-image
        # store dedups identical operands, so tenants sharing a base
        # reference one read-only mask image (and, when resident, the
        # shared engine bodies planted over it).
        if kind == "ternary":
            masks = ternary_row_masks(z)             # [K, 2, 2N]
            self._width = 2 * self.n
        else:
            masks = z.copy()                         # [K, N]
            self._width = self.n
        self._image = device.store.acquire(kind, masks, self._width,
                                           n_bits=self.config.n_bits)
        self._dedup_hits = 1 if self._image.dedup_hit else 0
        self._masks = self._image.masks
        # Flat view for the batched path: ternary row i's orientations
        # live at 2i (positive input) and 2i+1 (negative input).
        self._flat_masks = self._image.flat_masks
        self._planted_nonzero = self._image.planted_nonzero
        self._resident_rows = self._flat_masks.shape[0]
        self.x_budget = None if x_budget is None else int(x_budget)
        self.n_digits = (None if x_budget is None
                         else digits_for_budget(self.config.n_bits,
                                                self.x_budget))
        # Role -> attached shared resource ("single" answers plan(x),
        # "batch" carries run_many() chunks).  The resources -- engine
        # bodies plus their bank lease -- live on the row image's
        # store entry and are multiplexed across same-image tenants.
        self._res: Dict[str, SharedResource] = {}
        self._parked: Optional[dict] = None
        self._closed = False
        self._close_reason = "plan is closed"
        self._queries = 0
        self._broadcasts = 0
        self._replans = 0
        self._parks = 0
        self._unparks = 0
        # ops / prog compiles / prog replays / trace compiles /
        # trace replays / injected faults / megatrace compiles /
        # megatrace replays
        self._retired = np.zeros(8, dtype=np.int64)
        # Engines/clusters are built lazily on first use: a plan that
        # only ever sees run_many() never allocates the single-query
        # cluster, and vice versa.

    # ------------------------------------------------------------------
    # resource management (store-routed: see repro.serve.rowstore)
    # ------------------------------------------------------------------
    @property
    def _cluster(self) -> Optional[BankCluster]:
        """Live single-query cluster (view into the shared resource)."""
        res = self._res.get("single")
        return res.cluster if res is not None else None

    @property
    def _engines(self) -> List[CountingEngine]:
        """Live single-query bit engines (view into the resource)."""
        res = self._res.get("single")
        return res.engines if res is not None else []

    @property
    def _batch(self) -> Optional[tuple]:
        """Live batch geometry ``(slots, banks, cluster)`` or None."""
        res = self._res.get("batch")
        if res is None:
            return None
        slots, banks = res.geometry
        return (slots, banks, res.cluster)

    def _live_engines(self) -> List[CountingEngine]:
        engines: List[CountingEngine] = []
        for res in self._res.values():
            engines.extend(res._all_engines())
        return engines

    def _token(self) -> tuple:
        """Resource-compatibility key: same-image tenants share an
        engine body only when every engine-shaping config knob (and
        the pool the lease charges) matches."""
        cfg = self.config
        return (cfg.n_bits, cfg.fr_checks, cfg.resolved_backend,
                id(cfg.fault_model), id(self._device.pool))

    def _build_body(self, role: str, geometry: tuple, n_digits: int):
        """Construct one role's engine body (no lease taken here)."""
        cfg = self.config
        if role == "single" and cfg.resolved_backend != "word":
            (count,) = geometry
            engines = [
                CountingEngine(cfg.n_bits, n_digits, self.n,
                               fault_model=cfg.fault_model,
                               fr_checks=cfg.fr_checks, backend="bit")
                for _ in range(count)]
            for eng in engines:
                eng.reset_counters()
            return None, engines
        if role == "single":
            (banks,) = geometry
            n_banks = banks
        else:
            slots, banks = geometry
            n_banks = slots * banks
        cluster = BankCluster(
            cfg.n_bits, n_digits, self._width, n_banks=n_banks,
            fault_model=cfg.fault_model, fr_checks=cfg.fr_checks)
        return cluster, None

    def _unmount(self, role: str) -> None:
        """Detach ``role``'s resource (crediting this plan's counter
        delta into ``_retired``); the last tenant off a resource
        releases its bank lease."""
        res = self._res.pop(role, None)
        if res is not None:
            res.detach(self)

    def _lease_with_yield(self, role: str, grab):
        """Run a lease acquisition, yielding the *other* role's idle
        resources before giving up.

        A plan that just ran a batch wave should not starve its own
        single-query path under a tight budget; only when yielding
        cannot help does the :class:`~repro.serve.pool.PoolExhausted`
        propagate for the registry to evict a tenant.
        """
        try:
            return grab()
        except PoolExhausted:
            other = "batch" if role == "single" else "single"
            if self._res.get(other) is None:
                raise
            self._unmount(other)
            return grab()

    def _mount(self, role: str, geometry: tuple, n_digits: int,
               n_banks: int) -> SharedResource:
        """Attach ``role`` to a shared resource of this plan's row
        image (free), resize a sole-held one in place (atomic
        exchange), or lease banks and build a fresh body.

        Failure safety mirrors the old exchange path: the new
        resource is secured *before* the old one is detached, so a
        :class:`~repro.serve.pool.PoolExhausted` leaves the resident
        resources untouched and the registry can evict-and-retry.
        """
        token = self._token()
        old = self._res.get(role)
        target = self._image.find_resource(
            role, token,
            lambda r: r is not old and r.n_digits >= n_digits
            and r.geometry[-1] == geometry[-1]
            and r.geometry[:-1] >= geometry[:-1])
        if target is not None:
            # Another tenant already holds a wide-enough body: attach
            # for free -- this is the tenancy multiplier.
            target.attach(self)
            self._unmount(role)
            self._res[role] = target
            return target
        pool = self._device.pool
        if old is not None and old.is_sole(self):
            # Sole tenant: resize in place through the atomic
            # exchange, charged only the bank difference.
            lease = self._lease_with_yield(
                role, lambda: pool.exchange(old.lease, n_banks,
                                            owner=self))
            old._credit_active()
            cluster, engines = self._build_body(role, geometry, n_digits)
            old.lease = lease
            old.cluster, old.engines = cluster, (engines or [])
            old.geometry, old.n_digits = geometry, n_digits
            old._stash.clear()
            old.active = None
            old._base = old._counters_now()
            for eng in old._all_engines():
                eng.cache_epoch = self._image.generation
            return old
        lease = self._lease_with_yield(
            role, lambda: pool.lease(n_banks, owner=self))
        try:
            cluster, engines = self._build_body(role, geometry, n_digits)
        except BaseException:
            lease.release()
            raise
        res = self._image.new_resource(role, token, geometry, n_digits,
                                       lease, cluster=cluster,
                                       engines=engines)
        res.attach(self)
        self._unmount(role)
        self._res[role] = res
        return res

    @property
    def is_resident(self) -> bool:
        """Whether the plan currently holds engines (and bank leases)."""
        return bool(self._res)

    @property
    def is_parked(self) -> bool:
        """Whether the plan holds a parked counter image (evicted)."""
        return self._parked is not None

    @property
    def leased_banks(self) -> int:
        """Banks leased from the pool by this plan's resources.

        A resource shared with other tenants still counts its full
        lease here (the lease is live and these banks run this plan's
        queries); see :attr:`footprint_banks` for the marginal view.
        """
        return sum(res.n_banks for res in self._res.values())

    @property
    def wave_banks(self) -> int:
        """Banks a ``run_many()`` wave's command stream spreads over.

        The batch shard when one is built (the word backend's wave
        path), else the single-query resources -- *not* the sum of all
        leases, so telemetry priced from this matches the stream that
        actually ran even when a plan holds both roles.
        """
        if self._batch is not None:
            return self._batch[0] * self._batch[1]
        if self._cluster is not None:
            return self._cluster.n_banks
        return max(1, len(self._engines))

    def park(self) -> None:
        """Evict the plan from its banks, preserving counter state.

        Exports every live engine's counter image
        (:meth:`~repro.engine.CountingEngine.export_counters`), retires
        their cost counters, drops the engines and returns all bank
        leases to the pool.  The host-side operand spec (planted mask
        images, digit sizing, budgets) stays; the next query -- or an
        explicit :meth:`unpark` -- rebuilds the engines, re-plants the
        masks and ``import_counters()`` the image back, bit-exactly.
        Parking an already-parked or resource-less plan is a no-op.
        """
        self._check_open()
        if self._parked is not None or not self.is_resident:
            return
        # The image_of() snapshots come from the plan's per-tenant
        # stash (or a live export when this plan is the active tenant),
        # so parking one of several sharing tenants never disturbs the
        # others' counter state.
        parked = {"digest": self._image.digest}
        single = self._res.get("single")
        if single is not None and single.cluster is not None:
            parked["cluster"] = (single.cluster.n_banks,
                                 single.n_digits,
                                 single.image_of(self))
        elif single is not None:
            parked["engines"] = (single.n_digits,
                                 single.image_of(self))
        batch = self._res.get("batch")
        if batch is not None:
            slots, banks = batch.geometry
            parked["batch"] = (slots, banks, batch.n_digits,
                               batch.image_of(self))
        self._unmount("single")
        self._unmount("batch")
        self._parked = parked
        self._parks += 1

    def unpark(self) -> None:
        """Rebuild parked engines and restore their counter images.

        Usually implicit (any query on a parked plan unparks first),
        but callable directly to pre-warm a plan.  Every role's lease
        is acquired *before* anything is rebuilt: a
        :class:`~repro.serve.pool.PoolExhausted` mid-way rolls the
        leases back and leaves the plan parked with every counter
        image intact -- unparking is all-or-nothing, never a partial
        restore that silently discards one role's image.
        """
        self._check_open()
        if self._parked is None:
            return
        parked = self._parked
        needed = []
        if "cluster" in parked:
            n_banks, n_digits, image = parked["cluster"]
            needed.append(("single", (n_banks,), n_digits, n_banks,
                           image))
        if "engines" in parked:
            n_digits, images = parked["engines"]
            needed.append(("single", (len(images),), n_digits,
                           len(images), images))
        if "batch" in parked:
            slots, banks, n_digits, image = parked["batch"]
            needed.append(("batch", (slots, banks), n_digits,
                           slots * banks, image))
        token = self._token()
        mounted = []
        try:
            for role, geometry, n_digits, n_banks, image in needed:
                # A counter-image restore needs the exact body shape --
                # attach to a matching resident resource (free) or
                # lease and build one, all-or-nothing across roles.
                res = self._image.find_resource(
                    role, token,
                    lambda r, g=geometry, d=n_digits:
                    r.geometry == g and r.n_digits == d)
                if res is not None:
                    res.attach(self, stash=image)
                else:
                    lease = self._device.pool.lease(n_banks, owner=self)
                    try:
                        cluster, engines = self._build_body(
                            role, geometry, n_digits)
                    except BaseException:
                        lease.release()
                        raise
                    res = self._image.new_resource(
                        role, token, geometry, n_digits, lease,
                        cluster=cluster, engines=engines)
                    res.attach(self, stash=image)
                self._res[role] = res
                mounted.append(role)
        except PoolExhausted:
            for role in mounted:
                self._unmount(role)
            raise
        for role in mounted:
            self._res[role].activate(self)
        self._parked = None
        self._unparks += 1

    def export_image(self):
        """Park the plan and hand out its counter image for relocation.

        The returned payload is the parked counter-image record
        (per-role raw bit-row images plus their geometry) -- exactly
        what :meth:`unpark` restores from, and therefore everything a
        *different* plan instance (built from the same operand spec,
        possibly in another process) needs to continue this plan's
        counter state bit-exactly via :meth:`import_image`.  The fleet
        moves models between shard workers with this pair; the payload
        contains only numpy arrays and ints, so it pickles and packs
        into shared memory.  Returns ``None`` when the plan has never
        held engines (nothing to relocate).
        """
        self._check_open()
        self.park()
        return self._parked

    def import_image(self, parked) -> None:
        """Adopt a counter image exported by a twin plan's
        :meth:`export_image` and rebuild engines from it immediately.

        The plan must hold no resources of its own yet (fresh or
        parked-empty); geometry mismatches surface as the shape errors
        ``import_counters`` raises, never as silent corruption.  A
        ``None`` payload (source plan never ran) is a no-op.
        """
        self._check_open()
        if parked is None:
            return
        if self.is_resident or self._parked is not None:
            raise ValueError("plan already holds state; import_image "
                             "needs a fresh (or parked-empty) plan")
        digest = parked.get("digest")
        if digest is not None and digest != self._image.digest:
            raise ValueError(
                "counter image was exported from a different row image "
                f"(digest {digest[:12]}... != {self._image.digest[:12]}"
                "...); rebuild the plan from the matching operand")
        digits = [self.n_digits or 1]
        if "cluster" in parked:
            digits.append(parked["cluster"][1])
        if "engines" in parked:
            digits.append(parked["engines"][0])
        if "batch" in parked:
            digits.append(parked["batch"][2])
        # Adopt the image's digit sizing so the first query against the
        # relocated plan never tears the restored counters down for a
        # smaller rebuild.
        self.n_digits = max(digits)
        self._parked = parked
        self.unpark()

    def mutate_rows(self, rows, values) -> None:
        """Replace ``Z[rows]`` in place -- copy-on-write.

        Other tenants of the old row image are never disturbed: this
        plan parks (snapshotting its own counter image through its
        per-tenant stash), re-derives only the diverging rows' masks,
        acquires the *new* content address (which clones the image --
        or re-merges with a tenant that already planted the mutated
        matrix) and drops its reference on the old one.  The next
        query unparks against the new image; because store generations
        stamp engine ``cache_epoch``, no stale compiled μProgram or
        megatrace replays against the swapped rows.
        """
        self._check_open()
        rows = np.atleast_1d(np.asarray(rows, dtype=np.int64))
        if rows.ndim != 1 or rows.size == 0:
            raise ValueError("rows must be a non-empty 1-D index list")
        if (rows < 0).any() or (rows >= self.k).any():
            raise ValueError(f"row indices must lie in [0, {self.k})")
        values = np.asarray(values)
        if values.shape != (rows.size, self.n):
            raise ValueError(f"values must be [{rows.size}, {self.n}]")
        if self.kind == "ternary":
            if not np.isin(values, (-1, 0, 1)).all():
                raise ValueError("z must be ternary (-1/0/1)")
            sub = ternary_row_masks(values.astype(np.int8))
        else:
            if not np.isin(values, (0, 1)).all():
                raise ValueError("z must be binary (0/1)")
            sub = values.astype(np.uint8)
        new_masks = np.array(self._image.masks)   # writable copy
        new_masks[rows] = sub
        # Park first: the counter image rides the plan's own stash, so
        # the swap is invisible to tenants sharing the old image.
        self.park()
        old = self._image
        self._image = self._device.store.acquire(
            self.kind, new_masks, self._width,
            n_bits=self.config.n_bits, cow=True)
        old.release()
        if self._image.dedup_hit:
            self._dedup_hits += 1
        self._masks = self._image.masks
        self._flat_masks = self._image.flat_masks
        self._planted_nonzero = self._image.planted_nonzero
        if self._parked is not None:
            self._parked["digest"] = self._image.digest
        self._replans += 1

    @property
    def row_digest(self) -> Optional[str]:
        """Content address of this plan's planted row image."""
        image = self._image
        return image.digest if image is not None else None

    @property
    def footprint_banks(self) -> int:
        """*Marginal* bank cost of this plan for placement decisions.

        Only the banks this plan holds alone count: resources shared
        with other tenants survive this plan's eviction, so charging
        them here double-counts the budget (the bug this property
        fixes).  A non-resident plan whose image still has live bodies
        costs nothing to keep; only a plan that would have to plant
        privately reports its build estimate.  See
        :attr:`footprint_banks_total` for the old gross meaning.
        """
        if self._res:
            return sum(res.n_banks for res in self._res.values()
                       if res.is_sole(self))
        if self._image is not None and self._image.entry_has_live_resources():
            return 0
        return self.footprint_banks_total

    @property
    def footprint_banks_total(self) -> int:
        """Gross bank-budget estimate, ignoring sharing.

        The banks this plan's single-query role occupies (its actual
        leases when resident) -- what planting the model privately
        would cost, and the number placement uses to size a shard for
        the *first* tenant of a row image.
        """
        if self.leased_banks:
            return self.leased_banks
        if self.config.resolved_backend == "word":
            return max(1, min(self.config.n_banks, self.k))
        return 2 if self.kind == "ternary" else 1

    def _ensure(self, n_digits: int) -> None:
        """(Re)build single-query resources for at least ``n_digits``,
        and make this plan the resource's active counter tenant."""
        if self._parked is not None:
            self.unpark()
        res = self._res.get("single")
        if self.n_digits is not None and n_digits <= self.n_digits \
                and res is not None:
            res.activate(self)
            return
        if res is not None:
            self._replans += 1
        self.n_digits = max(n_digits, self.n_digits or 1)
        cfg = self.config
        if cfg.resolved_backend == "word":
            banks = self._device.pool.clamp(
                max(1, min(cfg.n_banks, self.k)))
            geometry = (banks,)
            n_banks = banks
        else:
            count = 2 if self.kind == "ternary" else 1
            geometry = (count,)
            n_banks = count
        self._mount("single", geometry, self.n_digits,
                    n_banks).activate(self)

    def _ensure_batch(self, slots: int, banks: int,
                      n_digits: int) -> BankCluster:
        """(Re)build the batched chunk cluster (word backend only)."""
        if self._parked is not None:
            self.unpark()
        res = self._res.get("batch")
        if res is not None:
            b_slots, b_banks = res.geometry
            if b_slots >= slots and b_banks == banks \
                    and res.n_digits >= n_digits:
                res.activate(self)
                return res.cluster
            self._replans += 1
        res = self._mount("batch", (slots, banks), n_digits,
                          slots * banks)
        res.activate(self)
        return res.cluster

    def close(self) -> None:
        """Release engines, clusters, bank leases and mask images;
        further queries raise :class:`PlanClosedError`.  Idempotent.
        The owning device forgets the plan so long-lived shared devices
        do not pin closed plans' memory."""
        self._close("plan is closed")

    def _close(self, reason: str) -> None:
        if self._closed:
            return
        self._unmount("single")
        self._unmount("batch")
        self._parked = None
        if self._image is not None:
            self._image.release()
            self._image = None
        self._masks = self._flat_masks = self._planted_nonzero = None
        self._closed = True
        self._close_reason = reason
        self._device._forget(self)

    def _check_open(self) -> None:
        if self._closed:
            raise PlanClosedError(self._close_reason)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def validate_query(self, x: np.ndarray) -> np.ndarray:
        """Shape/domain-check one query without executing it.

        Returns the canonicalized (int64) query vector.  The serving
        front door calls this at *submission* time so an invalid query
        is rejected immediately instead of failing the coalesced wave
        it would have ridden in -- alongside innocent co-batched
        queries.
        """
        self._check_open()
        return self._validate(x)

    def _validate(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.int64)
        if x.ndim != 1 or x.size != self.k:
            raise ValueError(f"query must be a length-{self.k} vector")
        if self.kind == "binary" and (x < 0).any():
            raise ValueError("binary plans expect non-negative inputs; "
                             "use a ternary plan for signed streams")
        return x

    def _updates(self, x: np.ndarray):
        """Resident-mask ``(value, mask)`` pairs for one query."""
        if self.kind == "ternary":
            return [(int(abs(x[i])), self._masks[i, 0 if x[i] > 0 else 1])
                    for i in range(self.k) if x[i] != 0]
        return [(int(x[i]), self._masks[i]) for i in range(self.k)
                if x[i] != 0]

    def _reduce(self, reduced: np.ndarray) -> np.ndarray:
        """Fold a reduced lane vector to the signed output (ternary)."""
        if self.kind == "ternary":
            halves = reduced.reshape(2, self.n)
            return halves[0].astype(np.int64) - halves[1].astype(np.int64)
        return reduced.astype(np.int64)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        """Answer one query against the resident Z."""
        self._check_open()
        x = self._validate(x)
        self._ensure(digits_for_budget(
            self.config.n_bits, int(np.abs(x).sum())))
        self._queries += 1
        strict = self.config.strict_reads
        if self._cluster is not None:
            before = self._cluster.broadcasts
            self._cluster.reset()
            self._cluster.dispatch(self._updates(x))
            self._broadcasts += self._cluster.broadcasts - before
            return self._reduce(self._cluster.read_reduced(strict=strict))
        for eng in self._engines:
            eng.reset_counters()
        if self.kind == "binary":
            eng = self._engines[0]
            for i in range(self.k):
                if x[i] == 0:
                    continue                 # zero-skipping (Sec. 7.2.3)
                eng.load_mask(0, self._masks[i])
                eng.accumulate(int(x[i]))
                self._broadcasts += 1
            return eng.read_values(strict=strict).astype(np.int64)
        pos, neg = self._engines
        for i in range(self.k):
            if x[i] == 0:
                continue
            magnitude = int(abs(x[i]))
            wide = self._masks[i, 0 if x[i] > 0 else 1]
            up, down = wide[:self.n], wide[self.n:]
            if up.any():
                pos.load_mask(0, up)
                pos.accumulate(magnitude)
                self._broadcasts += 1
            if down.any():
                neg.load_mask(0, down)
                neg.accumulate(magnitude)
                self._broadcasts += 1
        return (pos.read_values(strict=strict).astype(np.int64)
                - neg.read_values(strict=strict).astype(np.int64))

    def run_many(self, xs: np.ndarray) -> np.ndarray:
        """Answer a batch of queries ``xs [Q, K]`` -> ``[Q, N]``.

        On the word backend, queries are dealt across bank shards:
        every slot owns a private group of banks, same-magnitude updates
        from *different* queries share one broadcast wave, and a single
        read-out retires the whole chunk.  The bit backend streams
        queries one by one (it exists for bit-exact reference, not
        throughput).  A bounded pool caps both the slot count and the
        banks per slot so a chunk never overruns the shared budget.
        """
        self._check_open()
        xs = np.asarray(xs, dtype=np.int64)
        if xs.ndim != 2 or xs.shape[1] != self.k:
            raise ValueError(f"queries must be [Q, {self.k}]")
        if xs.shape[0] == 0:
            return np.zeros((0, self.n), dtype=np.int64)
        if self.config.resolved_backend != "word":
            return np.stack([self(x) for x in xs])
        out = np.zeros((xs.shape[0], self.n), dtype=np.int64)
        pool = self._device.pool
        banks = pool.clamp(_BATCH_BANKS)
        slot_cap = _MAX_BATCH_LANES // max(1, banks * self._width)
        if pool.bounded:
            slot_cap = min(slot_cap, pool.n_banks // banks)
        slots = max(1, min(_MAX_BATCH_SLOTS, xs.shape[0], slot_cap))
        for start in range(0, xs.shape[0], slots):
            chunk = xs[start:start + slots]
            out[start:start + slots] = self._run_chunk(chunk, slots, banks)
        # Queries count once per completed call, after every chunk ran:
        # a PoolExhausted mid-stream (caught by the registry, which
        # evicts and re-invokes the whole call) never double-counts.
        self._queries += xs.shape[0]
        return out

    def _run_chunk(self, chunk: np.ndarray, slots: int,
                   banks: int) -> np.ndarray:
        """One batched chunk: same-magnitude waves across bank groups.

        Every query slot owns ``banks`` banks; an update of magnitude
        ``m`` from slot ``q`` is dealt round-robin into that group, and
        one broadcast ``accumulate(m)`` retires a whole wave of masks
        across all slots.  Because each slot's same-magnitude updates
        split over its banks, the worst-case *lane* only sees
        ``depth(m) = max_slot ceil(count / banks)`` hits per magnitude
        -- the exact bound the digit sizing below uses.
        """
        n_queries = chunk.shape[0]
        if self.kind == "binary" and (chunk < 0).any():
            raise ValueError("binary plans expect non-negative inputs; "
                             "use a ternary plan for signed streams")
        # Update table: (slot, planted-row, magnitude), zero rows and
        # all-zero planted masks skipped.
        q_idx, k_idx = np.nonzero(chunk)
        vals = chunk[q_idx, k_idx]
        rows = (2 * k_idx + (vals < 0) if self.kind == "ternary"
                else k_idx)
        keep = self._planted_nonzero[rows]
        q_idx, rows = q_idx[keep], rows[keep]
        mags = np.abs(vals[keep])
        if mags.size == 0:
            return np.zeros((n_queries, self.n), dtype=np.int64)
        # Deal updates: sort by (magnitude, slot, row) so each (m, q)
        # queue is deterministic, then position p in the queue lands in
        # bank p % banks of wave p // banks.
        order = np.lexsort((rows, q_idx, mags))
        q_s, r_s, m_s = q_idx[order], rows[order], mags[order]
        upd = np.arange(m_s.size)
        new_queue = np.ones(m_s.size, dtype=bool)
        new_queue[1:] = (m_s[1:] != m_s[:-1]) | (q_s[1:] != q_s[:-1])
        pos = upd - np.maximum.accumulate(np.where(new_queue, upd, 0))
        new_mag = np.ones(m_s.size, dtype=bool)
        new_mag[1:] = m_s[1:] != m_s[:-1]
        mag_id = np.cumsum(new_mag) - 1
        depth = np.zeros(int(mag_id[-1]) + 1, dtype=np.int64)
        np.maximum.at(depth, mag_id, pos // banks + 1)
        wave_base = np.concatenate(([0], np.cumsum(depth)[:-1]))
        wave_id = wave_base[mag_id] + pos // banks
        bank_col = q_s * banks + pos % banks
        n_waves = int(depth.sum())
        mag_of_wave = np.repeat(m_s[new_mag], depth)
        # Digits cover the worst-case lane -- depth(m) hits of each m --
        # floored by the declared budget's sizing so a plan whose
        # x_budget already covers later, larger batches never tears the
        # cluster down mid-stream.
        bound = int((m_s[new_mag] * depth).sum())
        cluster = self._ensure_batch(
            slots, banks, max(digits_for_budget(self.config.n_bits, bound),
                              self.n_digits or 1))
        cluster.reset()
        slots, banks = self._batch[0], self._batch[1]  # cached may differ
        eng = cluster.engine
        width = self._width
        # Scatter planted masks into wave images (blockwise, so huge
        # chunks never materialize hundreds of MB at once), pack the
        # whole block once, and broadcast each wave from its packed
        # image -- masks never unpack per wave.
        block = max(1, (1 << 24) // max(1, cluster.n_lanes))
        for lo in range(0, n_waves, block):
            hi = min(lo + block, n_waves)
            sel = (wave_id >= lo) & (wave_id < hi)
            wide = np.zeros((hi - lo, slots * banks, width),
                            dtype=np.uint8)
            wide[wave_id[sel] - lo, bank_col[sel]] = \
                self._flat_masks[r_s[sel]]
            packed = pack_rows(wide.reshape(hi - lo, -1))
            eng.run_waves(mag_of_wave[lo:hi], packed)
        self._broadcasts += n_waves
        partials = cluster.read_bank_values(strict=self.config.strict_reads)
        per_slot = partials.reshape(slots, banks, width).sum(axis=1)
        per_slot = per_slot[:n_queries]
        if self.kind == "ternary":
            return per_slot[:, :self.n] - per_slot[:, self.n:]
        return per_slot

    def nominal_query_ops(self, xs: np.ndarray) -> float:
        """Analytical op count of a query batch: ``2 * Q * K * N``.

        The serving telemetry divides this into the wave's *measured*
        op delta for its efficiency ratio; every plan kind defines its
        own nominal unit (a GEMV wave's is the dense multiply-add
        count of ``xs @ Z``).
        """
        return 2.0 * np.asarray(xs).shape[0] * self.k * self.n

    # ------------------------------------------------------------------
    def protection_stats(self):
        """Aggregate ECC detection/retry stats over the live engines.

        Returns a fresh :class:`~repro.ecc.protection.ProtectionStats`
        summing every live engine's protection accounting (all zeros
        when the plan runs unprotected).  Unlike :attr:`stats` this
        covers *live* engines only -- engines retired by a re-plan or
        park drop their protection counters -- so reliability campaigns
        read it per trial, before releasing the plan.
        """
        from repro.ecc.protection import ProtectionStats
        total = ProtectionStats()
        for eng in self._live_engines():
            if eng.protection is not None:
                total.merge(eng.protection.stats)
        return total

    @property
    def stats(self) -> PlanStats:
        """Snapshot of this plan's cost counters.

        Shared resources attribute live counter deltas to their
        *active* tenant only; everything a plan accrued before a swap,
        detach or re-plan already sits in its private retired sink, so
        two tenants multiplexed on one engine body never double-count.
        """
        ops = self._retired.copy()
        for res in self._res.values():
            ops += res.delta_for(self)
        resident = self._resident_rows
        shared = self._image is not None and self._image.shared
        return PlanStats(queries=self._queries,
                         broadcasts=self._broadcasts,
                         replans=self._replans,
                         resident_rows=resident,
                         measured_ops=int(ops[0]),
                         program_compiles=int(ops[1]),
                         program_replays=int(ops[2]),
                         parks=self._parks,
                         unparks=self._unparks,
                         trace_compiles=int(ops[3]),
                         trace_replays=int(ops[4]),
                         injected_faults=int(ops[5]),
                         megatrace_compiles=int(ops[6]),
                         megatrace_replays=int(ops[7]),
                         dedup_hits=self._dedup_hits,
                         rows_shared=resident if shared else 0,
                         rows_private=0 if shared else resident)


class GemmPlan:
    """A planted GEMM: ``plan(X)`` computes ``X @ Z`` row-streamed.

    Thin veneer over :class:`GemvPlan`: each output row of ``X @ Z`` is
    one GEMV query, so a GEMM is exactly ``run_many`` -- Z planted once,
    counter rows recycled between output rows (paper Sec. 5.2.2).
    """

    #: Everything a GemmPlan answers straight from its inner GemvPlan.
    #: Both plan kinds route residency through the row-image store, so
    #: the old hand-written forwarder-per-method boilerplate collapses
    #: into one delegation table (attributes *and* methods resolve the
    #: same way through ``__getattr__``).
    _DELEGATED = frozenset({
        "kind", "config", "k", "n", "x_budget", "n_digits",
        "stats", "protection_stats",
        "is_resident", "is_parked", "leased_banks", "wave_banks",
        "park", "unpark", "export_image", "import_image", "mutate_rows",
        "footprint_banks", "footprint_banks_total", "row_digest",
        "nominal_query_ops",
    })

    def __init__(self, device: "Device", z: np.ndarray, kind: str,
                 x_budget: Optional[int] = None):
        self._device = device
        self._gemv = GemvPlan(device, z, kind, x_budget=x_budget)
        self._closed = False

    def __getattr__(self, name):
        # Only whitelisted public names delegate; underscored lookups
        # fall through so a half-constructed plan (e.g. GemvPlan raised
        # in __init__) can never recurse through ``self._gemv``.
        if not name.startswith("_") and name in GemmPlan._DELEGATED:
            return getattr(self._gemv, name)
        raise AttributeError(f"{type(self).__name__!r} object has no "
                             f"attribute {name!r}")

    def __call__(self, xs: np.ndarray) -> np.ndarray:
        return self._gemv.run_many(xs)

    def run_many(self, xs: np.ndarray) -> np.ndarray:
        return self._gemv.run_many(xs)

    def close(self) -> None:
        self._close("plan is closed")

    def _close(self, reason: str) -> None:
        if self._closed:
            return
        self._gemv._close(reason)
        self._closed = True
        self._device._forget(self)


class Device:
    """A view over a bank pool that hands out weight-stationary plans.

    Construct from an :class:`EngineConfig` (or keyword overrides), use
    as a context manager, and create plans with :meth:`plan_gemv` /
    :meth:`plan_gemm`.  Closing the device closes every plan it handed
    out; both device and plan close are idempotent.

    ``pool`` is the bank budget the device's plans lease engine banks
    from.  By default every device gets its own *unaccounted*
    :class:`~repro.serve.pool.BankPool` (standalone sessions never hit a
    budget); pass a shared bounded pool to make several devices -- or a
    whole serving runtime -- coexist under one accounted bank budget.

    >>> import numpy as np
    >>> dev = Device(backend="fast", n_bits=2)
    >>> plan = dev.plan_gemv(np.eye(3, dtype=np.uint8), kind="binary")
    >>> plan(np.array([4, 0, 9]))
    array([4, 0, 9])
    >>> dev.close()
    >>> dev.close()                              # idempotent
    >>> plan(np.array([1, 1, 1]))    # doctest: +IGNORE_EXCEPTION_DETAIL
    Traceback (most recent call last):
        ...
    repro.device.PlanClosedError: plan is closed (device shut down)
    """

    def __init__(self, config: Optional[EngineConfig] = None,
                 pool: Optional[BankPool] = None,
                 store: Optional[RowImageStore] = None, **overrides):
        if config is None:
            config = EngineConfig(**overrides)
        elif overrides:
            config = replace(config, **overrides)
        self.config = config
        self.pool = pool if pool is not None else BankPool()
        # Row-image dedup scope.  Per-device by default: reliability
        # campaigns build one device per trial, and a private store
        # keeps their seeded fault streams exactly as isolated as
        # before.  The serving registry funnels every tenant through
        # one device, so tenants dedup against each other there.
        self.store = store if store is not None else RowImageStore()
        self._plans: Dict[int, object] = {}
        self._next_handle = 0
        self._closed = False

    # ------------------------------------------------------------------
    def plan_gemv(self, z: np.ndarray, kind: Optional[str] = None,
                  x_budget: Optional[int] = None,
                  unsigned: bool = False) -> GemvPlan:
        """Plant ``z`` for streamed GEMV queries (``y = x @ z``).

        ``unsigned=True`` declares that only non-negative inputs will
        ever stream against the plan, which lets a {0, 1} matrix (e.g.
        one-hot histogram bucket masks) infer ``kind="binary"`` without
        an :class:`AmbiguousKindWarning` -- see
        :func:`repro.kernels.lowering.infer_kind`.
        """
        self._check_open()
        plan = GemvPlan(self, z, self._resolve_kind(z, kind, unsigned),
                        x_budget=x_budget)
        return self._adopt(plan)

    def plan_gemm(self, z: np.ndarray, kind: Optional[str] = None,
                  x_budget: Optional[int] = None,
                  unsigned: bool = False) -> GemmPlan:
        """Plant ``z`` for streamed GEMM queries (``Y = X @ z``)."""
        self._check_open()
        plan = GemmPlan(self, z, self._resolve_kind(z, kind, unsigned),
                        x_budget=x_budget)
        return self._adopt(plan)

    def plan_histogram(self, n_buckets: Optional[int] = None,
                       edges: Optional[np.ndarray] = None,
                       query_len: Optional[int] = None,
                       x_budget: Optional[int] = None):
        """Plan an in-memory histogram over ``n_buckets`` counter lanes.

        See :class:`repro.apps.analytics.HistogramPlan`: every key in a
        streamed query becomes a one-hot masked increment of its
        bucket's counter, and batches ride the same coalesced wave /
        megatrace path as GEMV plans.
        """
        self._check_open()
        from repro.apps.analytics import HistogramPlan
        return self._adopt(HistogramPlan(self, n_buckets, edges=edges,
                                         query_len=query_len,
                                         x_budget=x_budget))

    def plan_groupby(self, n_groups: int, agg: str = "sum",
                     query_len: Optional[int] = None,
                     x_budget: Optional[int] = None):
        """Plan a group-by-aggregate over ``n_groups`` (count or sum).

        See :class:`repro.apps.analytics.GroupByPlan`: value sums reuse
        the ternary magnitude path (value-magnitude waves against
        group-membership masks, signed halves folded at read-out).
        """
        self._check_open()
        from repro.apps.analytics import GroupByPlan
        return self._adopt(GroupByPlan(self, n_groups, agg=agg,
                                       query_len=query_len,
                                       x_budget=x_budget))

    # ------------------------------------------------------------------
    def _resolve_kind(self, z: np.ndarray, kind: Optional[str],
                      unsigned: bool = False) -> str:
        """Explicit ``kind`` wins; inference warns when ambiguous."""
        if kind is not None:
            return kind
        inferred, ambiguous = infer_kind(z, unsigned=unsigned)
        if ambiguous:
            warnings.warn(
                f"Z has no -1 entries, so kind={inferred!r} was guessed; "
                f"a binary plan rejects the signed inputs a ternary plan "
                f"accepts -- pass kind= explicitly to pin the contract",
                AmbiguousKindWarning, stacklevel=3)
        return inferred

    def _adopt(self, plan):
        """Register a plan under a fresh handle (plan bookkeeping)."""
        handle = self._next_handle
        self._next_handle += 1
        plan._handle = handle
        self._plans[handle] = plan
        return plan

    def _check_open(self) -> None:
        if self._closed:
            raise DeviceClosedError("device is closed")

    def _forget(self, plan) -> None:
        """Drop a closed plan from the registry (called by plan close)."""
        handle = getattr(plan, "_handle", None)
        if handle is not None:
            self._plans.pop(handle, None)

    @property
    def plans(self) -> List:
        """The open plans this device handed out (adoption order)."""
        return [self._plans[h] for h in sorted(self._plans)]

    def close(self) -> None:
        """Release every plan's engines, clusters and leases (idempotent)."""
        if self._closed:
            return
        for plan in list(self._plans.values()):
            plan._close("plan is closed (device shut down)")
        self._closed = True

    def __enter__(self) -> "Device":
        self._check_open()
        return self

    def __exit__(self, *exc) -> None:
        self.close()
