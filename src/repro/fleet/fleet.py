"""Sharded, multi-process serve fleet with an asyncio front door.

:class:`Fleet` scales the in-process :class:`~repro.serve.server.Server`
across worker processes: the accounted bank budget is sharded (one
private :class:`~repro.serve.pool.BankPool` + engine stack per worker,
see :mod:`repro.fleet.worker`), registered models are placed on shards
by accounted budget (:mod:`repro.fleet.placement`) and relocated by
bit-exact park/unpark counter images, and an asyncio event loop in a
background thread runs one dispatcher per shard that drains the
shard's queue, **coalesces consecutive same-model queries into one
``run_many`` wave** and ships it over the shard's pipe + shared-memory
arenas.

The external contract matches the server's on purpose:

* ``submit`` validates against a host-side *spec* registry (plans are
  lazy, so holding a twin registry costs no banks) and raises
  immediately on bad input; admission control raises
  :class:`FleetSaturatedError` once a shard carries ``max_queue``
  in-flight queries -- backpressure is a typed error at the producer,
  never an unbounded queue.
* Every response is the same :class:`~repro.serve.server.Response`,
  priced from the same :func:`~repro.serve.server.execute_wave`
  deltas (executed worker-side) and aggregated through the same
  :class:`~repro.serve.telemetry.LatencyWindow` -- fleet-vs-server
  comparisons read one code path.
* A worker crash mid-wave resolves the affected futures with
  :class:`~repro.fleet.worker.WorkerCrashedError` (and retires the
  shard); ``close()`` drains queued work and rejects anything
  stranded with :class:`FleetClosedError`.  Futures never hang.

>>> import numpy as np
>>> with Fleet(n_shards=2, pool_banks=8) as fleet:
...     _ = fleet.register("eye", np.eye(3, dtype=np.uint8),
...                        kind="binary")
...     y = fleet.query("eye", np.array([4, 0, 9])).y
>>> y
array([4, 0, 9])
"""

from __future__ import annotations

import asyncio
import itertools
import threading
from concurrent.futures import Future, InvalidStateError, \
    ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.device import Device, EngineConfig
from repro.dram.energy import DDR5_ENERGY, EnergyModel
from repro.dram.timing import DDR5_4400_TIMING, TimingParams
from repro.fleet import shm as fshm
from repro.fleet.placement import Move, Placement
from repro.fleet.worker import ShardHandle, WorkerCrashedError
from repro.serve.pool import BankPool
from repro.serve.registry import ModelRegistry
from repro.serve.server import Response, _DEFAULT_MAX_BATCH
from repro.serve.telemetry import (ExecutionReport, LatencyWindow,
                                   TelemetrySummary)

__all__ = ["Fleet", "FleetStats", "FleetSaturatedError",
           "FleetClosedError"]

#: Per-shard admission bound: submissions beyond this many in-flight
#: queries on one shard raise :class:`FleetSaturatedError`.
_DEFAULT_MAX_QUEUE = 256


class FleetSaturatedError(RuntimeError):
    """A shard's admission window is full; shed load and retry later.

    Raised synchronously by ``submit`` -- backpressure surfaces at the
    producer, before the query occupies any fleet resource.
    """


class FleetClosedError(RuntimeError):
    """The fleet is closed (or closed while this query was queued)."""


@dataclass(frozen=True)
class FleetStats:
    """Front-door counters (snapshot).

    ``waves``/``queries``/``max_wave`` mean what they mean on
    :class:`~repro.serve.server.ServerStats`; ``rejected`` counts
    validation failures, ``saturated`` admission-control rejections,
    ``relocations`` completed model moves, ``crashed_shards`` retired
    workers.
    """

    waves: int = 0
    queries: int = 0
    max_wave: int = 0
    rejected: int = 0
    saturated: int = 0
    relocations: int = 0
    crashed_shards: int = 0


class _Item:
    """One queue entry: a query, a control round trip, or stop."""

    __slots__ = ("kind", "model", "x", "future", "op", "meta", "arrays")

    def __init__(self, kind: str, model: str = "",
                 x: Optional[np.ndarray] = None,
                 op: str = "", meta: Optional[dict] = None,
                 arrays: Sequence[np.ndarray] = ()):
        self.kind = kind                  # "query" | "control" | "stop"
        self.model = model
        self.x = x
        self.op = op
        self.meta = meta or {}
        self.arrays = list(arrays)
        self.future: Future = Future()


class _Shard:
    """Front-door state for one worker: handle, queue, dispatcher."""

    __slots__ = ("shard_id", "handle", "queue", "executor", "dead",
                 "dispatcher")

    def __init__(self, shard_id: int, handle: ShardHandle):
        self.shard_id = shard_id
        self.handle = handle
        self.queue: asyncio.Queue = asyncio.Queue()
        # One I/O thread per shard keeps the pipe round trip off the
        # event loop without ever putting two calls on one pipe.
        self.executor = ThreadPoolExecutor(
            max_workers=1,
            thread_name_prefix=f"repro-fleet-io-{shard_id}")
        self.dead = False
        self.dispatcher = None


class Fleet:
    """Multi-process serving fleet behind one asyncio front door.

    Parameters
    ----------
    n_shards:
        Worker processes to fork.  Each owns ``pool_banks`` banks.
    config / overrides:
        The :class:`~repro.device.EngineConfig` every shard's device
        runs under (same knobs as :class:`~repro.serve.server.Server`).
    pool_banks:
        Accounted bank budget **per shard** (``None`` = unaccounted).
    max_resident:
        Optional per-shard cap on simultaneously resident plans.
    max_batch:
        Most queries one wave coalesces (per shard, per model run).
    max_queue:
        Per-shard admission bound; beyond it ``submit`` raises
        :class:`FleetSaturatedError`.
    timing / energy:
        DDR models the per-query telemetry is priced with -- pricing
        happens front-door-side from the worker's measured deltas.
    """

    def __init__(self, n_shards: int = 2,
                 config: Optional[EngineConfig] = None,
                 pool_banks: Optional[int] = None,
                 max_resident: Optional[int] = None,
                 max_batch: int = _DEFAULT_MAX_BATCH,
                 max_queue: int = _DEFAULT_MAX_QUEUE,
                 timing: TimingParams = DDR5_4400_TIMING,
                 energy: EnergyModel = DDR5_ENERGY,
                 arena_bytes: int = fshm.DEFAULT_ARENA_BYTES,
                 **overrides):
        if n_shards < 1:
            raise ValueError("a fleet needs at least one shard")
        if max_batch < 1 or max_queue < 1:
            raise ValueError("max_batch and max_queue must be positive")
        self.max_batch = max_batch
        self.max_queue = max_queue
        self.timing = timing
        self.energy = energy
        # Host-side twin registry: plans are lazy (host-side masks, no
        # banks until first run), so registering every model here too
        # gives submission-time validation, kind checks and footprint
        # estimates at zero engine cost.
        self._spec_pool = BankPool(None)
        self._spec_device = Device(config, pool=self._spec_pool,
                                   **overrides)
        self._spec_registry = ModelRegistry(self._spec_device)
        self._model_specs: Dict[str, dict] = {}

        self._shards: Dict[int, _Shard] = {}
        for sid in range(n_shards):
            handle = ShardHandle(sid, config=config, overrides=overrides,
                                 pool_banks=pool_banks,
                                 max_resident=max_resident,
                                 arena_bytes=arena_bytes)
            self._shards[sid] = _Shard(sid, handle)
        self.placement = Placement(
            list(self._shards),
            {sid: pool_banks for sid in self._shards})

        # Two locks, strict order _route_lock -> _lock: _route_lock
        # serializes routing decisions against relocations (held for a
        # whole move), _lock guards counters and is all a dispatcher
        # wave ever takes -- so a move blocking on its control future
        # can never deadlock against the wave executing ahead of it.
        self._route_lock = threading.Lock()
        self._lock = threading.Lock()
        self._inflight = {sid: 0 for sid in self._shards}
        self._pending: set = set()
        self._closed = False
        self._waves = 0
        self._queries = 0
        self._max_wave = 0
        self._rejected = 0
        self._saturated = 0
        self._relocations = 0
        self._crashed = 0
        self._latency = LatencyWindow()
        self._campaign_seq = itertools.count()

        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(target=self._loop.run_forever,
                                        daemon=True,
                                        name="repro-fleet-frontdoor")
        self._thread.start()
        for shard in self._shards.values():
            shard.dispatcher = asyncio.run_coroutine_threadsafe(
                self._dispatch(shard), self._loop)

    # ------------------------------------------------------------------
    # model management
    # ------------------------------------------------------------------
    def register(self, name: str, z: Optional[np.ndarray] = None,
                 kind: Optional[str] = None,
                 x_budget: Optional[int] = None, **plan_kwargs) -> int:
        """Register a model fleet-wide; returns its shard id.

        The spec registry validates the registration host-side (bad
        kinds and duplicate names fail before any cross-process work),
        placement picks the live shard with the most free accounted
        budget, and the worker-side registration rides that shard's
        queue -- strictly ahead of any query for the model, since
        ``submit`` can only route once this method returned.
        """
        self._check_open()
        spec_plan = self._spec_registry.register(
            name, z, kind=kind, x_budget=x_budget, **plan_kwargs)
        try:
            # Placement charges the *gross* footprint for the first
            # tenant of a row image; the digest lets it recognize
            # same-image models and charge the image once per shard
            # (the dedup-aware marginal accounting).
            footprint = getattr(spec_plan, "footprint_banks_total",
                                spec_plan.footprint_banks)
            digest = getattr(spec_plan, "row_digest", None)
            shard_id = self.placement.assign(name, footprint=footprint,
                                             digest=digest)
            meta = {"name": name, "kind": kind, "x_budget": x_budget,
                    "plan_kwargs": plan_kwargs}
            arrays = [np.ascontiguousarray(z)] if z is not None else []
            self._control(shard_id, "register", meta, arrays)
        except BaseException:
            self.placement.drop(name)
            self._spec_registry.unregister(name)
            raise
        self._model_specs[name] = {"z": z, "kind": kind,
                                   "x_budget": x_budget,
                                   "plan_kwargs": plan_kwargs,
                                   "footprint": footprint}
        return shard_id

    def unregister(self, name: str) -> None:
        """Drop a model from its shard and the routing table."""
        self._check_open()
        with self._route_lock:
            shard_id = self.placement.shard_of(name)
            self._control(shard_id, "unregister", {"name": name})
            self.placement.drop(name)
            self._model_specs.pop(name, None)
            self._spec_registry.unregister(name)

    @property
    def models(self) -> List[str]:
        return self._spec_registry.names()

    @property
    def n_shards(self) -> int:
        return len(self._shards)

    @property
    def shards(self) -> List[int]:
        """Live shard ids, in placement order."""
        return self.placement.shards

    def shard_of(self, name: str) -> int:
        return self.placement.shard_of(name)

    def crash_shard(self, shard_id: int) -> None:
        """Chaos hook: hard-kill one worker (``os._exit``, no reply).

        The shard is marked dead and every query routed to its models
        fails with :class:`WorkerCrashedError` from then on; the other
        shards keep serving.
        """
        try:
            self._control(shard_id, "crash")
        except WorkerCrashedError:
            pass

    # ------------------------------------------------------------------
    # query path
    # ------------------------------------------------------------------
    def submit(self, model: str, x: np.ndarray) -> Future:
        """Enqueue one query; the future resolves to a ``Response``.

        Validation errors raise immediately (spec registry);
        saturation raises :class:`FleetSaturatedError`; a query routed
        to a crashed shard raises
        :class:`~repro.fleet.worker.WorkerCrashedError`.  Nothing
        raises through the returned future except execution itself.
        """
        self._check_open()
        try:
            plan = self._spec_registry.get(model)
            x = plan.validate_query(x)
        except (KeyError, ValueError):
            with self._lock:
                self._rejected += 1
            raise
        item = _Item("query", model=model, x=x)
        self._route(model, [item])
        return item.future

    def submit_many(self, model: str, xs: np.ndarray) -> List[Future]:
        """Enqueue a burst atomically so it coalesces into waves."""
        self._check_open()
        try:
            xs = np.asarray(xs)
            if xs.ndim < 2:
                raise ValueError("xs must batch queries along its "
                                 "leading axis")
            plan = self._spec_registry.get(model)
            items = [_Item("query", model=model,
                           x=plan.validate_query(x)) for x in xs]
        except (KeyError, ValueError):
            with self._lock:
                self._rejected += 1
            raise
        self._route(model, items)
        return [i.future for i in items]

    def query(self, model: str, x: np.ndarray) -> Response:
        """Submit one query and block for its response."""
        return self.submit(model, x).result()

    async def aquery(self, model: str, x: np.ndarray) -> Response:
        """Async query: awaitable from the caller's own event loop."""
        return await asyncio.wrap_future(self.submit(model, x))

    def _route(self, model: str, items: List["_Item"]) -> None:
        """Admit and enqueue a same-model burst atomically.

        ``_route_lock`` covers the routing lookup and the enqueue, so
        a concurrent relocation (which holds the same lock for its
        whole export/import) can never split a burst across shards
        mid-move; the inner ``_lock`` covers admission accounting.
        """
        with self._route_lock:
            self._check_open()
            shard_id = self.placement.shard_of(model)
            shard = self._shards[shard_id]
            with self._lock:
                if shard.dead:
                    raise WorkerCrashedError(
                        f"shard {shard_id} (hosting {model!r}) has "
                        f"crashed")
                if self._inflight[shard_id] + len(items) > self.max_queue:
                    self._saturated += 1
                    raise FleetSaturatedError(
                        f"shard {shard_id} admission window is full "
                        f"({self._inflight[shard_id]}/{self.max_queue} "
                        f"in flight); retry later")
                self._inflight[shard_id] += len(items)
                self._pending.update(items)
            self.placement.note_queries(model, len(items))
            self._loop.call_soon_threadsafe(
                self._enqueue, shard, list(items))

    @staticmethod
    def _enqueue(shard: _Shard, items: List["_Item"]) -> None:
        for item in items:
            shard.queue.put_nowait(item)

    def _retire(self, items: Sequence["_Item"],
                shard_id: Optional[int] = None) -> None:
        """Take items off the pending/admission books (they are now
        owned by a code path that is guaranteed to resolve them)."""
        with self._lock:
            for it in items:
                self._pending.discard(it)
            if shard_id is not None:
                self._inflight[shard_id] -= sum(
                    1 for it in items if it.kind == "query")

    # ------------------------------------------------------------------
    # dispatchers (event-loop side)
    # ------------------------------------------------------------------
    async def _dispatch(self, shard: _Shard) -> None:
        """Drain, coalesce, execute -- one shard's scheduling loop.

        Items are processed strictly in FIFO order; only *consecutive*
        same-model queries coalesce into one wave (capped at
        ``max_batch``), so a control job (relocation export, campaign
        trial) is a natural barrier and observable ordering is exactly
        submission order.
        """
        while True:
            item = await shard.queue.get()
            batch = [item]
            while True:
                try:
                    batch.append(shard.queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            stop = False
            group: List[_Item] = []
            for it in batch:
                if it.kind == "query" and group \
                        and group[0].model == it.model \
                        and len(group) < self.max_batch:
                    group.append(it)
                    continue
                if group:
                    await self._wave(shard, group)
                    group = []
                if it.kind == "query":
                    group = [it]
                elif it.kind == "control":
                    await self._run_control(shard, it)
                else:                       # stop sentinel
                    stop = True
                    break
            if group:
                await self._wave(shard, group)
            if stop:
                # Even a crashed shard keeps its dispatcher: items
                # enqueued after the crash flow through _wave, whose
                # handle call fails instantly with WorkerCrashedError
                # -- prompt typed rejection instead of a silent queue.
                return

    async def _call(self, shard: _Shard, op: str, meta: dict,
                    arrays: Sequence[np.ndarray]
                    ) -> Tuple[dict, List[np.ndarray]]:
        return await self._loop.run_in_executor(
            shard.executor, shard.handle.call, op, meta, list(arrays))

    async def _wave(self, shard: _Shard, group: List["_Item"]) -> None:
        self._retire(group, shard.shard_id)
        live = [it for it in group
                if it.future.set_running_or_notify_cancel()]
        if not live:
            return
        model = live[0].model
        try:
            xs = np.stack([it.x for it in live])
            deltas, arrays = await self._call(
                shard, "run", {"model": model}, [xs])
            ys = arrays[0]
            report = ExecutionReport.from_measured(
                model=model, batch_size=len(live),
                timing=self.timing, energy=self.energy, **deltas)
        except WorkerCrashedError as exc:
            for it in live:
                it.future.set_exception(exc)
            self._on_crash(shard, exc)
            return
        except BaseException as exc:        # noqa: BLE001 - to futures
            for it in live:
                it.future.set_exception(exc)
            return
        with self._lock:
            self._waves += 1
            self._queries += len(live)
            self._max_wave = max(self._max_wave, len(live))
            self._latency.observe(report.latency_ns, len(live))
        for it, y in zip(live, ys):
            it.future.set_result(Response(y=y, report=report))

    async def _run_control(self, shard: _Shard, item: "_Item") -> None:
        self._retire([item])
        if not item.future.set_running_or_notify_cancel():
            return
        try:
            result = await self._call(shard, item.op, item.meta,
                                      item.arrays)
        except WorkerCrashedError as exc:
            item.future.set_exception(exc)
            self._on_crash(shard, exc)
            return
        except BaseException as exc:        # noqa: BLE001 - to future
            item.future.set_exception(exc)
            return
        item.future.set_result(result)

    def _on_crash(self, shard: _Shard, exc: WorkerCrashedError) -> None:
        """Retire a crashed shard and poison its routes.

        Models placed on the dead shard stay in the routing table on
        purpose: a later ``submit`` for one of them raises
        :class:`~repro.fleet.worker.WorkerCrashedError` (a typed,
        actionable error), not a misleading unknown-model ``KeyError``.
        Requests already queued behind the crash are *not* drained
        here -- the dispatcher keeps running and fails each of them
        promptly through the dead handle, preserving FIFO resolution.
        """
        with self._lock:
            if shard.dead:
                return
            shard.dead = True
            self._crashed += 1
        self.placement.mark_dead(shard.shard_id)

    # ------------------------------------------------------------------
    # control plane
    # ------------------------------------------------------------------
    def _control(self, shard_id: int, op: str,
                 meta: Optional[dict] = None,
                 arrays: Sequence[np.ndarray] = ()
                 ) -> Tuple[dict, List[np.ndarray]]:
        """Run one control op through the shard's dispatcher and wait.

        Control jobs ride the same queue as queries, so they serialize
        against in-flight waves without extra locking.
        """
        shard = self._shards[shard_id]
        with self._lock:
            if shard.dead:
                raise WorkerCrashedError(f"shard {shard_id} has crashed")
            item = _Item("control", op=op, meta=meta, arrays=arrays)
            self._pending.add(item)
        self._loop.call_soon_threadsafe(shard.queue.put_nowait, item)
        return item.future.result()

    def status(self) -> List[dict]:
        """Per-shard worker status (pool occupancy, registry stats)."""
        self._check_open()
        out = []
        for sid, shard in sorted(self._shards.items()):
            if shard.dead:
                out.append({"shard_id": sid, "dead": True})
                continue
            meta, _ = self._control(sid, "status")
            meta["dead"] = False
            out.append(meta)
        return out

    def counter_images(self, shard_id: int) -> Dict[str, object]:
        """Parity-test hook: every model's counter image on a shard.

        The worker exports each plan's image and leaves it parked (the
        next query transparently unparks, bit-exactly), so the probe
        is non-destructive; returns unpacked host-side payloads keyed
        by model name.
        """
        meta, _ = self._control(shard_id, "status", {"counters": True})
        return {name: fshm.unpack_state(fshm.inject_arrays(structure,
                                                           arrs))
                for name, (structure, arrs) in meta["counters"].items()}

    def move(self, model: str, dst: int) -> None:
        """Relocate one model's counter state to another shard.

        Bit-exact by construction: the source worker parks the plan
        and exports its counter image (packed uint64 over shared
        memory), the destination registers the same spec and imports
        the image, and only then does the routing table flip.  The
        routing lock is held throughout, so no query can be routed
        mid-move; queries already queued at the source are ahead of
        the export in its FIFO queue and complete first.
        """
        self._check_open()
        with self._route_lock:
            src = self.placement.shard_of(model)
            if src == dst:
                return
            if dst not in self._shards or self._shards[dst].dead:
                raise WorkerCrashedError(f"shard {dst} is not live")
            spec = self._model_specs[model]
            meta, arrays = self._control(src, "export_model",
                                         {"name": model})
            reg_meta = {"name": model, "kind": spec["kind"],
                        "x_budget": spec["x_budget"],
                        "plan_kwargs": spec["plan_kwargs"]}
            z = spec["z"]
            self._control(dst, "register", reg_meta,
                          [np.ascontiguousarray(z)] if z is not None
                          else [])
            self._control(dst, "import_model",
                          {"name": model,
                           "structure": meta["structure"]}, arrays)
            self._control(src, "unregister", {"name": model})
            self.placement.move(model, dst)
            with self._lock:
                self._relocations += 1

    def rebalance(self, ratio: float = 4.0) -> List[Move]:
        """Execute the placement layer's proposed load-balancing moves."""
        moves = self.placement.plan_moves(ratio=ratio)
        for mv in moves:
            self.move(mv.model, mv.dst)
        self.placement.reset_loads()
        return moves

    # ------------------------------------------------------------------
    # campaigns
    # ------------------------------------------------------------------
    def run_campaign(self, spec: dict,
                     schedule: Sequence[Tuple[int, object, int]]
                     ) -> List[Tuple[int, object, int, dict]]:
        """Run reliability-campaign trials across the fleet's shards.

        ``spec`` is :meth:`repro.reliability.campaign.Campaign.spec`;
        ``schedule`` lists ``(point_index, point, trial)`` cells.
        Trials are dealt round-robin over live shards and executed as
        control jobs, so they interleave fairly with serving waves.
        Per-trial metrics are deterministic in the spec's seed tree
        alone (each worker rebuilds the campaign with a private pool
        of the same total budget), so the result is identical to the
        in-process run no matter how the dealing lands.
        """
        self._check_open()
        live = [sid for sid, sh in sorted(self._shards.items())
                if not sh.dead]
        if not live:
            raise WorkerCrashedError("no live shards to run trials on")
        token = f"campaign-{next(self._campaign_seq)}"
        arrays = []
        if spec.get("z") is not None:
            arrays = [np.ascontiguousarray(spec["z"]),
                      np.ascontiguousarray(spec["xs"])]
        wire_spec = {k: v for k, v in spec.items()
                     if k not in ("z", "xs")}
        per_shard: Dict[int, List[Tuple[int, object, int]]] = {
            sid: [] for sid in live}
        for i, cell in enumerate(schedule):
            per_shard[live[i % len(live)]].append(cell)
        used = [sid for sid in live if per_shard[sid]]
        for sid in used:
            self._control(sid, "campaign_open",
                          {"token": token, "spec": wire_spec}, arrays)
        results: List[Tuple[int, object, int, dict]] = []
        try:
            # One driver thread per used shard keeps every worker busy
            # while each shard's trials stay serialized on its queue.
            def shard_trials(sid):
                out = []
                for index, point, trial in per_shard[sid]:
                    meta, _ = self._control(
                        sid, "campaign_trial",
                        {"token": token, "index": index,
                         "point": point, "trial": trial})
                    out.append((index, point, trial, meta["metrics"]))
                return out

            with ThreadPoolExecutor(len(used)) as pool:
                for chunk in pool.map(shard_trials, used):
                    results.extend(chunk)
        finally:
            for sid in used:
                if not self._shards[sid].dead:
                    self._control(sid, "campaign_close",
                                  {"token": token})
        results.sort(key=lambda r: (r[0], r[2]))
        return results

    # ------------------------------------------------------------------
    # telemetry + lifecycle
    # ------------------------------------------------------------------
    @property
    def stats(self) -> FleetStats:
        with self._lock:
            return FleetStats(waves=self._waves, queries=self._queries,
                              max_wave=self._max_wave,
                              rejected=self._rejected,
                              saturated=self._saturated,
                              relocations=self._relocations,
                              crashed_shards=self._crashed)

    def telemetry_summary(self) -> TelemetrySummary:
        """Same shape (and aggregation code path) as the server's.

        The dedup fields sum every live shard's registry/store
        accounting (polled over the control channel); a crashed or
        closing shard simply contributes nothing rather than failing
        the whole summary.
        """
        dedup_hits = rows_shared = rows_private = 0
        try:
            shard_reports = self.status()
        except (FleetClosedError, WorkerCrashedError):
            shard_reports = []
        for report in shard_reports:
            reg = report.get("registry") or {}
            dedup_hits += reg.get("dedup_hits", 0)
            rows_shared += reg.get("rows_shared", 0)
            rows_private += reg.get("rows_private", 0)
        with self._lock:
            return TelemetrySummary(queries=self._queries,
                                    waves=self._waves,
                                    max_wave=self._max_wave,
                                    rejected=self._rejected,
                                    latency=self._latency.summary(),
                                    dedup_hits=dedup_hits,
                                    rows_shared=rows_shared,
                                    rows_private=rows_private)

    def _check_open(self) -> None:
        if self._closed:
            raise FleetClosedError("fleet is closed")

    def _reject_stranded(self) -> None:
        """Deterministically resolve anything still pending after close.

        Once the event loop is stopped nothing can resolve a future
        anymore, so every item still on the pending books -- queued
        behind a stop sentinel, or enqueued by a submit that raced the
        close -- is rejected here.  Mirrors
        ``Server._reject_stranded``: a racing submitter observes a
        :class:`FleetClosedError`, never a hang in ``result()``.
        """
        with self._lock:
            stranded, self._pending = list(self._pending), set()
            for sid in self._inflight:
                self._inflight[sid] = 0
        for it in stranded:
            try:
                if it.future.set_running_or_notify_cancel():
                    it.future.set_exception(FleetClosedError(
                        "fleet closed before this request was "
                        "dispatched"))
            except InvalidStateError:  # pragma: no cover - lost race
                pass

    def close(self) -> None:
        """Drain queued work, stop dispatchers, kill workers.

        Idempotent.  Mirrors ``Server.close``: queued queries
        complete, submissions racing the close either complete or
        raise -- the stranded sweep rejects anything left un-resolved
        once the loop is stopped, so futures never hang.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for shard in self._shards.values():
            self._loop.call_soon_threadsafe(shard.queue.put_nowait,
                                            _Item("stop"))
        for shard in self._shards.values():
            try:
                shard.dispatcher.result(timeout=60.0)
            except BaseException:           # noqa: BLE001 - best effort
                pass
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10.0)
        self._reject_stranded()
        self._loop.close()
        for shard in self._shards.values():
            shard.executor.shutdown(wait=True)
            shard.handle.close()
        self._spec_registry.close()
        self._spec_device.close()

    def __enter__(self) -> "Fleet":
        self._check_open()
        return self

    def __exit__(self, *exc) -> None:
        self.close()
