"""Shard worker process and its parent-side handle.

One fleet shard = one OS process owning a private
:class:`~repro.serve.pool.BankPool`, a :class:`~repro.device.Device`
and a :class:`~repro.serve.registry.ModelRegistry` -- the exact stack
the in-process :class:`~repro.serve.server.Server` runs, minus the
scheduler thread (the front door's per-shard dispatcher plays that
role from the parent).  The command channel is a
:class:`multiprocessing.Pipe` carrying small pickled tuples; bulk
arrays (query batches, result batches, relocation images) ride the
shard's two shared-memory arenas (:mod:`repro.fleet.shm`).

The protocol is strict request/response: the parent-side
:class:`ShardHandle` serializes calls, so the worker loop is a plain
``recv -> execute -> send`` cycle with no concurrency of its own.
Worker-side exceptions cross back as typed ``("err", ...)`` replies
and re-raise in the parent as :class:`ShardOpError`; a dead pipe (the
process crashed mid-call) raises :class:`WorkerCrashedError` instead
of hanging the caller.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.fleet import shm as fshm

__all__ = ["ShardHandle", "ShardOpError", "WorkerCrashedError"]


class WorkerCrashedError(RuntimeError):
    """The shard worker process died (or its pipe broke) mid-call.

    Raised by :meth:`ShardHandle.call` -- and propagated into every
    future queued on the dead shard -- so a crash surfaces as a typed
    error at the caller, never as a future that silently hangs.
    """


class ShardOpError(RuntimeError):
    """A worker-side operation raised; carries the original type name.

    The worker stays alive after sending this (its own state was
    protected by the same try/except), so one failed wave does not
    take down the shard.
    """

    def __init__(self, kind: str, message: str):
        super().__init__(f"{kind}: {message}")
        self.kind = kind


# ----------------------------------------------------------------------
# worker process
# ----------------------------------------------------------------------
class _WorkerState:
    """Everything one shard worker owns: pool, device, registry."""

    def __init__(self, shard_id: int, config, overrides: dict,
                 pool_banks: Optional[int],
                 max_resident: Optional[int]):
        from repro.device import Device
        from repro.serve.pool import BankPool
        from repro.serve.registry import ModelRegistry
        self.shard_id = shard_id
        self.pool = BankPool(pool_banks)
        self.device = Device(config, pool=self.pool, **overrides)
        self.registry = ModelRegistry(self.device,
                                      max_resident=max_resident)
        self.campaigns: Dict[str, object] = {}

    def close(self) -> None:
        self.registry.close()
        self.device.close()


def _op_register(state: _WorkerState, meta: dict,
                 arrays: List[np.ndarray]):
    z = arrays[0] if arrays else None
    state.registry.register(meta["name"], z, kind=meta.get("kind"),
                            x_budget=meta.get("x_budget"),
                            **meta.get("plan_kwargs", {}))
    return {}, []


def _op_unregister(state: _WorkerState, meta: dict,
                   arrays: List[np.ndarray]):
    state.registry.unregister(meta["name"])
    return {}, []


def _op_run(state: _WorkerState, meta: dict, arrays: List[np.ndarray]):
    from repro.serve.server import execute_wave
    ys, deltas = execute_wave(state.registry, meta["model"], arrays[0])
    return deltas, [np.ascontiguousarray(ys)]


def _op_export_model(state: _WorkerState, meta: dict,
                     arrays: List[np.ndarray]):
    image = state.registry.export_model(meta["name"])
    # Bit images cross packed 64 lanes/word; the structure itself is
    # tiny and rides the pipe with array markers into the arena.
    structure, out = fshm.extract_arrays(fshm.pack_state(image))
    # The row-image content address rides alongside, so a receiving
    # shard (or an operator inspecting the move) can tell whether the
    # destination already holds the rows without unpacking the image.
    digest = image.get("digest") if isinstance(image, dict) else None
    return {"structure": structure, "digest": digest}, out


def _op_import_model(state: _WorkerState, meta: dict,
                     arrays: List[np.ndarray]):
    image = fshm.unpack_state(
        fshm.inject_arrays(meta["structure"], arrays))
    state.registry.import_model(meta["name"], image)
    return {}, []


def _op_status(state: _WorkerState, meta: dict,
               arrays: List[np.ndarray]):
    snap = state.pool.snapshot()
    stats = state.registry.stats
    counters = {}
    if meta.get("counters"):
        # Full counter-state digest per model, for parity tests.
        # ``export_image`` parks the plan and leaves the image in
        # place, so the probe is non-destructive: the next query (or
        # the next probe) transparently unparks, bit-exactly.
        for name in state.registry.names():
            image = state.registry.get(name).export_image()
            structure, arrs = fshm.extract_arrays(fshm.pack_state(image))
            counters[name] = (structure, arrs)
    meta_out = {
        "shard_id": state.shard_id,
        "pid": os.getpid(),
        "pool": {"n_banks": snap.n_banks,
                 "banks_leased": snap.banks_leased,
                 "n_live_leases": snap.n_live_leases,
                 "banks_shared": snap.banks_shared,
                 "dedup_ratio": snap.dedup_ratio},
        "registry": {"hits": stats.hits, "misses": stats.misses,
                     "evictions": stats.evictions,
                     "relocations": stats.relocations,
                     "dedup_hits": stats.dedup_hits,
                     "rows_shared": stats.rows_shared,
                     "rows_private": stats.rows_private},
        "models": state.registry.names(),
        "resident": state.registry.resident_names,
        "counters": counters,
    }
    return meta_out, []


def _op_campaign_open(state: _WorkerState, meta: dict,
                      arrays: List[np.ndarray]):
    from repro.reliability.campaign import Campaign
    spec = dict(meta["spec"])
    z = arrays[0] if len(arrays) > 0 else None
    xs = arrays[1] if len(arrays) > 1 else None
    # Each worker rebuilds the campaign from its spec with a private
    # pool of the same total budget: trial metrics depend only on the
    # seed tree and the *total* budget (plans clamp against it), so
    # sharded trials are bit-identical to the in-process run.
    state.campaigns[meta["token"]] = Campaign(
        z=z, xs=xs, kind=spec.get("kind"),
        n_bits=spec.get("n_bits", 2),
        backend=spec.get("backend", "word"),
        pool_banks=spec.get("pool_banks"),
        banks_per_trial=spec.get("banks_per_trial", 4),
        base_seed=spec.get("base_seed", 20260730))
    return {}, []


def _op_campaign_trial(state: _WorkerState, meta: dict,
                       arrays: List[np.ndarray]):
    campaign = state.campaigns[meta["token"]]
    result = campaign._run_point_trial(meta["index"], meta["point"],
                                       meta["trial"])
    return {"metrics": result.metrics}, []


def _op_campaign_close(state: _WorkerState, meta: dict,
                       arrays: List[np.ndarray]):
    state.campaigns.pop(meta["token"], None)
    return {}, []


def _op_ping(state: _WorkerState, meta: dict,
             arrays: List[np.ndarray]):
    return {"pid": os.getpid()}, []


def _op_sleep(state: _WorkerState, meta: dict,
              arrays: List[np.ndarray]):
    # Test hook: lets backpressure tests make a shard slow on demand.
    time.sleep(float(meta.get("seconds", 0.0)))
    return {}, []


_OPS = {
    "register": _op_register,
    "unregister": _op_unregister,
    "run": _op_run,
    "export_model": _op_export_model,
    "import_model": _op_import_model,
    "status": _op_status,
    "campaign_open": _op_campaign_open,
    "campaign_trial": _op_campaign_trial,
    "campaign_close": _op_campaign_close,
    "ping": _op_ping,
    "sleep": _op_sleep,
}


def _worker_main(conn, shard_id: int, config, overrides: dict,
                 pool_banks: Optional[int], max_resident: Optional[int],
                 req_name: str, resp_name: str) -> None:
    """Shard worker entry point: recv -> execute -> send, forever."""
    req = fshm.Arena(name=req_name, create=False)
    resp = fshm.Arena(name=resp_name, create=False)
    state = _WorkerState(shard_id, config, overrides, pool_banks,
                         max_resident)
    try:
        while True:
            try:
                op, meta, payload = conn.recv()
            except (EOFError, OSError):
                return                      # parent went away
            if op == "close":
                conn.send(("ok", {}, ("inline", [])))
                return
            if op == "crash":
                os._exit(17)                # test hook: die mid-call
            try:
                arrays = fshm.unmarshal(req, payload)
                out_meta, out_arrays = _OPS[op](state, meta, arrays)
                reply = ("ok", out_meta,
                         fshm.marshal(resp, out_arrays))
            except BaseException as exc:    # noqa: BLE001 - to parent
                reply = ("err", (type(exc).__name__, str(exc)), None)
            conn.send(reply)
    finally:
        state.close()
        req.close()
        resp.close()
        conn.close()


# ----------------------------------------------------------------------
# parent-side handle
# ----------------------------------------------------------------------
class ShardHandle:
    """Parent-side endpoint of one shard worker.

    Owns the worker process, its pipe and both arenas.  ``call`` is
    the *only* channel and is not thread-safe by itself -- the fleet
    gives each shard a single dispatcher thread, which serializes it.
    """

    def __init__(self, shard_id: int, config=None,
                 overrides: Optional[dict] = None,
                 pool_banks: Optional[int] = None,
                 max_resident: Optional[int] = None,
                 arena_bytes: int = fshm.DEFAULT_ARENA_BYTES):
        self.shard_id = shard_id
        ctx = mp.get_context("fork")
        self.req_arena = fshm.Arena(size=arena_bytes)
        self.resp_arena = fshm.Arena(size=arena_bytes)
        self._conn, child_conn = ctx.Pipe()
        self.process = ctx.Process(
            target=_worker_main,
            args=(child_conn, shard_id, config, dict(overrides or {}),
                  pool_banks, max_resident, self.req_arena.name,
                  self.resp_arena.name),
            daemon=True, name=f"repro-fleet-shard-{shard_id}")
        self.process.start()
        child_conn.close()
        self._dead = False

    @property
    def alive(self) -> bool:
        return not self._dead and self.process.is_alive()

    def call(self, op: str, meta: Optional[dict] = None,
             arrays: Sequence[np.ndarray] = ()
             ) -> Tuple[dict, List[np.ndarray]]:
        """One synchronous round trip; raises typed errors, never hangs."""
        if self._dead:
            raise WorkerCrashedError(
                f"shard {self.shard_id} worker is dead")
        try:
            payload = fshm.marshal(self.req_arena, list(arrays))
            self._conn.send((op, meta or {}, payload))
            status, out_meta, out_payload = self._conn.recv()
        except (EOFError, OSError, BrokenPipeError) as exc:
            self._dead = True
            raise WorkerCrashedError(
                f"shard {self.shard_id} worker died mid-call "
                f"(op={op!r}): {exc!r}") from None
        if status == "err":
            kind, message = out_meta
            raise ShardOpError(kind, message)
        return out_meta, fshm.unmarshal(self.resp_arena, out_payload)

    def crash(self) -> None:
        """Test hook: order the worker to die without replying."""
        try:
            self._conn.send(("crash", {}, ("inline", [])))
        except (OSError, BrokenPipeError):
            pass
        self.process.join(timeout=5.0)
        self._dead = True

    def close(self) -> None:
        """Stop the worker and release all its resources. Idempotent."""
        if not self._dead and self.process.is_alive():
            try:
                self._conn.send(("close", {}, ("inline", [])))
                self._conn.recv()
            except (EOFError, OSError, BrokenPipeError):
                pass
        self._dead = True
        self.process.join(timeout=5.0)
        if self.process.is_alive():         # pragma: no cover - stuck
            self.process.terminate()
            self.process.join(timeout=5.0)
        self._conn.close()
        self.req_arena.close()
        self.resp_arena.close()
