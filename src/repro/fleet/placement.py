"""Model-to-shard placement by accounted bank budget.

The front door routes every model's queries to exactly one shard (the
weight matrix is *stationary* -- its counter engines live in that
shard's banks), so placement is assignment, not per-query balancing.
The policy is deliberately simple and fully deterministic:

* a new model lands on the live shard with the most *free* accounted
  budget (footprint-weighted best-fit), ties broken by shard id;
* per-model query counters feed :meth:`plan_moves`, which proposes
  relocations whenever the busiest shard carries more than
  ``ratio`` times the quietest shard's load -- the fleet executes a
  move as an ``export_model`` / ``import_model`` round trip (bit-exact
  park/unpark images, see :meth:`repro.device.GemvPlan.export_image`).

Everything here is host-side bookkeeping over plain ints, so the
whole policy is unit-testable without a single worker process.

>>> p = Placement([0, 1], {0: 16, 1: 16})
>>> p.assign("a", footprint=4), p.assign("b", footprint=4)
(0, 1)
>>> p.assign("c", footprint=2)      # both equal -> lowest shard id
0
>>> p.note_queries("a", 90); p.note_queries("b", 10)
>>> p.note_queries("c", 10)
>>> [(m.model, m.src, m.dst) for m in p.plan_moves(ratio=4.0)]
[('c', 0, 1)]
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

__all__ = ["Placement", "Move", "PlacementError"]


class PlacementError(RuntimeError):
    """No live shard can place the model (fleet empty or all dead)."""


@dataclass(frozen=True)
class Move:
    """One proposed relocation: take ``model`` from ``src`` to ``dst``."""

    model: str
    src: int
    dst: int
    footprint: int


class _ModelSlot:
    __slots__ = ("shard", "footprint", "queries", "digest")

    def __init__(self, shard: int, footprint: int,
                 digest: Optional[str] = None):
        self.shard = shard
        self.footprint = footprint
        self.queries = 0
        # Content address of the model's planted row image (see
        # repro.serve.rowstore).  Same-digest models co-located on one
        # shard share engines there, so the budget charges the digest
        # once -- None (unknown image) keeps the old gross accounting.
        self.digest = digest


class Placement:
    """Deterministic footprint-weighted model placement.

    Parameters
    ----------
    shards:
        Shard ids, in routing order.
    budgets:
        Accounted bank budget per shard (``None`` entries mean
        unaccounted: such shards report infinite free budget and
        best-fit degenerates to round-robin by free *slots*).
    """

    def __init__(self, shards: Sequence[int],
                 budgets: Optional[Dict[int, Optional[int]]] = None):
        self._shards: List[int] = list(shards)
        self._budgets: Dict[int, Optional[int]] = {
            s: (budgets or {}).get(s) for s in self._shards}
        self._models: Dict[str, _ModelSlot] = {}
        self._dead: set = set()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    @property
    def shards(self) -> List[int]:
        with self._lock:
            return [s for s in self._shards if s not in self._dead]

    def mark_dead(self, shard: int) -> List[str]:
        """Retire a crashed shard; returns the models stranded on it."""
        with self._lock:
            self._dead.add(shard)
            return [m for m, slot in self._models.items()
                    if slot.shard == shard]

    def used(self, shard: int) -> int:
        """Accounted banks of the models placed on ``shard``."""
        with self._lock:
            return self._used(shard)

    def _used(self, shard: int) -> int:
        # Dedup-aware: same-digest models on one shard share planted
        # rows and engines, so each digest's footprint is charged once
        # (its widest tenant).  Digest-less models charge individually.
        total = 0
        widest: Dict[str, int] = {}
        for s in self._models.values():
            if s.shard != shard:
                continue
            if s.digest is None:
                total += s.footprint
            else:
                widest[s.digest] = max(widest.get(s.digest, 0),
                                       s.footprint)
        return total + sum(widest.values())

    def _free(self, shard: int) -> float:
        budget = self._budgets.get(shard)
        if budget is None:
            return float("inf")
        return budget - self._used(shard)

    def _marginal(self, shard: int, footprint: int,
                  digest: Optional[str]) -> int:
        """Banks placing this model on ``shard`` actually adds: zero
        when a same-digest tenant at least as wide is already there."""
        if digest is None:
            return footprint
        held = max((s.footprint for s in self._models.values()
                    if s.shard == shard and s.digest == digest),
                   default=0)
        return max(0, footprint - held)

    # ------------------------------------------------------------------
    def assign(self, model: str, footprint: int = 1,
               digest: Optional[str] = None) -> int:
        """Place ``model`` on the emptiest live shard and return it.

        ``digest`` is the model's row-image content address when
        known: best-fit then compares *post-placement* free budget, so
        a model whose image already resides on some shard gravitates
        there (its marginal footprint is zero) instead of planting a
        duplicate elsewhere.
        """
        with self._lock:
            if model in self._models:
                raise ValueError(f"model {model!r} is already placed on "
                                 f"shard {self._models[model].shard}")
            live = [s for s in self._shards if s not in self._dead]
            if not live:
                raise PlacementError("no live shard to place on")
            footprint = max(1, int(footprint))
            # Most free budget *after* placement wins, then the
            # cheaper (already-resident image) shard -- for digest-less
            # models both terms are constant across shards, so this
            # reduces to the old most-free ordering; unaccounted shards
            # compare by (negated) used banks so they still spread,
            # ties go to the lowest shard id for determinism.
            best = max(live, key=lambda s: (
                self._free(s) - self._marginal(s, footprint, digest),
                -self._marginal(s, footprint, digest),
                -self._used(s), -s))
            self._models[model] = _ModelSlot(best, footprint,
                                             digest=digest)
            return best

    def shard_of(self, model: str) -> int:
        with self._lock:
            if model not in self._models:
                raise KeyError(f"model {model!r} is not placed")
            return self._models[model].shard

    def drop(self, model: str) -> None:
        with self._lock:
            self._models.pop(model, None)

    def models_on(self, shard: int) -> List[str]:
        with self._lock:
            return [m for m, s in self._models.items()
                    if s.shard == shard]

    def note_queries(self, model: str, n: int = 1) -> None:
        """Account ``n`` routed queries against ``model``'s load."""
        with self._lock:
            slot = self._models.get(model)
            if slot is not None:
                slot.queries += n

    def loads(self) -> Dict[int, int]:
        """Routed-query load per live shard."""
        with self._lock:
            live = [s for s in self._shards if s not in self._dead]
            out = {s: 0 for s in live}
            for slot in self._models.values():
                if slot.shard in out:
                    out[slot.shard] += slot.queries
            return out

    # ------------------------------------------------------------------
    def plan_moves(self, ratio: float = 4.0) -> List[Move]:
        """Propose relocations that rebalance query load.

        While the busiest live shard's load exceeds ``ratio`` times
        the quietest's, move the busiest shard's *coldest* model (the
        one whose departure disturbs the least traffic) to the
        quietest shard -- provided it fits the destination's free
        budget and the move actually helps.  Returns the ordered move
        list; the caller executes them via export/import and then
        calls :meth:`move` to commit each one.
        """
        moves: List[Move] = []
        with self._lock:
            live = [s for s in self._shards if s not in self._dead]
            if len(live) < 2:
                return moves
            load = {s: 0 for s in live}
            placed: Dict[int, List[str]] = {s: [] for s in live}
            for name, slot in self._models.items():
                if slot.shard in load:
                    load[slot.shard] += slot.queries
                    placed[slot.shard].append(name)
            free = {s: self._free(s) for s in live}

            def marginal(m: str, shard: int) -> int:
                # Banks m adds to (or, symmetrically, reclaims from)
                # ``shard`` given the *simulated* placement so far: a
                # same-digest tenant at least as wide absorbs it.
                slot = self._models[m]
                if slot.digest is None:
                    return slot.footprint
                held = max((self._models[o].footprint
                            for o in placed[shard]
                            if o != m
                            and self._models[o].digest == slot.digest),
                           default=0)
                return max(0, slot.footprint - held)

            for _ in range(len(self._models)):
                busy = max(live, key=lambda s: (load[s], -s))
                quiet = min(live, key=lambda s: (load[s], s))
                if busy == quiet or load[busy] <= ratio * max(load[quiet],
                                                             1):
                    break
                movable = [m for m in placed[busy]
                           if marginal(m, quiet) <= free[quiet]
                           and self._models[m].queries > 0]
                if not movable:
                    break
                # Coldest-but-live model first: smallest traffic that
                # still closes some of the gap.
                victim = min(movable,
                             key=lambda m: (self._models[m].queries, m))
                slot = self._models[victim]
                if load[busy] - slot.queries < load[quiet] + slot.queries:
                    break                       # move would overshoot
                cost = marginal(victim, quiet)
                moves.append(Move(model=victim, src=busy, dst=quiet,
                                  footprint=cost))
                placed[busy].remove(victim)
                # Leaving busy reclaims only the banks no same-digest
                # tenant still pins there.
                free[busy] += marginal(victim, busy)
                placed[quiet].append(victim)
                load[busy] -= slot.queries
                load[quiet] += slot.queries
                free[quiet] -= cost
        return moves

    def move(self, model: str, dst: int) -> None:
        """Commit a relocation after the data actually moved."""
        with self._lock:
            if model not in self._models:
                raise KeyError(f"model {model!r} is not placed")
            if dst in self._dead or dst not in self._shards:
                raise PlacementError(f"shard {dst} is not live")
            self._models[model].shard = dst

    def reset_loads(self) -> None:
        """Zero the per-model query counters (after a rebalance epoch)."""
        with self._lock:
            for slot in self._models.values():
                slot.queries = 0
