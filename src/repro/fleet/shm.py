"""Shared-memory marshalling between the front door and shard workers.

Every fleet shard worker owns a pair of fixed-size
:class:`multiprocessing.shared_memory.SharedMemory` arenas: the front
door stages request payloads (query batches, counter images) into the
*request* arena and the worker stages results (output batches, exported
images) into the *response* arena.  Because each shard's command channel
is strictly one-round-trip-at-a-time (the dispatcher serializes it), a
single reusable arena per direction needs no further synchronization --
the pipe message is the fence -- and nothing is allocated per wave.

Counter images are *bit-row* matrices (uint8 0/1 planes), so they cross
the process boundary packed 64 lanes per word:
:func:`pack_image` / :func:`unpack_image` round-trip them through the
packed ``uint64`` form (the same layout the word backend computes on),
8x smaller than raw bytes.

>>> import numpy as np
>>> img = (np.arange(12).reshape(3, 4) % 2).astype(np.uint8)
>>> words, n_cols = pack_image(img)
>>> words.dtype.name, n_cols
('uint64', 4)
>>> bool((unpack_image(words, n_cols) == img).all())
True
>>> tree, arrays = extract_arrays({"a": img, "geo": (3, 4)})
>>> tree["a"], len(arrays)
(('__array__', 0), 1)
>>> bool((inject_arrays(tree, arrays)["a"] == img).all())
True
"""

from __future__ import annotations

from multiprocessing import shared_memory
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.dram.wordline import pack_rows

__all__ = ["Arena", "pack_image", "unpack_image", "pack_state",
           "unpack_state", "extract_arrays", "inject_arrays",
           "DEFAULT_ARENA_BYTES"]

#: Default staging capacity per direction per shard.  Payloads that
#: exceed it transparently fall back to pickling through the pipe, so
#: the arena is a fast path, never a correctness limit.
DEFAULT_ARENA_BYTES = 1 << 20

_PACKED_TAG = "__packed_image__"
_ARRAY_TAG = "__array__"


# ----------------------------------------------------------------------
# packed uint64 counter images
# ----------------------------------------------------------------------
def pack_image(image: np.ndarray) -> Tuple[np.ndarray, int]:
    """Pack a uint8 bit-row image ``[rows, lanes]`` to uint64 words.

    Returns ``(words, n_cols)``; :func:`unpack_image` inverts it.
    """
    image = np.asarray(image, dtype=np.uint8)
    return pack_rows(image), int(image.shape[1])


def unpack_image(words: np.ndarray, n_cols: int) -> np.ndarray:
    """Unpack :func:`pack_image` words back to the uint8 bit rows."""
    words = np.ascontiguousarray(words, dtype=np.uint64)
    return np.unpackbits(words.view(np.uint8), axis=1, count=n_cols,
                         bitorder="little")


def pack_state(obj):
    """Recursively pack every 2-D uint8 bit image inside a parked
    counter-state payload (dict / tuple / list nesting) to uint64 words.

    The parked payloads plans export (:meth:`GemvPlan.export_image`)
    mix geometry ints with raw bit-row images; this keeps the structure
    and swaps each image for a tagged packed form, so relocation ships
    64 lanes per word.  :func:`unpack_state` inverts it.
    """
    if isinstance(obj, np.ndarray) and obj.dtype == np.uint8 \
            and obj.ndim == 2:
        words, n_cols = pack_image(obj)
        return (_PACKED_TAG, words, n_cols)
    if isinstance(obj, dict):
        return {k: pack_state(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return type(obj)(pack_state(v) for v in obj)
    return obj


def unpack_state(obj):
    """Invert :func:`pack_state` (restore raw uint8 bit images)."""
    if isinstance(obj, tuple) and len(obj) == 3 and obj[0] == _PACKED_TAG:
        return unpack_image(obj[1], obj[2])
    if isinstance(obj, dict):
        return {k: unpack_state(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return type(obj)(unpack_state(v) for v in obj)
    return obj


# ----------------------------------------------------------------------
# structure <-> flat array list (for arena staging)
# ----------------------------------------------------------------------
def extract_arrays(obj, _sink: Optional[list] = None):
    """Replace every ndarray in a nested payload with an index marker.

    Returns ``(structure, arrays)``: the structure pickles tiny (ints
    and markers only) and the arrays ride the shared-memory arena.
    :func:`inject_arrays` reassembles the original payload.
    """
    top = _sink is None
    sink: list = [] if top else _sink
    if isinstance(obj, np.ndarray):
        sink.append(obj)
        out = (_ARRAY_TAG, len(sink) - 1)
    elif isinstance(obj, dict):
        out = {k: extract_arrays(v, sink) for k, v in obj.items()}
    elif isinstance(obj, (list, tuple)):
        out = type(obj)(extract_arrays(v, sink) for v in obj)
    else:
        out = obj
    return (out, sink) if top else out


def inject_arrays(obj, arrays: Sequence[np.ndarray]):
    """Invert :func:`extract_arrays`."""
    if isinstance(obj, tuple) and len(obj) == 2 and obj[0] == _ARRAY_TAG:
        return arrays[obj[1]]
    if isinstance(obj, dict):
        return {k: inject_arrays(v, arrays) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return type(obj)(inject_arrays(v, arrays) for v in obj)
    return obj


# ----------------------------------------------------------------------
# arenas
# ----------------------------------------------------------------------
class Arena:
    """One fixed-size shared-memory staging buffer.

    Created by the front door (``create=True``, owns the segment and
    unlinks it) and attached by the worker (``create=False``).  A
    message stages a *list* of arrays back to back;
    :meth:`stage` returns ``None`` when the payload does not fit, which
    callers treat as "ship inline through the pipe instead".
    """

    def __init__(self, size: int = DEFAULT_ARENA_BYTES,
                 name: Optional[str] = None, create: bool = True):
        if create:
            self.shm = shared_memory.SharedMemory(create=True, size=size)
            self._owner = True
        else:
            # Fork-started workers share the parent's resource tracker,
            # so the attach's duplicate register is a harmless set-add;
            # only the owning (front-door) side ever unlinks.
            self.shm = shared_memory.SharedMemory(name=name)
            self._owner = False
        self.size = self.shm.size

    @property
    def name(self) -> str:
        return self.shm.name

    def stage(self, arrays: Sequence[np.ndarray]) -> Optional[List[tuple]]:
        """Copy arrays into the arena; descriptors or ``None`` if full."""
        descs, offset = [], 0
        for a in arrays:
            a = np.ascontiguousarray(a)
            if offset + a.nbytes > self.size:
                return None
            self.shm.buf[offset:offset + a.nbytes] = a.tobytes()
            descs.append((offset, a.shape, a.dtype.str))
            offset += a.nbytes
        return descs

    def fetch(self, descs: Sequence[tuple]) -> List[np.ndarray]:
        """Copy descriptor-named arrays back out of the arena."""
        out = []
        for offset, shape, dtype in descs:
            dt = np.dtype(dtype)
            count = int(np.prod(shape, dtype=np.int64)) if shape else 1
            view = np.frombuffer(self.shm.buf, dtype=dt, count=count,
                                 offset=offset)
            out.append(view.reshape(shape).copy())
            del view          # release the exported buffer immediately
        return out

    def close(self) -> None:
        """Detach (and, for the owner, unlink) the segment. Idempotent."""
        if self.shm is None:
            return
        try:
            self.shm.close()
        except BufferError:  # pragma: no cover - stray exported view
            pass
        if self._owner:
            try:
                self.shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self.shm = None


def marshal(arena: Optional[Arena], arrays: Sequence[np.ndarray]):
    """Stage arrays in the arena, falling back to inline pickling."""
    arrays = [np.ascontiguousarray(a) for a in arrays]
    if arena is not None:
        descs = arena.stage(arrays)
        if descs is not None:
            return ("shm", descs)
    return ("inline", arrays)


def unmarshal(arena: Optional[Arena], payload) -> List[np.ndarray]:
    """Invert :func:`marshal` on the receiving side."""
    tag, data = payload
    if tag == "shm":
        if arena is None:
            raise RuntimeError("shm payload without an attached arena")
        return arena.fetch(data)
    return list(data)
