"""Sharded, multi-process serve fleet (asyncio front door).

The fleet scales :mod:`repro.serve` across worker processes:

* :mod:`repro.fleet.shm` -- shared-memory arenas and packed-uint64
  marshalling for query batches and counter images.
* :mod:`repro.fleet.worker` -- the shard worker process (one private
  :class:`~repro.serve.pool.BankPool` + device + registry each) and
  its parent-side :class:`ShardHandle`.
* :mod:`repro.fleet.placement` -- deterministic model-to-shard
  placement by accounted bank budget, with load-rebalancing moves.
* :mod:`repro.fleet.fleet` -- :class:`Fleet`, the asyncio front door:
  admission control, per-shard coalescing dispatchers, bit-exact
  relocation, crash containment and campaign fan-out.

Everything is re-exported lazily (PEP 562) so ``import repro.fleet``
stays cheap -- constructing a :class:`Fleet` is what forks processes,
never the import.
"""

__all__ = ["Fleet", "FleetStats", "FleetSaturatedError",
           "FleetClosedError", "Placement", "Move", "PlacementError",
           "ShardHandle", "ShardOpError", "WorkerCrashedError",
           "Arena", "pack_image", "unpack_image"]

_LAZY = {
    "Fleet": "repro.fleet.fleet",
    "FleetStats": "repro.fleet.fleet",
    "FleetSaturatedError": "repro.fleet.fleet",
    "FleetClosedError": "repro.fleet.fleet",
    "Placement": "repro.fleet.placement",
    "Move": "repro.fleet.placement",
    "PlacementError": "repro.fleet.placement",
    "ShardHandle": "repro.fleet.worker",
    "ShardOpError": "repro.fleet.worker",
    "WorkerCrashedError": "repro.fleet.worker",
    "Arena": "repro.fleet.shm",
    "pack_image": "repro.fleet.shm",
    "unpack_image": "repro.fleet.shm",
}


def __getattr__(name):
    if name in _LAZY:
        import importlib
        return getattr(importlib.import_module(_LAZY[name]), name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
