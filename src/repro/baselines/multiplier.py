"""Bit-serial shift-add multiplier baseline (SIMDRAM-style int x int).

For integer-integer workloads SIMDRAM multiplies with the classic
shift-add dataflow: for each set bit ``j`` of the multiplier, add the
multiplicand (shifted by ``j``) into the product -- each addition a full
bit-serial RCA pass.  Count2Multiply replaces all of this with CSD
bit-sliced masked counting (Sec. 5.2.3); this module provides the
baseline's gate-level implementation and cost model so the comparison is
apples-to-apples.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.rca import RCAAccumulator
from repro.core.opcount import rca_add_ops
from repro.dram.faults import FAULT_FREE, FaultModel

__all__ = ["BitSerialMultiplier", "multiply_ops"]


def multiply_ops(operand_bits: int, accumulator_bits: int) -> int:
    """Command sequences for one bit-serial multiplication.

    One full-width RCA addition per multiplier bit (zero bits still
    burn the pass -- the command stream is input-independent, like all
    of SIMDRAM's arithmetic).
    """
    return operand_bits * (rca_add_ops(accumulator_bits) + 1)


class BitSerialMultiplier:
    """Gate-level ``product[lane] += a * b[lane]`` with b resident.

    The per-lane multiplicand ``b`` is held as bit rows; the broadcast
    scalar ``a`` selects which shifted additions run.  Implemented on
    top of :class:`RCAAccumulator` -- each shifted addition masks the
    accumulator's addend rows with the corresponding bit row of ``b``.
    """

    def __init__(self, operand_bits: int, accumulator_bits: int,
                 n_lanes: int, fault_model: FaultModel = FAULT_FREE):
        self.operand_bits = int(operand_bits)
        self.acc = RCAAccumulator(accumulator_bits, n_lanes, fault_model)
        self.n_lanes = n_lanes
        self._b_bits = np.zeros((operand_bits, n_lanes), dtype=np.uint8)
        self.ops_issued = 0

    def load_multiplicands(self, values) -> None:
        """Store per-lane multiplicands (unsigned, operand width)."""
        values = np.asarray(values, dtype=np.int64)
        if values.shape != (self.n_lanes,):
            raise ValueError("multiplicand vector width mismatch")
        if (values < 0).any() or (values >= (1 << self.operand_bits)).any():
            raise ValueError("multiplicand out of operand range")
        for i in range(self.operand_bits):
            self._b_bits[i] = (values >> i) & 1

    def reset(self) -> None:
        self.acc.reset()
        self.ops_issued = 0

    def multiply_accumulate(self, a: int) -> None:
        """``product += a * b`` via shift-add (a broadcast, b resident).

        ``a * b = sum_j b_j ? (a << j) : 0`` -- for every bit row j of b,
        add ``a << j`` masked by that row.  Every bit position issues its
        pass regardless of a's bits, matching SIMDRAM's fixed stream.
        """
        a = int(a)
        if not 0 <= a < (1 << self.operand_bits):
            raise ValueError("broadcast operand out of range")
        for j in range(self.operand_bits):
            self.acc.load_mask(self._b_bits[j])
            self.ops_issued += self.acc.add_masked(a << j)

    def read_products(self) -> np.ndarray:
        return self.acc.read_values()
