"""SIMDRAM baseline performance model (paper Sec. 7.1, "SIMDRAM:X").

SIMDRAM [18] executes bit-serial ripple-carry arithmetic with Ambit-style
majority operations.  For the masked-accumulation workloads evaluated in
the paper its cost per accumulated input is one full-width RCA addition
(:data:`repro.core.opcount.RCA_OPS_PER_BIT` per accumulator bit); ternary
operands need a second (subtract) pass.  SIMDRAM performs no
zero-skipping -- its command stream is input-independent (Sec. 7.2.3) --
which is why its latency is flat across the sparsity sweep of Fig. 16.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.opcount import rca_add_ops
from repro.dram.energy import DDR5_ENERGY, EnergyModel
from repro.dram.geometry import DDR5_4400, DRAMGeometry
from repro.dram.timing import DDR5_4400_TIMING, TimingParams

__all__ = ["SIMDRAMConfig", "SIMDRAMModel"]


@dataclass(frozen=True)
class SIMDRAMConfig:
    """A SIMDRAM:X configuration (X = banks computing in parallel)."""

    banks: int = 16
    accumulator_bits: int = 64
    ternary: bool = True
    geometry: DRAMGeometry = DDR5_4400
    timing: TimingParams = DDR5_4400_TIMING
    energy: EnergyModel = DDR5_ENERGY


class SIMDRAMModel:
    """AAP-count/latency/energy model for SIMDRAM masked accumulation."""

    def __init__(self, config: SIMDRAMConfig = SIMDRAMConfig()):
        self.config = config

    def ops_per_input(self) -> float:
        """Command sequences to accumulate one operand element.

        One full-width RCA addition (plus carry-in clear); ternary
        operands take an add pass and a subtract pass.
        """
        passes = 2 if self.config.ternary else 1
        return passes * (rca_add_ops(self.config.accumulator_bits) + 1)

    def gemm_aaps(self, m: int, n: int, k: int) -> float:
        """Total command sequences for an M x N x K masked accumulation.

        Work is column-tiled when N exceeds the rank-level row width;
        sparsity does not reduce the count (no zero skipping).
        """
        row_bits = self.config.geometry.rank_row_bits
        col_tiles = -(-n // row_bits)
        return m * k * col_tiles * self.ops_per_input()
