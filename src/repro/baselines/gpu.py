"""Analytical GPU baseline: NVIDIA RTX 3090 Ti (paper Sec. 7.1).

The paper measures a physical RTX 3090 Ti with cudaEvents/nvidia-smi; we
substitute a roofline model built from the public Ampere GA102 whitepaper
figures (DESIGN.md Sec. 5).  The model captures exactly the effects that
drive the paper's crossovers:

* GEMM is tensor-core compute-bound; GEMV is memory-bandwidth-bound;
* dense-math latency is *flat* across input sparsity (cuBLAS kernels do
  not skip zeros, Sec. 7.2.3);
* end-to-end latency includes streaming the packed ternary weight matrix
  over PCIe when it is not resident (Fig. 16 "including memory
  transfer").
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["GPUSpec", "RTX_3090_TI", "GPUModel"]


@dataclass(frozen=True)
class GPUSpec:
    """Public datasheet figures for the baseline GPU."""

    name: str = "RTX 3090 Ti"
    int8_tensor_tops: float = 320.0       # dense INT8 tensor throughput
    mem_bandwidth_gbs: float = 1008.0     # GDDR6X
    pcie_bandwidth_gbs: float = 25.0      # PCIe 4.0 x16, effective
    tdp_w: float = 450.0
    area_mm2: float = 628.0               # GA102 die
    utilization: float = 0.6              # achieved fraction of peak


#: The paper's comparison GPU (GA102 whitepaper [47]).
RTX_3090_TI = GPUSpec()


@dataclass
class GPUModel:
    """Roofline latency/energy for integer-ternary GEMM/GEMV."""

    spec: GPUSpec = RTX_3090_TI
    #: Ternary weights travel as int4 (the common sub-byte packing that
    #: INT8 tensor-core kernels can unpack on the fly); this calibrates
    #: the Fig. 16 GEMV crossover to the paper's ~40 % sparsity.
    weight_bits: int = 4
    activation_bytes: int = 1             # int8 activations

    def kernel_time_s(self, m: int, n: int, k: int) -> float:
        """max(compute, memory) time of the matmul kernel itself."""
        ops = 2.0 * m * n * k
        compute = ops / (self.spec.int8_tensor_tops * 1e12
                         * self.spec.utilization)
        bytes_moved = (m * k * self.activation_bytes          # A read
                       + k * n * self.weight_bits / 8.0       # B read
                       + m * n * 4)                           # C write
        memory = bytes_moved / (self.spec.mem_bandwidth_gbs * 1e9)
        return max(compute, memory)

    def transfer_time_s(self, m: int, n: int, k: int,
                        weights_resident: bool = False) -> float:
        """PCIe streaming of operands and the result."""
        bw = self.spec.pcie_bandwidth_gbs * 1e9
        moved = m * k * self.activation_bytes + m * n * 4
        if not weights_resident:
            moved += k * n * self.weight_bits / 8.0
        return moved / bw

    def total_time_s(self, m: int, n: int, k: int,
                     include_transfer: bool = True,
                     weights_resident: bool = False) -> float:
        t = self.kernel_time_s(m, n, k)
        if include_transfer:
            t += self.transfer_time_s(m, n, k, weights_resident)
        return t

    # ------------------------------------------------------------------
    def power_w(self) -> float:
        """Average board power during the kernel (utilization-scaled)."""
        return self.spec.tdp_w * max(self.spec.utilization, 0.5)

    def energy_j(self, m: int, n: int, k: int, **kwargs) -> float:
        return self.total_time_s(m, n, k, **kwargs) * self.power_w()

    @property
    def area_mm2(self) -> float:
        return self.spec.area_mm2
