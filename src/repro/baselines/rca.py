"""Bit-serial ripple-carry adder baseline (SIMDRAM-style, Secs. 1, 3).

The state of the art for in-DRAM accumulation is a MAJ-based full adder
applied bit-serially over the full accumulator width: carry via one TRA
(``carry' = MAJ(a_i, b_i, carry)``) and sum via the majority identity

    ``a ⊕ b ⊕ c = MAJ( NOT MAJ(a,b,c), MAJ(a, b, NOT c), c )``.

Two implementations live here:

* :class:`RCAAccumulator` -- executable μPrograms on the gate-level
  Ambit subarray (14 command sequences per bit, the source of
  ``opcount.RCA_OPS_PER_BIT``), used for correctness and fault studies;
* :func:`rca_masked_add_fast` -- a vectorized functional model with
  per-op fault injection for application-scale studies (Figs. 4/17),
  which preserves the key failure mode: a faulty carry perturbs *all*
  higher-order bits.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.dram.ambit import AmbitSubarray
from repro.dram.faults import FAULT_FREE, FaultModel
from repro.isa.microprogram import MicroProgram, aap, ap

__all__ = ["RCAAccumulator", "rca_masked_add_fast", "full_adder_ops"]


def full_adder_ops(a_row, b_row, carry_row, sum_out_row,
                   u_scratch_row) -> List:
    """One full-adder bit: 12 AAP/AP sequences.

    Computes ``sum = a ⊕ b ⊕ c`` into ``sum_out_row`` and the new carry
    ``MAJ(a, b, c)`` into ``carry_row``; ``u_scratch_row`` holds the
    intermediate ``u = MAJ(a, b, NOT c)``.  Fusing compute-and-copy into
    single AAPs (activating a TRA address as the AAP source) keeps the
    count at twelve.
    """
    return [
        # u = MAJ(a, b, NOT c)
        aap(a_row, "B0"),
        aap(b_row, "B1"),
        aap(carry_row, "B5"),       # DCC0 <- NOT c
        aap("B11", u_scratch_row),  # compute u and copy out
        # v = MAJ(a, b, c); complement parked in DCC0 via the B8 target
        aap(a_row, "B0"),
        aap(b_row, "B1"),
        aap(carry_row, "B2"),
        aap("B12", "B8"),           # T0..T2 <- v, then T0 <- v, DCC0 <- ~v
        # sum = MAJ(c, u, NOT v); v survives in T2 for the carry update
        aap(u_scratch_row, "B1"),
        aap(carry_row, "B0"),
        aap("B11", sum_out_row),    # MAJ(c, u, NOT v) -> sum
        aap("B2", carry_row),       # new carry <- v
    ]


class RCAAccumulator:
    """A vector of W-bit binary accumulators updated by bit-serial RCA.

    Row layout: rows ``0..W-1`` accumulator bits (LSB first), ``W`` carry,
    ``W+1`` carry scratch, ``W+2`` masked-addend scratch, ``W+3`` mask.
    The addend is a broadcast constant, so its per-bit row is either the
    all-zero C-group row or the mask itself (``m AND x_i``), mirroring how
    Count2Multiply broadcasts inputs.
    """

    def __init__(self, width_bits: int, n_lanes: int,
                 fault_model: FaultModel = FAULT_FREE):
        self.width = int(width_bits)
        self.n_lanes = int(n_lanes)
        self.subarray = AmbitSubarray(self.width + 4, n_lanes, fault_model)
        self._carry = self.width
        self._scratch = self.width + 1
        self._sum_scratch = self.width + 2
        self._mask_row = self.width + 3

    def load_mask(self, bits) -> None:
        self.subarray.write_data_row(self._mask_row,
                                     np.asarray(bits, dtype=np.uint8))

    def reset(self) -> None:
        zero = np.zeros(self.n_lanes, dtype=np.uint8)
        for r in range(self.width):
            self.subarray.write_data_row(r, zero)

    def add_masked(self, value: int) -> int:
        """Add ``value`` to every masked lane; returns ops issued.

        Negative values are added in two's complement (width-truncated).
        Unmasked lanes see an all-zero addend and a zero carry-in, so
        they pass through unchanged without any predication logic.
        """
        x = int(value) % (1 << self.width)
        ops: List = [aap("C0", self._carry)]       # clear carry-in
        for i in range(self.width):
            bit = (x >> i) & 1
            b_row = self._mask_row if bit else "C0"
            # Row i is fully consumed before the sum lands, so the
            # full adder can write it in place.
            ops.extend(full_adder_ops(i, b_row, self._carry,
                                      i, self._scratch))
        prog = MicroProgram(f"rca_add({value})", tuple(ops))
        prog.run(self.subarray)
        return len(prog)

    def read_values(self) -> np.ndarray:
        """Decode accumulators as unsigned W-bit integers."""
        bits = self.subarray.read_rows(list(range(self.width)))
        weights = (1 << np.arange(self.width, dtype=np.int64))
        return (bits.astype(np.int64) * weights[:, None]).sum(axis=0)

    def read_signed(self) -> np.ndarray:
        """Two's-complement interpretation of the accumulators."""
        vals = self.read_values()
        half = 1 << (self.width - 1)
        return np.where(vals >= half, vals - (1 << self.width), vals)


def rca_masked_add_fast(acc_bits: np.ndarray, value: int, mask: np.ndarray,
                        fault_model: FaultModel = FAULT_FREE,
                        ops_per_bit_faultable: int = 3) -> np.ndarray:
    """Vectorized masked RCA addition with per-op fault injection.

    ``acc_bits`` is ``[W, n_lanes]`` (LSB first) and is updated in place
    semantics-free (a new array is returned).  Each bit position performs
    ``ops_per_bit_faultable`` faultable CIM results (the two MAJ3 TRAs
    and the final sum majority); a fault flips the corresponding sum or
    carry bit, so carry faults corrupt the remaining ripple -- the
    high-order-bit failure mode of Sec. 3.
    """
    acc = np.array(acc_bits, dtype=np.uint8)
    w, lanes = acc.shape
    mask = np.asarray(mask, dtype=np.uint8)
    x = int(value) % (1 << w)
    carry = np.zeros(lanes, dtype=np.uint8)
    for i in range(w):
        b = mask if ((x >> i) & 1) else np.zeros(lanes, dtype=np.uint8)
        a = acc[i]
        s = a ^ b ^ carry
        c_new = ((a.astype(np.int16) + b + carry) >= 2).astype(np.uint8)
        # Faults: one roll for the sum result, one for the carry TRA, one
        # for the intermediate majority (folded into the sum roll).
        s = fault_model.corrupt(s, multi_row=True)
        if ops_per_bit_faultable >= 2:
            c_new = fault_model.corrupt(c_new, multi_row=True)
        acc[i] = np.where(mask | True, s, a)  # all lanes compute; b masks
        carry = c_new
    return acc
