"""Comparison baselines: bit-serial RCA (gate-level + fast), the SIMDRAM
performance model, and the GPU roofline model."""

from repro.baselines.gpu import GPUModel, GPUSpec, RTX_3090_TI
from repro.baselines.rca import (RCAAccumulator, full_adder_ops,
                                 rca_masked_add_fast)
from repro.baselines.simdram import SIMDRAMConfig, SIMDRAMModel

__all__ = [
    "GPUModel", "GPUSpec", "RTX_3090_TI",
    "RCAAccumulator", "full_adder_ops", "rca_masked_add_fast",
    "SIMDRAMConfig", "SIMDRAMModel",
]
