"""Reliability-campaign subsystem: seeded Monte-Carlo fault sweeps.

See :mod:`repro.reliability.campaign` for the harness the paper-style
fault-injection grids (Secs. 6-7, Figs. 14-19) run through.
"""

from repro.reliability.campaign import (Campaign, CampaignResult,
                                        FaultPoint, TrialResult)

__all__ = ["Campaign", "CampaignResult", "FaultPoint", "TrialResult"]
