"""Seeded Monte-Carlo reliability campaigns (paper Sec. 6, Figs. 14-19).

The paper's headline claim is *reliable* high-radix counting; its
evaluation is a grid of fault-injection sweeps and protection ablations.
:class:`Campaign` is the harness that runs those grids against the real
counting engine: N seeded trials per :class:`FaultPoint`, each trial a
full weight-stationary GEMV plan under its own deterministic
:class:`~repro.dram.faults.FaultModel`, with per-trial
``injected`` / ``detected`` / ``corrected`` / ``silent`` accounting
against the exact software result.

Trials batch across a shared :class:`~repro.serve.pool.BankPool`: each
trial's plan leases its engine banks through the same lease machinery
the serving runtime uses, the campaign sizes its admission waves from
the pool budget, and a wave's leases are held until the whole wave
retires -- a bounded pool is the normal operating point, not an error.
On the word backend the fault-injected hot loop replays *fused* fault
traces (see :mod:`repro.isa.trace`), which is what makes
application-scale campaigns tractable; results are bit-identical to the
interpreted and bit-level paths, so a campaign row is a reproducible
artifact, not a sample of simulator noise.

>>> import numpy as np
>>> rng = np.random.default_rng(0)
>>> z = rng.integers(-1, 2, (8, 16)).astype(np.int8)
>>> xs = rng.integers(-5, 6, (3, 8))
>>> campaign = Campaign(z=z, xs=xs, kind="ternary", pool_banks=8,
...                     banks_per_trial=2)
>>> result = campaign.run([FaultPoint(p_cim=0.0),
...                        FaultPoint(p_cim=0.2)], n_trials=2)
>>> [row["silent_trials"] for row in result.rows]
[0, 2]
>>> result.rows[0]["injected"], result.rows[1]["injected"] > 0
(0, True)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.device import Device
from repro.dram.faults import FaultModel
from repro.serve.pool import BankPool

__all__ = ["Campaign", "CampaignResult", "FaultPoint", "TrialResult"]


@dataclass(frozen=True)
class FaultPoint:
    """One cell of a fault + protection grid.

    ``p_cim`` / ``p_read`` / ``margin_aware`` parameterize the
    :class:`~repro.dram.faults.FaultModel` of every trial at this
    point; ``fr_checks`` selects the Sec. 6 ECC protection (0 =
    unprotected).  ``scheme`` is a free-form protection tag for custom
    trial functions that model their own protection (the Fig. 17 app
    grids use it); the engine-backed trials ignore it.
    """

    p_cim: float
    p_read: float = 0.0
    margin_aware: bool = True
    fr_checks: int = 0
    scheme: str = ""
    label: str = ""

    @property
    def name(self) -> str:
        if self.label:
            return self.label
        tag = f"p_cim={self.p_cim:g}"
        if self.p_read:
            tag += f",p_read={self.p_read:g}"
        if not self.margin_aware:
            tag += ",no-margin"
        if self.fr_checks:
            tag += f",fr={self.fr_checks}"
        if self.scheme:
            tag += f",{self.scheme}"
        return tag


@dataclass(frozen=True)
class TrialResult:
    """One seeded trial's outcome: the grid point, the seed, metrics.

    ``point_index`` is the point's position in the ``run()`` grid --
    the aggregation key, so duplicate (value-equal) grid points keep
    their trial sets separate.
    """

    point: FaultPoint
    point_index: int
    trial: int
    metrics: Dict[str, float]


@dataclass
class CampaignResult:
    """All trials of one campaign run plus the per-point summary."""

    rows: List[dict] = field(default_factory=list)
    trials: List[TrialResult] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def point_trials(self, point_index: int) -> List[TrialResult]:
        """Trials of the grid point at ``point_index`` in the run."""
        return [t for t in self.trials if t.point_index == point_index]

    def render(self) -> str:
        """Plain-text summary table (one row per grid point)."""
        lines = ["== Reliability campaign =="]
        if self.rows:
            keys: List[str] = []
            for row in self.rows:
                for k in row:
                    if k not in keys:
                        keys.append(k)
            widths = {k: max(len(str(k)),
                             *(len(_fmt(r.get(k))) for r in self.rows))
                      for k in keys}
            lines.append("  ".join(str(k).ljust(widths[k]) for k in keys))
            for row in self.rows:
                lines.append("  ".join(
                    _fmt(row.get(k)).ljust(widths[k]) for k in keys))
        lines.extend(f"note: {note}" for note in self.notes)
        return "\n".join(lines)


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e4 or abs(value) < 1e-3:
            return f"{value:.3g}"
        return f"{value:.4g}"
    return str(value)


class Campaign:
    """Run seeded Monte-Carlo trials of a kernel over a fault grid.

    Parameters
    ----------
    z, xs, kind, n_bits, backend:
        The built-in engine trial: a weight-stationary GEMV plan over
        ``z`` answering the query stream ``xs`` (``[Q, K]``), compared
        against the exact ``xs @ z``.  Each trial builds the plan under
        its own seeded fault model, streams every query, and accounts
        flips / detections / silent output corruptions.
    trial:
        Alternative custom trial ``fn(point, rng) -> dict`` returning
        metric values; overrides the engine trial.  Used by experiment
        grids whose workload is an application study rather than a raw
        kernel (Fig. 17).
    pool / pool_banks:
        The shared bank budget trials lease from.  A bounded pool
        bounds the campaign's admission wave: at most
        ``pool_banks // banks_per_trial`` trials hold leases at once,
        and a wave's leases are released together when it retires.
    banks_per_trial:
        Banks each engine trial's plan spreads its broadcast over.
    base_seed:
        Root of the deterministic seed tree: trial ``t`` of grid point
        ``i`` draws from ``SeedSequence((base_seed, i, t))``, so any
        single trial can be reproduced in isolation.
    """

    def __init__(self, z: Optional[np.ndarray] = None,
                 xs: Optional[np.ndarray] = None,
                 kind: Optional[str] = None, n_bits: int = 2,
                 backend: str = "word",
                 trial: Optional[Callable[[FaultPoint,
                                           np.random.Generator],
                                          dict]] = None,
                 pool: Optional[BankPool] = None,
                 pool_banks: Optional[int] = None,
                 banks_per_trial: int = 4,
                 base_seed: int = 20260730):
        if z is not None and xs is None:
            raise ValueError("a workload z also needs its query "
                             "stream xs")
        if trial is None and z is None:
            raise ValueError("provide a workload (z and xs) or a "
                             "custom trial function")
        self.trial_fn = trial
        self.n_bits = int(n_bits)
        self.backend = backend
        self.base_seed = int(base_seed)
        self.pool = pool if pool is not None else BankPool(pool_banks)
        self.banks_per_trial = max(1, int(banks_per_trial))
        if z is not None:
            self.z = np.asarray(z)
            self.xs = np.asarray(xs, dtype=np.int64)
            if self.xs.ndim != 2 or self.xs.shape[1] != self.z.shape[0]:
                raise ValueError("xs must be [Q, K] matching z's K")
            self.kind = kind
            self.golden = self.xs @ self.z.astype(np.int64)
            self.x_budget = int(np.abs(self.xs).sum(axis=1).max())
        else:
            self.z = self.xs = self.golden = None
            self.kind = kind
            self.x_budget = 0

    # ------------------------------------------------------------------
    def wave_size(self) -> int:
        """Trials admitted to hold bank leases concurrently.

        A bounded pool grants ``budget // banks_per_trial`` concurrent
        trials (plans clamp their bank ask to the total budget, so even
        a pool smaller than ``banks_per_trial`` admits one trial); an
        unaccounted pool does not constrain admission.
        """
        if not self.pool.bounded or self.trial_fn is not None:
            return 8
        return max(1, self.pool.n_banks // min(self.banks_per_trial,
                                               self.pool.n_banks))

    def trial_rng(self, point_index: int, trial: int
                  ) -> np.random.Generator:
        """The deterministic per-trial generator (reproducible alone)."""
        return np.random.default_rng(
            np.random.SeedSequence((self.base_seed, point_index, trial)))

    def spec(self) -> dict:
        """The picklable recipe a fleet shard rebuilds this campaign from.

        Everything a per-trial metric depends on: workload, kind, bit
        width, backend, the *total* pool budget (plans clamp their bank
        ask against it), per-trial banks and the seed-tree root.  Wave
        boundaries and lease concurrency are deliberately absent --
        they affect scheduling, never metrics -- which is exactly why a
        fleet-sharded run reproduces the in-process run bit for bit.
        Custom ``trial`` functions are process-local closures and have
        no spec; asking for one raises.
        """
        if self.trial_fn is not None:
            raise ValueError("custom-trial campaigns cannot be shipped "
                             "to fleet workers (the trial function is "
                             "a process-local closure)")
        return {"z": self.z, "xs": self.xs, "kind": self.kind,
                "n_bits": self.n_bits, "backend": self.backend,
                "pool_banks": self.pool.n_banks,
                "banks_per_trial": self.banks_per_trial,
                "base_seed": self.base_seed}

    # ------------------------------------------------------------------
    def _engine_trial(self, point: FaultPoint,
                      rng: np.random.Generator, device: Device) -> dict:
        """One seeded plan lifetime: stream ``xs``, account everything.

        Outcome taxonomy per lane: **silent** lanes are wrong outputs
        of queries that completed without any unresolved detection --
        the dangerous kind; queries whose protection exhausted its
        retries are *loud* failures, so their lanes are reported as
        ``failed_lanes``, never as silent corruption.  ``corrected``
        counts blocks the ECC scheme detected and re-executed to a
        clean validation (outcome-level, not per-check).
        """
        plan = device.plan_gemv(self.z, kind=self.kind,
                                x_budget=self.x_budget)
        failed_queries = 0
        ys = np.zeros_like(self.golden)
        completed = np.ones(self.xs.shape[0], dtype=bool)
        from repro.ecc.protection import RetryExhaustedError
        for qi, x in enumerate(self.xs):
            try:
                ys[qi] = plan(x)
            except RetryExhaustedError:
                failed_queries += 1
                completed[qi] = False
        prot = plan.protection_stats()
        stats = plan.stats
        silent = int((ys[completed] != self.golden[completed]).sum())
        return {
            "injected": int(stats.injected_faults),
            "detected": int(prot.detections),
            "corrected": int(prot.corrected),
            "retries": int(prot.retries),
            "retry_exhausted": int(prot.exhausted),
            "failed_queries": failed_queries,
            "failed_lanes": int((~completed).sum() * self.golden.shape[1]),
            "silent_lanes": silent,
            "n_outputs": int(completed.sum() * self.golden.shape[1]),
            "exact": int(silent == 0 and failed_queries == 0),
            "measured_ops": int(stats.measured_ops),
            "trace_compiles": int(stats.trace_compiles),
            "trace_replays": int(stats.trace_replays),
            "megatrace_compiles": int(stats.megatrace_compiles),
            "megatrace_replays": int(stats.megatrace_replays),
        }

    def _run_point_trial(self, index: int, point: FaultPoint,
                         trial: int,
                         wave_devices: Optional[List[Device]] = None
                         ) -> TrialResult:
        rng = self.trial_rng(index, trial)
        if self.trial_fn is not None:
            metrics = dict(self.trial_fn(point, rng))
            return TrialResult(point=point, point_index=index,
                               trial=trial, metrics=metrics)
        fault_model = FaultModel(p_cim=point.p_cim, p_read=point.p_read,
                                 margin_aware=point.margin_aware,
                                 seed=rng)
        device = Device(n_bits=self.n_bits, fault_model=fault_model,
                        fr_checks=point.fr_checks, backend=self.backend,
                        n_banks=self.banks_per_trial, pool=self.pool)
        if wave_devices is not None:
            wave_devices.append(device)       # lease held until wave end
            metrics = self._engine_trial(point, rng, device)
        else:
            try:
                metrics = self._engine_trial(point, rng, device)
            finally:
                device.close()
        return TrialResult(point=point, point_index=index, trial=trial,
                           metrics=metrics)

    # ------------------------------------------------------------------
    def run(self, points: Sequence[FaultPoint], n_trials: int = 8,
            fleet=None) -> CampaignResult:
        """Run ``n_trials`` seeded trials of every grid point.

        Trials are scheduled in admission waves sized by the pool
        budget: every trial in a wave keeps its plan (and bank leases)
        alive until the wave completes, so the pool really is shared --
        and really is returned -- the way the serving registry shares
        it.  Results are deterministic in ``(base_seed, point index,
        trial index)`` regardless of wave boundaries.

        Passing a :class:`~repro.fleet.fleet.Fleet` fans the grid out
        across its shard workers instead (each rebuilds the campaign
        from :meth:`spec` and runs its dealt trials); because trial
        metrics depend only on the seed tree and the spec, the result
        rows are identical to the in-process run.
        """
        points = list(points)
        if n_trials < 1:
            raise ValueError("n_trials must be positive")
        schedule = [(i, point, t) for i, point in enumerate(points)
                    for t in range(n_trials)]
        result = CampaignResult()
        if fleet is not None:
            for index, point, trial, metrics in fleet.run_campaign(
                    self.spec(), schedule):
                result.trials.append(TrialResult(
                    point=point, point_index=index, trial=trial,
                    metrics=metrics))
        else:
            wave = self.wave_size()
            for lo in range(0, len(schedule), wave):
                wave_devices: List[Device] = []
                try:
                    for index, point, trial in schedule[lo:lo + wave]:
                        result.trials.append(self._run_point_trial(
                            index, point, trial, wave_devices))
                finally:
                    for device in wave_devices:
                        device.close()
        for index, point in enumerate(points):
            result.rows.append(self._summarize(
                point, [t for t in result.trials
                        if t.point_index == index]))
        if self.z is not None:
            result.notes.append(
                f"{len(points)} grid points x {n_trials} seeded trials; "
                f"{self.xs.shape[0]} queries/trial against a "
                f"{self.z.shape[0]}x{self.z.shape[1]} resident Z "
                f"({self.backend} backend, fused fault replay)")
            if fleet is not None:
                result.notes.append(
                    f"trials fanned out over {fleet.n_shards}-shard "
                    f"fleet (per-trial seeding; rows bit-identical to "
                    f"the in-process run)")
        return result

    def _summarize(self, point: FaultPoint,
                   trials: List[TrialResult]) -> dict:
        row = {"point": point.name, "trials": len(trials)}
        keys: List[str] = []
        for t in trials:
            for k in t.metrics:
                if k not in keys:
                    keys.append(k)
        totals = {k: [t.metrics[k] for t in trials if k in t.metrics]
                  for k in keys}
        if self.trial_fn is not None:
            for k in keys:
                row[k] = float(np.mean(totals[k]))
            return row
        # Engine-trial summary: totals for event counts, derived rates.
        for k in ("injected", "detected", "corrected", "retries",
                  "retry_exhausted", "failed_lanes", "silent_lanes"):
            row[k] = int(np.sum(totals.get(k, [0])))
        outputs = int(np.sum(totals.get("n_outputs", [0])))
        row["silent_rate"] = (row["silent_lanes"] / outputs
                              if outputs else 0.0)
        row["exact_trials"] = int(np.sum(totals.get("exact", [0])))
        # Trials with truly *silent* corruption (loud retry-exhausted
        # failures make a trial inexact but not silent).
        row["silent_trials"] = sum(
            1 for t in trials if t.metrics.get("silent_lanes", 0) > 0)
        row["mean_ops"] = float(np.mean(totals.get("measured_ops", [0])))
        row["trace_replays"] = int(np.sum(totals.get("trace_replays",
                                                     [0])))
        row["megatrace_compiles"] = int(np.sum(
            totals.get("megatrace_compiles", [0])))
        row["megatrace_replays"] = int(np.sum(
            totals.get("megatrace_replays", [0])))
        return row
