"""Fig. 18 -- full-workload comparison including protection overheads.

Execution time, GOPS/W and GOPS/mm² for SIMDRAM, bare C2M, protected
C2M (Sec. 6 scheme at fault rate 1e-4, one FR repeat) and the detected-
fault correction on top -- the stacked overhead of Sec. 7.3.2 (the
correction adds ~19.6 % over the protected run).
"""

from __future__ import annotations

from repro.apps.workloads import WORKLOAD_NAMES, layer_inventory
from repro.ecc.analysis import correction_overhead
from repro.experiments.registry import ExperimentResult, register
from repro.perf.metrics import CostReport
from repro.perf.model import C2MConfig, C2MModel, simdram_cost


def _workload_cost(model_cost_fn, layers) -> CostReport:
    """Sum layer costs into one workload-level report."""
    total_ops = total_time = total_energy = total_aaps = 0.0
    area = 0.0
    for layer in layers:
        c = model_cost_fn(layer)
        total_ops += c.nominal_ops
        total_time += c.time_s
        total_energy += c.energy_j
        total_aaps += c.aaps
        area = c.area_mm2
    return CostReport(name="workload", nominal_ops=total_ops,
                      time_s=total_time, energy_j=total_energy,
                      area_mm2=area, aaps=total_aaps)


@register("fig18")
def run(quick: bool = True) -> ExperimentResult:
    result = ExperimentResult(
        "Fig. 18", "Workload exec time / GOPS/W / GOPS/mm² with the "
        "protection scheme overhead")
    plain = C2MModel(C2MConfig(banks=16))
    protected = C2MModel(C2MConfig(banks=16, fr_checks=2,
                                   fault_rate=1e-4))
    corr = correction_overhead(1e-4, 2)

    for wname in WORKLOAD_NAMES:
        layers = layer_inventory(wname)
        c = _workload_cost(
            lambda l: plain.cost(l.shape, sparsity=l.sparsity), layers)
        p = _workload_cost(
            lambda l: protected.cost(l.shape, sparsity=l.sparsity), layers)
        s = _workload_cost(
            lambda l: simdram_cost(l.shape, banks=16), layers)
        result.rows.append({
            "workload": wname,
            "SIMDRAM_ms": s.latency_ms,
            "C2M_ms": c.latency_ms,
            "C2M_protected_ms": p.latency_ms,
            "correction_overhead": round(corr, 3),
            "C2M_gops_per_W": c.gops_per_watt,
            "SIMDRAM_gops_per_W": s.gops_per_watt,
            "C2M_gops_per_mm2": c.gops_per_mm2,
            "SIMDRAM_gops_per_mm2": s.gops_per_mm2,
            "speedup_vs_SIMDRAM": round(s.time_s / c.time_s, 2),
        })
    result.notes.append(
        "Protection costs the Tab. 1 op inflation "
        "((13n+16)/(7n+7) at radix 4) plus 19.6% correction at fault "
        "rate 1e-4 with one FR repeat -- the paper's Sec. 7.3.2 numbers")
    return result
