"""Fig. 8 -- masked-addition op counts across counter radices.

(a) unit counting vs ripple-carry adders for 16/32/64-bit capacities;
(b) k-ary-only vs IARM (capacity-invariant) vs RCA.  Counts average the
AAP sequences per accumulated input over a uniform 8-bit stream, exactly
the figure's setup.
"""

from __future__ import annotations

from repro.core.iarm import IARMScheduler, NaiveKaryScheduler, UnitScheduler
from repro.core.opcount import (digits_for_capacity, mean_ops_per_value,
                                rca_add_ops)
from repro.experiments.registry import ExperimentResult, register
from repro.util import as_rng

RADICES = (2, 4, 6, 8, 10, 12, 14, 16, 18, 20)
CAPACITIES = {"i16": 16, "i32": 32, "i64": 64}


@register("fig08")
def run(quick: bool = True) -> ExperimentResult:
    result = ExperimentResult(
        "Fig. 8", "AAP operations per input: unit vs k-ary vs IARM vs RCA")
    rng = as_rng(99)
    sample = rng.integers(0, 256, 1000 if quick else 8000)

    for radix in RADICES:
        n_bits = radix // 2
        row = {"radix": radix}
        for tag, cap_bits in CAPACITIES.items():
            digits = digits_for_capacity(n_bits, 2 ** cap_bits)
            row[f"unit_{tag}"] = round(mean_ops_per_value(
                UnitScheduler, sample, n_bits, digits), 1)
            row[f"kary_{tag}"] = round(mean_ops_per_value(
                NaiveKaryScheduler, sample, n_bits, digits), 1)
        # IARM is capacity-invariant (single curve in Fig. 8b).
        digits = digits_for_capacity(n_bits, 2 ** 64)
        row["iarm"] = round(mean_ops_per_value(
            IARMScheduler, sample, n_bits, digits), 1)
        result.rows.append(row)

    result.rows.append({"radix": "RCA",
                        "unit_i16": rca_add_ops(16),
                        "unit_i32": rca_add_ops(32),
                        "unit_i64": rca_add_ops(64),
                        "kary_i16": rca_add_ops(16),
                        "kary_i32": rca_add_ops(32),
                        "kary_i64": rca_add_ops(64),
                        "iarm": None})
    result.notes.append(
        "Shapes match the paper: k-ary cuts unit counting by 2-6x at "
        "higher radices, IARM is a single capacity-invariant curve with "
        "its minimum at radices 4-8, RCA lines are flat per capacity")
    return result
