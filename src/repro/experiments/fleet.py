"""Fleet serving experiment: sharded workers vs the in-process server.

The ROADMAP's serving north star needs more than one process once
tenant traffic outgrows a single GIL, so this experiment replays one
shuffled multi-tenant query stream twice -- through the single-process
:class:`repro.serve.Server` and through a 2-shard
:class:`repro.fleet.Fleet` -- and reports, per configuration, the
throughput and client-observed latency percentiles plus a ``parity``
column asserting the fleet returned bit-identical outputs.  It is the
registry-runnable face of ``benchmarks/test_fleet_throughput.py``:
same workload shape, sized for the quick suite.
"""

from __future__ import annotations

import time

import numpy as np

from repro.experiments.registry import ExperimentResult, register


def _stream(quick: bool):
    rng = np.random.default_rng(42)
    k, n, queries = (24, 48, 32) if quick else (48, 192, 128)
    zs = {name: rng.integers(-1, 2, (k, n)).astype(np.int8)
          for name in ("hot", "warm", "cold")}
    weights = np.array([0.6, 0.3, 0.1])
    schedule = rng.choice(sorted(zs), size=queries, p=weights)
    xs = rng.integers(-6, 7, (queries, k))
    return zs, schedule, xs


def _replay(submit, schedule, xs):
    t0 = time.perf_counter()
    futures = [submit(model, x) for model, x in zip(schedule, xs)]
    ys = [f.result().y for f in futures]
    wall = time.perf_counter() - t0
    return wall, ys


@register("fleet")
def run(quick: bool = True) -> ExperimentResult:
    from repro.fleet import Fleet
    from repro.serve import Server

    result = ExperimentResult(
        "Fleet serving", "Sharded multi-process fleet vs single-process "
        "server on one shuffled multi-tenant stream")
    zs, schedule, xs = _stream(quick)
    exact = [x @ zs[m].astype(np.int64) for m, x in zip(schedule, xs)]

    outputs = {}
    for config, n_shards in (("server", 0), ("fleet-2", 2)):
        if n_shards:
            front = Fleet(n_shards=n_shards, n_bits=2, pool_banks=16,
                          max_queue=len(schedule) + 1)
        else:
            front = Server(n_bits=2, pool_banks=16)
        with front:
            for name, z in zs.items():
                front.register(name, z, kind="ternary")
            wall, ys = _replay(front.submit, schedule, xs)
            summary = front.telemetry_summary()
        outputs[config] = ys
        parity = all((y == e).all() for y, e in zip(ys, exact))
        result.rows.append({
            "config": config,
            "shards": n_shards or 1,
            "queries": len(schedule),
            "qps": round(len(schedule) / wall, 1),
            "waves": summary.waves,
            "p50_us": round(summary.latency.p50_ns / 1e3, 1),
            "p99_us": round(summary.latency.p99_ns / 1e3, 1),
            "parity": parity,
        })

    agree = all((a == b).all() for a, b in
                zip(outputs["server"], outputs["fleet-2"]))
    result.notes.append(
        f"fleet outputs bit-identical to server: {agree}; latency "
        "percentiles come from the shared LatencySummary telemetry path")
    result.notes.append(
        "open-loop throughput numbers for 2 and 4 shards are tracked "
        "by benchmarks/test_fleet_throughput.py (BENCH_fleet.json)")
    assert agree, "fleet diverged from the single-process server"
    return result
