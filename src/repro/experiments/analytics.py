"""In-memory analytics on the counting engine (Sec. 7 workload class).

Histograms, group-by aggregation and LSD radix sort all reduce to the
same primitive the paper builds everything on: masked high-radix counter
increments.  This experiment runs the three :mod:`repro.apps.analytics`
kernels end to end on both engine backends, checks them bit-exact
against NumPy goldens, and then degrades a histogram under the seeded
fault grid through :class:`repro.reliability.Campaign` -- corrupted
counts show up as *approximate* results (wrong buckets, bounded count
error), never crashes, which is the graceful-degradation story the
analytics pipeline inherits from the counting substrate.
"""

from __future__ import annotations

import numpy as np

from repro.apps.analytics import histogram_fault_trial, radix_sort
from repro.device import Device
from repro.experiments.registry import ExperimentResult, register
from repro.reliability import Campaign, FaultPoint


def _histogram_row(backend: str, keys: np.ndarray, n_buckets: int) -> dict:
    with Device(backend=backend) as dev:
        plan = dev.plan_histogram(n_buckets=n_buckets,
                                  query_len=keys.shape[1])
        counts = plan.run_many(keys)
        golden = np.stack([np.bincount(q, minlength=n_buckets)
                           for q in keys])
        stats = plan.stats
        return {"workload": "histogram", "backend": backend,
                "queries": keys.shape[0], "keys": int(keys.size),
                "exact": bool((counts == golden).all()),
                "measured_ops": stats.measured_ops,
                "megatrace_replays": stats.megatrace_replays}


def _groupby_row(backend: str, recs: np.ndarray, n_groups: int) -> dict:
    with Device(backend=backend) as dev:
        plan = dev.plan_groupby(n_groups, agg="sum",
                                query_len=recs.shape[1])
        sums = plan.run_many(recs)
        golden = np.zeros((recs.shape[0], n_groups), dtype=np.int64)
        for q in range(recs.shape[0]):
            np.add.at(golden[q], recs[q, :, 0], recs[q, :, 1])
        stats = plan.stats
        return {"workload": "groupby-sum", "backend": backend,
                "queries": recs.shape[0], "keys": int(recs[..., 0].size),
                "exact": bool((sums == golden).all()),
                "measured_ops": stats.measured_ops,
                "megatrace_replays": stats.megatrace_replays}


def _radix_sort_row(backend: str, keys: np.ndarray,
                    radix_bits: int) -> dict:
    with Device(backend=backend) as dev:
        out, payload = radix_sort(keys, radix_bits=radix_bits,
                                  payload=np.arange(keys.size),
                                  device=dev)
    stable = bool((keys[payload] == out).all())
    return {"workload": f"radix-sort(r={radix_bits})", "backend": backend,
            "queries": 1, "keys": int(keys.size),
            "exact": bool((out == np.sort(keys)).all()) and stable,
            "measured_ops": None, "megatrace_replays": None}


@register("analytics")
def run(quick: bool = True) -> ExperimentResult:
    result = ExperimentResult(
        "Analytics", "Histogram / group-by / radix sort on the counting "
        "engine, plus fault-grid degradation")
    rng = np.random.default_rng(2026)
    n_q, q_len, n_buckets = (6, 48, 8) if quick else (16, 256, 16)
    keys = rng.integers(0, n_buckets, size=(n_q, q_len))
    recs = np.stack([np.stack([rng.integers(0, 4, q_len),
                               rng.integers(-9, 10, q_len)], axis=1)
                     for _ in range(n_q)])
    sort_keys = rng.integers(0, 1 << 8, size=96 if quick else 2048)

    for backend in ("fast", "bit") if quick else ("fast",):
        result.rows.append(_histogram_row(backend, keys, n_buckets))
        result.rows.append(_groupby_row(backend, recs, 4))
        result.rows.append(_radix_sort_row(backend, sort_keys, 4))
    if not quick:
        result.rows.append(_histogram_row("bit", keys, n_buckets))
        result.rows.append(_groupby_row("bit", recs, 4))
        result.rows.append(_radix_sort_row("bit", sort_keys, 4))

    # Fault-grid degradation: the histogram keeps answering under
    # injected faults; errors surface as wrong buckets, not crashes.
    fault_keys = rng.integers(0, n_buckets, size=q_len)
    campaign = Campaign(
        trial=histogram_fault_trial(fault_keys, n_buckets),
        pool_banks=16, banks_per_trial=4)
    points = [FaultPoint(p_cim=0.0, label="nominal"),
              FaultPoint(p_cim=1e-3), FaultPoint(p_cim=1e-2)]
    outcome = campaign.run(points, n_trials=2 if quick else 8)
    for row in outcome.rows:
        row["workload"] = "histogram-faults"
    result.rows.extend(outcome.rows)

    clean = [r for r in result.rows if r.get("backend") is not None]
    result.notes.append(
        f"{sum(r['exact'] for r in clean)}/{len(clean)} fault-free "
        f"analytics kernels bit-exact against NumPy goldens")
    faulty = [r for r in outcome.rows if r["point"] != "nominal"]
    if faulty:
        result.notes.append(
            "fault grid degraded gracefully: every faulty trial returned "
            "a complete (approximate) histogram")
    return result
