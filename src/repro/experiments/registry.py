"""Experiment registry: one entry per paper table/figure (DESIGN.md §3).

Every experiment module exposes ``run(quick=True) -> ExperimentResult``;
``quick`` trims Monte-Carlo counts so the full suite stays laptop-scale.
Results carry row dicts (the figure's series) plus free-form notes
comparing against the paper's reported numbers; ``render()`` prints the
table the benchmark harness captures into EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

__all__ = ["ExperimentResult", "register", "get_experiment",
           "experiment_names", "run_experiment"]


@dataclass
class ExperimentResult:
    """The regenerated content of one paper table or figure."""

    experiment_id: str
    title: str
    rows: List[dict] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        """JSON-serializable form (the runner's ``--json`` output).

        Numpy scalars in row values are folded to native Python so the
        result dumps without a custom encoder.
        """
        def _native(value):
            return value.item() if hasattr(value, "item") else value
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "rows": [{k: _native(v) for k, v in row.items()}
                     for row in self.rows],
            "notes": list(self.notes),
        }

    def render(self) -> str:
        """Plain-text table in row order, plus notes."""
        lines = [f"== {self.experiment_id}: {self.title} =="]
        if self.rows:
            keys = []
            for row in self.rows:           # union, first-seen order
                for k in row:
                    if k not in keys:
                        keys.append(k)
            widths = {k: max(len(str(k)),
                             *(len(_fmt(r.get(k))) for r in self.rows))
                      for k in keys}
            lines.append("  ".join(str(k).ljust(widths[k]) for k in keys))
            for row in self.rows:
                lines.append("  ".join(
                    _fmt(row.get(k)).ljust(widths[k]) for k in keys))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e4 or abs(value) < 1e-3:
            return f"{value:.3g}"
        return f"{value:.4g}"
    return str(value)


_REGISTRY: Dict[str, Callable[..., ExperimentResult]] = {}


def register(name: str):
    """Decorator registering an experiment runner under ``name``."""
    def wrap(fn: Callable[..., ExperimentResult]):
        _REGISTRY[name] = fn
        return fn
    return wrap


def get_experiment(name: str) -> Callable[..., ExperimentResult]:
    _load_all()
    if name not in _REGISTRY:
        raise KeyError(f"unknown experiment {name!r}; "
                       f"available: {sorted(_REGISTRY)}")
    return _REGISTRY[name]


def experiment_names() -> List[str]:
    _load_all()
    return sorted(_REGISTRY)


def run_experiment(name: str, quick: bool = True) -> ExperimentResult:
    """Run one experiment by its registry name."""
    return get_experiment(name)(quick=quick)


def _load_all() -> None:
    """Import every experiment module so registrations take effect."""
    from repro.experiments import (analytics, fig03, fig04, fig07,  # noqa
                                   fig08, fig09, fig10, fig14, fig15,
                                   fig16, fig17, fig18, fig19, fleet,
                                   reliability, table1)
