"""Fig. 4 -- fault-rate impact: accumulated-add RMSE and DNA filtering F1.

(a) RMSE of a fixed accumulation for radix-10 Johnson counters vs a
bit-serial RCA, each bare / +TMR / +ECC; (b) the DNA pre-alignment
filter's F1 under the same fault sweep.  The paper's takeaways, which
the assertions in the test suite pin: JC tolerates roughly an
order-of-magnitude higher fault rates than RCA at equal error, TMR is
weaker than ECC, and the F1 cliff moves right for JC.
"""

from __future__ import annotations

import numpy as np

from repro.apps.dna import DNAFilterConfig, DNAFilterWorkload
from repro.apps.fastsim import FastJCAccumulator, FastRCAAccumulator
from repro.experiments.registry import ExperimentResult, register
from repro.util import as_rng

SCHEMES = [("JC", "jc", "none"), ("JC+TMR", "jc", "tmr"),
           ("JC+ECC", "jc", "ecc"), ("RCA", "rca", "none"),
           ("RCA+TMR", "rca", "tmr"), ("RCA+ECC", "rca", "ecc")]


def accumulation_rmse(kind: str, scheme: str, fault_rate: float,
                      n_adds: int = 100, n_lanes: int = 256,
                      seed=5) -> float:
    """RMSE of accumulating ``n_adds`` small values (Fig. 4a point)."""
    rng = as_rng(seed)
    values = rng.integers(0, 10, n_adds)
    if kind == "jc":
        acc = FastJCAccumulator(n_bits=5, n_digits=3, n_lanes=n_lanes,
                                fault_rate=fault_rate, scheme=scheme,
                                seed=rng.integers(2 ** 31))
    else:
        acc = FastRCAAccumulator(width=16, n_lanes=n_lanes,
                                 fault_rate=fault_rate, scheme=scheme,
                                 seed=rng.integers(2 ** 31))
    mask = np.ones(n_lanes, dtype=np.uint8)
    for v in values:
        acc.accumulate(int(v), mask)
    expect = int(values.sum())
    got = acc.read() if kind == "jc" else acc.read(signed=False)
    return float(np.sqrt(np.mean((got.astype(np.float64) - expect) ** 2)))


@register("fig04")
def run(quick: bool = True) -> ExperimentResult:
    result = ExperimentResult(
        "Fig. 4", "Fault-rate impact on accumulation RMSE (a) and DNA "
        "filtering F1 (b)")
    rates = [1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1]
    lanes = 128 if quick else 512

    for f in rates:
        row = {"fault_rate": f}
        for label, kind, scheme in SCHEMES:
            row[f"rmse[{label}]"] = accumulation_rmse(
                kind, scheme, f, n_lanes=lanes)
        result.rows.append(row)

    workload = DNAFilterWorkload(DNAFilterConfig(
        n_reads=30 if quick else 100))
    for f in ([1e-5, 1e-4, 1e-3] if quick else rates):
        row = {"fault_rate": f}
        for label, kind, scheme in (SCHEMES[:1] + SCHEMES[3:4]):
            row[f"f1[{label}]"] = workload.evaluate(
                kind, f, scheme)["f1"]
        result.rows.append(row)

    result.notes.append(
        "Paper: RCA shows substantial RMSE already at 1e-6 while JC "
        "tolerates ~1e-5 for the same error; TMR > ECC error rates; the "
        "JC filter's F1 cliff sits an order of magnitude right of RCA's")
    return result
