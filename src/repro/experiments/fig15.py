"""Fig. 15 -- bank-level parallelism: SIMDRAM vs C2M at 1/4/16 banks.

Latency and throughput on the Tab. 3 shapes.  The scaling regimes come
straight from the timing substrate: 1 bank is tAAP+tRRD-bound, 4 banks
overlap inside that window, 16 banks saturate the four-activation
window (Sec. 7.2.1).
"""

from __future__ import annotations

from repro.apps.workloads import LLAMA_SHAPES
from repro.experiments.registry import ExperimentResult, register
from repro.perf.model import C2MConfig, C2MModel, simdram_cost
from repro.util import geometric_mean

BANKS = (1, 4, 16)


@register("fig15")
def run(quick: bool = True) -> ExperimentResult:
    result = ExperimentResult(
        "Fig. 15", "Latency / throughput of SIMDRAM:X vs C2M:X on "
        "LLaMA GEMV+GEMM")
    models = {b: C2MModel(C2MConfig(banks=b)) for b in BANKS}
    speedups = {b: [] for b in BANKS}
    shapes = (list(LLAMA_SHAPES.items())[:6] if quick
              else list(LLAMA_SHAPES.items()))
    for name, shape in shapes:
        row = {"workload": name}
        for b in BANKS:
            c = models[b].cost(shape)
            s = simdram_cost(shape, banks=b)
            row[f"C2M:{b}_ms"] = c.latency_ms
            row[f"SIMDRAM:{b}_ms"] = s.latency_ms
            row[f"C2M:{b}_gops"] = c.gops
            speedups[b].append(s.time_s / c.time_s)
        result.rows.append(row)
    for b in BANKS:
        result.notes.append(
            f"geomean C2M:{b} speedup over SIMDRAM:{b} = "
            f"{geometric_mean(speedups[b]):.2f}x")
    result.notes.append(
        "Scaling 1->4 banks is ~4x (AAP overlap); 4->16 adds the "
        "remaining headroom until tFAW binds, as in the paper")
    return result
