"""Experiment registry regenerating every table and figure of the paper's
evaluation (see DESIGN.md Sec. 3 for the index)."""

from repro.experiments.registry import (ExperimentResult, experiment_names,
                                        get_experiment, run_experiment)

__all__ = ["ExperimentResult", "experiment_names", "get_experiment",
           "run_experiment"]
