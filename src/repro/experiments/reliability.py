"""Engine-level reliability campaign (the Sec. 6 evaluation, end to end).

Where Figs. 4/17 sweep *application* accuracy through the fast
analytical accumulators, this experiment runs the real counting engine:
a fig-14-style ternary GEMV workload (weight-stationary Z, signed query
stream) under a seeded fault + protection grid, executed through
:class:`repro.reliability.Campaign` with fused fault-trace replay.
Every row reports the campaign's ground-truth accounting -- flips
injected, ECC detections/corrections, silent output corruptions against
the exact product -- rather than a modeled error rate.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.registry import ExperimentResult, register
from repro.reliability import Campaign, FaultPoint


def default_points() -> list:
    """The protection-ablation grid the campaign sweeps."""
    points = []
    for p_cim in (1e-3, 1e-2):
        points.append(FaultPoint(p_cim=p_cim))
        points.append(FaultPoint(p_cim=p_cim, p_read=p_cim / 10))
        points.append(FaultPoint(p_cim=p_cim, margin_aware=False))
        points.append(FaultPoint(p_cim=p_cim, fr_checks=2))
    return points


def default_campaign(quick: bool = True, **overrides) -> Campaign:
    """A small LLaMA-shaped ternary GEMV campaign workload."""
    rng = np.random.default_rng(1729)
    k, n, queries = (24, 64, 3) if quick else (48, 128, 6)
    z = rng.integers(-1, 2, (k, n)).astype(np.int8)
    xs = rng.integers(-30, 31, (queries, k))
    overrides.setdefault("pool_banks", 16)
    overrides.setdefault("banks_per_trial", 4)
    return Campaign(z=z, xs=xs, kind="ternary", **overrides)


@register("reliability")
def run(quick: bool = True) -> ExperimentResult:
    result = ExperimentResult(
        "Reliability campaign", "Monte-Carlo fault/protection grid on "
        "the counting engine (ternary GEMV, fused fault replay)")
    campaign = default_campaign(quick)
    outcome = campaign.run(default_points(), n_trials=2 if quick else 8)
    result.rows = outcome.rows
    result.notes = list(outcome.notes)
    protected = [r for r in outcome.rows if "fr=2" in r["point"]]
    bare = [r for r in outcome.rows
            if "fr=" not in r["point"] and "p_cim=0.01" in r["point"]]
    if protected and bare:
        result.notes.append(
            f"ECC protection detected {sum(r['detected'] for r in protected)} "
            f"faults and corrected "
            f"{sum(r['corrected'] for r in protected)}; unprotected rows "
            f"left {sum(r['silent_lanes'] for r in bare)} silently "
            f"corrupted lanes")
    return result
