"""Fig. 9 -- IARM delayed-overflow walkthrough.

The paper steps a radix-10, 5-digit counter initialized to 9999 through
repeated ``+9`` increments, showing carries deferred until a digit would
exceed its extended ``4n - 1 = 19`` range.  We replay the same scenario
through the real scheduler + golden counter and log, per step, the digit
quantities (with ``1#`` marking a pending-extended digit, as in the
figure) and the carry events issued.
"""

from __future__ import annotations

import numpy as np

from repro.core.counter import CounterArray
from repro.core.iarm import CarryResolve, IARMScheduler, apply_events
from repro.experiments.registry import ExperimentResult, register


def _render_digits(counter: CounterArray, lane: int = 0) -> str:
    parts = []
    for d in range(counter.n_digits - 1, -1, -1):
        q = int(counter.values[d, lane]
                + counter.radix * counter.pending[d, lane])
        parts.append(f"{q}#" if q >= counter.radix else str(q))
    return ".".join(parts)


@register("fig09")
def run(quick: bool = True) -> ExperimentResult:
    result = ExperimentResult(
        "Fig. 9", "IARM increments with delayed overflow resolution "
        "(+9 steps from 9999)")
    counter = CounterArray(n_bits=5, n_digits=5, n_lanes=1)
    counter.set_totals([9999])
    scheduler = IARMScheduler(5, 5, initial_max=9999)
    mask = np.ones(1, dtype=bool)

    total = 9999
    for step in range(1, 14):
        events = scheduler.schedule_value(9)
        apply_events(counter, events, mask=mask)
        total += 9
        resolves = sum(1 for e in events if isinstance(e, CarryResolve))
        state = _render_digits(counter)
        assert counter.totals()[0] == total
        result.rows.append({"step": step, "digits(MSD..LSD)": state,
                            "carry_resolves": resolves,
                            "value": total})
    result.notes.append(
        "Matches the paper's narrative: the first +9 resolves nothing "
        "(99918), later steps ripple only one digit, and pending '1#' "
        "digits persist across many increments before resolution")
    return result
