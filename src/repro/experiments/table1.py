"""Table 1 -- protection-scheme error/detect rates and op counts.

Analytical closed forms (DESIGN.md Sec. 7 derivation) against the
published cells, with Monte-Carlo cross-validation at the fault rates
where sampling is feasible.
"""

from __future__ import annotations

from repro.ecc.analysis import (TABLE1_FAULT_RATES, monte_carlo_protection,
                                table1)
from repro.experiments.registry import ExperimentResult, register

#: The published Table 1, for side-by-side reporting.
PAPER_TABLE1 = {
    2: {"error": {1e-1: 1.4e-3, 1e-2: 1.5e-6, 1e-4: 1.5e-12},
        "detect": {1e-1: 3.1e-1, 1e-2: 3.5e-2, 1e-4: 3.5e-4},
        "ops": "13n+16"},
    4: {"error": {1e-1: 1.4e-5, 1e-2: 1.5e-10, 1e-4: 1.0e-20},
        "detect": {1e-1: 4.4e-1, 1e-2: 5.4e-2, 1e-4: 5.5e-4},
        "ops": "23n+26"},
    6: {"error": {1e-1: 1.4e-7, 1e-2: 1.5e-14, 1e-4: 1.0e-20},
        "detect": {1e-1: 5.5e-1, 1e-2: 7.3e-2, 1e-4: 7.5e-4},
        "ops": "33n+36"},
}


@register("table1")
def run(quick: bool = True) -> ExperimentResult:
    result = ExperimentResult(
        "Tab. 1", "FR-check count vs error / detect rates and Ambit ops")
    for row_model in table1():
        r = row_model.fr_checks
        paper = PAPER_TABLE1[r]
        for f in TABLE1_FAULT_RATES:
            result.rows.append({
                "fr_checks": r, "fault_rate": f,
                "error_rate": row_model.error_rates[f],
                "paper_error": paper["error"][f],
                "detect_rate": row_model.detect_rates[f],
                "paper_detect": paper["detect"][f],
                "ambit_ops": row_model.ambit_ops_formula,
            })
    trials = 100_000 if quick else 2_000_000
    for r in (2, 4):
        mc = monte_carlo_protection(1e-1, r, trials=trials)
        result.notes.append(
            f"Monte-Carlo (f=1e-1, r={r}): error={mc['error_rate']:.2e} "
            f"vs closed form {1.5 * 0.1 ** (r + 1):.2e}")
    result.notes.append(
        "Every closed-form cell lands within 10% of the paper except the "
        "floored 1.5e-20 vs 1.0e-20 corner (read-fault floor)")
    return result
