"""Command-line experiment runner.

Usage::

    python -m repro.experiments.runner            # run everything (quick)
    python -m repro.experiments.runner fig16      # one experiment
    python -m repro.experiments.runner --full     # full-fidelity sweep
    python -m repro.experiments.runner fig16 --json   # machine-readable
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.experiments.registry import experiment_names, run_experiment


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate Count2Multiply paper tables/figures")
    parser.add_argument("experiments", nargs="*",
                        help="experiment names (default: all)")
    parser.add_argument("--full", action="store_true",
                        help="full-fidelity sweeps (slower)")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments")
    parser.add_argument("--chart", action="store_true",
                        help="render an ASCII chart where one applies")
    parser.add_argument("--json", action="store_true",
                        help="emit one JSON document instead of tables "
                             "(for CI smoke jobs and tooling)")
    args = parser.parse_args(argv)

    if args.list:
        for name in experiment_names():
            print(name)
        return 0

    names = args.experiments or experiment_names()
    documents = []
    for name in names:
        start = time.time()
        result = run_experiment(name, quick=not args.full)
        elapsed = time.time() - start
        if args.json:
            doc = result.to_dict()
            doc["name"] = name
            doc["seconds"] = round(elapsed, 3)
            documents.append(doc)
            continue
        print(result.render())
        if args.chart:
            chart = _chart_for(name, result)
            if chart:
                print(chart)
        print(f"-- {name} regenerated in {elapsed:.1f}s --\n")
    if args.json:
        print(json.dumps({"experiments": documents}, indent=2))
    return 0


#: Chartable experiments: (x column, y columns, log axes).
_CHART_SPECS = {
    "fig08": ("radix", ["unit_i64", "kary_i64", "iarm"], False, True),
    "fig16": ("sparsity", ["C2M_ms", "SIMDRAM_ms", "GPU_ms"],
              False, True),
    "fig19": ("capacity", ["binary", "radix4", "radix10"], True, False),
    "fig04": ("fault_rate", ["rmse[JC]", "rmse[RCA]"], True, True),
}


def _chart_for(name, result):
    from repro.experiments.plotting import chart_from_rows
    if name not in _CHART_SPECS:
        return None
    x_key, y_keys, log_x, log_y = _CHART_SPECS[name]
    return chart_from_rows(result.rows, x_key, y_keys, log_x=log_x,
                           log_y=log_y, title=f"[{name} chart]")


if __name__ == "__main__":
    sys.exit(main())
