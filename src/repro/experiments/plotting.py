"""Terminal-friendly ASCII charts for the regenerated figures.

The paper's figures are mostly log-log line plots; this renderer turns
an :class:`~repro.experiments.registry.ExperimentResult`'s row series
into a fixed-width ASCII chart so ``python -m repro.experiments.runner
--chart`` produces something that *looks* like the figure, offline.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

__all__ = ["ascii_chart", "chart_from_rows"]

_MARKERS = "ox+*#@%&"


def _to_log(value: float, log: bool) -> float:
    if not log:
        return value
    return math.log10(max(value, 1e-300))


def ascii_chart(series: Dict[str, List[tuple]], width: int = 64,
                height: int = 16, log_x: bool = False,
                log_y: bool = False, title: str = "") -> str:
    """Render named (x, y) series into an ASCII grid.

    Each series gets a marker from ``oxX*#@%&``; axes are annotated with
    the data extents (log-scaled when requested).
    """
    points = [(x, y) for pts in series.values() for x, y in pts
              if y is not None]
    if not points:
        return f"{title}\n(no data)"
    xs = [_to_log(x, log_x) for x, _ in points]
    ys = [_to_log(y, log_y) for _, y in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for idx, (name, pts) in enumerate(series.items()):
        marker = _MARKERS[idx % len(_MARKERS)]
        for x, y in pts:
            if y is None:
                continue
            col = int((_to_log(x, log_x) - x_lo) / x_span * (width - 1))
            row = int((_to_log(y, log_y) - y_lo) / y_span * (height - 1))
            grid[height - 1 - row][col] = marker

    lines = []
    if title:
        lines.append(title)
    hi_label = f"{10 ** y_hi:.3g}" if log_y else f"{y_hi:.3g}"
    lo_label = f"{10 ** y_lo:.3g}" if log_y else f"{y_lo:.3g}"
    pad = max(len(hi_label), len(lo_label))
    for i, row in enumerate(grid):
        label = hi_label if i == 0 else (lo_label if i == height - 1
                                         else "")
        lines.append(f"{label:>{pad}} |{''.join(row)}")
    x_lo_label = f"{10 ** x_lo:.3g}" if log_x else f"{x_lo:.3g}"
    x_hi_label = f"{10 ** x_hi:.3g}" if log_x else f"{x_hi:.3g}"
    lines.append(f"{'':>{pad}} +{'-' * width}")
    lines.append(f"{'':>{pad}}  {x_lo_label}"
                 f"{x_hi_label:>{width - len(x_lo_label)}}")
    legend = "  ".join(f"{_MARKERS[i % len(_MARKERS)]}={name}"
                       for i, name in enumerate(series))
    lines.append(f"{'':>{pad}}  {legend}")
    return "\n".join(lines)


def chart_from_rows(rows: Sequence[dict], x_key: str,
                    y_keys: Optional[Sequence[str]] = None,
                    log_x: bool = False, log_y: bool = False,
                    title: str = "", **kwargs) -> str:
    """Chart an experiment's row dicts directly.

    ``y_keys`` defaults to every numeric column except ``x_key``.
    Non-numeric x values (e.g. the "RCA" row of Fig. 8) are skipped.
    """
    numeric_rows = [r for r in rows
                    if isinstance(r.get(x_key), (int, float))]
    if y_keys is None:
        y_keys = [k for k in (numeric_rows[0] if numeric_rows else {})
                  if k != x_key and isinstance(numeric_rows[0][k],
                                               (int, float))]
    series = {}
    for key in y_keys:
        pts = [(r[x_key], r.get(key)) for r in numeric_rows
               if isinstance(r.get(key), (int, float))]
        if pts:
            series[key] = pts
    return ascii_chart(series, log_x=log_x, log_y=log_y, title=title,
                       **kwargs)
