"""Fig. 14 -- ternary GEMV/GEMM throughput, GOPS/W and GOPS/mm² vs GPU.

SIMDRAM:16 and C2M:16 against the RTX 3090 Ti roofline on the Tab. 3
LLaMA shapes (8-bit signed inputs, radix-4 counters, 64-bit capacity).
Values are reported absolute and normalized to the GPU, as the figure
plots them.
"""

from __future__ import annotations

from repro.apps.workloads import LLAMA_SHAPES
from repro.experiments.registry import ExperimentResult, register
from repro.perf.model import C2MConfig, C2MModel, gpu_cost, simdram_cost
from repro.util import geometric_mean


@register("fig14")
def run(quick: bool = True) -> ExperimentResult:
    result = ExperimentResult(
        "Fig. 14", "Throughput / Watt / mm² on LLaMA GEMV+GEMM, "
        "normalized to GPU")
    c2m = C2MModel(C2MConfig(banks=16))
    ratios_w, ratios_a, speedups = [], [], []
    for name, shape in LLAMA_SHAPES.items():
        c = c2m.cost(shape)
        s = simdram_cost(shape, banks=16)
        g = gpu_cost(shape)
        norm_c = c.normalized_to(g)
        norm_s = s.normalized_to(g)
        speedups.append(s.time_s / c.time_s)
        ratios_w.append(c.gops_per_watt / s.gops_per_watt)
        ratios_a.append(c.gops_per_mm2 / s.gops_per_mm2)
        result.rows.append({
            "workload": name,
            "C2M_gops": c.gops, "SIMDRAM_gops": s.gops, "GPU_gops": g.gops,
            "C2M/GPU_gops": norm_c["gops"],
            "SIMDRAM/GPU_gops": norm_s["gops"],
            "C2M/GPU_gops_per_W": norm_c["gops_per_watt"],
            "SIMDRAM/GPU_gops_per_W": norm_s["gops_per_watt"],
            "C2M/GPU_gops_per_mm2": norm_c["gops_per_mm2"],
            "SIMDRAM/GPU_gops_per_mm2": norm_s["gops_per_mm2"],
        })
    result.notes.append(
        f"geomean C2M speedup over SIMDRAM = "
        f"{geometric_mean(speedups):.2f}x (paper: 2x geomean, up to 10x)")
    result.notes.append(
        f"geomean C2M/SIMDRAM GOPS/W = {geometric_mean(ratios_w):.2f}x, "
        f"GOPS/mm² = {geometric_mean(ratios_a):.2f}x "
        "(paper headline: 8x and 9.5x)")
    result.notes.append(
        "GPU keeps the highest raw GEMM throughput (hand-tuned tensor "
        "cores), while the CIM designs lead on GEMV efficiency -- the "
        "figure's qualitative picture")
    return result
