"""Fig. 10 -- counting μPrograms for the NVM backends.

Pinatubo's AND/OR/NOT style costs ``3n + 4`` row operations per masked
unit increment with overflow; the NOR-only MAGIC style needs ``~6n + 4``
after reusing the complemented mask.  Both generated programs are
functionally verified against the Johnson golden model in the tests.
"""

from __future__ import annotations

from repro.core.opcount import increment_ops
from repro.experiments.registry import ExperimentResult, register
from repro.isa.nvm import magic_op_count, pinatubo_op_count


@register("fig10")
def run(quick: bool = True) -> ExperimentResult:
    result = ExperimentResult(
        "Fig. 10", "Pinatubo and MAGIC counting μProgram op counts")
    for n in (2, 3, 4, 5, 8):
        result.rows.append({
            "n_bits": n,
            "pinatubo_measured": pinatubo_op_count(n),
            "pinatubo_paper(3n+4)": 3 * n + 4,
            "magic_measured": magic_op_count(n),
            "magic_paper(6n+4)": 6 * n + 4,
            "ambit(7n+7)": increment_ops(n),
        })
    result.notes.append(
        "Generated Pinatubo programs hit 3n+4 exactly; the MAGIC "
        "generator lands at 6n+5 (one setup NOR above the paper's "
        "optimized 6n+4)")
    return result
