"""Fig. 7 -- transition patterns of a 5-bit (radix-10) Johnson counter.

For every increment ``+1 .. +9`` the figure draws which bit feeds which,
with the twisted (inverting) edges marked.  We regenerate the full
pattern table and verify each pattern advances every state correctly.
"""

from __future__ import annotations

from repro.core.johnson import (all_states, apply_pattern, decode,
                                transition_pattern)
from repro.core.kary import render_fig7_row
from repro.experiments.registry import ExperimentResult, register


@register("fig07")
def run(quick: bool = True) -> ExperimentResult:
    result = ExperimentResult(
        "Fig. 7", "Radix-10 k-ary transition patterns (+1 .. +9)")
    n = 5
    for k in range(1, 2 * n):
        pattern = transition_pattern(n, k)
        edges = render_fig7_row(n, k)
        plain = sum(1 for _, _, inv in edges if not inv)
        inverted = sum(1 for _, _, inv in edges if inv)
        # Exhaustive check: the pattern realizes (v + k) mod 10.
        ok = all(
            decode(apply_pattern(state[:, None], pattern)[:, 0])
            == (v + k) % (2 * n)
            for v, state in all_states(n))
        result.rows.append({
            "increment": f"+{k}",
            "forward_shift_edges": plain,
            "inverted_feedback_edges": inverted,
            "cycle_saves": len(pattern.cycle_saves),
            "edges": "; ".join(
                f"{dst}<-{'~' if inv else ''}{src}"
                for dst, src, inv in edges),
            "all_states_correct": ok,
        })
    result.notes.append(
        "Every +k pattern uses the same number of per-bit updates as the "
        "unit increment (n edges), matching the paper's equal-latency "
        "claim; gcd(5, k) = 1 keeps cycle saves at one scratch row")
    return result
