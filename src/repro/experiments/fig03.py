"""Fig. 3 -- input value distributions in DNA filtering and BERT.

The motivating observation: accumulated values are small (circa 4-8
bits), so wide-accumulator carry chains are mostly wasted work.
"""

from __future__ import annotations

import math

import numpy as np

from repro.apps.bert import BertProxyConfig, embedding_histogram
from repro.apps.dna import DNAFilterConfig, token_repetition_histogram
from repro.experiments.registry import ExperimentResult, register


@register("fig03")
def run(quick: bool = True) -> ExperimentResult:
    result = ExperimentResult(
        "Fig. 3", "Input distributions: DNA token repetition and 8-bit "
        "BERT embeddings")

    cfg = DNAFilterConfig(n_reads=40 if quick else 150)
    values, counts = token_repetition_histogram(cfg)
    p99 = float(np.percentile(np.repeat(values, counts), 99))
    for v, c in zip(values[:12].tolist(), counts[:12].tolist()):
        result.rows.append({"source": "DNA token repetition",
                            "value": v, "frequency": c})
    bits_dna = max(1, math.ceil(math.log2(p99 + 1)))
    result.notes.append(
        f"DNA: 99% of token repetition counts fit in {bits_dna} bits "
        f"(p99={p99:.0f}); paper reports values of circa 4-8 bits")

    hist = embedding_histogram(BertProxyConfig(n_test=30 if quick else 120))
    mags = np.array([abs(v) for v, c in hist.items() for _ in range(0)])
    total = sum(hist.values())
    small = sum(c for v, c in hist.items() if abs(v) < 64)
    result.rows.append({"source": "BERT embeddings",
                        "value": "|v| < 64 share",
                        "frequency": round(small / total, 4)})
    result.notes.append(
        "BERT: embedding magnitudes concentrate well inside the 8-bit "
        "range, matching Fig. 3b's bell shape")
    return result
