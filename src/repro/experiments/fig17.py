"""Fig. 17 -- application accuracy under CIM faults.

(a) DNA pre-alignment filtering F1 and (b) BERT-proxy classification
accuracy across fault rates for the six scheme combinations plus the
software baseline.  The orderings the paper reports -- JC above RCA
everywhere, ECC above TMR, a usable JC+ECC regime up to ~1e-2 -- are
pinned by the test suite.
"""

from __future__ import annotations

from repro.apps.bert import BertProxy, BertProxyConfig
from repro.apps.dna import DNAFilterConfig, DNAFilterWorkload
from repro.experiments.registry import ExperimentResult, register

SCHEMES = [("JC", "jc", "none"), ("JC+TMR", "jc", "tmr"),
           ("JC+ECC", "jc", "ecc"), ("RCA", "rca", "none"),
           ("RCA+TMR", "rca", "tmr"), ("RCA+ECC", "rca", "ecc")]


@register("fig17")
def run(quick: bool = True) -> ExperimentResult:
    result = ExperimentResult(
        "Fig. 17", "DNA filtering F1 (a) and BERT accuracy (b) vs CIM "
        "fault rate")
    rates = [1e-4, 1e-2, 1e-1] if quick else [1e-6, 1e-5, 1e-4, 1e-3,
                                              1e-2, 1e-1]

    dna = DNAFilterWorkload(DNAFilterConfig(n_reads=25 if quick else 100))
    for f in rates:
        row = {"app": "DNA", "fault_rate": f}
        for label, kind, scheme in SCHEMES:
            row[label] = round(dna.evaluate(kind, f, scheme)["f1"], 3)
        result.rows.append(row)

    proxy = BertProxy(BertProxyConfig())
    samples = 15 if quick else 60
    sw = proxy.accuracy(max_samples=samples)
    schemes = SCHEMES if not quick else [SCHEMES[0], SCHEMES[2],
                                         SCHEMES[3]]
    for f in rates:
        row = {"app": "BERT", "fault_rate": f, "SW": round(sw, 3)}
        for label, kind, scheme in schemes:
            row[label] = round(proxy.accuracy(kind, f, scheme,
                                              max_samples=samples), 3)
        result.rows.append(row)

    result.notes.append(
        "Paper: DNA degrades gradually (F1 > 0.9 usable even at high "
        "rates with protection) while BERT collapses sharply; JC+ECC "
        "dominates, TMR trails ECC; RCA variants fail an order of "
        "magnitude earlier")
    return result
