"""Fig. 17 -- application accuracy under CIM faults.

(a) DNA pre-alignment filtering F1 and (b) BERT-proxy classification
accuracy across fault rates for the six scheme combinations plus the
software baseline.  The orderings the paper reports -- JC above RCA
everywhere, ECC above TMR, a usable JC+ECC regime up to ~1e-2 -- are
pinned by the test suite.

The (fault rate x scheme) grid runs through the reliability-campaign
harness (:class:`repro.reliability.Campaign`) with app-level trial
functions: each grid cell is one :class:`~repro.reliability.FaultPoint`
whose trial evaluates the workload at that rate/scheme.  The app models
carry their own seeded streams (seed pinned below), so the reported
numbers are unchanged from the pre-campaign wiring.
"""

from __future__ import annotations

from repro.apps.bert import BertProxy, BertProxyConfig
from repro.apps.dna import DNAFilterConfig, DNAFilterWorkload
from repro.experiments.registry import ExperimentResult, register
from repro.reliability import Campaign, FaultPoint

SCHEMES = [("JC", "jc", "none"), ("JC+TMR", "jc", "tmr"),
           ("JC+ECC", "jc", "ecc"), ("RCA", "rca", "none"),
           ("RCA+TMR", "rca", "tmr"), ("RCA+ECC", "rca", "ecc")]

#: Accumulator kind behind each figure series label.
_KIND = {label: kind for label, kind, _ in SCHEMES}


def _grid(rates, schemes) -> list:
    """One FaultPoint per (rate, scheme) cell of the figure's grid."""
    return [FaultPoint(p_cim=f, scheme=scheme, label=label)
            for f in rates for label, _, scheme in schemes]


@register("fig17")
def run(quick: bool = True) -> ExperimentResult:
    result = ExperimentResult(
        "Fig. 17", "DNA filtering F1 (a) and BERT accuracy (b) vs CIM "
        "fault rate")
    rates = [1e-4, 1e-2, 1e-1] if quick else [1e-6, 1e-5, 1e-4, 1e-3,
                                              1e-2, 1e-1]

    dna = DNAFilterWorkload(DNAFilterConfig(n_reads=25 if quick else 100))

    def dna_trial(point: FaultPoint, rng) -> dict:
        # The workload's own seeded stream (seed=0 default) pins the
        # figure's numbers; the campaign rng is unused deliberately.
        return dna.evaluate(_KIND[point.label], point.p_cim, point.scheme)

    dna_run = Campaign(trial=dna_trial).run(_grid(rates, SCHEMES),
                                            n_trials=1)
    f1 = {(t.point.label, t.point.p_cim): t.metrics["f1"]
          for t in dna_run.trials}
    for f in rates:
        row = {"app": "DNA", "fault_rate": f}
        for label, _, _ in SCHEMES:
            row[label] = round(f1[(label, f)], 3)
        result.rows.append(row)

    proxy = BertProxy(BertProxyConfig())
    samples = 15 if quick else 60
    sw = proxy.accuracy(max_samples=samples)
    schemes = SCHEMES if not quick else [SCHEMES[0], SCHEMES[2],
                                         SCHEMES[3]]

    def bert_trial(point: FaultPoint, rng) -> dict:
        return {"accuracy": proxy.accuracy(
            _KIND[point.label], point.p_cim, point.scheme,
            max_samples=samples)}

    bert_run = Campaign(trial=bert_trial).run(_grid(rates, schemes),
                                              n_trials=1)
    acc = {(t.point.label, t.point.p_cim): t.metrics["accuracy"]
           for t in bert_run.trials}
    for f in rates:
        row = {"app": "BERT", "fault_rate": f, "SW": round(sw, 3)}
        for label, _, _ in schemes:
            row[label] = round(acc[(label, f)], 3)
        result.rows.append(row)

    result.notes.append(
        "Paper: DNA degrades gradually (F1 > 0.9 usable even at high "
        "rates with protection) while BERT collapses sharply; JC+ECC "
        "dominates, TMR trails ECC; RCA variants fail an order of "
        "magnitude earlier")
    result.notes.append(
        "grids executed through repro.reliability.Campaign (one "
        "seeded trial per cell; app workloads pin their own streams)")
    return result
