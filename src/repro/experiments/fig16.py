"""Fig. 16 -- input-sparsity sweep on V0 (GEMV) and M0 (GEMM).

C2M skips zero inputs so its latency falls (and nominal-ops throughput
rises) linearly with sparsity; SIMDRAM's command stream is
input-independent and the GPU's dense kernels are flat.  The paper's
crossovers: C2M passes the GPU around ~40 % sparsity on the GEMV and at
extreme (>99 %) sparsity on the GEMM.
"""

from __future__ import annotations

from repro.apps.workloads import LLAMA_SHAPES
from repro.experiments.registry import ExperimentResult, register
from repro.perf.model import C2MConfig, C2MModel, gpu_cost, simdram_cost

SPARSITIES = (0.0, 0.2, 0.4, 0.6, 0.8, 0.9, 0.99, 0.996, 0.999)


def _crossover(c2m: C2MModel, shape, gpu_time: float) -> float:
    """Smallest sparsity (1e-4 resolution) where C2M beats the GPU."""
    lo, hi = 0.0, 0.9999
    if c2m.cost(shape, lo).time_s <= gpu_time:
        return 0.0
    if c2m.cost(shape, hi).time_s > gpu_time:
        return float("nan")
    for _ in range(40):
        mid = (lo + hi) / 2
        if c2m.cost(shape, mid).time_s > gpu_time:
            lo = mid
        else:
            hi = mid
    return hi


@register("fig16")
def run(quick: bool = True) -> ExperimentResult:
    result = ExperimentResult(
        "Fig. 16", "Latency/throughput vs input sparsity (V0 GEMV, "
        "M0 GEMM)")
    c2m = C2MModel(C2MConfig(banks=16))
    for wname in ("V0", "M0"):
        shape = LLAMA_SHAPES[wname]
        g = gpu_cost(shape)
        s = simdram_cost(shape, banks=16)
        for sp in SPARSITIES:
            c = c2m.cost(shape, sparsity=sp)
            result.rows.append({
                "workload": wname, "sparsity": sp,
                "C2M_ms": c.latency_ms, "SIMDRAM_ms": s.latency_ms,
                "GPU_ms": g.latency_ms,
                "C2M_gops": c.gops, "GPU_gops": g.gops,
            })
        cross = _crossover(c2m, shape, g.time_s)
        result.notes.append(
            f"{wname}: C2M overtakes GPU latency beyond "
            f"{100 * cross:.2f}% sparsity "
            f"(paper: ~40% for GEMV, 99.6% for GEMM)")
    result.notes.append(
        "SIMDRAM and GPU latency are flat across the sweep; C2M latency "
        "falls linearly and its nominal-ops throughput rises, matching "
        "the figure")
    return result
