"""Fig. 19 -- counter storage bits vs capacity across radices.

Binary is densest, but radix-4 Johnson counters match binary density
exactly (2 bits/digit, 4 states), and even radix-10's overhead is
moderate at application-scale capacities -- the paper's storage
argument, with the DNA-filter / BERT capacity markers.
"""

from __future__ import annotations

from repro.core.opcount import binary_bits_required, jc_bits_required
from repro.experiments.registry import ExperimentResult, register

CAPACITIES = [2 ** e for e in (4, 8, 12, 16, 20, 24, 28, 32)]
RADICES = (4, 6, 8, 10)

#: Application capacity requirements called out in Sec. 7.3.3.
APP_MARKERS = {"DNA Filter": 100, "BERT-Proj": 64, "BERT-Attn": 792}


@register("fig19")
def run(quick: bool = True) -> ExperimentResult:
    result = ExperimentResult(
        "Fig. 19", "JC capacity vs bits required; application markers")
    for cap in CAPACITIES:
        row = {"capacity": cap, "binary": binary_bits_required(cap)}
        for radix in RADICES:
            row[f"radix{radix}"] = jc_bits_required(radix, cap)
        result.rows.append(row)
    for app, cap in APP_MARKERS.items():
        row = {"capacity": f"{app} ({cap})",
               "binary": binary_bits_required(cap)}
        for radix in RADICES:
            row[f"radix{radix}"] = jc_bits_required(radix, cap)
        result.rows.append(row)
    result.notes.append(
        "Paper checkpoints hold: capacity 100 needs 10 bits at radix 10 "
        "vs 7 binary; radix-4 tracks binary density exactly")
    return result
