"""Event-driven DRAM command scheduler for CIM μPrograms (Sec. 7.2.1).

The analytical model in :mod:`repro.dram.timing` gives closed-form AAP
rates; this module *derives* them by replaying the command stream against
the timing constraints: per-bank row-cycle occupancy (an AAP holds its
bank for ``tAAP`` and the next AAP on that bank waits an extra ``tRRD``),
inter-burst spacing (``tRRD``), and the rank-level four-activation window
(``tFAW``).  Following Sec. 7.2.1's accounting, each AAP's internal
back-to-back activations count as a single rank-level activation burst.
AAPs from different banks interleave exactly as an FR-FCFS controller
would issue them.  The tests assert that the event model and the closed
form agree, which is our substitute for validating against NVMain/RTSim
(DESIGN.md Sec. 5).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Sequence

from repro.dram.timing import DDR5_4400_TIMING, TimingParams

__all__ = ["AAPRecord", "CommandScheduler"]


@dataclass
class AAPRecord:
    """Issue/finish times of one scheduled AAP (for inspection/tests)."""

    bank: int
    issue_ns: float
    finish_ns: float


class CommandScheduler:
    """Replays AAP command streams under DDR timing constraints."""

    def __init__(self, timing: TimingParams = DDR5_4400_TIMING):
        self.timing = timing

    # ------------------------------------------------------------------
    def schedule(self, aaps_per_bank: Sequence[int]) -> List[AAPRecord]:
        """Schedule ``aaps_per_bank[b]`` AAPs on each bank; returns records.

        At every step the eligible AAP with the earliest issue time wins
        (ties to the lower bank id), subject to tRRD spacing and the tFAW
        sliding window shared by all banks of the rank.
        """
        t = self.timing
        pending = [int(n) for n in aaps_per_bank]
        bank_ready = [0.0] * len(pending)
        act_times: Deque[float] = deque(maxlen=4)
        last_act = -1e18
        records: List[AAPRecord] = []

        remaining = sum(pending)
        while remaining > 0:
            rank_ready = last_act + t.t_rrd
            if len(act_times) == 4:
                rank_ready = max(rank_ready, act_times[0] + t.t_faw)

            best = None
            best_time = None
            for idx, left in enumerate(pending):
                if left <= 0:
                    continue
                candidate = max(bank_ready[idx], rank_ready)
                # Earliest issue wins; ties go to the longest queue so no
                # bank starves (FR-FCFS-style fairness).
                if (best_time is None or candidate < best_time - 1e-9
                        or (abs(candidate - best_time) <= 1e-9
                            and left > pending[best])):
                    best, best_time = idx, candidate

            act_times.append(best_time)
            last_act = best_time
            finish = best_time + t.t_aap
            records.append(AAPRecord(bank=best, issue_ns=best_time,
                                     finish_ns=finish))
            # Back-to-back AAPs on one bank: tAAP + tRRD apart (7.2.1).
            bank_ready[best] = finish + t.t_rrd
            pending[best] -= 1
            remaining -= 1
        return records

    # ------------------------------------------------------------------
    def issue_aaps(self, n_aaps: int, n_banks: int) -> float:
        """Makespan of ``n_aaps`` AAPs distributed round-robin over banks."""
        if n_aaps <= 0:
            return 0.0
        counts = [n_aaps // n_banks + (1 if b < n_aaps % n_banks else 0)
                  for b in range(n_banks)]
        records = self.schedule(counts)
        return max(r.finish_ns for r in records)

    def steady_state_period(self, n_banks: int, probe: int = 256) -> float:
        """Measured steady-state AAP period (compare with the closed form)."""
        counts = [max(1, probe // n_banks)] * n_banks
        records = self.schedule(counts)
        finishes = sorted(r.finish_ns for r in records)
        half = len(finishes) // 2
        return (finishes[-1] - finishes[half]) / (len(finishes) - half - 1)
