"""Ambit-style CIM subarray: row groups, TRA majority, DCC NOT (Sec. 2.2).

Row-address space (DESIGN.md Sec. 6): the B-group exposes sixteen
addresses over eight wordlines -- four temporaries ``T0..T3``, and two
dual-contact cells ``DCC0/DCC1`` whose negated ports implement NOT for
free.  Triple-row addresses perform the bulk bitwise MAJ3; address B11
uses the paper's footnote-2 remapping (``{T0, T1, DCC0}``).

Addresses are strings: ``"B0".."B15"``, ``"C0"``, ``"C1"`` and ``"D<i>"``
for data rows; μPrograms in :mod:`repro.isa` are written against these.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Union

import numpy as np

from repro.dram.faults import FAULT_FREE, FaultModel
from repro.dram.subarray import Port, Subarray

__all__ = ["AmbitSubarray", "B_GROUP_WORDLINES", "C_GROUP_ROWS"]

#: Number of B-group wordlines (Sec. 2.2: eight rows, sixteen addresses).
B_GROUP_WORDLINES = 8
#: Control rows holding constant 0 / 1.
C_GROUP_ROWS = 2

# Physical row indices inside the subarray's cell matrix.
_T0, _T1, _T2, _T3, _DCC0, _DCC1, _C0, _C1 = range(8)
_DATA_BASE = 8

Address = Union[str, int]


def _b_group_map() -> Dict[str, List[Port]]:
    t = [Port(_T0), Port(_T1), Port(_T2), Port(_T3)]
    d0, d0n = Port(_DCC0), Port(_DCC0, negated=True)
    d1, d1n = Port(_DCC1), Port(_DCC1, negated=True)
    return {
        "B0": [t[0]], "B1": [t[1]], "B2": [t[2]], "B3": [t[3]],
        "B4": [d0], "B5": [d0n], "B6": [d1], "B7": [d1n],
        # Dual-row copy targets: value lands in Tx, complement in DCCx.
        "B8": [t[0], d0n],
        "B9": [t[1], d1n],
        # Triple-row activations (MAJ3).
        "B10": [t[1], t[2], t[3]],
        "B11": [t[0], t[1], d0],       # paper footnote-2 remap
        "B12": [t[0], t[1], t[2]],
        "B13": [t[2], t[3], d1],
        "B14": [t[1], t[2], d0],
        "B15": [t[0], t[3], d1],
    }


class AmbitSubarray:
    """A subarray with Ambit's B/C/D row grouping and AAP/AP commands.

    Parameters
    ----------
    n_data_rows:
        D-group rows available for counters, masks and scratch.
    n_cols:
        Bitlines (= SIMD lanes).
    fault_model:
        Per-bit fault injection; multi-row activations use ``p_cim``.
    """

    #: The bit backend never fuses traces; the counters exist for
    #: interface parity with :class:`~repro.dram.wordline.
    #: WordlineSubarray` so engine-level accounting stays backend-blind.
    trace_compiles = 0
    trace_replays = 0
    megatrace_compiles = 0
    megatrace_replays = 0

    def __init__(self, n_data_rows: int, n_cols: int,
                 fault_model: FaultModel = FAULT_FREE):
        self.n_data_rows = int(n_data_rows)
        self.n_cols = int(n_cols)
        total_rows = _DATA_BASE + self.n_data_rows
        self.array = Subarray(total_rows, n_cols, fault_model)
        self._addresses = _b_group_map()
        self._addresses["C0"] = [Port(_C0)]
        self._addresses["C1"] = [Port(_C1)]
        self.array.write_row(_C1, np.ones(n_cols, dtype=np.uint8))
        self.aap_count = 0
        self.ap_count = 0

    # ------------------------------------------------------------------
    # addressing
    # ------------------------------------------------------------------
    def resolve(self, address: Address) -> List[Port]:
        """Map an address to its wordline ports."""
        if isinstance(address, int):
            return [Port(self._data_row(address))]
        if address in self._addresses:
            return list(self._addresses[address])
        if address.startswith("D"):
            return [Port(self._data_row(int(address[1:])))]
        raise KeyError(f"unknown row address {address!r}")

    def _data_row(self, index: int) -> int:
        if not 0 <= index < self.n_data_rows:
            raise IndexError(f"data row {index} out of range "
                             f"(0..{self.n_data_rows - 1})")
        return _DATA_BASE + index

    # ------------------------------------------------------------------
    # DRAM command sequences
    # ------------------------------------------------------------------
    def aap(self, src: Address, dst: Address) -> None:
        """Activate-activate-precharge: compute/read ``src``, copy to ``dst``.

        A single-row ``src`` is a RowClone copy; a triple-row ``src``
        first performs the destructive MAJ3, whose (possibly faulty)
        result then lands in ``dst``.  A dual-row ``dst`` such as B8
        writes the value into T0 and its complement into DCC0.
        """
        bitline = self.array.activate(self.resolve(src))
        self.array.overdrive(self.resolve(dst), bitline)
        self.array.precharge()
        self.aap_count += 1

    def ap(self, address: Address) -> None:
        """Activate-precharge: in-place (destructive) multi-row operation."""
        self.array.activate(self.resolve(address))
        self.array.precharge()
        self.ap_count += 1

    def run_program(self, program) -> None:
        """Execute a μProgram op by op (the bit-accurate reference path).

        The word-parallel backend overrides this with a compiled fast
        path; sharing the entry point lets the engine stay backend-blind.
        """
        program.run(self)

    # ------------------------------------------------------------------
    # host-side access (RD/WR path; used to stage operands and read out)
    # ------------------------------------------------------------------
    def write_data_row(self, index: int, values) -> None:
        values = np.asarray(values, dtype=np.uint8)
        if values.shape != (self.n_cols,):
            raise ValueError("row width mismatch")
        self.array.write_row(self._data_row(index), values)

    def write_data_row_packed(self, index: int, words) -> None:
        """Write one data row from packed ``uint64`` words.

        Interface parity with the word backend's packed staging path
        (:meth:`~repro.dram.wordline.WordlineSubarray.
        write_data_row_packed`): callers stage operands packed and stay
        backend-blind; the bit backend simply unpacks on arrival.
        """
        from repro.dram.wordline import unpack_bits
        self.write_data_row(index, unpack_bits(
            np.asarray(words, dtype=np.uint64), self.n_cols))

    def write_rows(self, indices: Sequence[int], values) -> None:
        """Write several data rows in one batched host transfer."""
        values = np.asarray(values, dtype=np.uint8)
        if values.shape != (len(indices), self.n_cols):
            raise ValueError("row image shape mismatch")
        self.array.cells[[self._data_row(i) for i in indices]] = values

    def read_data_row(self, index: int) -> np.ndarray:
        return self.array.read_row(self._data_row(index))

    def read_rows(self, indices: Sequence[int]) -> np.ndarray:
        """Stack several data rows into a ``[len(indices), n_cols]`` array."""
        return np.stack([self.read_data_row(i) for i in indices])

    @property
    def ops_issued(self) -> int:
        """Total command sequences (AAP + AP) issued so far."""
        return self.aap_count + self.ap_count

    @property
    def fault_injections(self) -> int:
        """Monotonic flips this subarray's activations injected."""
        return self.array.fault_injections

    @property
    def fault_model(self):
        """The injection model every activation routes through."""
        return self.array.fault_model

    def reset_counts(self) -> None:
        self.aap_count = 0
        self.ap_count = 0
        self.array.activations = 0
        self.array.multi_row_activations = 0
