"""DRAM command vocabulary (Sec. 2.1).

The μProgram layer (``repro.isa``) deals in AAP/AP sequences; this module
expands those into the primitive ACT/PRE commands a memory controller
actually issues, which is what the event-driven scheduler times and what
the energy model charges for.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List

__all__ = ["CommandKind", "Command", "expand_aap", "expand_ap"]


class CommandKind(Enum):
    """Primitive DRAM bus commands."""

    ACT = "ACT"
    PRE = "PRE"
    RD = "RD"
    WR = "WR"


@dataclass(frozen=True)
class Command:
    """One DRAM command addressed to a bank (row encoded as a string)."""

    kind: CommandKind
    bank: int
    row: str = ""


def expand_aap(bank: int, src: str, dst: str) -> List[Command]:
    """ACT(src), ACT(dst), PRE -- the AAP sequence of RowClone/Ambit."""
    return [Command(CommandKind.ACT, bank, src),
            Command(CommandKind.ACT, bank, dst),
            Command(CommandKind.PRE, bank)]


def expand_ap(bank: int, address: str) -> List[Command]:
    """ACT(multi-row address), PRE -- the in-place compute sequence."""
    return [Command(CommandKind.ACT, bank, address),
            Command(CommandKind.PRE, bank)]
