"""Word-parallel CIM subarray: AAP/AP on packed ``uint64`` words.

:class:`WordlineSubarray` is the fast functional backend.  It models the
exact same Ambit command set as :class:`~repro.dram.ambit.AmbitSubarray`
-- the B/C/D row-address space, destructive triple-row majority, DCC
negation, RowClone copies -- but stores every row as packed 64-bit words
and executes each command as a handful of bulk bitwise NumPy operations
instead of per-bit Python work.

The two backends are *cell-state identical* after every command.  Fault
injection draws the very same :class:`~repro.dram.faults.FaultModel`
random stream: the interpreted path calls ``corrupt`` once per
activation with the same sensed bits and contested-column flags as the
bit backend, and the fused path pre-draws the identical per-activation
masks in original op order (see :mod:`repro.isa.trace`), so a seeded
fault model stays bit-for-bit reproducible on any path
(``tests/test_backend_parity.py`` and
``tests/test_fault_fusion_parity.py`` pin this).  Timing/energy accounting hooks (``aap_count``, ``ap_count``,
``activations``) are maintained identically, so :mod:`repro.perf` and
:mod:`repro.dram.timing` consumers do not care which backend ran.

>>> import numpy as np
>>> from repro.dram.wordline import WordlineSubarray
>>> sa = WordlineSubarray(n_data_rows=4, n_cols=80)
>>> sa.write_data_row(0, np.ones(80, dtype=np.uint8))
>>> sa.aap(0, 1)                   # RowClone copy D0 -> D1
>>> int(sa.read_data_row(1).sum())
80
>>> sa.aap(0, "B8")                # T0 <- D0, DCC0 <- NOT D0
>>> int(sa.read_b_row("B4").sum()) # DCC0's plain port: NOT D0 = all-zero
0
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Sequence, Tuple, Union

import numpy as np

from repro.dram.ambit import _DATA_BASE, _b_group_map, _C0, _C1
from repro.dram.faults import FAULT_FREE, FaultModel

__all__ = ["WordlineSubarray", "pack_bits", "pack_rows", "unpack_bits",
           "DEFAULT_PROGRAM_CACHE", "DEFAULT_MEGATRACE_CACHE"]

# The trace compiler lives in repro.isa.trace, which (through the isa
# package) transitively imports this module -- resolved lazily at the
# first run_program call instead of at import time.
_trace = None


def _trace_module():
    global _trace
    if _trace is None:
        from repro.isa import trace
        _trace = trace
    return _trace

_FULL = np.uint64(0xFFFFFFFFFFFFFFFF)

#: Default bound on the per-subarray compiled-program LRU cache (both
#: the resolved op lists and the fused traces live under this bound).
#: Cached entries are small -- a few index arrays per trace; replay
#: buffers live in one shared per-subarray scratch -- so the bound is
#: sized for working sets (distinct event batches across magnitudes),
#: not for memory.
DEFAULT_PROGRAM_CACHE = 1024

#: Default bound on the per-subarray compiled-megatrace LRU cache.  A
#: megatrace covers a whole replay sequence (every wave of a resident
#: plan's query), so a working set holds one entry per resident plan
#: chunk, not per μProgram -- the bound is correspondingly smaller than
#: :data:`DEFAULT_PROGRAM_CACHE`.
DEFAULT_MEGATRACE_CACHE = 64

#: The run number on which a program's trace is compiled: run 1
#: interprets (a one-shot program never pays compilation -- the cold
#: kernel path stays cold-fast), run ``FUSE_AFTER_RUNS`` compiles and
#: fuses, and every further replay is pure fused execution.  The JIT
#: warm-up is therefore exactly **one** interpreted run (pinned by
#: ``tests/test_fault_fusion_parity.py::test_warmup_interpreted_run_
#: count``), not ``FUSE_AFTER_RUNS`` interpreted runs.  Programs
#: evicted from the LRU before their second run never compile at all,
#: which keeps cache thrash no slower than the interpreter.
FUSE_AFTER_RUNS = 2

Address = Union[str, int]

#: A resolved wordline: (physical row, negated port).
_PortTuple = Tuple[int, bool]


def pack_bits(bits) -> np.ndarray:
    """Pack a uint8 0/1 vector into little-endian ``uint64`` words.

    Lane ``i`` maps to bit ``i % 64`` of word ``i // 64``; tail bits of
    the last word are zero.

    >>> pack_bits([1, 0, 1]).tolist()
    [5]
    """
    bits = np.asarray(bits, dtype=np.uint8)
    n_words = (bits.size + 63) // 64
    buf = np.zeros(n_words * 8, dtype=np.uint8)
    packed = np.packbits(bits, bitorder="little")
    buf[:packed.size] = packed
    return buf.view(np.uint64)


def pack_rows(bits) -> np.ndarray:
    """Pack a ``[rows, cols]`` uint8 0/1 matrix into ``uint64`` words.

    The batched form of :func:`pack_bits` -- one :func:`numpy.packbits`
    call for the whole block, which is how wave masks are staged without
    a per-row packing round-trip.  Tail bits of each row's last word are
    zero, exactly as :func:`pack_bits` produces.

    >>> pack_rows([[1, 0, 1], [0, 1, 1]]).tolist()
    [[5], [6]]
    """
    bits = np.asarray(bits, dtype=np.uint8)
    if bits.ndim != 2:
        raise ValueError("pack_rows expects a [rows, cols] matrix")
    n_words = (bits.shape[1] + 63) // 64
    buf = np.zeros((bits.shape[0], n_words * 8), dtype=np.uint8)
    packed = np.packbits(bits, axis=1, bitorder="little")
    buf[:, :packed.shape[1]] = packed
    return buf.view(np.uint64)


def unpack_bits(words: np.ndarray, n_cols: int) -> np.ndarray:
    """Unpack ``uint64`` words back into a uint8 0/1 vector of ``n_cols``.

    >>> unpack_bits(pack_bits([1, 0, 1]), 3).tolist()
    [1, 0, 1]
    """
    words = np.ascontiguousarray(words, dtype=np.uint64)
    return np.unpackbits(words.view(np.uint8), count=n_cols,
                         bitorder="little")


class WordlineSubarray:
    """Drop-in fast replacement for :class:`~repro.dram.ambit.AmbitSubarray`.

    Parameters
    ----------
    n_data_rows:
        D-group rows available for counters, masks and scratch.
    n_cols:
        Bitlines (= SIMD lanes); packed into ``ceil(n_cols / 64)`` words.
    fault_model:
        Per-bit fault injection, shared with the bit-level backend.
    program_cache_size:
        Bound on the compiled-program LRU cache (resolved op lists and
        fused traces share one bound) -- a long-running process replays
        many distinct μPrograms, and an unbounded identity-keyed cache
        would pin every one of them forever.

    Bits past ``n_cols`` in the last word are *don't-care*: they never
    reach the fault model or a host read, and negation may set them
    freely (the unpack path masks them off).
    """

    #: Backend tag used by the engine's ``backend=`` flag.
    mode = "word"

    def __init__(self, n_data_rows: int, n_cols: int,
                 fault_model: FaultModel = FAULT_FREE,
                 program_cache_size: int = DEFAULT_PROGRAM_CACHE):
        self.n_data_rows = int(n_data_rows)
        self.n_cols = int(n_cols)
        self.n_words = (self.n_cols + 63) // 64
        self.cells = np.zeros((_DATA_BASE + self.n_data_rows, self.n_words),
                              dtype=np.uint64)
        self.cells[_C1] = _FULL          # constant-one control row
        self.fault_model = fault_model
        self.aap_count = 0
        self.ap_count = 0
        self.activations = 0
        self.multi_row_activations = 0
        # Resolved address cache: name/index -> ((row, negated), ...).
        self._ports: Dict[Address, Tuple[_PortTuple, ...]] = {
            name: tuple((p.row, p.negated) for p in ports)
            for name, ports in _b_group_map().items()}
        self._ports["C0"] = ((_C0, False),)
        self._ports["C1"] = ((_C1, False),)
        # Compiled μProgram LRU cache: id(program) -> [program, op list,
        # trace-or-None].  The strong reference keeps each cached
        # program alive so its id can never be reused by a *different*
        # live object, and the identity check on lookup guards against
        # reuse of an evicted entry's id.  Resolved op lists and fused
        # traces share the one bound.
        self._compiled: "OrderedDict[int, list]" = OrderedDict()
        self._program_cache_size = max(1, int(program_cache_size))
        self._trace_scratch = None   # shared replay buffers, lazy
        self.trace_compiles = 0   # cache misses: traces compiled
        self.trace_replays = 0    # cache hits: fused traces re-executed
        # Stitched whole-sequence traces (repro.isa.trace.MegaProgram),
        # same identity-keyed LRU discipline as ``_compiled``:
        # id(mega) -> [mega, compiled trace, fault sig].
        self._mega: "OrderedDict[int, list]" = OrderedDict()
        self._mega_cache_size = DEFAULT_MEGATRACE_CACHE
        self.megatrace_compiles = 0  # stitched traces compiled
        self.megatrace_replays = 0   # stitched traces re-executed
        # Monotonic count of fault-model bit flips this subarray's
        # activations injected (interpreted and fused paths both feed
        # it) -- the per-subarray view of ``FaultModel.injected``,
        # which plans/serve telemetry take per-query deltas of.
        self.fault_injections = 0

    # ------------------------------------------------------------------
    # addressing
    # ------------------------------------------------------------------
    def resolve(self, address: Address) -> Tuple[_PortTuple, ...]:
        """Map an address to ``(physical_row, negated)`` port tuples."""
        ports = self._ports.get(address)
        if ports is not None:
            return ports
        if isinstance(address, (int, np.integer)):
            ports = ((self._data_row(int(address)), False),)
        elif isinstance(address, str) and address.startswith("D"):
            ports = ((self._data_row(int(address[1:])), False),)
        else:
            raise KeyError(f"unknown row address {address!r}")
        self._ports[address] = ports
        return ports

    def _data_row(self, index: int) -> int:
        if not 0 <= index < self.n_data_rows:
            raise IndexError(f"data row {index} out of range "
                             f"(0..{self.n_data_rows - 1})")
        return _DATA_BASE + index

    # ------------------------------------------------------------------
    # sensing (shared by AAP's first activation and AP)
    # ------------------------------------------------------------------
    def _sense(self, ports: Sequence[_PortTuple]) -> np.ndarray:
        """Activate ``ports``: sense, fault-inject, write back, count."""
        cells = self.cells
        faulty = (self.fault_model.p_cim > 0.0
                  or self.fault_model.p_read > 0.0)
        multi = len(ports) > 1
        if not multi:
            row, neg = ports[0]
            sensed = ~cells[row] if neg else cells[row]
            contested = None
        else:
            if len(ports) % 2 == 0:
                raise ValueError(
                    "simultaneous activation needs an odd row count for a "
                    "defined majority; use an AAP destination for copies")
            r0, n0 = ports[0]
            r1, n1 = ports[1]
            r2, n2 = ports[2]
            a = ~cells[r0] if n0 else cells[r0]
            b = ~cells[r1] if n1 else cells[r1]
            c = ~cells[r2] if n2 else cells[r2]
            sensed = (a & b) | (a & c) | (b & c)
            contested = (a ^ b) | (a ^ c) if faulty else None
        if faulty:
            bits = unpack_bits(sensed, self.n_cols)
            cont_bits = (unpack_bits(contested, self.n_cols).astype(bool)
                         if multi else None)
            pre = self.fault_model.injected
            bits = self.fault_model.corrupt(bits, multi_row=multi,
                                            contested=cont_bits)
            self.fault_injections += self.fault_model.injected - pre
            sensed = pack_bits(bits)
        if multi or faulty:
            # Destructive write-back through every activated port; for a
            # single fault-free port the write-back is the identity.
            for row, neg in ports:
                cells[row] = ~sensed if neg else sensed
        self.activations += 1
        if multi:
            self.multi_row_activations += 1
        return sensed

    # ------------------------------------------------------------------
    # DRAM command sequences
    # ------------------------------------------------------------------
    def aap(self, src: Address, dst: Address) -> None:
        """Activate-activate-precharge: compute/read ``src``, copy to ``dst``."""
        sensed = self._sense(self.resolve(src))
        for row, neg in self.resolve(dst):
            self.cells[row] = ~sensed if neg else sensed
        self.activations += 1
        self.aap_count += 1

    def ap(self, address: Address) -> None:
        """Activate-precharge: in-place (destructive) multi-row operation."""
        self._sense(self.resolve(address))
        self.ap_count += 1

    def _lookup_program(self, program) -> list:
        """LRU-cached ``[program, ops, trace, runs, fault sig]`` entry."""
        key = id(program)
        entry = self._compiled.get(key)
        if entry is not None and entry[0] is program:
            self._compiled.move_to_end(key)
            return entry
        ops = tuple(
            (op.kind == "AAP", self.resolve(op.src),
             self.resolve(op.dst) if op.kind == "AAP" else None)
            for op in program.ops)
        entry = [program, ops, None, 0, None]
        self._compiled[key] = entry
        self._compiled.move_to_end(key)
        while len(self._compiled) > self._program_cache_size:
            self._compiled.popitem(last=False)
        return entry

    def run_program(self, program) -> None:
        """Execute a :class:`~repro.isa.microprogram.MicroProgram`.

        Programs are compiled once to resolved port tuples and cached
        (bounded LRU, identity-keyed), so replaying the same
        (engine-cached) program skips all address resolution.  Replay
        goes further after a one-interpreted-run JIT warm-up: the
        program is lowered once by :func:`repro.isa.trace.
        compile_trace` into a fused trace and re-executed as batched
        NumPy operations -- no per-op Python loop at all.  An *active*
        fault model fuses too: the trace is compiled against the
        model's :class:`~repro.isa.trace.FaultSpec` and each replay
        runs the fault pre-pass (flip masks pre-drawn in original op
        order) so cell states, every counter (``aap_count``,
        ``ap_count``, ``activations``, ``multi_row_activations``,
        ``fault_injections``) *and the seeded fault stream* are exactly
        what the interpreted path -- and the bit-level backend -- would
        produce.  If the model's rates or margin flag change under a
        cached trace, the trace is recompiled against the new regime.
        """
        entry = self._lookup_program(program)
        trace = _trace_module()
        if trace.fusion_enabled():
            fm = self.fault_model
            spec = trace.FaultSpec.of(fm)
            compiled = entry[2]
            if compiled is not None and entry[4] != spec:
                compiled = entry[2] = None    # fault regime changed
            if compiled is None:
                # JIT warm-up: interpret run 1, compile once on run
                # FUSE_AFTER_RUNS (exactly one interpreted run).
                entry[3] += 1
                if entry[3] >= FUSE_AFTER_RUNS:
                    compiled = entry[2] = trace.compile_trace(
                        program, self.resolve, fault=spec)
                    entry[4] = spec
                    self.trace_compiles += 1
            else:
                self.trace_replays += 1
            if compiled is not None:
                if self._trace_scratch is None:
                    self._trace_scratch = trace.TraceScratch()
                if compiled.faulty:
                    self.fault_injections += compiled.execute(
                        self.cells, self._trace_scratch,
                        fault_model=fm, n_cols=self.n_cols)
                else:
                    compiled.execute(self.cells, self._trace_scratch)
                self.aap_count += compiled.n_aap
                self.ap_count += compiled.n_ap
                self.activations += compiled.n_activations
                self.multi_row_activations += compiled.n_multi
                return
        cells = self.cells
        for is_aap, src_ports, dst_ports in entry[1]:
            sensed = self._sense(src_ports)
            if is_aap:
                for row, neg in dst_ports:
                    cells[row] = ~sensed if neg else sensed
                self.activations += 1
                self.aap_count += 1
            else:
                self.ap_count += 1

    def run_megaprogram(self, mega, stream: np.ndarray) -> None:
        """Execute a stitched :class:`~repro.isa.trace.MegaProgram`.

        ``stream`` is a ``[n_segments, n_words]`` packed block; segment
        ``i`` semantically begins with a host write of ``stream[i]``
        into the mega's stream row (the engine's mask row), then runs
        ``mega.segments[i]`` -- exactly the per-wave
        ``write_data_row_packed`` + :meth:`run_program` sequence.  With
        megatraces enabled the whole sequence replays as *one* compiled
        trace; with them disabled (or fusion disabled) it falls back to
        that literal per-wave loop, which is the differential escape
        hatch the parity harness leans on.

        Megatraces share the μProgram path's JIT warm-up discipline:
        the first run of a sequence executes as the per-wave loop
        (whose μPrograms ride their own trace cache, so a one-shot
        query stream -- distinct magnitudes, never repeated -- pays no
        stitched-compilation cost at all), and run ``FUSE_AFTER_RUNS``
        compiles the whole sequence once; every further run is a
        single-trace replay.  The cache is bounded by the same
        identity-keyed LRU discipline as the per-program cache, and a
        fault-regime change (p_cim/p_read/margin mutation) recompiles
        the entry just like :meth:`run_program` does.
        """
        trace = _trace_module()
        key = id(mega)
        entry = None
        if trace.fusion_enabled() and trace.megatrace_enabled():
            entry = self._mega.get(key)
            if entry is not None and entry[0] is mega:
                self._mega.move_to_end(key)
            else:
                entry = [mega, None, None, 0]
                self._mega[key] = entry
                while len(self._mega) > self._mega_cache_size:
                    self._mega.popitem(last=False)
        if entry is None:
            for i, segment in enumerate(mega.segments):
                self.write_data_row_packed(mega.stream_row, stream[i])
                self.run_program(segment)
            return
        fm = self.fault_model
        spec = trace.FaultSpec.of(fm)
        compiled = entry[1]
        if compiled is not None and entry[2] != spec:
            compiled = entry[1] = None        # fault regime changed
        if compiled is None:
            entry[3] += 1
            if entry[3] < FUSE_AFTER_RUNS:
                # Warm-up run: the literal per-wave sequence (its
                # μPrograms JIT independently, so even this run fuses
                # at μProgram granularity once warm).
                for i, segment in enumerate(mega.segments):
                    self.write_data_row_packed(mega.stream_row,
                                               stream[i])
                    self.run_program(segment)
                return
            compiled = trace.compile_megatrace(mega, self.resolve,
                                               fault=spec)
            entry[1], entry[2] = compiled, spec
            self.megatrace_compiles += 1
        else:
            self.megatrace_replays += 1
        if self._trace_scratch is None:
            self._trace_scratch = trace.TraceScratch()
        stream = np.ascontiguousarray(stream, dtype=np.uint64)
        if compiled.faulty:
            self.fault_injections += compiled.execute(
                self.cells, self._trace_scratch, fault_model=fm,
                n_cols=self.n_cols, stream=stream)
        else:
            compiled.execute(self.cells, self._trace_scratch,
                             stream=stream)
        self.aap_count += compiled.n_aap
        self.ap_count += compiled.n_ap
        self.activations += compiled.n_activations
        self.multi_row_activations += compiled.n_multi

    # ------------------------------------------------------------------
    # host-side access (RD/WR path; used to stage operands and read out)
    # ------------------------------------------------------------------
    def write_data_row(self, index: int, values) -> None:
        values = np.asarray(values, dtype=np.uint8)
        if values.shape != (self.n_cols,):
            raise ValueError("row width mismatch")
        self.cells[self._data_row(index)] = pack_bits(values)

    def write_data_row_packed(self, index: int, words: np.ndarray) -> None:
        """Write one data row from pre-packed ``uint64`` words.

        The packed staging path: callers that already hold operands in
        packed form (:func:`pack_bits` / :func:`pack_rows` output --
        tail bits beyond ``n_cols`` must be zero) land them without an
        unpack/re-pack round-trip per row.
        """
        words = np.asarray(words, dtype=np.uint64)
        if words.shape != (self.n_words,):
            raise ValueError("packed row width mismatch")
        self.cells[self._data_row(index)] = words

    def write_rows(self, indices: Sequence[int], values) -> None:
        """Write several data rows in one batched host transfer.

        One :func:`pack_rows` call covers the whole block; an all-zero
        image (the counter-reset case) degenerates to a single
        slice-assign with no packing at all.
        """
        values = np.asarray(values, dtype=np.uint8)
        if values.shape != (len(indices), self.n_cols):
            raise ValueError("row image shape mismatch")
        rows = [self._data_row(i) for i in indices]
        if not values.any():
            self.cells[rows] = 0
            return
        self.cells[rows] = pack_rows(values)

    def read_data_row(self, index: int) -> np.ndarray:
        return unpack_bits(self.cells[self._data_row(index)], self.n_cols)

    def read_rows(self, indices: Sequence[int]) -> np.ndarray:
        """Stack several data rows into a ``[len(indices), n_cols]`` array.

        One bulk unpack for the whole batch -- the wide read-out path
        (``CountingEngine.read_values`` over many digits and banks)
        leans on this.
        """
        rows = self.cells[[self._data_row(i) for i in indices]]
        return np.unpackbits(np.ascontiguousarray(rows).view(np.uint8),
                             axis=1, count=self.n_cols, bitorder="little")

    def read_b_row(self, address: Address) -> np.ndarray:
        """Debug read of a B/C-group address through its first port."""
        row, neg = self.resolve(address)[0]
        value = unpack_bits(self.cells[row], self.n_cols)
        return (1 - value) if neg else value

    # ------------------------------------------------------------------
    @property
    def ops_issued(self) -> int:
        """Total command sequences (AAP + AP) issued so far."""
        return self.aap_count + self.ap_count

    def stats(self) -> Tuple[int, int]:
        """(total activations, multi-row activations) since construction."""
        return self.activations, self.multi_row_activations

    def reset_counts(self) -> None:
        self.aap_count = 0
        self.ap_count = 0
        self.activations = 0
        self.multi_row_activations = 0
