"""DRAM organization model (paper Sec. 2.1, Tab. 2).

The evaluated system is a DDR5-4400 module: 1 channel, 1 rank, 8 data
devices plus one ECC device, 4 Gb chips with 32 banks, 1 kB rows per chip
(so an 8 kB rank-level row), and 1024 rows per subarray.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util import check_positive

__all__ = ["DRAMGeometry", "DDR5_4400"]


@dataclass(frozen=True)
class DRAMGeometry:
    """Static organization of one memory channel.

    Attributes mirror Fig. 2's hierarchy; helper properties derive the
    rank-level quantities the CIM mapping cares about (how many counters
    fit in one subarray row, how many rows a subarray offers for data).
    """

    channels: int = 1
    ranks_per_channel: int = 1
    chips_per_rank: int = 8
    ecc_chips_per_rank: int = 1
    banks_per_rank: int = 32
    subarrays_per_bank: int = 32
    rows_per_subarray: int = 1024
    row_bytes_per_chip: int = 1024
    chip_capacity_gbit: int = 4

    def __post_init__(self):
        for field in ("channels", "ranks_per_channel", "chips_per_rank",
                      "banks_per_rank", "subarrays_per_bank",
                      "rows_per_subarray", "row_bytes_per_chip",
                      "chip_capacity_gbit"):
            check_positive(getattr(self, field), field)

    @property
    def rank_row_bytes(self) -> int:
        """Bytes in one rank-level row (all data chips in lockstep)."""
        return self.row_bytes_per_chip * self.chips_per_rank

    @property
    def rank_row_bits(self) -> int:
        """Bitlines spanned by one rank-level row = CIM lanes available."""
        return self.rank_row_bytes * 8

    @property
    def total_banks(self) -> int:
        return (self.channels * self.ranks_per_channel
                * self.banks_per_rank)

    def ambit_data_rows(self, b_group_rows: int = 8,
                        c_group_rows: int = 2) -> int:
        """D-group rows available per subarray (Sec. 2.2: ``r - 10``)."""
        reserved = b_group_rows + c_group_rows
        if reserved >= self.rows_per_subarray:
            raise ValueError("subarray too small for Ambit row groups")
        return self.rows_per_subarray - reserved

    def counters_per_subarray_row(self) -> int:
        """One Johnson counter per bitline of the rank-level row."""
        return self.rank_row_bits


#: The configuration of paper Tab. 2.
DDR5_4400 = DRAMGeometry()
