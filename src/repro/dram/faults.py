"""Fault injection for CIM operations (paper Secs. 2.3, 6).

Multi-row activations sense a degraded margin, so each bitline's result
flips independently with probability ``p_cim`` (the paper sweeps 1e-6 ..
1e-1, covering the experimentally observed DRAM and RRAM ranges).  Plain
row accesses and copies fail at the DRAM read rate, conservatively 1e-20
(Sec. 6.3) -- effectively never in simulation, but the knob exists so the
protection analysis can include it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.util import RngLike, as_rng, check_probability

__all__ = ["FaultModel", "FAULT_FREE", "DRAM_READ_FAULT_RATE"]

#: Conservative per-bit fault rate of a standard DRAM read (Sec. 6.3).
DRAM_READ_FAULT_RATE = 1e-20


@dataclass
class FaultModel:
    """Per-bit Bernoulli fault injector with separate CIM/read rates.

    Stateless apart from its RNG; every multi-row activation in the
    subarray model routes its sensed bitline vector through
    :meth:`corrupt`.

    The ``margin_aware`` flag implements the key observation of Sec. 6.1:
    a triple-row activation whose cells *agree* (all ones / all zeros)
    charge-shares with a sensing margin at least as good as a standard
    read, so only *contested* (2-1 split) majorities fault at the CIM
    rate; unanimous columns fault at the read rate.  This is what makes
    intermediate faults in the XOR-synthesis overwhelmingly detectable.
    """

    p_cim: float = 0.0
    p_read: float = 0.0
    margin_aware: bool = True
    seed: RngLike = None
    _rng: np.random.Generator = field(init=False, repr=False)
    injected: int = field(init=False, default=0)

    def __post_init__(self):
        check_probability(self.p_cim, "p_cim")
        check_probability(self.p_read, "p_read")
        self._rng = as_rng(self.seed)

    def corrupt(self, bits: np.ndarray, multi_row: bool,
                contested: np.ndarray = None) -> np.ndarray:
        """Flip each bit independently at the applicable rate.

        ``contested`` marks columns whose majority was a 2-1 split; when
        the model is margin-aware, unanimous columns of a multi-row
        activation are charged the read rate instead of the CIM rate.

        **Order-preserving RNG contract** (what the fused fault
        pre-pass in :mod:`repro.isa.trace` relies on): the draws depend
        only on ``bits.shape`` and the model's knobs, never on the
        sensed data.  Per activation that is: one ``random(shape)``
        draw at ``p = p_cim`` (multi-row) or ``p_read`` (single-row)
        whenever ``p > 0``, plus -- for a margin-aware multi-row
        activation with ``0 < p_read < p_cim`` -- a second
        ``random(shape)`` draw at the read rate.  Only the *selection*
        between the two masks consults ``contested``.  The whole
        program's draws can thus be taken up front with
        :meth:`predraw` and applied data-dependently later.
        """
        p = self.p_cim if multi_row else self.p_read
        if p <= 0.0:
            return bits
        flips = self._rng.random(bits.shape) < p
        if (multi_row and self.margin_aware and contested is not None
                and self.p_read < p):
            calm = ~np.asarray(contested, dtype=bool)
            if self.p_read > 0.0:
                calm_flips = self._rng.random(bits.shape) < self.p_read
                flips = np.where(calm, calm_flips, flips)
            else:
                flips = np.where(calm, False, flips)
        self.injected += int(flips.sum())
        return np.bitwise_xor(bits, flips.astype(bits.dtype))

    def predraw(self, n_draws: int, width: int) -> np.ndarray:
        """Take ``n_draws`` activation draws of ``width`` lanes at once.

        One ``Generator.random((n_draws, width))`` call consumes the
        underlying bit stream exactly as ``n_draws`` sequential
        ``random(width)`` calls would (row ``i`` equals the ``i``-th
        sequential draw), so a fused replay that pre-draws its whole
        program leaves the generator in the same state as the
        interpreted path -- ``tests/test_fault_fusion_parity.py`` pins
        the equivalence.  Returns the raw uniforms; thresholding
        against ``p_cim`` / ``p_read`` is the caller's job because the
        applicable rate varies per draw row.
        """
        return self._rng.random((int(n_draws), int(width)))

    def reset_counts(self) -> None:
        """Zero the ``injected`` flip counter.

        Called by ``CountingEngine.reset_counters`` so ``injected`` is
        a per-scheduler-epoch count (per query under plan reuse) even
        when several engines share one model; the subarrays' monotonic
        ``fault_injections`` counters are unaffected and feed the
        plan/serve per-query telemetry deltas.
        """
        self.injected = 0


#: Shared fault-free model for tests and golden runs.
FAULT_FREE = FaultModel()
