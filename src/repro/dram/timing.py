"""DDR timing parameters and the AAP/AP latency model (Secs. 2.1, 7.2.1).

Latency for in-DRAM CIM is governed by a handful of timing constraints:

* ``tAAP = tRAS + tRP + 4 tCK`` -- one activate-activate-precharge
  sequence (the paper's parenthetical in Sec. 7.2.1);
* ``tRRD`` -- minimum spacing between ACT commands to different banks;
* ``tFAW`` -- a rolling window admitting at most four ACTs per rank.

With one bank, consecutive AAPs are ``tAAP + tRRD`` apart.  With four
banks, four AAPs overlap within that window.  With sixteen banks the ACT
issue rate saturates at four ACTs per ``tFAW``, which is shorter than
``tAAP`` -- reproducing the diminishing-returns behavior of Fig. 15.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TimingParams", "DDR5_4400_TIMING", "aap_period_ns",
           "aap_rate_per_s", "time_for_aaps_ns"]


@dataclass(frozen=True)
class TimingParams:
    """DRAM timing constraints in nanoseconds."""

    t_ck: float = 0.4545        # DDR5-4400: 2200 MHz clock
    t_rcd: float = 14.545       # ACT -> column command
    t_rp: float = 14.545        # PRE -> ACT
    t_ras: float = 32.0         # ACT -> PRE (row active time)
    t_rrd: float = 3.636        # ACT -> ACT, different banks (8 tCK)
    t_faw: float = 14.5         # four-activation window (paper Sec. 7.2.2)
    t_refi: float = 3900.0      # average refresh interval (DDR5 per-bank)
    t_rfc: float = 195.0        # refresh cycle time (per-bank REFab share)
    #: An AAP's back-to-back activations happen inside one row cycle, so
    #: the rank-level tRRD/tFAW bookkeeping sees each AAP as a single
    #: activation burst -- this is how Sec. 7.2.1 can say the first-to-
    #: fifth *activation* latency with 16 banks is bounded by tFAW.
    acts_per_aap: int = 1

    @property
    def t_aap(self) -> float:
        """Latency of one AAP sequence: ``tRAS + tRP + 4 tCK``."""
        return self.t_ras + self.t_rp + 4 * self.t_ck

    @property
    def t_rc(self) -> float:
        """Row cycle time (ACT to next ACT on the same bank)."""
        return self.t_ras + self.t_rp

    @property
    def refresh_overhead(self) -> float:
        """Fraction of time the rank is unavailable due to refresh."""
        return self.t_rfc / self.t_refi


#: Timing used throughout the evaluation (paper Tab. 2, Sec. 7.2).
DDR5_4400_TIMING = TimingParams()


def aap_period_ns(n_banks: int, timing: TimingParams = DDR5_4400_TIMING) -> float:
    """Steady-state time between AAP completions for ``n_banks`` banks.

    Three regimes (Sec. 7.2.1):

    * the per-bank turnaround floor: only one AAP can be in flight per
      bank, so ``n`` banks complete at most ``n`` AAPs per
      ``tAAP + tRRD``;
    * the ACT spacing floor: every AAP needs ``acts_per_aap`` ACT slots
      separated by ``tRRD``;
    * the FAW floor: at most 4 ACTs per ``tFAW`` window per rank.

    The binding constraint is the largest of the three periods.
    """
    if n_banks < 1:
        raise ValueError("need at least one bank")
    per_bank = (timing.t_aap + timing.t_rrd) / n_banks
    act_spacing = timing.acts_per_aap * timing.t_rrd
    faw = timing.acts_per_aap * timing.t_faw / 4.0
    return max(per_bank, act_spacing, faw)


def aap_rate_per_s(n_banks: int,
                   timing: TimingParams = DDR5_4400_TIMING) -> float:
    """Sustained AAP throughput in operations per second."""
    return 1e9 / aap_period_ns(n_banks, timing)


def time_for_aaps_ns(n_aaps: int, n_banks: int,
                     timing: TimingParams = DDR5_4400_TIMING,
                     include_refresh: bool = False) -> float:
    """Total time to issue ``n_aaps`` AAPs spread over ``n_banks`` banks.

    Uses the steady-state period plus one pipeline-fill ``tAAP``; exact
    agreement with the event-driven scheduler is asserted in the tests.
    ``include_refresh`` stretches the makespan by the tRFC/tREFI duty
    cycle (~5 % on DDR5) -- counters are ordinary cells and still need
    refreshing while they compute.

    This is also the latency half of the serving telemetry: an executed
    wave's *measured* op count (``CountingEngine.measured_ops``, retries
    included) goes straight through here, so every
    :class:`repro.serve.ExecutionReport` models the command stream that
    actually ran, not a nominal count.
    """
    if n_aaps <= 0:
        return 0.0
    total = timing.t_aap + (n_aaps - 1) * aap_period_ns(n_banks, timing)
    if include_refresh:
        total *= 1.0 + timing.refresh_overhead
    return total
