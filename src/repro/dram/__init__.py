"""DRAM substrate: geometry, timing, bit-level subarray simulation, the
Ambit CIM model (plus its word-parallel fast twin), fault injection, and
energy/area accounting."""

from repro.dram.ambit import AmbitSubarray
from repro.dram.wordline import WordlineSubarray
from repro.dram.energy import DDR5_ENERGY, EnergyModel
from repro.dram.faults import DRAM_READ_FAULT_RATE, FAULT_FREE, FaultModel
from repro.dram.geometry import DDR5_4400, DRAMGeometry
from repro.dram.scheduler import CommandScheduler
from repro.dram.subarray import Port, Subarray
from repro.dram.timing import (DDR5_4400_TIMING, TimingParams, aap_period_ns,
                               time_for_aaps_ns)

__all__ = [
    "AmbitSubarray", "WordlineSubarray",
    "DDR5_ENERGY", "EnergyModel",
    "DRAM_READ_FAULT_RATE", "FAULT_FREE", "FaultModel",
    "DDR5_4400", "DRAMGeometry",
    "CommandScheduler",
    "Port", "Subarray",
    "DDR5_4400_TIMING", "TimingParams", "aap_period_ns", "time_for_aaps_ns",
]
