"""Energy, power and area model for in-DRAM CIM (Sec. 7 metrics).

All in-DRAM designs (Count2Multiply and the SIMDRAM baseline) share these
constants, so GOPS/Watt and GOPS/mm² ratios between them reduce to their
command counts -- which is exactly how the paper's comparisons work.  The
absolute values are calibration constants assembled from public DDR5
datasheet figures and the Ambit/RowClone papers; DESIGN.md Sec. 5 records
this substitution.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.geometry import DDR5_4400, DRAMGeometry

__all__ = ["EnergyModel", "DDR5_ENERGY"]


@dataclass(frozen=True)
class EnergyModel:
    """DRAM-module energy/area constants.

    Attributes
    ----------
    e_act_nj / e_pre_nj:
        Energy of one rank-level activation / precharge (all chips in
        lockstep, 8 kB row).
    background_w:
        Static + refresh power of the active rank.
    chip_area_mm2:
        Die area of one 4 Gb DDR5 device.
    cim_area_overhead:
        Fractional area added by the CIM row decoder (Ambit reports <1%).
    """

    e_act_nj: float = 1.4
    e_pre_nj: float = 0.7
    background_w: float = 0.35
    chip_area_mm2: float = 45.0
    cim_area_overhead: float = 0.01
    geometry: DRAMGeometry = DDR5_4400

    @property
    def e_aap_nj(self) -> float:
        """Energy of one AAP (two ACTs + one PRE on a rank-level row)."""
        return 2 * self.e_act_nj + self.e_pre_nj

    @property
    def e_ap_nj(self) -> float:
        """Energy of one AP (one multi-row ACT + PRE)."""
        return self.e_act_nj + self.e_pre_nj

    def dynamic_energy_j(self, n_aaps: int) -> float:
        """Dynamic energy of ``n_aaps`` AAPs alone (no background).

        The command-proportional part of :meth:`energy_for_aaps_j`,
        split out so callers pricing a *shared* command stream (a
        coalesced serving wave) can separate the per-op cost from the
        makespan-proportional background power.
        """
        return n_aaps * self.e_aap_nj * 1e-9

    def energy_for_aaps_j(self, n_aaps: int, elapsed_s: float = 0.0) -> float:
        """Total energy: dynamic AAP energy plus background for the run."""
        return self.dynamic_energy_j(n_aaps) + self.background_w * elapsed_s

    def average_power_w(self, n_aaps: int, elapsed_s: float) -> float:
        """Average power while issuing ``n_aaps`` over ``elapsed_s``."""
        if elapsed_s <= 0:
            raise ValueError("elapsed time must be positive")
        return self.energy_for_aaps_j(n_aaps, elapsed_s) / elapsed_s

    def module_area_mm2(self) -> float:
        """Area of the compute-capable module (data + ECC chips + CIM)."""
        chips = (self.geometry.chips_per_rank
                 + self.geometry.ecc_chips_per_rank)
        return chips * self.chip_area_mm2 * (1.0 + self.cim_area_overhead)


#: Shared constants for every in-DRAM configuration in the evaluation.
DDR5_ENERGY = EnergyModel()
