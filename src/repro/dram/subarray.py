"""Bit-level DRAM subarray with multi-row activation (Secs. 2.1-2.2).

Models one subarray as a matrix of cells plus a row buffer.  The two
operations CIM needs are:

* ``activate(wordlines)`` -- drive the selected wordlines; the sensed
  bitline value is the *majority* of the connected cells (charge
  sharing), and -- destructively -- every activated cell is overwritten
  with the sensed value;
* ``precharge()`` -- close the row, restoring the bitlines.

Dual-contact cells (DCCs) are supported through *port polarity*: a
negated port reads/writes the complement of the stored cell value, which
is how Ambit realizes NOT at zero extra cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.dram.faults import FAULT_FREE, FaultModel

__all__ = ["Port", "Subarray"]


@dataclass(frozen=True)
class Port:
    """A wordline: which physical row it drives and with what polarity."""

    row: int
    negated: bool = False


class Subarray:
    """A 2-D array of DRAM cells addressable by wordline ports.

    Parameters
    ----------
    n_rows, n_cols:
        Physical dimensions (rows x bitlines).
    fault_model:
        Injected on every sense; multi-row activations use the CIM rate.
    """

    def __init__(self, n_rows: int, n_cols: int,
                 fault_model: FaultModel = FAULT_FREE):
        if n_rows < 1 or n_cols < 1:
            raise ValueError("subarray dimensions must be positive")
        self.n_rows = n_rows
        self.n_cols = n_cols
        self.cells = np.zeros((n_rows, n_cols), dtype=np.uint8)
        self.fault_model = fault_model
        self.row_buffer = np.zeros(n_cols, dtype=np.uint8)
        self.precharged = True
        self.activations = 0
        self.multi_row_activations = 0
        # Monotonic per-subarray flip count (the local view of the
        # possibly shared ``FaultModel.injected``).
        self.fault_injections = 0

    # ------------------------------------------------------------------
    def _read_port(self, port: Port) -> np.ndarray:
        value = self.cells[port.row]
        return (1 - value) if port.negated else value

    def _write_port(self, port: Port, bitline: np.ndarray) -> None:
        self.cells[port.row] = (1 - bitline) if port.negated else bitline

    # ------------------------------------------------------------------
    def activate(self, ports: Sequence[Port]) -> np.ndarray:
        """Drive ``ports`` simultaneously; returns the sensed bitline.

        For a single port this is a normal (refreshing) row activation.
        For multiple ports the sensed value is the bitwise majority of
        the connected cell values (as seen through each port's polarity),
        with ties impossible because CIM activations use odd row counts
        or copy-style overwrites (see :meth:`overdrive`).  The sensed
        value -- possibly corrupted by the fault model -- is written back
        into every activated cell: multi-row activation is destructive.
        """
        if not self.precharged:
            raise RuntimeError("activate issued without precharge")
        if not ports:
            raise ValueError("activate needs at least one wordline")
        values = np.stack([self._read_port(p) for p in ports])
        contested = None
        if len(ports) == 1:
            sensed = values[0]
        else:
            if len(ports) % 2 == 0:
                raise ValueError(
                    "simultaneous activation needs an odd row count for a "
                    "defined majority; use overdrive() for copies")
            ones = values.sum(axis=0)
            sensed = (ones * 2 > len(ports)).astype(np.uint8)
            # Unanimous columns keep a full sensing margin (Sec. 6.1).
            contested = (ones != 0) & (ones != len(ports))
        pre = self.fault_model.injected
        sensed = self.fault_model.corrupt(sensed, multi_row=len(ports) > 1,
                                          contested=contested)
        self.fault_injections += self.fault_model.injected - pre
        for p in ports:
            self._write_port(p, sensed)
        self.row_buffer = sensed.copy()
        self.precharged = False
        self.activations += 1
        if len(ports) > 1:
            self.multi_row_activations += 1
        return sensed.copy()

    def overdrive(self, ports: Sequence[Port], bitline: np.ndarray) -> None:
        """Second activation of an AAP: the driven bitline overwrites cells.

        The row buffer's sense amplifiers are already latched to
        ``bitline`` (from the first activation), so activating more
        wordlines overdrives those cells to the latched value (RowClone
        semantics, Sec. 2.2).
        """
        bitline = np.asarray(bitline, dtype=np.uint8)
        if bitline.shape != (self.n_cols,):
            raise ValueError("bitline width mismatch")
        for p in ports:
            self._write_port(p, bitline)
        self.activations += 1

    def precharge(self) -> None:
        """Close the row; required before the next activation."""
        self.precharged = True

    # ------------------------------------------------------------------
    def read_row(self, row: int) -> np.ndarray:
        """Debug/host access to a physical row (non-destructive copy)."""
        return self.cells[row].copy()

    def write_row(self, row: int, values: np.ndarray) -> None:
        """Host-side write (via the normal WR path)."""
        values = np.asarray(values, dtype=np.uint8)
        if values.shape != (self.n_cols,):
            raise ValueError("row width mismatch")
        self.cells[row] = values

    def stats(self) -> Tuple[int, int]:
        """(total activations, multi-row activations) since construction."""
        return self.activations, self.multi_row_activations
