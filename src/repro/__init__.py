"""Count2Multiply: reliable in-memory high-radix counting.

A full reproduction of the HPCA 2026 paper: Johnson-counter algebra and
IARM scheduling (``repro.core``), a bit-level Ambit-style DRAM substrate
with timing/energy models (``repro.dram``), executable μPrograms with MIG
synthesis and NVM backends (``repro.isa``), Hamming/BCH ECC plus the
XOR-embedding CIM protection scheme (``repro.ecc``), the gate-level
counting engine (``repro.engine``), matrix kernels (``repro.kernels``),
baselines (``repro.baselines``), performance models (``repro.perf``),
application workloads (``repro.apps``) and the experiment registry that
regenerates every table and figure (``repro.experiments``).

Quick start::

    import numpy as np
    from repro import CountingEngine

    engine = CountingEngine(n_bits=2, n_digits=6, n_lanes=8)
    engine.load_mask(0, np.array([1, 0, 1, 0, 1, 0, 1, 0]))
    engine.accumulate(45)           # +45 to every masked counter
    print(engine.read_values())
"""

from repro.core import (CounterArray, IARMScheduler, NaiveKaryScheduler,
                        UnitScheduler)
from repro.device import (AmbiguousKindWarning, Device, DeviceClosedError,
                          EngineConfig, GemmPlan, GemvPlan,
                          PlanClosedError, PlanStats)
from repro.dram import AmbitSubarray, FaultModel, WordlineSubarray
from repro.engine import BankCluster, CountingEngine
from repro.kernels import (binary_gemm, binary_gemv, bitsliced_gemv,
                           ternary_gemm, ternary_gemv)
from repro.perf import C2MConfig, C2MModel, GEMMShape, measured_cost
from repro.serve import (BankPool, ExecutionReport, ModelRegistry,
                         PoolExhausted, Response, Server)

__version__ = "1.2.0"

__all__ = [
    "CounterArray", "IARMScheduler", "NaiveKaryScheduler", "UnitScheduler",
    "AmbiguousKindWarning", "Device", "DeviceClosedError", "EngineConfig",
    "GemmPlan", "GemvPlan", "PlanClosedError", "PlanStats",
    "AmbitSubarray", "FaultModel", "WordlineSubarray",
    "BankCluster", "CountingEngine",
    "binary_gemm", "binary_gemv", "bitsliced_gemv", "ternary_gemm",
    "ternary_gemv",
    "C2MConfig", "C2MModel", "GEMMShape", "measured_cost",
    "BankPool", "ExecutionReport", "ModelRegistry", "PoolExhausted",
    "Response", "Server",
    "__version__",
]
