"""Integer-vector x binary/ternary-matrix products (paper Sec. 5.2.1).

Vector-matrix multiplication is reinterpreted as *masked matrix
accumulation*: ``y = sum_k x[k] * Z[k, :]`` where each row of Z is a mask
resident in the subarray and each ``x[k]`` becomes a broadcast k-ary
increment sequence.  Ternary matrices use the two-accumulator form: a
positive and a negative counter bank, with the input's sign folded into
the mask choice so counters only ever count upward (the host-side trick
of Sec. 5.1; the paper's single-bank ``O_sign`` variant is modeled by
the golden :class:`~repro.core.counter.CounterArray`).

Two execution paths share these entry points:

* ``backend="fast"`` (default) routes through a :class:`~repro.engine.
  cluster.BankCluster`: same-value updates are grouped into bank-wide
  waves and every μProgram executes word-parallel on packed uint64 rows.
* ``backend="bit"`` is the golden reference: one update at a time on the
  per-bit :class:`~repro.dram.ambit.AmbitSubarray`.  Fault-free results
  are integer-exact on both paths, so they agree bit for bit.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.dram.faults import FAULT_FREE, FaultModel
from repro.engine.cluster import BankCluster
from repro.engine.machine import CountingEngine

__all__ = ["binary_gemv", "ternary_gemv", "required_digits"]

#: Bank shards a kernel-built cluster spreads its waves over.
DEFAULT_BANKS = 8


def required_digits(n_bits: int, x: np.ndarray) -> int:
    """Digits needed to accumulate the worst-case dot product of ``x``.

    The worst case is the all-ones mask column: every ``|x[k]|`` lands on
    the same counter, so the counter must represent ``sum(|x|)``.  A
    D-digit radix-``2n`` counter holds the ``(2n)**D`` values ``0 ..
    (2n)**D - 1``; the ``+ 1`` below converts the largest value the
    counter must *reach* into the number of states it must *have*, i.e.
    we need ``(2n)**D >= sum(|x|) + 1``.

    An all-zero (or empty) ``x`` accumulates nothing; one digit already
    represents the 0 result, and the early return keeps the search loop
    away from the degenerate ``worst == 1`` bound.

    >>> required_digits(2, [3, 4, 8])        # sum 15 -> 4**2 = 16 states
    2
    >>> required_digits(2, [0, 0])           # all-zero input edge case
    1
    >>> required_digits(2, [-8, 7])          # signed: magnitudes count
    2
    """
    total = int(np.abs(np.asarray(x)).astype(np.int64).sum())
    if total == 0:
        return 1
    radix = 2 * n_bits
    d = 1
    while radix ** d < total + 1:
        d += 1
    return d


def _cluster_for(n_updates: int, n_bits: int, n_digits: int, lanes: int,
                 fault_model: FaultModel, fr_checks: int) -> BankCluster:
    """Size a cluster to a batch: never more banks than updates."""
    return BankCluster(n_bits, n_digits, lanes,
                       n_banks=max(1, min(DEFAULT_BANKS, n_updates)),
                       fault_model=fault_model, fr_checks=fr_checks)


def binary_updates(x: np.ndarray, z: np.ndarray):
    """``(value, mask)`` pairs of a binary GEMV, zero rows skipped."""
    return [(int(x[i]), z[i]) for i in range(x.size) if x[i] != 0]


def ternary_updates(x: np.ndarray, z: np.ndarray):
    """``(|value|, [up-mask | down-mask])`` pairs of a ternary GEMV.

    The sign of ``x[k]`` is folded into the mask choice: positive inputs
    route ``z == +1`` lanes to the up half and ``z == -1`` lanes to the
    down half, negative inputs swap the halves, so both halves only ever
    count upward (Sec. 5.1).
    """
    plus = (z == 1).astype(np.uint8)
    minus = (z == -1).astype(np.uint8)
    updates = []
    for i in range(x.size):
        if x[i] == 0:
            continue
        up, down = ((plus[i], minus[i]) if x[i] > 0
                    else (minus[i], plus[i]))
        updates.append((int(abs(x[i])), np.concatenate([up, down])))
    return updates


def binary_gemv(x: np.ndarray, z: np.ndarray, n_bits: int = 2,
                fault_model: FaultModel = FAULT_FREE,
                fr_checks: int = 0,
                engine: Optional[CountingEngine] = None,
                backend: str = "fast") -> np.ndarray:
    """``y = x @ z`` with non-negative integer ``x`` and binary ``z``.

    ``x`` has shape ``[K]``, ``z`` ``[K, N]`` with entries in {0, 1}.
    Executes gate-level on a counting engine (one counter per output).
    Passing an explicit ``engine`` (row-reuse across GEMM output rows)
    pins the update-at-a-time path on that engine's own backend.

    >>> import numpy as np
    >>> binary_gemv(np.array([2, 3]), np.array([[1, 0], [1, 1]]))
    array([5, 3])
    """
    x = np.asarray(x, dtype=np.int64)
    z = np.asarray(z, dtype=np.uint8)
    if x.ndim != 1 or z.ndim != 2 or z.shape[0] != x.size:
        raise ValueError("shape mismatch: x [K], z [K, N]")
    if (x < 0).any():
        raise ValueError("binary_gemv expects non-negative inputs; use "
                         "ternary_gemv for signed streams")
    k, n = z.shape
    strict = fault_model.p_cim == 0

    if engine is None and CountingEngine.normalize_backend(backend) == "word":
        updates = binary_updates(x, z)
        cluster = _cluster_for(len(updates), n_bits,
                               required_digits(n_bits, x), n,
                               fault_model, fr_checks)
        cluster.dispatch(updates)
        return cluster.read_reduced(strict=strict)

    if engine is None:
        engine = CountingEngine(n_bits, required_digits(n_bits, x), n,
                                fault_model=fault_model,
                                fr_checks=fr_checks, backend=backend)
    engine.reset_counters()
    for i in range(k):
        if x[i] == 0:
            continue                       # zero-skipping (Sec. 7.2.3)
        engine.load_mask(0, z[i])
        engine.accumulate(int(x[i]))
    return engine.read_values(strict=strict)


def ternary_gemv(x: np.ndarray, z: np.ndarray, n_bits: int = 2,
                 fault_model: FaultModel = FAULT_FREE,
                 fr_checks: int = 0,
                 backend: str = "fast") -> np.ndarray:
    """``y = x @ z`` with signed integer ``x`` and ternary ``z``.

    Two counter banks accumulate the positive and negative contributions
    (``x[k] * z[k,:]`` routes to bank ``sign(x[k]) * z``); the host folds
    the input sign into the mask choice so both banks count upward.  The
    fast path packs both polarities into one ``2N``-lane cluster so a
    single broadcast retires an input row's positive *and* negative
    masks at once.

    >>> import numpy as np
    >>> ternary_gemv(np.array([2, -3]), np.array([[1, -1], [1, 0]],
    ...                                          dtype=np.int8))
    array([-1, -2])
    """
    x = np.asarray(x, dtype=np.int64)
    z = np.asarray(z, dtype=np.int8)
    if x.ndim != 1 or z.ndim != 2 or z.shape[0] != x.size:
        raise ValueError("shape mismatch: x [K], z [K, N]")
    if not np.isin(z, (-1, 0, 1)).all():
        raise ValueError("z must be ternary (-1/0/1)")
    k, n = z.shape
    digits = required_digits(n_bits, x)
    strict = fault_model.p_cim == 0

    if CountingEngine.normalize_backend(backend) == "word":
        updates = ternary_updates(x, z)
        cluster = _cluster_for(len(updates), n_bits, digits, 2 * n,
                               fault_model, fr_checks)
        cluster.dispatch(updates)
        halves = cluster.read_reduced(strict=strict).reshape(2, n)
        return halves[0] - halves[1]

    pos = CountingEngine(n_bits, digits, n, fault_model=fault_model,
                         fr_checks=fr_checks, backend=backend)
    neg = CountingEngine(n_bits, digits, n, fault_model=fault_model,
                         fr_checks=fr_checks, backend=backend)
    pos.reset_counters()
    neg.reset_counters()
    plus_masks = (z == 1).astype(np.uint8)
    minus_masks = (z == -1).astype(np.uint8)
    for i in range(k):
        if x[i] == 0:
            continue
        magnitude = int(abs(x[i]))
        up, down = ((plus_masks[i], minus_masks[i]) if x[i] > 0
                    else (minus_masks[i], plus_masks[i]))
        if up.any():
            pos.load_mask(0, up)
            pos.accumulate(magnitude)
        if down.any():
            neg.load_mask(0, down)
            neg.accumulate(magnitude)
    return (pos.read_values(strict=strict).astype(np.int64)
            - neg.read_values(strict=strict).astype(np.int64))
