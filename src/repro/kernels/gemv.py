"""Integer-vector x binary/ternary-matrix products (paper Sec. 5.2.1).

Vector-matrix multiplication is reinterpreted as *masked matrix
accumulation*: ``y = sum_k x[k] * Z[k, :]`` where each row of Z is a mask
resident in the subarray and each ``x[k]`` becomes a broadcast k-ary
increment sequence.  Ternary matrices use the two-accumulator form: a
positive and a negative counter bank, with the input's sign folded into
the mask choice so counters only ever count upward (the host-side trick
of Sec. 5.1; the paper's single-bank ``O_sign`` variant is modeled by
the golden :class:`~repro.core.counter.CounterArray`).

These entry points are thin one-shot wrappers over the session API: each
call opens a :class:`~repro.device.Device`, plants Z in a single-use
plan and streams one query.  Repeated traffic against the same Z should
hold its own plan instead (``device.plan_gemv(z)``) -- planting and
μProgram compilation then amortize across queries (see
:mod:`repro.device`).

Two execution paths share these entry points:

* ``backend="fast"`` (default) routes through a :class:`~repro.engine.
  cluster.BankCluster`: same-value updates are grouped into bank-wide
  waves and every μProgram executes word-parallel on packed uint64 rows.
* ``backend="bit"`` is the golden reference: one update at a time on the
  per-bit :class:`~repro.dram.ambit.AmbitSubarray`.  Fault-free results
  are integer-exact on both paths, so they agree bit for bit.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.dram.faults import FAULT_FREE, FaultModel
from repro.engine.machine import CountingEngine
# binary_updates/ternary_updates/DEFAULT_BANKS re-exported for
# backwards compatibility -- they were public here before moving to the
# shared lowering module.
from repro.kernels.lowering import (DEFAULT_BANKS, binary_updates,
                                    required_digits, ternary_updates)

__all__ = ["binary_gemv", "ternary_gemv", "required_digits"]


def _resolve_backend(backend: Optional[str],
                     engine: Optional[CountingEngine]) -> str:
    """One-shot kernels' engine/backend reconciliation.

    An explicit ``engine=`` pins execution to that engine's own backend;
    an *explicitly* passed ``backend=`` that disagrees with it is a
    contradiction we refuse (silently preferring the engine hid real
    bugs).  ``backend=None`` means "not specified": it follows the
    engine when one is given and defaults to ``"fast"`` otherwise.
    """
    if engine is None:
        return CountingEngine.normalize_backend(backend or "fast")
    if backend is not None and \
            CountingEngine.normalize_backend(backend) != engine.backend:
        raise ValueError(
            f"backend={backend!r} contradicts the explicit engine's "
            f"backend={engine.backend!r}; drop one of the two arguments "
            f"(an explicit engine always runs on its own backend)")
    return engine.backend


def _one_shot_device(n_bits: int, fault_model: FaultModel, fr_checks: int,
                     backend: str, n_updates: int):
    """A single-use Device sized like the historical kernel cluster."""
    from repro.device import Device, EngineConfig
    return Device(EngineConfig(
        n_bits=n_bits, fault_model=fault_model, fr_checks=fr_checks,
        backend=backend,
        n_banks=max(1, min(DEFAULT_BANKS, n_updates))))


def binary_gemv(x: np.ndarray, z: np.ndarray, n_bits: int = 2,
                fault_model: FaultModel = FAULT_FREE,
                fr_checks: int = 0,
                engine: Optional[CountingEngine] = None,
                backend: Optional[str] = None) -> np.ndarray:
    """``y = x @ z`` with non-negative integer ``x`` and binary ``z``.

    ``x`` has shape ``[K]``, ``z`` ``[K, N]`` with entries in {0, 1}.
    Executes gate-level on a counting engine (one counter per output).
    ``backend`` defaults to ``"fast"``.  Passing an explicit ``engine``
    (row-reuse across GEMM output rows) pins the update-at-a-time path
    on that engine's own backend; combining it with a contradicting
    explicit ``backend=`` raises.

    >>> import numpy as np
    >>> binary_gemv(np.array([2, 3]), np.array([[1, 0], [1, 1]]))
    array([5, 3])
    """
    x = np.asarray(x, dtype=np.int64)
    z = np.asarray(z, dtype=np.uint8)
    if x.ndim != 1 or z.ndim != 2 or z.shape[0] != x.size:
        raise ValueError("shape mismatch: x [K], z [K, N]")
    if (x < 0).any():
        raise ValueError("binary_gemv expects non-negative inputs; use "
                         "ternary_gemv for signed streams")
    resolved = _resolve_backend(backend, engine)
    strict = fault_model.p_cim == 0

    if engine is None:
        with _one_shot_device(n_bits, fault_model, fr_checks, resolved,
                              int(np.count_nonzero(x))) as dev:
            plan = dev.plan_gemv(z, kind="binary",
                                 x_budget=int(np.abs(x).sum()))
            return plan(x)

    # Explicit-engine path: stream updates on the caller's engine.
    engine.reset_counters()
    for i in range(x.size):
        if x[i] == 0:
            continue                       # zero-skipping (Sec. 7.2.3)
        engine.load_mask(0, z[i])
        engine.accumulate(int(x[i]))
    return engine.read_values(strict=strict)


def ternary_gemv(x: np.ndarray, z: np.ndarray, n_bits: int = 2,
                 fault_model: FaultModel = FAULT_FREE,
                 fr_checks: int = 0,
                 backend: Optional[str] = None) -> np.ndarray:
    """``y = x @ z`` with signed integer ``x`` and ternary ``z``.

    Two counter banks accumulate the positive and negative contributions
    (``x[k] * z[k,:]`` routes to bank ``sign(x[k]) * z``); the host folds
    the input sign into the mask choice so both banks count upward.  The
    fast path packs both polarities into one ``2N``-lane cluster so a
    single broadcast retires an input row's positive *and* negative
    masks at once.

    >>> import numpy as np
    >>> ternary_gemv(np.array([2, -3]), np.array([[1, -1], [1, 0]],
    ...                                          dtype=np.int8))
    array([-1, -2])
    """
    x = np.asarray(x, dtype=np.int64)
    z = np.asarray(z, dtype=np.int8)
    if x.ndim != 1 or z.ndim != 2 or z.shape[0] != x.size:
        raise ValueError("shape mismatch: x [K], z [K, N]")
    if not np.isin(z, (-1, 0, 1)).all():
        raise ValueError("z must be ternary (-1/0/1)")
    resolved = _resolve_backend(backend, None)
    with _one_shot_device(n_bits, fault_model, fr_checks, resolved,
                          int(np.count_nonzero(x))) as dev:
        plan = dev.plan_gemv(z, kind="ternary",
                             x_budget=int(np.abs(x).sum()))
        return plan(x)
