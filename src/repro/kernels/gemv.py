"""Integer-vector x binary/ternary-matrix products (paper Sec. 5.2.1).

Vector-matrix multiplication is reinterpreted as *masked matrix
accumulation*: ``y = sum_k x[k] * Z[k, :]`` where each row of Z is a mask
resident in the subarray and each ``x[k]`` becomes a broadcast k-ary
increment sequence.  Ternary matrices use the two-accumulator form: a
positive and a negative counter bank, with the input's sign folded into
the mask choice so counters only ever count upward (the host-side trick
of Sec. 5.1; the paper's single-bank ``O_sign`` variant is modeled by
the golden :class:`~repro.core.counter.CounterArray`).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.dram.faults import FAULT_FREE, FaultModel
from repro.engine.machine import CountingEngine

__all__ = ["binary_gemv", "ternary_gemv", "required_digits"]


def required_digits(n_bits: int, x: np.ndarray) -> int:
    """Digits needed to accumulate the worst-case dot product of ``x``."""
    worst = int(np.abs(np.asarray(x)).astype(np.int64).sum()) + 1
    radix = 2 * n_bits
    d = 1
    while radix ** d < worst:
        d += 1
    return d


def binary_gemv(x: np.ndarray, z: np.ndarray, n_bits: int = 2,
                fault_model: FaultModel = FAULT_FREE,
                fr_checks: int = 0,
                engine: Optional[CountingEngine] = None) -> np.ndarray:
    """``y = x @ z`` with non-negative integer ``x`` and binary ``z``.

    ``x`` has shape ``[K]``, ``z`` ``[K, N]`` with entries in {0, 1}.
    Executes gate-level on a counting engine (one counter per output).
    """
    x = np.asarray(x, dtype=np.int64)
    z = np.asarray(z, dtype=np.uint8)
    if x.ndim != 1 or z.ndim != 2 or z.shape[0] != x.size:
        raise ValueError("shape mismatch: x [K], z [K, N]")
    if (x < 0).any():
        raise ValueError("binary_gemv expects non-negative inputs; use "
                         "ternary_gemv for signed streams")
    k, n = z.shape
    if engine is None:
        engine = CountingEngine(n_bits, required_digits(n_bits, x), n,
                                fault_model=fault_model,
                                fr_checks=fr_checks)
    engine.reset_counters()
    for i in range(k):
        if x[i] == 0:
            continue                       # zero-skipping (Sec. 7.2.3)
        engine.load_mask(0, z[i])
        engine.accumulate(int(x[i]))
    return engine.read_values(strict=fault_model.p_cim == 0)


def ternary_gemv(x: np.ndarray, z: np.ndarray, n_bits: int = 2,
                 fault_model: FaultModel = FAULT_FREE,
                 fr_checks: int = 0) -> np.ndarray:
    """``y = x @ z`` with signed integer ``x`` and ternary ``z``.

    Two counter banks accumulate the positive and negative contributions
    (``x[k] * z[k,:]`` routes to bank ``sign(x[k]) * z``); the host folds
    the input sign into the mask choice so both banks count upward.
    """
    x = np.asarray(x, dtype=np.int64)
    z = np.asarray(z, dtype=np.int8)
    if not np.isin(z, (-1, 0, 1)).all():
        raise ValueError("z must be ternary (-1/0/1)")
    k, n = z.shape
    digits = required_digits(n_bits, x)
    pos = CountingEngine(n_bits, digits, n, fault_model=fault_model,
                         fr_checks=fr_checks)
    neg = CountingEngine(n_bits, digits, n, fault_model=fault_model,
                         fr_checks=fr_checks)
    pos.reset_counters()
    neg.reset_counters()
    plus_masks = (z == 1).astype(np.uint8)
    minus_masks = (z == -1).astype(np.uint8)
    for i in range(k):
        if x[i] == 0:
            continue
        magnitude = int(abs(x[i]))
        up, down = ((plus_masks[i], minus_masks[i]) if x[i] > 0
                    else (minus_masks[i], plus_masks[i]))
        if up.any():
            pos.load_mask(0, up)
            pos.accumulate(magnitude)
        if down.any():
            neg.load_mask(0, down)
            neg.accumulate(magnitude)
    strict = fault_model.p_cim == 0
    return (pos.read_values(strict=strict).astype(np.int64)
            - neg.read_values(strict=strict).astype(np.int64))
