"""Additional tensor-style operations (paper Sec. 5.2.4).

* **shift-left** -- ``c << i`` by adding the counter vector to itself
  ``i`` times (each self-add doubles);
* **ReLU** -- sign check on the pos/neg accumulator pair (the paper's
  ``O_sign`` probe);
* **vector addition** -- Algorithm 2 executed fully in memory: the 2n
  unit-increment masks are *derived from the source counter's bit rows
  with CIM OR/AND ops*, then drive masked unit increments of the
  destination counters.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.addition import add_counter_arrays
from repro.core.counter import CounterArray
from repro.engine.machine import CountingEngine
from repro.isa.microprogram import MicroProgram, aap, ap
from repro.isa.templates import kary_increment_program

__all__ = ["shift_left", "relu", "engine_vector_add"]


def shift_left(counter: CounterArray, amount: int) -> CounterArray:
    """``c << amount`` via repeated self-addition (Sec. 5.2.4).

    Each round adds the counter vector to a snapshot of itself, doubling
    every lane; ``amount`` rounds multiply by ``2^amount``.
    """
    if amount < 0:
        raise ValueError("shift amount must be non-negative")
    for _ in range(amount):
        snapshot = CounterArray(counter.n_bits, counter.n_digits,
                                counter.n_lanes, wrap=counter.wrap)
        snapshot.set_totals(counter.totals())
        add_counter_arrays(counter, snapshot)
    return counter


def relu(pos_totals: np.ndarray, neg_totals: np.ndarray) -> np.ndarray:
    """ReLU over a signed pos/neg accumulator pair.

    ``relu(y) = pos - neg`` where negative lanes clamp to zero -- the
    in-memory equivalent probes ``O_sign``; host-side this is the final
    comparison at read-out.
    """
    y = np.asarray(pos_totals, dtype=np.int64) - np.asarray(
        neg_totals, dtype=np.int64)
    return np.maximum(y, 0)


def _mask_or_ops(a_row, b_row, out_row) -> List:
    """out <- a OR b (staged TRA through B11)."""
    return [aap(a_row, "B0"), aap("C1", "B1"), aap(b_row, "B4"),
            ap("B11"), aap("B0", out_row)]


def _mask_andnot_ops(a_row, b_row, out_row) -> List:
    """out <- NOT a AND b."""
    return [aap(b_row, "B0"), aap("C0", "B1"), aap(a_row, "B5"),
            ap("B11"), aap("B0", out_row)]


def engine_vector_add(dst: CountingEngine, src: CountingEngine,
                      digit: int = 0) -> int:
    """In-memory Algorithm 2: add ``src``'s digit into ``dst``'s digit.

    Both engines must have the same lane count and digit width; ``src``
    must be carry-free.  The mask cascade is computed with CIM ops inside
    ``dst``'s subarray after copying ``src``'s bit rows over (RowClone
    across subarrays); each of the ``2n`` masks drives one masked unit
    increment.  Returns the number of unit increments issued.
    """
    if dst.n_bits != src.n_bits or dst.n_lanes != src.n_lanes:
        raise ValueError("engine geometry mismatch")
    n = dst.n_bits
    lay = dst.layout
    if len(lay.mask_rows) < 1:
        raise ValueError("destination engine needs a mask row")
    mask_row = lay.mask_rows[0]
    theta_row = lay.onext_snapshot_row     # reuse as Θ scratch
    src_rows = src.subarray.read_rows(src.layout.digit_bit_rows[digit])

    # Stage src's bit rows into dst's scratch (inter-subarray RowClone).
    bit_copy_rows = lay.scratch_rows[:n]
    for i, row in enumerate(bit_copy_rows):
        dst.subarray.write_data_row(row, src_rows[i])

    increments = 0
    # Pass 1 (MSB -> LSB): theta starts as the MSB; mask = b OR theta.
    ops = [aap(bit_copy_rows[n - 1], theta_row)]
    MicroProgram("theta_init", tuple(ops)).run(dst.subarray)
    for i in range(n - 1, -1, -1):
        MicroProgram("mask_or", tuple(
            _mask_or_ops(bit_copy_rows[i], theta_row, mask_row)
            + [aap(mask_row, theta_row)])).run(dst.subarray)
        _unit_increment(dst, digit, mask_row)
        increments += 1
    # Pass 2 (LSB -> MSB): mask = NOT b AND theta (cascading).
    for i in range(n):
        MicroProgram("mask_andnot", tuple(
            _mask_andnot_ops(bit_copy_rows[i], theta_row, mask_row)
            + [aap(mask_row, theta_row)])).run(dst.subarray)
        _unit_increment(dst, digit, mask_row)
        increments += 1
    return increments


def _unit_increment(engine: CountingEngine, digit: int,
                    mask_row: int) -> None:
    """Masked +1 on one digit, with overflow into its O_next row.

    The scratch pool holds the copied source bits during Algorithm 2, so
    the unit increment's single cycle save uses the layout's spare row.
    """
    lay = engine.layout
    prog = kary_increment_program(
        lay.digit_bit_rows[digit], mask_row, 1, [lay.aux_row],
        lay.onext_rows[digit])
    prog.run(engine.subarray)
