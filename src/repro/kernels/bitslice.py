"""Integer-integer multiplication via CSD bit-slicing (paper Sec. 5.2.3).

A p-bit integer matrix Z is decomposed into **canonical signed digit**
(CSD) form: each value becomes a sum of ``±2^j`` terms with no two
adjacent non-zeros, so at most ``ceil(p/2) + 1`` terms and, matrix-wide,
one binary mask per (power, sign) pair -- the paper's
``2(p-1)`` signed / ``p`` unsigned bit-slice bound.  Each slice is a
mask row; the host scales the broadcast input by the slice's power of
two with a shift (no multiplier needed) and accumulates into the same
counters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.dram.faults import FAULT_FREE, FaultModel
from repro.kernels.gemv import ternary_gemv

__all__ = ["csd_digits", "csd_slices", "bitsliced_gemv", "bitsliced_gemm"]


def csd_digits(value: int, max_bits: int = 16) -> List[int]:
    """Canonical signed-digit decomposition, LSB first, digits in {-1,0,1}.

    The classic recoding: scan LSB to MSB; a run of ones ``0111...1``
    becomes ``100...0-1`` (Avizienis [37]).  Guarantees no two adjacent
    non-zero digits.

    >>> csd_digits(7)      # 8 - 1
    [-1, 0, 0, 1]
    """
    v = int(value)
    if abs(v) >= (1 << max_bits):
        raise ValueError(f"|{value}| needs more than {max_bits} bits")
    digits: List[int] = []
    while v != 0:
        if v & 1:
            # Choose the digit that makes the remainder divisible by 4.
            d = 2 - (v & 3)  # v mod 4 == 1 -> +1 ; v mod 4 == 3 -> -1
            digits.append(d)
            v -= d
        else:
            digits.append(0)
        v >>= 1
    return digits or [0]


@dataclass(frozen=True)
class CSDSlice:
    """One bit-slice of an integer matrix: ``sign * 2^power * mask``."""

    power: int
    sign: int
    mask: np.ndarray  # binary [K, N]


def csd_slices(z: np.ndarray, max_bits: int = 16) -> List[CSDSlice]:
    """Decompose an integer matrix into CSD bit-slice masks.

    Returns one slice per (power, sign) with a non-empty mask; the sum
    ``sum_s sign_s * 2^power_s * mask_s`` reconstructs Z exactly.
    """
    z = np.asarray(z, dtype=np.int64)
    digit_planes: dict = {}
    it = np.nditer(z, flags=["multi_index"])
    for val in it:
        for power, d in enumerate(csd_digits(int(val), max_bits)):
            if d == 0:
                continue
            key = (power, d)
            if key not in digit_planes:
                digit_planes[key] = np.zeros(z.shape, dtype=np.uint8)
            digit_planes[key][it.multi_index] = 1
    return [CSDSlice(power=p, sign=s, mask=m)
            for (p, s), m in sorted(digit_planes.items())]


def bitsliced_gemv(x: np.ndarray, z: np.ndarray, n_bits: int = 2,
                   max_bits: int = 16,
                   fault_model: FaultModel = FAULT_FREE,
                   fr_checks: int = 0,
                   backend: str = "fast") -> np.ndarray:
    """``y = x @ z`` for signed integer x *and* signed integer z.

    Every CSD slice contributes ``sign * (x << power) @ mask``; the
    shifted inputs ride the same ternary accumulation machinery (and
    its word-parallel fast backend), so the counters never see a
    multiplier.
    """
    x = np.asarray(x, dtype=np.int64)
    z = np.asarray(z, dtype=np.int64)
    total = np.zeros(z.shape[1], dtype=np.int64)
    for sl in csd_slices(z, max_bits):
        scaled = (x << sl.power) * sl.sign
        total += ternary_gemv(scaled, sl.mask.astype(np.int8),
                              n_bits=n_bits, fault_model=fault_model,
                              fr_checks=fr_checks, backend=backend)
    return total


def bitsliced_gemm(x: np.ndarray, z: np.ndarray, n_bits: int = 2,
                   max_bits: int = 16,
                   fault_model: FaultModel = FAULT_FREE,
                   backend: str = "fast") -> np.ndarray:
    """``Y = X @ Z`` for signed integer matrices via CSD slices."""
    x = np.asarray(x, dtype=np.int64)
    rows = [bitsliced_gemv(x[o], z, n_bits=n_bits, max_bits=max_bits,
                           fault_model=fault_model, backend=backend)
            for o in range(x.shape[0])]
    return np.stack(rows)
