"""Kernels accelerated by Count2Multiply: integer-binary/ternary GEMV and
GEMM, CSD bit-sliced integer-integer products, and tensor ops."""

from repro.kernels.bitslice import (bitsliced_gemm, bitsliced_gemv,
                                    csd_digits, csd_slices)
from repro.kernels.gemm import binary_gemm, ternary_gemm
from repro.kernels.gemv import binary_gemv, required_digits, ternary_gemv
from repro.kernels.ops import engine_vector_add, relu, shift_left

__all__ = [
    "bitsliced_gemm", "bitsliced_gemv", "csd_digits", "csd_slices",
    "binary_gemm", "ternary_gemm",
    "binary_gemv", "required_digits", "ternary_gemv",
    "engine_vector_add", "relu", "shift_left",
]
