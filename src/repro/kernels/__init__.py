"""Kernels accelerated by Count2Multiply: integer-binary/ternary GEMV and
GEMM, CSD bit-sliced integer-integer products, and tensor ops.

The GEMV/GEMM entry points are one-shot wrappers over the session API in
:mod:`repro.device`; :mod:`repro.kernels.lowering` holds the shared
lowering vocabulary (update builders, digit sizing, cluster sizing) both
layers use.
"""

from repro.kernels.bitslice import (bitsliced_gemm, bitsliced_gemv,
                                    csd_digits, csd_slices)
from repro.kernels.gemm import binary_gemm, ternary_gemm
from repro.kernels.gemv import binary_gemv, ternary_gemv
from repro.kernels.lowering import (DEFAULT_BANKS, binary_updates,
                                    required_digits, ternary_updates)
from repro.kernels.ops import engine_vector_add, relu, shift_left

__all__ = [
    "bitsliced_gemm", "bitsliced_gemv", "csd_digits", "csd_slices",
    "binary_gemm", "ternary_gemm",
    "binary_gemv", "required_digits", "ternary_gemv",
    "DEFAULT_BANKS", "binary_updates", "ternary_updates",
    "engine_vector_add", "relu", "shift_left",
]
