"""Matrix-matrix products via row-sequential masked accumulation
(paper Sec. 5.2.2).

Each output row ``Y[o, :]`` is an independent masked accumulation
``sum_k X[o, k] * Z[k, :]`` reusing the counter rows: the engine's
counters are read out and reset between output rows, exactly as the
paper describes copying the counter rows out and reusing them, which
avoids duplicating the far larger mask storage for Z.  The fast backend
reuses one :class:`~repro.engine.cluster.BankCluster` the same way --
its bank shards and compiled μProgram cache survive across output rows.
"""

from __future__ import annotations

import numpy as np

from repro.dram.faults import FAULT_FREE, FaultModel
from repro.engine.machine import CountingEngine
from repro.kernels.gemv import (_cluster_for, binary_gemv, binary_updates,
                                required_digits, ternary_gemv,
                                ternary_updates)

__all__ = ["binary_gemm", "ternary_gemm"]


def binary_gemm(x: np.ndarray, z: np.ndarray, n_bits: int = 2,
                fault_model: FaultModel = FAULT_FREE,
                fr_checks: int = 0,
                backend: str = "fast") -> np.ndarray:
    """``Y = X @ Z`` with non-negative integer X [M, K], binary Z [K, N].

    Reuses one counting engine (or one bank cluster on the fast path)
    across output rows: counter rows are reset, masks rebroadcast per k
    as in :func:`~repro.kernels.gemv.binary_gemv`.

    >>> import numpy as np
    >>> binary_gemm(np.array([[1, 2], [0, 3]]),
    ...             np.array([[1, 1], [0, 1]]))
    array([[1, 3],
           [0, 3]])
    """
    x = np.asarray(x, dtype=np.int64)
    z = np.asarray(z, dtype=np.uint8)
    if x.ndim != 2 or z.ndim != 2 or x.shape[1] != z.shape[0]:
        raise ValueError("shape mismatch: x [M, K], z [K, N]")
    if (x < 0).any():
        raise ValueError("binary_gemm expects non-negative inputs; use "
                         "ternary_gemm for signed streams")
    m, _ = x.shape
    n = z.shape[1]
    digits = required_digits(n_bits, x.flatten())
    out = np.zeros((m, n), dtype=np.int64)
    strict = fault_model.p_cim == 0

    if CountingEngine.normalize_backend(backend) == "word":
        cluster = _cluster_for(x.shape[1], n_bits, digits, n,
                               fault_model, fr_checks)
        for o in range(m):
            cluster.reset()
            cluster.dispatch(binary_updates(x[o], z))
            out[o] = cluster.read_reduced(strict=strict)
        return out

    engine = CountingEngine(n_bits, digits, n, fault_model=fault_model,
                            fr_checks=fr_checks, backend=backend)
    for o in range(m):
        out[o] = binary_gemv(x[o], z, n_bits=n_bits,
                             fault_model=fault_model,
                             fr_checks=fr_checks, engine=engine)
    return out


def ternary_gemm(x: np.ndarray, z: np.ndarray, n_bits: int = 2,
                 fault_model: FaultModel = FAULT_FREE,
                 fr_checks: int = 0,
                 backend: str = "fast") -> np.ndarray:
    """``Y = X @ Z`` with signed integer X [M, K] and ternary Z [K, N].

    >>> import numpy as np
    >>> ternary_gemm(np.array([[2, -1]]),
    ...              np.array([[1, -1], [1, 1]], dtype=np.int8))
    array([[ 1, -3]])
    """
    x = np.asarray(x, dtype=np.int64)
    if x.ndim != 2:
        raise ValueError("x must be [M, K]")
    z = np.asarray(z, dtype=np.int8)
    if z.ndim != 2 or x.shape[1] != z.shape[0]:
        raise ValueError("shape mismatch: x [M, K], z [K, N]")
    if not np.isin(z, (-1, 0, 1)).all():
        raise ValueError("z must be ternary (-1/0/1)")
    n = z.shape[1]
    strict = fault_model.p_cim == 0

    if CountingEngine.normalize_backend(backend) == "word":
        digits = required_digits(n_bits, x.flatten())
        cluster = _cluster_for(x.shape[1], n_bits, digits, 2 * n,
                               fault_model, fr_checks)
        out = np.zeros((x.shape[0], n), dtype=np.int64)
        for o in range(x.shape[0]):
            cluster.reset()
            cluster.dispatch(ternary_updates(x[o], z))
            halves = cluster.read_reduced(strict=strict).reshape(2, n)
            out[o] = halves[0] - halves[1]
        return out

    rows = [ternary_gemv(x[o], z, n_bits=n_bits, fault_model=fault_model,
                         fr_checks=fr_checks, backend=backend)
            for o in range(x.shape[0])]
    return np.stack(rows)
