"""Matrix-matrix products via row-sequential masked accumulation
(paper Sec. 5.2.2).

Each output row ``Y[o, :]`` is an independent masked accumulation
``sum_k X[o, k] * Z[k, :]`` reusing the counter rows: the engine's
counters are read out and reset between output rows, exactly as the
paper describes copying the counter rows out and reusing them, which
avoids duplicating the far larger mask storage for Z.
"""

from __future__ import annotations

import numpy as np

from repro.dram.faults import FAULT_FREE, FaultModel
from repro.engine.machine import CountingEngine
from repro.kernels.gemv import binary_gemv, required_digits, ternary_gemv

__all__ = ["binary_gemm", "ternary_gemm"]


def binary_gemm(x: np.ndarray, z: np.ndarray, n_bits: int = 2,
                fault_model: FaultModel = FAULT_FREE,
                fr_checks: int = 0) -> np.ndarray:
    """``Y = X @ Z`` with non-negative integer X [M, K], binary Z [K, N].

    Reuses one counting engine across output rows (counter rows are
    reset, masks rebroadcast per k as in :func:`binary_gemv`).
    """
    x = np.asarray(x, dtype=np.int64)
    z = np.asarray(z, dtype=np.uint8)
    if x.ndim != 2 or z.ndim != 2 or x.shape[1] != z.shape[0]:
        raise ValueError("shape mismatch: x [M, K], z [K, N]")
    m, _ = x.shape
    n = z.shape[1]
    digits = required_digits(n_bits, x.flatten())
    engine = CountingEngine(n_bits, digits, n, fault_model=fault_model,
                            fr_checks=fr_checks)
    out = np.zeros((m, n), dtype=np.int64)
    for o in range(m):
        out[o] = binary_gemv(x[o], z, n_bits=n_bits,
                             fault_model=fault_model,
                             fr_checks=fr_checks, engine=engine)
    return out


def ternary_gemm(x: np.ndarray, z: np.ndarray, n_bits: int = 2,
                 fault_model: FaultModel = FAULT_FREE,
                 fr_checks: int = 0) -> np.ndarray:
    """``Y = X @ Z`` with signed integer X [M, K] and ternary Z [K, N]."""
    x = np.asarray(x, dtype=np.int64)
    if x.ndim != 2:
        raise ValueError("x must be [M, K]")
    rows = [ternary_gemv(x[o], z, n_bits=n_bits, fault_model=fault_model,
                         fr_checks=fr_checks) for o in range(x.shape[0])]
    return np.stack(rows)
