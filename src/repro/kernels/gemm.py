"""Matrix-matrix products via row-sequential masked accumulation
(paper Sec. 5.2.2).

Each output row ``Y[o, :]`` is an independent masked accumulation
``sum_k X[o, k] * Z[k, :]`` reusing the counter rows: counters are read
out and reset between output rows, exactly as the paper describes
copying the counter rows out and reusing them, which avoids duplicating
the far larger mask storage for Z.  These one-shot entry points wrap a
single-use :class:`~repro.device.GemmPlan`: Z is planted once, the
output rows stream through ``plan.run_many`` (batched across bank
shards on the fast backend), and compiled μPrograms are shared by every
row.  Long-lived traffic should hold its own plan via
:meth:`repro.device.Device.plan_gemm`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.dram.faults import FAULT_FREE, FaultModel
from repro.engine.machine import CountingEngine
from repro.kernels.lowering import DEFAULT_BANKS

__all__ = ["binary_gemm", "ternary_gemm"]


def _one_shot_gemm(x: np.ndarray, z: np.ndarray, kind: str, n_bits: int,
                   fault_model: FaultModel, fr_checks: int,
                   backend: Optional[str]) -> np.ndarray:
    from repro.device import Device, EngineConfig
    resolved = CountingEngine.normalize_backend(backend or "fast")
    nnz = int(max(1, np.count_nonzero(x, axis=1).max(initial=1)))
    row_budget = int(np.abs(x).sum(axis=1).max(initial=0))
    config = EngineConfig(n_bits=n_bits, fault_model=fault_model,
                          fr_checks=fr_checks, backend=resolved,
                          n_banks=min(DEFAULT_BANKS, nnz))
    with Device(config) as dev:
        plan = dev.plan_gemm(z, kind=kind, x_budget=row_budget)
        return plan(x)


def binary_gemm(x: np.ndarray, z: np.ndarray, n_bits: int = 2,
                fault_model: FaultModel = FAULT_FREE,
                fr_checks: int = 0,
                backend: Optional[str] = None) -> np.ndarray:
    """``Y = X @ Z`` with non-negative integer X [M, K], binary Z [K, N].

    Plants Z once and streams the output rows through one plan: masks
    stay resident, counter rows are reset per row, and the fast backend
    deals rows across bank-shard slots so same-value updates from
    different rows share a broadcast.

    >>> import numpy as np
    >>> binary_gemm(np.array([[1, 2], [0, 3]]),
    ...             np.array([[1, 1], [0, 1]]))
    array([[1, 3],
           [0, 3]])
    """
    x = np.asarray(x, dtype=np.int64)
    z = np.asarray(z, dtype=np.uint8)
    if x.ndim != 2 or z.ndim != 2 or x.shape[1] != z.shape[0]:
        raise ValueError("shape mismatch: x [M, K], z [K, N]")
    if (x < 0).any():
        raise ValueError("binary_gemm expects non-negative inputs; use "
                         "ternary_gemm for signed streams")
    return _one_shot_gemm(x, z, "binary", n_bits, fault_model, fr_checks,
                          backend)


def ternary_gemm(x: np.ndarray, z: np.ndarray, n_bits: int = 2,
                 fault_model: FaultModel = FAULT_FREE,
                 fr_checks: int = 0,
                 backend: Optional[str] = None) -> np.ndarray:
    """``Y = X @ Z`` with signed integer X [M, K] and ternary Z [K, N].

    >>> import numpy as np
    >>> ternary_gemm(np.array([[2, -1]]),
    ...              np.array([[1, -1], [1, 1]], dtype=np.int8))
    array([[ 1, -3]])
    """
    x = np.asarray(x, dtype=np.int64)
    if x.ndim != 2:
        raise ValueError("x must be [M, K]")
    z = np.asarray(z, dtype=np.int8)
    if z.ndim != 2 or x.shape[1] != z.shape[0]:
        raise ValueError("shape mismatch: x [M, K], z [K, N]")
    if not np.isin(z, (-1, 0, 1)).all():
        raise ValueError("z must be ternary (-1/0/1)")
    return _one_shot_gemm(x, z, "ternary", n_bits, fault_model, fr_checks,
                          backend)
