"""Shared GEMV/GEMM lowering helpers (paper Secs. 5.1-5.2).

Both kernel modules and the session layer (:mod:`repro.device`) lower a
matrix product to the same vocabulary: a list of ``(value, mask)``
masked accumulations, a digit budget covering the worst-case dot
product, and a :class:`~repro.engine.cluster.BankCluster` sized to the
batch.  This module owns that vocabulary so ``gemm.py`` / ``device.py``
no longer reach into ``gemv.py`` internals.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.iarm import BaseScheduler
from repro.dram.faults import FAULT_FREE, FaultModel
from repro.engine.cluster import BankCluster

__all__ = ["DEFAULT_BANKS", "required_digits", "cluster_for",
           "binary_updates", "infer_kind", "ternary_updates",
           "ternary_row_masks"]

#: Bank shards a kernel-built cluster spreads its waves over.
DEFAULT_BANKS = 8


def required_digits(n_bits: int, x) -> int:
    """Digits needed to accumulate the worst-case dot product of ``x``.

    The worst case is the all-ones mask column: every ``|x[k]|`` lands on
    the same counter, so the counter must represent ``sum(|x|)``.  A
    D-digit radix-``2n`` counter holds the ``(2n)**D`` values ``0 ..
    (2n)**D - 1``; the ``+ 1`` below converts the largest value the
    counter must *reach* into the number of states it must *have*, i.e.
    we need ``(2n)**D >= sum(|x|) + 1``.

    An all-zero (or empty) ``x`` accumulates nothing; one digit already
    represents the 0 result, and the early return keeps the search loop
    away from the degenerate ``worst == 1`` bound.

    >>> required_digits(2, [3, 4, 8])        # sum 15 -> 4**2 = 16 states
    2
    >>> required_digits(2, [0, 0])           # all-zero input edge case
    1
    >>> required_digits(2, [-8, 7])          # signed: magnitudes count
    2
    """
    total = int(np.abs(np.asarray(x)).astype(np.int64).sum())
    return digits_for_budget(n_bits, total)


def digits_for_budget(n_bits: int, budget: int) -> int:
    """Digits whose capacity covers an accumulation budget of ``budget``.

    ``budget`` is the largest total any single counter may reach (an L1
    bound on the input stream); the session layer sizes plans from it.

    >>> digits_for_budget(2, 15), digits_for_budget(2, 16)
    (2, 3)
    >>> digits_for_budget(2, 0)
    1
    """
    if budget < 0:
        raise ValueError("accumulation budget must be non-negative")
    if budget == 0:
        return 1
    radix = 2 * n_bits
    d = 1
    while radix ** d < budget + 1:
        d += 1
    return d


def cluster_for(n_updates: int, n_bits: int, n_digits: int, lanes: int,
                fault_model: FaultModel = FAULT_FREE, fr_checks: int = 0,
                n_banks: int = DEFAULT_BANKS,
                scheduler: Optional[BaseScheduler] = None) -> BankCluster:
    """Size a cluster to a batch: never more banks than updates."""
    return BankCluster(n_bits, n_digits, lanes,
                       n_banks=max(1, min(n_banks, n_updates)),
                       fault_model=fault_model, fr_checks=fr_checks,
                       scheduler=scheduler)


def infer_kind(z: np.ndarray, unsigned: bool = False) -> Tuple[str, bool]:
    """Infer a plan kind from Z's entries: ``(kind, ambiguous)``.

    A ``-1`` entry pins the matrix as ternary.  Without one, every
    entry sits in {0, 1} and *both* kinds lower it correctly -- but the
    choice is observable the moment a signed input streams against it
    (binary plans reject negative inputs), so the inference is flagged
    as ambiguous and the session layer warns unless the caller passed
    ``kind=`` explicitly.  Entries outside {-1, 0, 1} resolve to
    ``"ternary"`` so plan validation reports the range error.

    ``unsigned=True`` declares the *input stream* pure non-negative
    (unsigned counts), which is exactly the contract a binary plan
    enforces -- so a {0, 1} matrix resolves to ``"binary"``
    *unambiguously*.  This is the analytics seam: histogram bucket
    masks are one-hot {0, 1} matrices accumulating count streams, and
    must not trip :class:`~repro.device.AmbiguousKindWarning`.  A
    matrix with ``-1`` entries stays ternary regardless (the flag
    describes the inputs, not the matrix).

    >>> infer_kind(np.array([[1, -1]]))
    ('ternary', False)
    >>> infer_kind(np.array([[1, 0]]))          # no -1: could be either
    ('binary', True)
    >>> infer_kind(np.zeros((2, 2)))
    ('binary', True)
    >>> infer_kind(np.eye(3), unsigned=True)    # one-hot bucket masks
    ('binary', False)
    >>> infer_kind(np.array([[1, -1]]), unsigned=True)
    ('ternary', False)
    """
    z = np.asarray(z)
    if np.isin(z, (0, 1)).all():
        return "binary", not unsigned
    return "ternary", False


def binary_updates(x: np.ndarray, z: np.ndarray) -> List[Tuple[int, np.ndarray]]:
    """``(value, mask)`` pairs of a binary GEMV, zero rows skipped."""
    return [(int(x[i]), z[i]) for i in range(x.size) if x[i] != 0]


def ternary_row_masks(z: np.ndarray) -> np.ndarray:
    """Both wide-mask orientations of every ternary row, ``[K, 2, 2N]``.

    ``masks[i, 0]`` is the positive-input orientation ``[z==+1 | z==-1]``
    and ``masks[i, 1]`` the sign-swapped one, so a planted matrix answers
    any signed input by row indexing alone (the plan layer's resident
    form of Z).
    """
    plus = (z == 1).astype(np.uint8)
    minus = (z == -1).astype(np.uint8)
    return np.stack([np.concatenate([plus, minus], axis=1),
                     np.concatenate([minus, plus], axis=1)],
                    axis=1)


def ternary_updates(x: np.ndarray, z: np.ndarray) -> List[Tuple[int, np.ndarray]]:
    """``(|value|, [up-mask | down-mask])`` pairs of a ternary GEMV.

    The sign of ``x[k]`` is folded into the mask choice: positive inputs
    route ``z == +1`` lanes to the up half and ``z == -1`` lanes to the
    down half, negative inputs swap the halves, so both halves only ever
    count upward (Sec. 5.1).
    """
    masks = ternary_row_masks(np.asarray(z))
    return [(int(abs(x[i])), masks[i, 0 if x[i] > 0 else 1])
            for i in range(x.size) if x[i] != 0]
