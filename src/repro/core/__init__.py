"""Core Count2Multiply algorithms: Johnson-counter algebra, multi-digit
counters with deferred carries, k-ary increment planning, IARM scheduling,
counter addition, and analytical op-count models."""

from repro.core.addition import add_counter_arrays, addition_masks
from repro.core.counter import CapacityError, CounterArray, PendingOverflowError
from repro.core.iarm import (CarryResolve, IARMScheduler, Increment,
                             NaiveKaryScheduler, UnitScheduler, apply_events,
                             schedule_stream)
from repro.core.johnson import (all_states, decode, decode_lanes, encode,
                                encode_lanes, is_valid, step,
                                transition_pattern)
from repro.core.kary import DigitStep, fig7_patterns, value_steps

__all__ = [
    "add_counter_arrays", "addition_masks",
    "CapacityError", "CounterArray", "PendingOverflowError",
    "CarryResolve", "IARMScheduler", "Increment", "NaiveKaryScheduler",
    "UnitScheduler", "apply_events", "schedule_stream",
    "all_states", "decode", "decode_lanes", "encode", "encode_lanes",
    "is_valid", "step", "transition_pattern",
    "DigitStep", "fig7_patterns", "value_steps",
]
