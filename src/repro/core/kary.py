"""Host-side planning of k-ary increments (paper Sec. 4.5.1, Fig. 7).

The host CPU unpacks each input value into base-``2n`` digits and emits one
k-ary increment per *non-zero* digit (Sec. 5.1 step 2).  This module builds
those plans and renders the Fig. 7 transition-pattern table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.johnson import TransitionPattern, transition_pattern
from repro.util import digits_of

__all__ = ["DigitStep", "value_steps", "steps_per_value",
           "fig7_patterns", "render_fig7_row"]


@dataclass(frozen=True)
class DigitStep:
    """A single k-ary increment of one counter digit.

    ``k`` is signed: negative steps are decrements (backward shift with
    inverted feed-forward).
    """

    digit: int
    k: int


def value_steps(value: int, radix: int, n_digits: int = None) -> List[DigitStep]:
    """Decompose ``value`` into the k-ary steps the MCU broadcasts.

    Only non-zero digits produce steps (zero-skipping, Sec. 7.2.3), least
    significant digit first.  Negative values yield negative ``k``.

    >>> value_steps(45, 10)
    [DigitStep(digit=0, k=5), DigitStep(digit=1, k=4)]
    """
    sign = -1 if value < 0 else 1
    digits = digits_of(abs(int(value)), radix, n_digits)
    return [DigitStep(digit=d, k=sign * dv)
            for d, dv in enumerate(digits) if dv != 0]


def steps_per_value(value: int, radix: int) -> int:
    """Number of k-ary increments an input value triggers (nnz digits)."""
    return len(value_steps(value, radix))


def fig7_patterns(n_bits: int) -> Dict[int, TransitionPattern]:
    """All increment patterns ``+1 .. +(2n-1)`` for an n-bit JC (Fig. 7)."""
    return {k: transition_pattern(n_bits, k)
            for k in range(1, 2 * n_bits)}


def render_fig7_row(n_bits: int, k: int) -> List[Tuple[str, str, bool]]:
    """Render one Fig. 7 panel as ``(dst_label, src_label, inverted)`` rows.

    Bit index 0 is labelled ``LSB``, index ``n-1`` ``MSB`` and intermediate
    bits ``LSB+i``, matching the figure's axis labels.
    """
    def label(i: int) -> str:
        if i == 0:
            return "LSB"
        if i == n_bits - 1:
            return "MSB"
        return f"LSB+{i}"

    pattern = transition_pattern(n_bits, k)
    return [(label(a.dst), label(a.src), a.inverted)
            for a in pattern.assignments]
