"""Multi-digit high-radix counter golden model (paper Sec. 4.4).

:class:`CounterArray` models a *vector* of D-digit radix-``2n`` counters --
one per lane -- with the exact semantics the in-memory implementation
provides:

* each digit is a Johnson counter holding a value in ``[0, 2n - 1]``;
* each digit carries a pending-overflow flag ``O_next`` (`+1`) or pending
  underflow (`-1`, the ``O_sign`` row of Sec. 4.4), which extends the
  digit's effective range to ``4n - 1`` (Sec. 4.5.2);
* a digit with a pending flag **cannot** absorb a second wrap until the
  flag is resolved into the next digit -- attempting to do so raises
  :class:`PendingOverflowError`.  The IARM scheduler exists precisely to
  issue resolutions before this can happen.

The gate-level engine (``repro.engine``) is validated against this model.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.util import check_positive, digits_of

__all__ = ["PendingOverflowError", "CapacityError", "CounterArray"]


class PendingOverflowError(RuntimeError):
    """A digit wrapped while its O_next flag was already set.

    In hardware this would silently lose a carry; the golden model makes
    it a hard error so schedulers are forced to resolve in time.
    """


class CapacityError(RuntimeError):
    """The most significant digit overflowed (counter capacity exceeded)."""


class CounterArray:
    """Vector of multi-digit Johnson counters with deferred carries.

    Parameters
    ----------
    n_bits:
        Bits per Johnson digit; the digit radix is ``2 * n_bits``.
    n_digits:
        Number of digits per counter (LSD first).
    n_lanes:
        Number of independent counters (columns in the subarray).
    wrap:
        If True, overflow out of the MSD wraps silently (modular
        arithmetic); if False it raises :class:`CapacityError`.
    """

    def __init__(self, n_bits: int, n_digits: int, n_lanes: int,
                 wrap: bool = False):
        self.n_bits = check_positive(n_bits, "n_bits")
        self.n_digits = check_positive(n_digits, "n_digits")
        self.n_lanes = check_positive(n_lanes, "n_lanes")
        self.radix = 2 * self.n_bits
        self.wrap = bool(wrap)
        self.values = np.zeros((self.n_digits, self.n_lanes), dtype=np.int64)
        self.pending = np.zeros((self.n_digits, self.n_lanes), dtype=np.int8)

    # ------------------------------------------------------------------
    # capacity helpers
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        """Largest representable value + 1 (``radix ** n_digits``)."""
        return self.radix ** self.n_digits

    @classmethod
    def for_capacity(cls, n_bits: int, capacity: int, n_lanes: int,
                     wrap: bool = False) -> "CounterArray":
        """Build a counter array sized to hold values up to ``capacity``.

        Mirrors the paper's sizing rule (footnote 4): add digits until
        ``(2n)**D >= capacity``.
        """
        radix = 2 * n_bits
        n_digits = 1
        while radix ** n_digits < capacity:
            n_digits += 1
        return cls(n_bits, n_digits, n_lanes, wrap=wrap)

    # ------------------------------------------------------------------
    # state access
    # ------------------------------------------------------------------
    def _full_mask(self, mask) -> np.ndarray:
        if mask is None:
            return np.ones(self.n_lanes, dtype=bool)
        mask = np.asarray(mask).astype(bool)
        if mask.shape != (self.n_lanes,):
            raise ValueError(
                f"mask shape {mask.shape} != ({self.n_lanes},)")
        return mask

    def totals(self) -> List[int]:
        """Reconstruct each lane's exact value (including pending flags).

        Returned as Python ints because 64-bit-capacity counters overflow
        int64 at the top of their range.
        """
        out = []
        for lane in range(self.n_lanes):
            total = 0
            weight = 1
            for d in range(self.n_digits):
                total += int(self.values[d, lane]) * weight
                # A pending flag on digit d is worth one unit of digit d+1.
                total += int(self.pending[d, lane]) * weight * self.radix
                weight *= self.radix
            out.append(total)
        return out

    def set_totals(self, totals: Sequence[int]) -> None:
        """Load exact values (clears pending flags)."""
        if len(totals) != self.n_lanes:
            raise ValueError("totals length must equal n_lanes")
        self.pending[:] = 0
        for lane, t in enumerate(totals):
            t = int(t)
            if not 0 <= t < self.capacity:
                raise ValueError(f"value {t} out of range for capacity "
                                 f"{self.capacity}")
            for d, digit in enumerate(digits_of(t, self.radix,
                                                self.n_digits)):
                self.values[d, lane] = digit

    # ------------------------------------------------------------------
    # digit-level operations (what the hardware μPrograms implement)
    # ------------------------------------------------------------------
    def increment_digit(self, digit: int, k: int,
                        mask: Optional[np.ndarray] = None) -> np.ndarray:
        """k-ary step on one digit of every masked lane.

        ``k`` may be negative (decrement).  Returns the boolean lane vector
        of wraps that occurred (new pending flags).  Raises
        :class:`PendingOverflowError` if a wrap hits a digit whose flag is
        already set in the same direction, and :class:`CapacityError` on
        MSD wraps when ``wrap=False``.
        """
        if not -(self.radix - 1) <= k <= self.radix - 1:
            raise ValueError(f"|k| must be < radix ({self.radix}), got {k}")
        mask = self._full_mask(mask)
        if k == 0:
            return np.zeros(self.n_lanes, dtype=bool)
        raw = self.values[digit] + k
        wrapped_up = mask & (raw >= self.radix)
        wrapped_dn = mask & (raw < 0)
        wrapped = wrapped_up | wrapped_dn
        direction = 1 if k > 0 else -1

        same_dir_pending = wrapped & (self.pending[digit] == direction)
        if same_dir_pending.any():
            raise PendingOverflowError(
                f"digit {digit} wrapped twice without carry resolution in "
                f"{int(same_dir_pending.sum())} lane(s)")
        if digit == self.n_digits - 1 and wrapped.any() and not self.wrap:
            raise CapacityError("most significant digit overflowed")

        self.values[digit][mask] = raw[mask] % self.radix
        if digit < self.n_digits - 1:
            # Opposite-direction pendings cancel; fresh wraps set the flag.
            self.pending[digit][wrapped] += direction
        return wrapped

    def resolve_digit(self, digit: int) -> np.ndarray:
        """Ripple digit ``digit``'s pending flags into digit ``digit + 1``.

        This is the "digit-wise carry ripple" of footnote 3: a unit
        increment of the next digit using O_next as the mask.  Returns the
        lanes whose flag was consumed.  The target digit may itself wrap;
        callers that need a fully-resolved counter use
        :meth:`resolve_all`.
        """
        if digit >= self.n_digits - 1:
            raise ValueError("MSD has no higher digit to ripple into")
        for direction in (+1, -1):
            lanes = self.pending[digit] == direction
            if lanes.any():
                self.increment_digit(digit + 1, direction, mask=lanes)
                self.pending[digit][lanes] = 0
        return self.pending[digit] == 0

    def resolve_all(self) -> None:
        """Resolve every pending flag (read-out barrier).

        Resolves from the most significant digit downward so each ripple
        lands on an already-clean digit; repeats until quiescent because a
        resolution can create a new flag one digit up.
        """
        for _ in range(self.n_digits + 1):
            if not self.pending.any():
                return
            for d in range(self.n_digits - 2, -1, -1):
                if (self.pending[d] != 0).any():
                    self.resolve_digit(d)
        if self.pending.any():  # pragma: no cover - defensive
            raise RuntimeError("carry resolution did not converge")

    # ------------------------------------------------------------------
    # value-level operations (host-side broadcast semantics)
    # ------------------------------------------------------------------
    def add_value(self, value: int, mask: Optional[np.ndarray] = None,
                  policy: str = "ripple") -> None:
        """Accumulate ``value`` into every masked lane.

        ``policy='ripple'`` fully resolves carries after every digit
        increment (the naive baseline of Sec. 4.4/4.5.1); ``policy='defer'``
        leaves pending flags for an external scheduler (IARM) and raises if
        a double-wrap would occur.
        """
        if policy not in ("ripple", "defer"):
            raise ValueError(f"unknown carry policy {policy!r}")
        negative = value < 0
        digits = digits_of(abs(int(value)), self.radix)
        if len(digits) > self.n_digits:
            raise ValueError(f"|value| {value} exceeds counter capacity")
        for d, digit_val in enumerate(digits):
            if digit_val == 0:
                continue
            k = -digit_val if negative else digit_val
            self.increment_digit(d, k, mask=mask)
            if policy == "ripple":
                self.resolve_all()
