"""Analytical CIM operation-count models (paper Secs. 4.2-4.6, 6.3).

All formulas count *memory command sequences* -- ``AAP``/``AP`` for Ambit,
read/logic/write primitives for the NVM backends -- per counter-digit
step.  They are cross-checked in the test suite against the lengths of the
actual executable μPrograms in :mod:`repro.isa.templates`.

Published constants reproduced here:

=====================  =======================================  =========
quantity               formula                                  source
=====================  =======================================  =========
k-ary increment        ``7n + 7``  (7 per bit + save + overflow) Sec. 4.5.1
protected increment    ``13n + 16`` / ``23n + 26`` / ``33n + 36`` Tab. 1
(Ambit, r FR checks)   ``(5r + 3)n + 5r + 6``
Pinatubo counting      ``3n + 4``  (+3 overflow)                 Sec. 4.6
MAGIC (NOR) counting   ``6n + 4``  incl. overflow (optimized)    Sec. 4.6
RCA full adder         ``RCA_OPS_PER_BIT`` per accumulator bit   Sec. 3
=====================  =======================================  =========
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.core.iarm import BaseScheduler, CarryResolve, Event, Increment
from repro.util import check_positive

__all__ = [
    "AMBIT", "PINATUBO", "MAGIC",
    "RCA_OPS_PER_BIT",
    "increment_ops", "protected_increment_ops", "protected_op_formula",
    "rca_add_ops", "event_ops", "schedule_ops",
    "digits_for_capacity", "jc_bits_required", "binary_bits_required",
    "mean_ops_per_value",
]

AMBIT = "ambit"
PINATUBO = "pinatubo"
MAGIC = "magic"

_BACKENDS = (AMBIT, PINATUBO, MAGIC)

#: AAP/AP sequences per bit of a MAJ-based bit-serial full adder
#: (derived from the executable μProgram in ``repro.baselines.rca``:
#: ``u = MAJ(a,b,~c)``, ``v = MAJ(a,b,c)``, ``sum = MAJ(c,u,~v)`` with
#: compute-and-copy fusion -- 12 command sequences per bit).
RCA_OPS_PER_BIT = 12


def _check_backend(backend: str) -> str:
    if backend not in _BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; pick from {_BACKENDS}")
    return backend


def increment_ops(n_bits: int, backend: str = AMBIT,
                  with_overflow: bool = True) -> int:
    """Operations for one (masked, k-ary) increment of an n-bit JC digit.

    The Ambit count is the paper's ``7n + 7``: seven AAP/AP per bit
    position, one setup save of the MSB, and six overflow-detection ops.
    """
    n = check_positive(n_bits, "n_bits")
    _check_backend(backend)
    if backend == AMBIT:
        return 7 * n + 7 if with_overflow else 7 * n + 1
    if backend == PINATUBO:
        return 3 * n + 4 + (3 if with_overflow else 0)
    # MAGIC: 6n + 4 including overflow checking (paper's optimized figure).
    return 6 * n + 4 if with_overflow else 6 * n + 1


def protected_op_formula(n_bits: int, fr_checks: int) -> int:
    """Closed form ``(5r + 3)n + 5r + 6`` for the Tab. 1 Ambit row."""
    n = check_positive(n_bits, "n_bits")
    r = int(fr_checks)
    if r < 1:
        raise ValueError("fr_checks must be >= 1")
    return (5 * r + 3) * n + 5 * r + 6


def protected_increment_ops(n_bits: int, fr_checks: int = 2) -> int:
    """Ops per increment with the ECC protection scheme of Sec. 6.

    ``fr_checks`` of 2, 4, 6 reproduce Tab. 1's ``13n+16``, ``23n+26``,
    ``33n+36``.
    """
    return protected_op_formula(n_bits, fr_checks)


def rca_add_ops(accumulator_bits: int, backend: str = AMBIT) -> int:
    """Ops for one bit-serial ripple-carry addition into a W-bit total.

    RCA accumulation always walks the full accumulator width because the
    carry can propagate to the top (Sec. 3), which is exactly the cost the
    high-radix counters avoid.
    """
    w = check_positive(accumulator_bits, "accumulator_bits")
    _check_backend(backend)
    if backend == AMBIT:
        return RCA_OPS_PER_BIT * w
    if backend == PINATUBO:
        return 6 * w  # AND/OR/NOT-based full adder, 6 primitives per bit
    return 11 * w  # NOR-only full adder needs ~11 NOR levels per bit


def event_ops(event: Event, n_bits: int, backend: str = AMBIT,
              fr_checks: int = 0) -> int:
    """Cost of one scheduler event.

    A :class:`CarryResolve` is a masked unit increment of the next digit
    (using O_next as the mask) plus one op to clear the flag row.
    """
    if fr_checks:
        base = protected_increment_ops(n_bits, fr_checks)
    else:
        base = increment_ops(n_bits, backend)
    if isinstance(event, Increment):
        return base
    if isinstance(event, CarryResolve):
        return base + 1
    raise TypeError(f"unknown event {event!r}")


def schedule_ops(events: Iterable[Event], n_bits: int,
                 backend: str = AMBIT, fr_checks: int = 0) -> int:
    """Total ops for a list (or list-of-lists) of scheduler events."""
    total = 0
    for ev in events:
        if isinstance(ev, (list, tuple)):
            total += schedule_ops(ev, n_bits, backend, fr_checks)
        else:
            total += event_ops(ev, n_bits, backend, fr_checks)
    return total


def digits_for_capacity(n_bits: int, capacity: int) -> int:
    """Digits needed so ``(2n)**D >= capacity`` (paper footnote 4)."""
    radix = 2 * check_positive(n_bits, "n_bits")
    if capacity < 2:
        return 1
    return max(1, math.ceil(math.log(capacity) / math.log(radix) - 1e-12))


def jc_bits_required(radix: int, capacity: int) -> int:
    """Storage bits for a JC counter of given radix and capacity (Fig. 19).

    ``radix`` must be even (radix = 2n); the count excludes the O_next
    rows, matching the figure.
    """
    if radix % 2 or radix < 2:
        raise ValueError("Johnson radix must be even and >= 2")
    n_bits = radix // 2
    return digits_for_capacity(n_bits, capacity) * n_bits


def binary_bits_required(capacity: int) -> int:
    """Storage bits for a plain binary counter of the same capacity."""
    if capacity < 2:
        return 1
    return math.ceil(math.log2(capacity) - 1e-12)


def mean_ops_per_value(scheduler_factory, values: Sequence[int],
                       n_bits: int, n_digits: int, backend: str = AMBIT,
                       fr_checks: int = 0) -> float:
    """Average ops per input over a stream, including the final flush.

    ``scheduler_factory(n_bits, n_digits)`` builds a fresh scheduler (see
    :mod:`repro.core.iarm`); the stream is scheduled once and the flush
    amortized over the inputs, which is how Fig. 8 reports its averages.
    """
    scheduler: BaseScheduler = scheduler_factory(n_bits, n_digits)
    total = 0
    for v in values:
        total += schedule_ops(scheduler.schedule_value(int(v)), n_bits,
                              backend, fr_checks)
    total += schedule_ops(scheduler.flush(), n_bits, backend, fr_checks)
    if not len(values):
        raise ValueError("empty value stream")
    return total / len(values)
