"""Carry-rippling schedulers, including IARM (paper Sec. 4.5.2).

Three schedulers turn a stream of input values into digit-level events:

* :class:`UnitScheduler` -- unary counting with digit-wise carry rippling
  (Sec. 4.4): an input is ``D + sum(digits)`` unit increments.
* :class:`NaiveKaryScheduler` -- one k-ary increment per non-zero digit,
  followed by a full carry-ripple pass (the "k-ary only" curve of
  Fig. 8b).
* :class:`IARMScheduler` -- Input-Aware Rippling Minimization: a host-side
  *virtual counter* bounds the worst-case state of every in-memory lane
  and defers carry resolution until a further increment could wrap a
  digit whose ``O_next`` flag is already set (effective digit range
  ``4n - 1``).

Events are consumed both by the golden :class:`~repro.core.counter.
CounterArray` (property tests) and by the gate-level engine.  IARM is
mask-oblivious: it presumes every broadcast increment may land on some
lane, so the schedule is safe for *any* mask pattern -- the golden model
enforces this by raising on double-wraps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Union

from repro.core.counter import CounterArray
from repro.core.kary import value_steps
from repro.util import check_positive

__all__ = ["Increment", "CarryResolve", "Event", "apply_events",
           "BaseScheduler", "UnitScheduler", "NaiveKaryScheduler",
           "IARMScheduler", "schedule_stream"]


@dataclass(frozen=True)
class Increment:
    """Masked k-ary step of one digit (mask = the operand's Z row)."""

    digit: int
    k: int


@dataclass(frozen=True)
class CarryResolve:
    """Unit step of digit ``digit + 1`` masked by digit's O_next row.

    ``direction`` is +1 for overflow ripple, -1 for underflow ripple.
    """

    digit: int
    direction: int = 1


Event = Union[Increment, CarryResolve]


def apply_events(counter: CounterArray, events: Sequence[Event],
                 mask=None) -> None:
    """Replay a schedule against the golden counter model.

    ``mask`` applies to :class:`Increment` events only; carry resolution
    is self-masked by each lane's pending flag, as in hardware.
    """
    for ev in events:
        if isinstance(ev, Increment):
            counter.increment_digit(ev.digit, ev.k, mask=mask)
        elif isinstance(ev, CarryResolve):
            counter.resolve_digit(ev.digit)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown event {ev!r}")


class BaseScheduler:
    """Common machinery: digit geometry and event accounting."""

    def __init__(self, n_bits: int, n_digits: int):
        self.n_bits = check_positive(n_bits, "n_bits")
        self.n_digits = check_positive(n_digits, "n_digits")
        self.radix = 2 * self.n_bits

    def schedule_value(self, value: int) -> List[Event]:
        raise NotImplementedError

    def flush(self) -> List[Event]:
        """Events needed to make all lanes carry-free (default: none)."""
        return []

    def reset(self) -> None:
        """Forget all stream state (counters were externally zeroed).

        Stateless schedulers have nothing to forget; stateful ones
        (IARM's virtual-counter bounds) override this.  The engine calls
        it from :meth:`~repro.engine.machine.CountingEngine.
        reset_counters` so a fresh accumulation epoch starts from the
        tight all-zero bound instead of the post-flush conservative one.
        """


class UnitScheduler(BaseScheduler):
    """Unary counting with digit-wise carry rippling (paper Sec. 4.4).

    Every input costs ``D + sum(d_i)`` unit increments: ``d_i`` unit steps
    per digit plus one ascending rippling pass over all digit positions.
    The single pass is sufficient: a digit receives at most ``radix - 1``
    unit steps per input (one wrap), and the incoming ripple carry can
    only wrap a digit whose own wrap already happened -- in which case its
    value is at most ``radix - 2``, so the carry cannot wrap it again.
    """

    def schedule_value(self, value: int) -> List[Event]:
        if value < 0:
            raise ValueError("unit scheduler models non-negative streams")
        if value == 0:
            return []
        events: List[Event] = []
        for step in value_steps(value, self.radix, self.n_digits):
            for _ in range(abs(step.k)):
                events.append(Increment(step.digit, 1 if step.k > 0 else -1))
        for d in range(self.n_digits - 1):
            events.append(CarryResolve(d, 1))
        return events


class NaiveKaryScheduler(BaseScheduler):
    """k-ary increments with full carry propagation per input (Fig. 8b).

    Each non-zero input digit triggers one k-ary increment; afterwards a
    full ascending ripple pass over the digit positions resolves pending
    carries, so the cost grows with counter capacity -- this is the
    "k-ary only" configuration whose curves separate by integer width in
    Fig. 8b.  The single pass is safe for the same reason as in
    :class:`UnitScheduler`: each digit wraps at most once per input.
    """

    def schedule_value(self, value: int) -> List[Event]:
        if value == 0:
            return []
        events: List[Event] = []
        direction = 1 if value > 0 else -1
        for step in value_steps(value, self.radix, self.n_digits):
            events.append(Increment(step.digit, step.k))
        for d in range(self.n_digits - 1):
            events.append(CarryResolve(d, direction))
        return events


class IARMScheduler(BaseScheduler):
    """Input-Aware Rippling Minimization (paper Sec. 4.5.2).

    Tracks, per digit, a sound upper bound ``ub[d]`` (and lower bound
    ``lb[d]`` for decrement runs) on the *effective* digit quantity
    ``value + radix * pending`` of any lane.  A digit may legally hold
    a quantity in ``[0, 2*radix - 1]`` (pending flag = one extra wrap);
    an increment of ``k`` is only broadcast once ``ub[d] + k`` fits, and
    a :class:`CarryResolve` is emitted just in time otherwise.

    Sign switches flush outstanding flags first (Sec. 4.4: "Outstanding
    overflows or underflows must be resolved before switching from
    increment to decrement and vice versa").
    """

    def __init__(self, n_bits: int, n_digits: int,
                 initial_max: int = 0):
        super().__init__(n_bits, n_digits)
        if not 0 <= initial_max < self.radix ** self.n_digits:
            raise ValueError("initial_max out of counter range")
        self._initial_max = initial_max
        self.reset()

    def reset(self) -> None:
        """Restart the virtual counter at the initial (zeroed) state."""
        # Upper/lower bound of value + radix*pending per digit.  For any
        # pre-loaded lane value v <= initial_max, digit d of v is at most
        # min(radix - 1, initial_max // radix**d), which keeps the bound
        # sound without knowing individual lane contents.
        self.ub = [min(self.radix - 1, self._initial_max // self.radix ** d)
                   for d in range(self.n_digits)]
        self.lb = [0] * self.n_digits
        self._direction = 0  # sign of the current run; 0 = fresh

    # -- internal helpers ------------------------------------------------
    def _bump_ub(self, digit: int, amount: int) -> None:
        """Raise ``ub[digit]`` by ``amount``, capping at the MSD.

        The most significant digit has no O_next row: counters are sized
        so it never wraps (paper footnote 4), which the golden model
        enforces with :class:`~repro.core.counter.CapacityError`.  Its
        quantity therefore stays within ``[0, radix - 1]``.
        """
        if digit == self.n_digits - 1:
            self.ub[digit] = min(self.ub[digit] + amount, self.radix - 1)
        else:
            self.ub[digit] += amount

    def _drop_lb(self, digit: int, amount: int) -> None:
        """Lower ``lb[digit]`` by ``amount``, flooring at the MSD."""
        if digit == self.n_digits - 1:
            self.lb[digit] = max(self.lb[digit] - amount, 0)
        else:
            self.lb[digit] -= amount

    def _resolve_up(self, digit: int, events: List[Event]) -> None:
        """Emit an overflow resolution for ``digit`` (ensuring headroom)."""
        if digit >= self.n_digits - 1:
            raise OverflowError("counter capacity exceeded during IARM")
        if (digit + 1 < self.n_digits - 1
                and self.ub[digit + 1] + 1 > 2 * self.radix - 1):
            self._resolve_up(digit + 1, events)
        events.append(CarryResolve(digit, 1))
        # Flagged lanes gain +1 one digit up and lose one wrap here;
        # unflagged lanes are untouched (their quantity is < radix).
        self._bump_ub(digit + 1, 1)
        self.ub[digit] = max(self.ub[digit] - self.radix, self.radix - 1)

    def _resolve_down(self, digit: int, events: List[Event]) -> None:
        """Emit an underflow resolution for ``digit``."""
        if digit >= self.n_digits - 1:
            raise OverflowError("counter went negative during IARM")
        if (digit + 1 < self.n_digits - 1
                and self.lb[digit + 1] - 1 < -self.radix):
            self._resolve_down(digit + 1, events)
        events.append(CarryResolve(digit, -1))
        # Flagged lanes lose 1 one digit up and regain a wrap here --
        # their quantity RISES by radix (a value of 3 with pending -1 is
        # quantity -1; clearing the flag leaves the raw 3), so the upper
        # bound must widen to radix - 1 as well.  Unflagged lanes
        # (quantity >= 0) are untouched.
        self._drop_lb(digit + 1, 1)
        self.lb[digit] = min(self.lb[digit] + self.radix, 0)
        self.ub[digit] = max(self.ub[digit], self.radix - 1)

    # -- public API -------------------------------------------------------
    def schedule_value(self, value: int) -> List[Event]:
        """Schedule one input value; returns the event list to broadcast."""
        if value == 0:
            return []
        events: List[Event] = []
        direction = 1 if value > 0 else -1
        if self._direction and direction != self._direction:
            events.extend(self.flush())
        self._direction = direction

        last = self.n_digits - 1
        for step in value_steps(value, self.radix, self.n_digits):
            d, k = step.digit, step.k
            if k > 0:
                while d < last and self.ub[d] + k > 2 * self.radix - 1:
                    self._resolve_up(d, events)
                events.append(Increment(d, k))
                self._bump_ub(d, k)
            else:
                while d < last and self.lb[d] + k < -self.radix:
                    self._resolve_down(d, events)
                events.append(Increment(d, k))
                self._drop_lb(d, -k)
        return events

    def flush(self) -> List[Event]:
        """Resolve every possibly-outstanding flag (read-out barrier)."""
        events: List[Event] = []
        for _ in range(self.n_digits + 1):
            dirty = [d for d in range(self.n_digits - 1)
                     if self.ub[d] > self.radix - 1 or self.lb[d] < 0]
            if not dirty:
                break
            for d in reversed(dirty):
                if self.ub[d] > self.radix - 1:
                    self._resolve_up(d, events)
                if self.lb[d] < 0:
                    self._resolve_down(d, events)
        self._direction = 0
        return events


def schedule_stream(scheduler: BaseScheduler, values: Sequence[int],
                    flush: bool = True) -> List[List[Event]]:
    """Schedule a whole input stream; returns one event list per value.

    When ``flush`` is set a final flush batch is appended so counters can
    be read out exactly.
    """
    batches = [scheduler.schedule_value(int(v)) for v in values]
    if flush:
        batches.append(scheduler.flush())
    return batches
