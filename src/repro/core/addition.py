"""Johnson-counter vector addition (paper Algorithm 2, Sec. 5.2.4).

Adds one vector of in-memory counters into another, ``C1 <- C1 + C2``,
using only masked *unit* increments whose masks are derived from the bits
of ``C2``.  The trick: scanning C2's bits MSB->LSB with a running OR
produces exactly ``value(C2)`` set masks when the ones-run touches the
MSB-side, and the complementary LSB->MSB pass with a running AND of the
negated bits covers the LSB-anchored ones-run.  Every addition therefore
costs exactly ``2n`` masked unit increments per digit regardless of the
operand values -- data-independent latency, ideal for SIMD broadcast.

The paper's listing omits the Θ update inside the second loop; without it
the mask cascade over-counts (e.g. adding 3 increments 5 times on a 5-bit
JC).  We implement the cascading version and verify it exhaustively in the
test suite (see DESIGN.md Sec. 7).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.counter import CounterArray

__all__ = ["addition_masks", "add_digit_lanes", "add_counter_arrays"]


def addition_masks(digit_lanes: np.ndarray) -> List[np.ndarray]:
    """Derive the 2n unit-increment masks from one JC digit's bit rows.

    ``digit_lanes`` has shape ``[n_bits, n_lanes]`` (row 0 = LSB).  Returns
    ``2 * n_bits`` uint8 masks; lane ``j`` is set in exactly
    ``decode(digit_lanes[:, j])`` of them.
    """
    lanes = np.asarray(digit_lanes, dtype=np.uint8)
    n_bits = lanes.shape[0]
    masks: List[np.ndarray] = []

    # Pass 1 (MSB -> LSB): theta = cumulative OR seeded with the MSB.
    theta = lanes[n_bits - 1].copy()
    for i in range(n_bits - 1, -1, -1):
        mask = lanes[i] | theta
        masks.append(mask)
        theta = mask

    # Pass 2 (LSB -> MSB): theta = cascading AND with the negated bits.
    for i in range(n_bits):
        mask = (1 - lanes[i]) & theta
        masks.append(mask)
        theta = mask
    return masks


def add_digit_lanes(dst: CounterArray, digit: int,
                    digit_lanes: np.ndarray) -> int:
    """Add a JC digit (given as bit rows) into ``dst``'s digit ``digit``.

    Returns the number of unit increments issued (always ``2n``).  Carries
    are left pending in ``dst`` for the caller's rippling policy.
    """
    masks = addition_masks(digit_lanes)
    for mask in masks:
        if mask.any():
            dst.increment_digit(digit, 1, mask=mask.astype(bool))
    return len(masks)


def add_counter_arrays(dst: CounterArray, src: CounterArray,
                       ripple: bool = True) -> int:
    """``dst <- dst + src`` digit-by-digit (both carry-free on entry).

    ``src`` must have no pending flags (resolve first); ``dst`` pending
    flags are rippled after every digit pass when ``ripple`` is set, which
    is required for correctness whenever an addition can wrap a digit
    twice.  Returns the total number of masked unit increments issued.
    """
    if (src.pending != 0).any():
        raise ValueError("source counters must be carry-free (resolve_all)")
    if dst.n_bits != src.n_bits or dst.n_digits != src.n_digits:
        raise ValueError("counter geometry mismatch")
    from repro.core.johnson import encode_lanes  # local: avoids cycle

    increments = 0
    for d in range(src.n_digits):
        digit_lanes = encode_lanes(src.values[d], src.n_bits)
        increments += add_digit_lanes(dst, d, digit_lanes)
        if ripple:
            dst.resolve_all()
    return increments
