"""Johnson (twisted-ring) counter algebra.

This module is the *golden model* for everything Count2Multiply computes in
memory.  It implements the state encoding from Sec. 2.4 of the paper, the
variable-step (k-ary) transition patterns of Algorithm 1, and overflow /
underflow detection.  All functions are pure and operate either on a single
state (1-D bit vector, LSB first) or on a *lane array* of shape
``[n_bits, n_lanes]`` holding one counter per column -- exactly the layout
the DRAM subarray uses (one memory row per counter bit, one counter per
bitline).

State encoding (n = 5, radix 10), printed LSB-first as in the paper:

    10000 (1) -> 11000 (2) -> ... -> 11111 (5) -> 01111 (6) -> ...
    -> 00001 (9) -> 00000 (0)

so for value ``v <= n`` the lowest ``v`` bits are ones, and for ``v > n``
the top ``n - (v - n)`` bits are ones.  An n-bit Johnson counter encodes
``2n`` states (radix ``2n``).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import gcd
from typing import Iterator, List, Tuple

import numpy as np

from repro.util import as_bit_array

__all__ = [
    "encode",
    "decode",
    "decode_lanes",
    "encode_lanes",
    "is_valid",
    "all_states",
    "successor_value",
    "BitSource",
    "TransitionPattern",
    "transition_pattern",
    "apply_pattern",
    "step",
    "overflow_after_step",
    "underflow_after_step",
]


def encode(value: int, n_bits: int) -> np.ndarray:
    """Encode ``value`` (mod ``2 * n_bits``) as an n-bit JC state.

    Returns a uint8 vector, index 0 = LSB.
    """
    if n_bits < 1:
        raise ValueError("n_bits must be >= 1")
    radix = 2 * n_bits
    v = int(value) % radix
    bits = np.zeros(n_bits, dtype=np.uint8)
    if v <= n_bits:
        bits[:v] = 1
    else:
        bits[v - n_bits:] = 1
    return bits


def decode(bits, strict: bool = True) -> int:
    """Decode an n-bit JC state back to its value in ``[0, 2n - 1]``.

    Raises ValueError on states that are not valid Johnson codes unless
    ``strict=False``, in which case the popcount-based rule is applied
    anyway -- this models what a faulty counter reads back as, and is
    what the fault-impact studies (Figs. 4/17) use.
    """
    arr = as_bit_array(bits)
    if strict and not is_valid(arr):
        raise ValueError(f"invalid Johnson state {arr.tolist()}")
    n = arr.size
    ones = int(arr.sum())
    if ones == 0:
        return 0
    # LSB set -> value is the popcount; LSB clear -> wrapped segment.
    if arr[0]:
        return ones
    return 2 * n - ones


def is_valid(bits) -> bool:
    """True iff ``bits`` is one of the 2n valid Johnson states.

    A valid state is a (possibly empty) run of ones that either starts at
    the LSB or ends at the MSB -- i.e. one contiguous block with no wrap
    except through the all-zero boundary.
    """
    arr = as_bit_array(bits)
    n = arr.size
    ones = int(arr.sum())
    if ones == 0:
        return True
    idx = np.flatnonzero(arr)
    contiguous = bool(idx[-1] - idx[0] + 1 == ones)
    if not contiguous:
        return False
    return bool(idx[0] == 0 or idx[-1] == n - 1)


def all_states(n_bits: int) -> Iterator[Tuple[int, np.ndarray]]:
    """Yield ``(value, state)`` for every valid state of an n-bit JC."""
    for v in range(2 * n_bits):
        yield v, encode(v, n_bits)


def successor_value(value: int, k: int, n_bits: int) -> Tuple[int, bool]:
    """Arithmetic reference for a k-ary step.

    Returns ``(new_value, carry)`` where ``carry`` is True when the step
    wrapped past the counter capacity (overflow for ``k > 0``, underflow
    for ``k < 0``).
    """
    radix = 2 * n_bits
    raw = int(value) + int(k)
    return raw % radix, not (0 <= raw < radix)


def encode_lanes(values, n_bits: int) -> np.ndarray:
    """Encode a vector of values into a ``[n_bits, n_lanes]`` lane array."""
    values = np.asarray(values, dtype=np.int64)
    lanes = np.zeros((n_bits, values.size), dtype=np.uint8)
    for lane, v in enumerate(values):
        lanes[:, lane] = encode(int(v), n_bits)
    return lanes


def decode_lanes(lanes: np.ndarray, strict: bool = True) -> np.ndarray:
    """Decode a ``[n_bits, n_lanes]`` lane array to a vector of values.

    Vectorized across lanes (the wide fast-backend read-out path decodes
    tens of thousands of lanes per call); semantics match per-lane
    :func:`decode`, including the strict-mode :class:`ValueError` on the
    first invalid Johnson state.
    """
    lanes = np.asarray(lanes, dtype=np.uint8)
    n = lanes.shape[0]
    if n <= 2:
        # Every bit pattern of a 1- or 2-bit twisted ring is a valid
        # state (n=2: 00->0, 10->1, 11->2, 01->3), so strict mode has
        # nothing to reject and the decode is two uint8 ops -- the wide
        # read-out fast path.
        if n == 1:
            return lanes[0].astype(np.int64)
        b0, b1 = lanes[0], lanes[1]
        return ((b1 << 1) | (b0 ^ b1)).astype(np.int64)
    ones = lanes.sum(axis=0, dtype=np.int64)
    # LSB set -> value is the popcount; LSB clear -> wrapped segment.
    values = np.where(lanes[0] == 1, ones, 2 * n - ones)
    values = np.where(ones == 0, 0, values).astype(np.int64)
    if strict:
        first = np.argmax(lanes, axis=0)
        last = n - 1 - np.argmax(lanes[::-1], axis=0)
        contiguous = (last - first + 1) == ones
        valid = (ones == 0) | (contiguous & ((first == 0) | (last == n - 1)))
        if not valid.all():
            bad = int(np.flatnonzero(~valid)[0])
            raise ValueError(
                f"invalid Johnson state {lanes[:, bad].tolist()}")
    return values


@dataclass(frozen=True)
class BitSource:
    """Where new bit ``dst`` comes from in a transition pattern.

    ``dst <- (mask AND maybe-inverted old bit[src]) OR (NOT mask AND old
    bit[dst])``.  ``inverted`` marks the twisted-ring feedback edge.
    """

    dst: int
    src: int
    inverted: bool


@dataclass(frozen=True)
class TransitionPattern:
    """The full bit-level recipe for a k-ary JC step (paper Fig. 7 / Alg. 1).

    Attributes
    ----------
    n_bits, k:
        Counter size and (signed) step amount. ``k`` is normalized to
        ``[-(2n-1), 2n-1]``.
    assignments:
        One :class:`BitSource` per bit, in an order that is safe for
        *in-place* execution provided each permutation cycle's first source
        is saved to a scratch row beforehand (see ``cycle_saves``).
    cycle_saves:
        Bit indices whose *old* value must be copied to scratch before the
        in-place update begins (one per permutation cycle, ``gcd(n, |k| mod
        n)`` of them; the MSB save doubles as the overflow operand).
    """

    n_bits: int
    k: int
    assignments: Tuple[BitSource, ...]
    cycle_saves: Tuple[int, ...]


def _shift_and_wrap(n: int, k: int) -> Tuple[int, bool, bool]:
    """Return (shift s, invert_on_wrap, invert_on_plain) for a step of +k.

    A step of ``+k`` maps new ``b[i] = old b[(i - s) mod n]`` with ``s = k
    mod n``; whenever the index wraps, or always when ``k > n`` (complement
    property: ``state(v + n) == ~state(v)``), the source is inverted.
    """
    if not 1 <= k <= 2 * n - 1:
        raise ValueError(f"step must be in [1, {2 * n - 1}], got {k}")
    if k <= n:
        return k % n, True, False
    return k - n, False, True


def transition_pattern(n_bits: int, k: int) -> TransitionPattern:
    """Build the in-place transition pattern for a step of ``k``.

    Positive ``k`` increments (forward shift + inverted feedback), negative
    ``k`` decrements (backward shift + inverted feed-forward).  ``k == 0``
    yields an empty pattern.  The assignment order follows the permutation
    cycles of the shift so that each source row is still intact when read;
    this is what lets the in-memory implementation reuse a single scratch
    row per cycle (Fig. 6b line 0 for the unit case).
    """
    n = int(n_bits)
    radix = 2 * n
    k_norm = int(k) % radix if k >= 0 else -((-int(k)) % radix)
    if k_norm == 0:
        return TransitionPattern(n, 0, (), ())

    if k_norm > 0:
        s, inv_wrap, inv_plain = _shift_and_wrap(n, k_norm)
        direction = +1
    else:
        s, inv_wrap, inv_plain = _shift_and_wrap(n, -k_norm)
        direction = -1

    if s == 0:
        # Pure complement (k == n or k == -n): independent per-bit flips.
        assignments = tuple(
            BitSource(dst=i, src=i, inverted=True) for i in range(n)
        )
        return TransitionPattern(n, k_norm, assignments, ())

    # For +k, new[i] = old[(i - s) mod n]; for -k, new[i] = old[(i + s) mod n]
    def source_of(i: int) -> Tuple[int, bool]:
        if direction > 0:
            src = i - s
            wrapped = src < 0
        else:
            src = i + s
            wrapped = src >= n
        src %= n
        return src, (inv_wrap if wrapped else inv_plain)

    n_cycles = gcd(n, s)
    assignments: List[BitSource] = []
    saves: List[int] = []
    for c in range(n_cycles):
        # Start each cycle at the highest available index so the first
        # cycle begins at the MSB -- its save is the O0 row of Fig. 6b.
        start = n - 1 - c
        saves.append(start)
        i = start
        while True:
            src, inv = source_of(i)
            assignments.append(BitSource(dst=i, src=src, inverted=inv))
            if src == start:
                break
            i = src
    return TransitionPattern(n, k_norm, tuple(assignments), tuple(saves))


def apply_pattern(lanes: np.ndarray, pattern: TransitionPattern,
                  mask: np.ndarray = None) -> np.ndarray:
    """Apply a transition pattern to a lane array, honoring a lane mask.

    This mirrors exactly what the in-memory μProgram does: the update is
    performed in place following the pattern's order, with each cycle's
    first source saved to a scratch register first.  Lanes where ``mask``
    is 0 are left untouched.
    """
    lanes = np.array(lanes, dtype=np.uint8, copy=True)
    n, n_lanes = lanes.shape
    if pattern.n_bits != n:
        raise ValueError("pattern/lane width mismatch")
    if mask is None:
        mask = np.ones(n_lanes, dtype=np.uint8)
    mask = np.asarray(mask, dtype=np.uint8)

    scratch = {idx: lanes[idx].copy() for idx in pattern.cycle_saves}
    consumed = set()
    for a in pattern.assignments:
        if a.src in scratch and a.src in consumed:
            src_row = scratch[a.src]
        else:
            src_row = lanes[a.src]
        val = (1 - src_row) if a.inverted else src_row
        lanes[a.dst] = np.where(mask, val, lanes[a.dst])
        consumed.add(a.dst)
    return lanes


def step(lanes: np.ndarray, k: int, mask: np.ndarray = None) -> np.ndarray:
    """Convenience: apply a k-ary step to a lane array."""
    return apply_pattern(lanes, transition_pattern(lanes.shape[0], k), mask)


def overflow_after_step(old_msb: np.ndarray, new_msb: np.ndarray, k: int,
                        n_bits: int, mask: np.ndarray = None) -> np.ndarray:
    """Per-lane overflow flag for an increment of ``k`` (Alg. 1 lines 6/13).

    * ``k <= n``:  overflow iff old MSB set and new MSB clear.
    * ``k > n``:   overflow iff (old MSB set OR new MSB clear), masked.
    """
    old_msb = np.asarray(old_msb, dtype=np.uint8)
    new_msb = np.asarray(new_msb, dtype=np.uint8)
    if not 1 <= k <= 2 * n_bits - 1:
        raise ValueError("overflow check needs 1 <= k <= 2n-1")
    if mask is None:
        mask = np.ones_like(old_msb)
    mask = np.asarray(mask, dtype=np.uint8)
    if k <= n_bits:
        flag = old_msb & (1 - new_msb)
    else:
        flag = (old_msb | (1 - new_msb))
    return (flag & mask).astype(np.uint8)


def underflow_after_step(old_msb: np.ndarray, new_msb: np.ndarray, k: int,
                         n_bits: int, mask: np.ndarray = None) -> np.ndarray:
    """Per-lane underflow flag for a decrement of ``k`` (mirror of overflow).

    Underflow is detected on the MSB transitioning 0 -> 1 for small steps
    (Sec. 4.4: "the MSB transitions from zero to one"), with the same
    masked disjunction trick for ``k > n``.
    """
    old_msb = np.asarray(old_msb, dtype=np.uint8)
    new_msb = np.asarray(new_msb, dtype=np.uint8)
    if not 1 <= k <= 2 * n_bits - 1:
        raise ValueError("underflow check needs 1 <= k <= 2n-1")
    if mask is None:
        mask = np.ones_like(old_msb)
    mask = np.asarray(mask, dtype=np.uint8)
    if k <= n_bits:
        flag = (1 - old_msb) & new_msb
    else:
        flag = ((1 - old_msb) | new_msb)
    return (flag & mask).astype(np.uint8)
