"""Scheduler correctness: unit / naive k-ary / IARM under arbitrary masks.

The central soundness property: schedules are mask-oblivious, and the
golden model raises on any deferred-carry violation -- so replaying a
schedule against random masks proves IARM never lets a lane double-wrap.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.counter import CounterArray
from repro.core.iarm import (CarryResolve, IARMScheduler, Increment,
                             NaiveKaryScheduler, UnitScheduler,
                             apply_events, schedule_stream)


def _digits_for(n_bits, cap):
    d = 1
    while (2 * n_bits) ** d < cap:
        d += 1
    return d


def _replay(scheduler_cls, n_bits, values, n_lanes=16, seed=3, **kwargs):
    cap = int(np.abs(values).sum()) + kwargs.pop("initial", 0) + 2
    digits = _digits_for(n_bits, cap)
    sched = scheduler_cls(n_bits, digits, **kwargs)
    ca = CounterArray(n_bits, digits, n_lanes)
    rng = np.random.default_rng(seed)
    ref = np.zeros(n_lanes, dtype=object)
    for v in values:
        mask = rng.integers(0, 2, n_lanes).astype(bool)
        apply_events(ca, sched.schedule_value(int(v)), mask=mask)
        ref[mask] += int(v)
    apply_events(ca, sched.flush())
    ca.resolve_all()
    assert ca.totals() == [int(r) for r in ref]
    return sched


class TestSchedulers:
    @pytest.mark.parametrize("cls", [UnitScheduler, NaiveKaryScheduler,
                                     IARMScheduler])
    @pytest.mark.parametrize("n_bits", [1, 2, 5])
    def test_masked_streams(self, cls, n_bits, rng):
        values = rng.integers(0, 256, 120)
        _replay(cls, n_bits, values)

    def test_unit_rejects_negative(self):
        with pytest.raises(ValueError):
            UnitScheduler(2, 4).schedule_value(-1)

    def test_unit_event_count_matches_paper(self):
        """Sec. 4.4: D + sum(d_i) unit increments per input."""
        sched = UnitScheduler(5, 4)
        events = sched.schedule_value(45)
        incs = [e for e in events if isinstance(e, Increment)]
        resolves = [e for e in events if isinstance(e, CarryResolve)]
        assert len(incs) == 4 + 5              # digits 5 and 4, unary
        assert all(abs(e.k) == 1 for e in incs)
        assert len(resolves) == 3              # D - 1 ripple positions

    def test_naive_kary_one_increment_per_nonzero_digit(self):
        sched = NaiveKaryScheduler(5, 4)
        events = sched.schedule_value(405)     # digits 5, 0, 4
        incs = [e for e in events if isinstance(e, Increment)]
        assert [(e.digit, e.k) for e in incs] == [(0, 5), (2, 4)]

    def test_zero_value_schedules_nothing(self):
        for cls in (UnitScheduler, NaiveKaryScheduler, IARMScheduler):
            assert cls(2, 4).schedule_value(0) == []


class TestIARM:
    def test_defers_carries(self):
        sched = IARMScheduler(5, 5, initial_max=9999)
        first = sched.schedule_value(9)
        assert first == [Increment(0, 9)]      # Fig. 9 step 1: no ripple

    def test_flush_after_signed_run_switch(self):
        sched = IARMScheduler(2, 6)
        sched.schedule_value(7)
        events = sched.schedule_value(-3)
        # The sign switch forces outstanding flags to resolve first.
        kinds = [type(e) for e in events]
        assert Increment in kinds

    def test_signed_masked_stream(self, rng):
        values = rng.integers(-60, 120, 150)
        # Keep every lane non-negative: start from a cushion.
        digits = _digits_for(2, 40_000)
        sched = IARMScheduler(2, digits, initial_max=10_000)
        ca = CounterArray(2, digits, 8)
        ca.set_totals([10_000] * 8)
        ref = np.full(8, 10_000, dtype=object)
        for v in values:
            mask = rng.integers(0, 2, 8).astype(bool)
            if ((ref[mask] + int(v)) < 0).any():
                continue
            apply_events(ca, sched.schedule_value(int(v)), mask=mask)
            ref[mask] += int(v)
        apply_events(ca, sched.flush())
        ca.resolve_all()
        assert ca.totals() == [int(r) for r in ref]

    def test_initial_max_bounds_are_respected(self, rng):
        """Pre-loaded counters anywhere <= initial_max stay safe."""
        digits = _digits_for(5, 60_000)
        for initial in (0, 7, 99, 12345):
            sched = IARMScheduler(5, digits, initial_max=initial)
            ca = CounterArray(5, digits, 6)
            starts = rng.integers(0, initial + 1, 6).tolist()
            ca.set_totals(starts)
            for _ in range(60):
                v = int(rng.integers(0, 256))
                mask = rng.integers(0, 2, 6).astype(bool)
                apply_events(ca, sched.schedule_value(v), mask=mask)
            apply_events(ca, sched.flush())

    def test_capacity_exhaustion_detected_by_golden_model(self):
        """The scheduler trusts sizing; the golden model enforces it."""
        from repro.core.counter import CapacityError
        sched = IARMScheduler(1, 2)            # capacity 4
        ca = CounterArray(1, 2, 1)
        with pytest.raises(CapacityError):
            for _ in range(10):
                apply_events(ca, sched.schedule_value(3))

    def test_schedule_stream_helper(self):
        sched = IARMScheduler(2, 6)
        batches = schedule_stream(sched, [5, 0, 9])
        assert len(batches) == 4               # 3 values + flush
        assert batches[1] == []

    def test_iarm_cheaper_than_naive(self, rng):
        """The whole point: fewer events on the same stream."""
        values = rng.integers(0, 256, 400)
        digits = _digits_for(2, int(values.sum()) + 2)
        iarm_events = sum(
            len(IARMScheduler(2, digits).schedule_value(int(v)))
            for v in values)
        naive_events = sum(
            len(NaiveKaryScheduler(2, digits).schedule_value(int(v)))
            for v in values)
        assert iarm_events < naive_events / 2


@given(values=st.lists(st.integers(0, 255), min_size=1, max_size=60),
       n_bits=st.integers(1, 5))
@settings(max_examples=60, deadline=None)
def test_property_iarm_masked_soundness(values, n_bits):
    """IARM never double-wraps any lane for any mask pattern."""
    _replay(IARMScheduler, n_bits, np.array(values), n_lanes=8, seed=11)
