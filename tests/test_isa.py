"""μProgram IR, counting templates, MIG synthesis and NVM backends."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import johnson as J
from repro.dram import AmbitSubarray
from repro.isa import (MIG, MagicMachine, MicroProgram, PinatuboMachine,
                       aap, ap, kary_increment_program, lower_to_ambit,
                       magic_increment_program, magic_op_count,
                       masked_update_ops, pinatubo_increment_program,
                       pinatubo_op_count, protected_masked_update_ops)
from repro.isa.microprogram import MicroOp, concat
from repro.isa.templates import carry_resolve_program


class TestMicroProgram:
    def test_op_validation(self):
        with pytest.raises(ValueError):
            MicroOp("AAP", "B0")          # missing destination
        with pytest.raises(ValueError):
            MicroOp("NOP", "B0")

    def test_counts_and_concat(self):
        p1 = MicroProgram("a", (aap("C0", "D0"), ap("B12")), (1,))
        p2 = MicroProgram("b", (aap("C1", "D1"),), (0,))
        combined = p1 + p2
        assert combined.aap_count == 2
        assert combined.ap_count == 1
        assert combined.checkpoints == (1, 2)
        assert concat("c", [p1, p2]).checkpoints == (1, 2)

    def test_listing_format(self):
        p = MicroProgram("demo", (aap("m", "B8"),))
        assert "AAP m, B8" in p.listing()


class TestMaskedUpdate:
    @pytest.mark.parametrize("invert", [False, True])
    def test_exhaustive_truth_table(self, invert):
        """All 8 (dst, src, m) combinations across lanes."""
        combos = [(d, s, m) for d in (0, 1) for s in (0, 1)
                  for m in (0, 1)]
        dst = np.array([c[0] for c in combos], dtype=np.uint8)
        src = np.array([c[1] for c in combos], dtype=np.uint8)
        msk = np.array([c[2] for c in combos], dtype=np.uint8)
        sa = AmbitSubarray(8, len(combos))
        sa.write_data_row(0, dst)
        sa.write_data_row(1, src)
        sa.write_data_row(2, msk)
        MicroProgram("t", tuple(masked_update_ops(0, 1, 2, invert))).run(sa)
        s_eff = (1 - src) if invert else src
        want = (msk & s_eff) | ((1 - msk) & dst)
        assert (sa.read_data_row(0) == want).all()

    def test_seven_ops_per_bit(self):
        assert len(masked_update_ops(0, 1, 2, False)) == 7
        assert len(masked_update_ops(0, 1, 2, True)) == 7


class TestKaryIncrementProgram:
    @pytest.mark.parametrize("n", [2, 3, 5])
    def test_all_k_gate_level(self, n, rng):
        lanes_n = 48
        for k in list(range(1, 2 * n)) + [-x for x in range(1, 2 * n)]:
            sa = AmbitSubarray(n + 10, lanes_n)
            values = rng.integers(0, 2 * n, lanes_n)
            lanes = J.encode_lanes(values, n)
            for i in range(n):
                sa.write_data_row(i, lanes[i])
            mask = rng.integers(0, 2, lanes_n).astype(np.uint8)
            sa.write_data_row(n, mask)
            sa.write_data_row(n + 1, np.zeros(lanes_n, np.uint8))
            prog = kary_increment_program(
                list(range(n)), n, k, list(range(n + 2, 2 * n + 2)), n + 1)
            prog.run(sa)
            got = sa.read_rows(list(range(n)))
            want = J.step(lanes, k, mask)
            assert (got == want).all(), (n, k)
            flag_fn = (J.overflow_after_step if k > 0
                       else J.underflow_after_step)
            want_flag = flag_fn(lanes[n - 1], want[n - 1], abs(k), n, mask)
            assert (sa.read_data_row(n + 1) == want_flag).all(), (n, k)

    def test_op_count_near_paper(self):
        """7n + gcd saves + overflow block (7n+7 for coprime k<=n)."""
        prog = kary_increment_program([0, 1, 2, 3, 4], 5, 1,
                                      [7, 8, 9, 10, 11], 6)
        assert len(prog) == 7 * 5 + 1 + 7        # == 7n + 8

    def test_insufficient_scratch_raises(self):
        with pytest.raises(ValueError):
            kary_increment_program([0, 1, 2, 3], 4, 2, [6], 5)

    def test_overflow_requires_row(self):
        with pytest.raises(ValueError):
            kary_increment_program([0, 1], 2, 1, [4], None)

    def test_carry_resolve_clears_flag(self, rng):
        n, lanes_n = 3, 16
        sa = AmbitSubarray(n + 8, lanes_n)
        values = rng.integers(0, 2 * n, lanes_n)
        lanes = J.encode_lanes(values, n)
        for i in range(n):
            sa.write_data_row(i, lanes[i])
        flags = rng.integers(0, 2, lanes_n).astype(np.uint8)
        sa.write_data_row(n, flags)                     # O_next of digit 0
        sa.write_data_row(n + 1, np.zeros(lanes_n, np.uint8))
        prog = carry_resolve_program(list(range(n)), n, n + 1,
                                     [n + 2, n + 3, n + 4])
        prog.run(sa)
        got = J.decode_lanes(sa.read_rows(list(range(n))))
        assert (got == (values + flags) % (2 * n)).all()
        assert (sa.read_data_row(n) == 0).all()         # flag cleared


class TestProtectedTemplate:
    @pytest.mark.parametrize("invert", [False, True])
    def test_functional(self, invert, rng):
        sa = AmbitSubarray(10, 64)
        dst = rng.integers(0, 2, 64).astype(np.uint8)
        src = rng.integers(0, 2, 64).astype(np.uint8)
        msk = rng.integers(0, 2, 64).astype(np.uint8)
        sa.write_data_row(0, dst)
        sa.write_data_row(1, src)
        sa.write_data_row(2, msk)
        prog = protected_masked_update_ops(0, 1, 2, invert, 3, 4, 5, 6)
        prog.run(sa)
        s_eff = (1 - src) if invert else src
        want = (msk & s_eff) | ((1 - msk) & dst)
        assert (sa.read_data_row(0) == want).all()

    def test_fr_rows_hold_xor(self, rng):
        """After each checkpoint the FR row equals the pair's XOR."""
        sa = AmbitSubarray(10, 32)
        dst = rng.integers(0, 2, 32).astype(np.uint8)
        src = rng.integers(0, 2, 32).astype(np.uint8)
        msk = rng.integers(0, 2, 32).astype(np.uint8)
        sa.write_data_row(0, dst)
        sa.write_data_row(1, src)
        sa.write_data_row(2, msk)
        prog = protected_masked_update_ops(0, 1, 2, False, 3, 4, 5, 6)
        cp1, cp2 = prog.checkpoints
        MicroProgram("a", prog.ops[:cp1 + 1]).run(sa)
        assert (sa.read_data_row(5) == (msk ^ src)).all()
        MicroProgram("b", prog.ops[cp1 + 1:cp2 + 1]).run(sa)
        assert (sa.read_data_row(5) == (dst ^ (1 - msk))).all()


class TestMIG:
    def test_simplification_rules(self):
        mig = MIG(2)
        a, b = mig.input_lit(0), mig.input_lit(1)
        assert mig.maj(a, a, b) == a
        assert mig.maj(a, mig.not_(a), b) == b
        assert mig.not_(mig.not_(a)) == a

    def test_structural_hashing(self):
        mig = MIG(3)
        a, b, c = (mig.input_lit(i) for i in range(3))
        assert mig.maj(a, b, c) == mig.maj(c, a, b)
        assert mig.maj_count([mig.maj(a, b, c)]) == 1

    def test_complement_canonicalization(self):
        mig = MIG(3)
        a, b, c = (mig.input_lit(i) for i in range(3))
        lit = mig.maj(mig.not_(a), mig.not_(b), mig.not_(c))
        plain = mig.maj(a, b, c)
        assert lit == mig.not_(plain)
        assert mig.maj_count([lit, plain]) == 1

    def test_xor_truth_table(self):
        mig = MIG(2)
        a, b = mig.input_lit(0), mig.input_lit(1)
        x = mig.xor_(a, b)
        inputs = np.array([[0, 0, 1, 1], [0, 1, 0, 1]], dtype=np.uint8)
        assert (mig.evaluate([x], inputs)[0] == [0, 1, 1, 0]).all()

    def test_mux(self):
        mig = MIG(3)
        s, t, f = (mig.input_lit(i) for i in range(3))
        out = mig.mux(s, t, f)
        inputs = np.array([[0, 0, 1, 1, 0, 1],
                           [0, 1, 0, 1, 1, 0],
                           [1, 0, 1, 0, 0, 1]], dtype=np.uint8)
        want = np.where(inputs[0], inputs[1], inputs[2])
        assert (mig.evaluate([out], inputs)[0] == want).all()

    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_property_lowering_matches_evaluation(self, data):
        """Random MIGs lower to μPrograms computing the same function."""
        rng_choices = data.draw(st.lists(
            st.tuples(st.sampled_from(["and", "or", "xor", "maj", "not"]),
                      st.integers(0, 100), st.integers(0, 100),
                      st.integers(0, 100)),
            min_size=1, max_size=8))
        mig = MIG(4)
        pool = [mig.input_lit(i) for i in range(4)]
        for op, ia, ib, ic in rng_choices:
            a = pool[ia % len(pool)]
            b = pool[ib % len(pool)]
            c = pool[ic % len(pool)]
            if op == "and":
                pool.append(mig.and_(a, b))
            elif op == "or":
                pool.append(mig.or_(a, b))
            elif op == "xor":
                pool.append(mig.xor_(a, b))
            elif op == "maj":
                pool.append(mig.maj(a, b, c))
            else:
                pool.append(mig.not_(a))
        outs = [pool[-1]]
        x = np.array([[0, 1] * 8, [0, 0, 1, 1] * 4,
                      [0] * 8 + [1] * 8, [1, 0] * 8], dtype=np.uint8)
        ref = mig.evaluate(outs, x)
        gates = mig.maj_count(outs)
        sa = AmbitSubarray(5 + gates + 1, 16)
        for i in range(4):
            sa.write_data_row(i, x[i])
        prog = lower_to_ambit(mig, outs, list(range(4)), [4],
                              list(range(5, 5 + gates)))
        prog.run(sa)
        assert (sa.read_data_row(4) == ref[0]).all()


class TestNVMBackends:
    @pytest.mark.parametrize("n", [2, 3, 5, 8])
    def test_pinatubo_counts(self, n):
        assert pinatubo_op_count(n) == 3 * n + 4

    @pytest.mark.parametrize("n", [2, 3, 5, 8])
    def test_magic_counts(self, n):
        assert magic_op_count(n) == 6 * n + 5     # 6n+4 + 1 setup NOR

    @pytest.mark.parametrize("machine_cls,generator", [
        (PinatuboMachine, pinatubo_increment_program),
        (MagicMachine, magic_increment_program)])
    @pytest.mark.parametrize("n", [2, 3, 5])
    def test_functional_increment(self, machine_cls, generator, n, rng):
        lanes_n = 40
        values = rng.integers(0, 2 * n, lanes_n)
        lanes = J.encode_lanes(values, n)
        mask = rng.integers(0, 2, lanes_n).astype(np.uint8)
        machine = machine_cls(lanes_n)
        for i in range(n):
            machine.write(f"b{i}", lanes[i])
        machine.write("m", mask)
        machine.write("On", np.zeros(lanes_n, np.uint8))
        machine.run(generator(n))
        got = np.stack([machine.read(f"b{i}") for i in range(n)])
        want = J.step(lanes, 1, mask)
        assert (got == want).all()
        flag = J.overflow_after_step(lanes[n - 1], want[n - 1], 1, n, mask)
        assert (machine.read("On") == flag).all()

    def test_magic_rejects_non_nor(self):
        from repro.isa.nvm import LogicOp
        with pytest.raises(ValueError):
            machine = MagicMachine(4)
            machine.write("a", np.zeros(4, np.uint8))
            machine.execute(LogicOp("AND", ("a", "a"), "b"))
