"""Reliability campaigns: determinism, accounting, pool batching."""

import numpy as np
import pytest

from repro.reliability import Campaign, CampaignResult, FaultPoint
from repro.serve.pool import BankPool


@pytest.fixture
def workload():
    rng = np.random.default_rng(0)
    z = rng.integers(-1, 2, (8, 16)).astype(np.int8)
    xs = rng.integers(-5, 6, (3, 8))
    return z, xs


def _campaign(z, xs, **kw):
    kw.setdefault("banks_per_trial", 2)
    return Campaign(z=z, xs=xs, kind="ternary", **kw)


class TestEngineTrials:
    def test_fault_free_point_is_exact(self, workload):
        z, xs = workload
        result = _campaign(z, xs).run([FaultPoint(p_cim=0.0)], n_trials=2)
        row = result.rows[0]
        assert row["injected"] == 0
        assert row["silent_lanes"] == 0
        assert row["exact_trials"] == 2
        assert row["mean_ops"] > 0

    def test_high_rate_corrupts_silently_without_protection(self,
                                                            workload):
        z, xs = workload
        result = _campaign(z, xs).run([FaultPoint(p_cim=0.2)], n_trials=2)
        row = result.rows[0]
        assert row["injected"] > 0
        assert row["silent_trials"] == 2
        assert 0 < row["silent_rate"] <= 1
        # Fused fault replay actually carried the campaign.
        assert row["trace_replays"] > 0

    def test_protection_detects_and_corrects(self, workload):
        z, xs = workload
        result = _campaign(z, xs).run(
            [FaultPoint(p_cim=2e-3, fr_checks=2)], n_trials=2)
        row = result.rows[0]
        assert row["injected"] > 0
        assert row["detected"] > 0
        # Outcome-level correction accounting: every detected-faulty
        # block re-executed to a clean validation, none exhausted, and
        # a corrected block implies at least one retry.
        assert row["corrected"] > 0
        assert row["corrected"] <= row["retries"]
        assert row["retry_exhausted"] == 0 and row["failed_lanes"] == 0
        # At this moderate rate the ECC scheme keeps outputs exact.
        assert row["silent_lanes"] == 0
        assert row["exact_trials"] == 2

    def test_exhausted_retries_are_loud_not_silent(self, workload):
        """A query whose protection burns every retry is a *detected*
        failure: its lanes land in failed_lanes, never silent_lanes,
        and the trial is not exact."""
        z, xs = workload
        result = _campaign(z, xs).run(
            [FaultPoint(p_cim=0.3, fr_checks=2)], n_trials=1)
        row = result.rows[0]
        assert row["retry_exhausted"] > 0
        assert row["failed_lanes"] > 0
        assert row["exact_trials"] == 0
        # Silent corruption is only counted on completed queries.
        trial = result.trials[0].metrics
        assert trial["failed_lanes"] + trial["n_outputs"] \
            == z.shape[1] * xs.shape[0]

    def test_deterministic_across_pool_budgets(self, workload):
        z, xs = workload
        points = [FaultPoint(p_cim=0.05),
                  FaultPoint(p_cim=0.05, p_read=0.005),
                  FaultPoint(p_cim=0.05, margin_aware=False)]
        a = _campaign(z, xs, pool_banks=8).run(points, n_trials=2)
        b = _campaign(z, xs, pool_banks=2).run(points, n_trials=2)
        c = _campaign(z, xs).run(points, n_trials=2)   # unbounded
        assert a.rows == b.rows == c.rows
        assert [t.metrics for t in a.trials] == [t.metrics
                                                 for t in b.trials]

    def test_word_trials_match_bit_backend_outcomes(self, workload):
        """Same seeds, same backend-visible outcomes: the fused word
        campaign injects the same flips and corrupts the same lanes as
        the bit-level reference campaign (command-stream counters are
        backend-specific and excluded)."""
        z, xs = workload
        points = [FaultPoint(p_cim=0.1)]
        word = _campaign(z, xs).run(points, n_trials=2)
        bit = Campaign(z=z, xs=xs, kind="ternary", backend="bit").run(
            points, n_trials=2)
        for tw, tb in zip(word.trials, bit.trials):
            assert tw.metrics["injected"] > 0
            # Engine geometry differs per backend (cluster vs per-sign
            # engines), so flip counts differ; exactness/structure of
            # the accounting must agree.
            for key in ("n_outputs", "retry_exhausted", "detected"):
                assert tw.metrics[key] == tb.metrics[key]
        assert word.rows[0]["trace_replays"] > 0
        assert bit.rows[0]["trace_replays"] == 0

    def test_wave_admission_respects_pool(self, workload):
        z, xs = workload
        pool = BankPool(4)
        campaign = _campaign(z, xs, pool=pool, banks_per_trial=2)
        assert campaign.wave_size() == 2
        result = campaign.run([FaultPoint(p_cim=0.05)], n_trials=5)
        assert len(result.trials) == 5
        assert pool.banks_free == 4          # all leases returned
        assert pool.n_live_leases == 0
        # A pool smaller than banks_per_trial still admits one trial
        # (plans clamp to the total budget).
        tiny = _campaign(z, xs, pool_banks=1, banks_per_trial=4)
        assert tiny.wave_size() == 1
        out = tiny.run([FaultPoint(p_cim=0.0)], n_trials=1)
        assert out.rows[0]["exact_trials"] == 1

    def test_trial_reproducible_in_isolation(self, workload):
        z, xs = workload
        campaign = _campaign(z, xs)
        full = campaign.run([FaultPoint(p_cim=0.1)], n_trials=3)
        # Re-running just trial index 2 reproduces its metrics (no
        # wave list: the solo trial closes its own device).
        solo = _campaign(z, xs)._run_point_trial(
            0, FaultPoint(p_cim=0.1), 2)
        assert solo.metrics == full.trials[2].metrics

    def test_megatrace_path_preserves_campaign_accounting(self,
                                                          workload):
        """Trials whose repeated queries ride the stitched megatrace
        path (query 1 warms, query 2 compiles, query 3+ replay) keep
        the injected / detected / corrected / silent accounting --
        and the measured op stream -- identical to the per-uProgram
        fused path and the interpreted path, and stay reproducible
        from the seed tree when a trial is re-run alone."""
        import contextlib

        from repro.isa.trace import fusion_disabled, megatrace_disabled

        z, xs = workload
        reps = np.repeat(xs[:1], 4, axis=0)
        points = [FaultPoint(p_cim=0.02),                 # unprotected
                  FaultPoint(p_cim=2e-3, fr_checks=2)]    # protected

        def run(ctx=contextlib.nullcontext):
            with ctx():
                return _campaign(z, reps).run(points, n_trials=3)

        mega = run()
        plain = run(megatrace_disabled)
        interp = run(fusion_disabled)
        # Everything except the cache counters -- including injected,
        # detected, corrected, silent_lanes, measured_ops -- is equal
        # trial for trial across all three execution paths.
        drop = {"trace_compiles", "trace_replays",
                "megatrace_compiles", "megatrace_replays"}

        def core(result):
            return [{k: v for k, v in t.metrics.items() if k not in drop}
                    for t in result.trials]

        assert core(mega) == core(plain) == core(interp)
        # The unprotected point's trials really rode the stitched path.
        assert all(t.metrics["megatrace_replays"] > 0
                   for t in mega.point_trials(0))
        assert all(t.metrics["megatrace_replays"] == 0
                   for t in plain.trials + interp.trials)
        row = mega.rows[0]
        assert row["injected"] > 0
        assert row["megatrace_compiles"] > 0
        assert row["megatrace_replays"] > 0
        # The protected point exercises detection/correction; its
        # accounting equality is covered by the core() check above.
        assert mega.rows[1]["detected"] > 0
        assert mega.rows[1]["corrected"] > 0
        # Seed-tree isolation holds on the stitched path too.
        solo = _campaign(z, reps)._run_point_trial(0, points[0], 1)
        assert solo.metrics == mega.point_trials(0)[1].metrics


class TestCustomTrials:
    def test_custom_trial_metrics_are_averaged(self):
        def trial(point, rng):
            return {"metric": point.p_cim * 100 + rng.integers(0, 3)}

        campaign = Campaign(trial=trial, base_seed=5)
        points = [FaultPoint(p_cim=0.01, label="a"),
                  FaultPoint(p_cim=0.02, label="b")]
        result = campaign.run(points, n_trials=4)
        assert [row["point"] for row in result.rows] == ["a", "b"]
        for row, point in zip(result.rows, points):
            assert row["trials"] == 4
            assert point.p_cim * 100 <= row["metric"] \
                   <= point.p_cim * 100 + 2
        # Deterministic in the seed tree.
        again = Campaign(trial=trial, base_seed=5).run(points, n_trials=4)
        assert again.rows == result.rows

    def test_requires_workload_or_trial(self):
        with pytest.raises(ValueError, match="workload"):
            Campaign()
        with pytest.raises(ValueError, match="positive"):
            Campaign(trial=lambda p, r: {}).run([FaultPoint(0.0)],
                                                n_trials=0)


class TestResultRendering:
    def test_render_and_point_lookup(self, workload):
        z, xs = workload
        points = [FaultPoint(p_cim=0.0), FaultPoint(p_cim=0.1,
                                                    fr_checks=2)]
        result = _campaign(z, xs).run(points, n_trials=1)
        text = result.render()
        assert "Reliability campaign" in text
        assert "p_cim=0.1,fr=2" in text
        assert len(result.point_trials(0)) == 1
        assert isinstance(result, CampaignResult)

    def test_duplicate_grid_points_keep_separate_trial_sets(self,
                                                            workload):
        """Value-equal points at different grid positions must not
        pool their trials in the summary (aggregation is by index)."""
        z, xs = workload
        points = [FaultPoint(p_cim=0.1), FaultPoint(p_cim=0.1)]
        result = _campaign(z, xs).run(points, n_trials=2)
        assert [row["trials"] for row in result.rows] == [2, 2]
        assert len(result.point_trials(0)) == 2
        assert len(result.point_trials(1)) == 2
        # Distinct seed subtrees: the duplicates draw different faults.
        assert result.rows[0]["injected"] != result.rows[1]["injected"]

    def test_fault_point_names(self):
        assert FaultPoint(p_cim=1e-2).name == "p_cim=0.01"
        assert FaultPoint(p_cim=1e-2, p_read=1e-3, margin_aware=False,
                          fr_checks=2, scheme="ecc").name == \
            "p_cim=0.01,p_read=0.001,no-margin,fr=2,ecc"
        assert FaultPoint(p_cim=1.0, label="x").name == "x"
