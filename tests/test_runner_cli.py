"""The experiment runner CLI."""

import pytest

from repro.experiments.runner import main


class TestRunnerCLI:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig16" in out and "table1" in out

    def test_single_experiment(self, capsys):
        assert main(["fig19"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 19" in out
        assert "regenerated in" in out

    def test_chart_flag(self, capsys):
        assert main(["fig19", "--chart"]) == 0
        out = capsys.readouterr().out
        assert "[fig19 chart]" in out
        assert "o=binary" in out

    def test_chartless_experiment_still_runs(self, capsys):
        assert main(["fig07", "--chart"]) == 0
        out = capsys.readouterr().out
        assert "chart]" not in out      # no spec registered for fig07

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            main(["fig99"])
