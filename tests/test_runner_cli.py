"""The experiment runner CLI."""

import json

import pytest

from repro.experiments.runner import main


class TestRunnerCLI:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig16" in out and "table1" in out

    def test_single_experiment(self, capsys):
        assert main(["fig19"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 19" in out
        assert "regenerated in" in out

    def test_chart_flag(self, capsys):
        assert main(["fig19", "--chart"]) == 0
        out = capsys.readouterr().out
        assert "[fig19 chart]" in out
        assert "o=binary" in out

    def test_chartless_experiment_still_runs(self, capsys):
        assert main(["fig07", "--chart"]) == 0
        out = capsys.readouterr().out
        assert "chart]" not in out      # no spec registered for fig07

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            main(["fig99"])

    def test_json_output_is_machine_readable(self, capsys):
        assert main(["fig19", "--json"]) == 0
        out = capsys.readouterr().out
        doc = json.loads(out)                 # no tables mixed in
        (entry,) = doc["experiments"]
        assert entry["name"] == "fig19"
        assert entry["experiment_id"].startswith("Fig")
        assert entry["rows"] and isinstance(entry["rows"][0], dict)
        assert entry["seconds"] >= 0
        # Row values are JSON-native (numpy scalars folded).
        json.dumps(entry["rows"])

    def test_json_multiple_experiments(self, capsys):
        assert main(["fig19", "fig07", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert [e["name"] for e in doc["experiments"]] == ["fig19",
                                                           "fig07"]
