"""DRAM substrate: geometry, timing, command scheduling, subarray, Ambit."""

import numpy as np
import pytest

from repro.dram import (DDR5_4400, DDR5_4400_TIMING, AmbitSubarray,
                        CommandScheduler, DRAMGeometry, FaultModel, Port,
                        Subarray, aap_period_ns, time_for_aaps_ns)


class TestGeometry:
    def test_table2_defaults(self):
        assert DDR5_4400.chips_per_rank == 8
        assert DDR5_4400.ecc_chips_per_rank == 1
        assert DDR5_4400.banks_per_rank == 32
        assert DDR5_4400.rows_per_subarray == 1024
        assert DDR5_4400.row_bytes_per_chip == 1024

    def test_rank_row_width(self):
        assert DDR5_4400.rank_row_bits == 65536
        assert DDR5_4400.counters_per_subarray_row() == 65536

    def test_ambit_data_rows(self):
        """Sec. 2.2: r - 10 rows remain for data."""
        assert DDR5_4400.ambit_data_rows() == 1014

    def test_validation(self):
        with pytest.raises(ValueError):
            DRAMGeometry(banks_per_rank=0)
        with pytest.raises(ValueError):
            DRAMGeometry(rows_per_subarray=8).ambit_data_rows()


class TestTiming:
    def test_taap_formula(self):
        t = DDR5_4400_TIMING
        assert t.t_aap == pytest.approx(t.t_ras + t.t_rp + 4 * t.t_ck)

    def test_single_bank_period(self):
        """Sec. 7.2.1: one AAP every tAAP + tRRD."""
        t = DDR5_4400_TIMING
        assert aap_period_ns(1) == pytest.approx(t.t_aap + t.t_rrd)

    def test_sixteen_banks_faw_bound(self):
        """Sec. 7.2.1: 16 banks saturate the four-activation window."""
        t = DDR5_4400_TIMING
        assert aap_period_ns(16) == pytest.approx(
            max(t.t_rrd, t.t_faw / 4))

    def test_monotone_in_banks(self):
        periods = [aap_period_ns(b) for b in (1, 2, 4, 8, 16, 32)]
        assert periods == sorted(periods, reverse=True)

    def test_time_for_aaps(self):
        assert time_for_aaps_ns(0, 4) == 0.0
        one = time_for_aaps_ns(1, 4)
        many = time_for_aaps_ns(1001, 4)
        assert many == pytest.approx(one + 1000 * aap_period_ns(4))

    def test_bad_banks(self):
        with pytest.raises(ValueError):
            aap_period_ns(0)


class TestCommandScheduler:
    @pytest.mark.parametrize("banks", [1, 2, 4, 8, 16, 32])
    def test_matches_closed_form(self, banks):
        """Event-driven replay vs analytical model (our NVMain stand-in)."""
        sched = CommandScheduler()
        measured = sched.steady_state_period(banks, probe=1024)
        assert measured == pytest.approx(aap_period_ns(banks), rel=0.02)

    def test_faw_window_never_violated(self):
        sched = CommandScheduler()
        records = sched.schedule([64] * 16)
        issues = sorted(r.issue_ns for r in records)
        t_faw = DDR5_4400_TIMING.t_faw
        for i in range(4, len(issues)):
            assert issues[i] - issues[i - 4] >= t_faw - 1e-6

    def test_per_bank_spacing(self):
        sched = CommandScheduler()
        records = sched.schedule([8, 8])
        t = DDR5_4400_TIMING
        for bank in (0, 1):
            times = [r.issue_ns for r in records if r.bank == bank]
            gaps = np.diff(sorted(times))
            assert (gaps >= t.t_aap + t.t_rrd - 1e-6).all()

    def test_no_bank_starves(self):
        sched = CommandScheduler()
        records = sched.schedule([16] * 16)
        finishes = {}
        for r in records:
            finishes.setdefault(r.bank, []).append(r.finish_ns)
        spans = [max(v) for v in finishes.values()]
        assert max(spans) / min(spans) < 1.2

    def test_makespan_empty(self):
        assert CommandScheduler().issue_aaps(0, 4) == 0.0


class TestSubarray:
    def test_single_row_activation_refreshes(self, rng):
        sa = Subarray(4, 16)
        row = rng.integers(0, 2, 16).astype(np.uint8)
        sa.write_row(1, row)
        sensed = sa.activate([Port(1)])
        assert (sensed == row).all()
        sa.precharge()

    def test_triple_row_majority_destructive(self):
        sa = Subarray(3, 4)
        sa.write_row(0, np.array([1, 1, 0, 0], dtype=np.uint8))
        sa.write_row(1, np.array([1, 0, 1, 0], dtype=np.uint8))
        sa.write_row(2, np.array([1, 0, 0, 1], dtype=np.uint8))
        sensed = sa.activate([Port(0), Port(1), Port(2)])
        assert (sensed == [1, 0, 0, 0]).all()
        for r in range(3):                       # destructive overwrite
            assert (sa.read_row(r) == sensed).all()

    def test_negated_port(self):
        sa = Subarray(2, 4)
        sa.write_row(0, np.array([1, 0, 1, 0], dtype=np.uint8))
        sensed = sa.activate([Port(0, negated=True)])
        assert (sensed == [0, 1, 0, 1]).all()

    def test_even_row_activation_rejected(self):
        sa = Subarray(4, 4)
        with pytest.raises(ValueError):
            sa.activate([Port(0), Port(1)])

    def test_activate_requires_precharge(self):
        sa = Subarray(2, 4)
        sa.activate([Port(0)])
        with pytest.raises(RuntimeError):
            sa.activate([Port(1)])

    def test_margin_aware_faults_skip_unanimous(self):
        fm = FaultModel(p_cim=1.0, seed=1)      # every contested bit flips
        sa = Subarray(3, 8, fm)
        ones = np.ones(8, dtype=np.uint8)
        for r in range(3):
            sa.write_row(r, ones)
        sensed = sa.activate([Port(0), Port(1), Port(2)])
        assert (sensed == 1).all()              # unanimous: full margin

    def test_contested_faults_fire(self):
        fm = FaultModel(p_cim=1.0, seed=1)
        sa = Subarray(3, 8, fm)
        sa.write_row(0, np.ones(8, dtype=np.uint8))
        sensed = sa.activate([Port(0), Port(1), Port(2)])
        assert (sensed == 1).all()              # majority 0 flipped to 1
        assert fm.injected == 8


class TestAmbit:
    def test_b_group_and_or_not(self, rng):
        sa = AmbitSubarray(6, 32)
        a = rng.integers(0, 2, 32).astype(np.uint8)
        b = rng.integers(0, 2, 32).astype(np.uint8)
        sa.write_data_row(0, a)
        sa.write_data_row(1, b)
        # AND via MAJ(a, b, 0)
        sa.aap("D0", "B0")
        sa.aap("C0", "B1")
        sa.aap("D1", "B2")
        sa.ap("B12")
        sa.aap("B0", "D2")
        assert (sa.read_data_row(2) == (a & b)).all()
        # NOT via the B8 dual-write + DCC0 read
        sa.aap("D0", "B8")
        sa.aap("B4", "D3")
        assert (sa.read_data_row(3) == 1 - a).all()

    def test_footnote2_b11_mapping(self, rng):
        """B11 = {T0, T1, DCC0} per the paper's remap."""
        sa = AmbitSubarray(4, 16)
        x = rng.integers(0, 2, 16).astype(np.uint8)
        m = rng.integers(0, 2, 16).astype(np.uint8)
        sa.write_data_row(0, x)
        sa.write_data_row(1, m)
        sa.aap("D0", "B0")       # T0 <- x
        sa.aap("C0", "B1")       # T1 <- 0
        sa.aap("D1", "B5")       # DCC0 <- NOT m
        sa.ap("B11")             # MAJ(x, 0, NOT m) = x AND NOT m
        sa.aap("B0", "D2")
        assert (sa.read_data_row(2) == (x & (1 - m))).all()

    def test_c_group_constants(self):
        sa = AmbitSubarray(2, 8)
        sa.aap("C1", "D0")
        sa.aap("C0", "D1")
        assert (sa.read_data_row(0) == 1).all()
        assert (sa.read_data_row(1) == 0).all()

    def test_sixteen_addresses_resolve(self):
        sa = AmbitSubarray(2, 4)
        for i in range(16):
            ports = sa.resolve(f"B{i}")
            assert 1 <= len(ports) <= 3

    def test_unknown_address(self):
        with pytest.raises(KeyError):
            AmbitSubarray(2, 4).resolve("X9")

    def test_data_row_bounds(self):
        with pytest.raises(IndexError):
            AmbitSubarray(2, 4).resolve("D7")

    def test_op_counters(self):
        sa = AmbitSubarray(2, 4)
        sa.aap("C0", "D0")
        sa.ap("B12")
        assert sa.aap_count == 1 and sa.ap_count == 1
        assert sa.ops_issued == 2
        sa.reset_counts()
        assert sa.ops_issued == 0
