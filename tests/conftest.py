"""Shared fixtures for the Count2Multiply test suite."""

import numpy as np
import pytest


@pytest.fixture
def rng():
    """Deterministic per-test RNG."""
    return np.random.default_rng(0xC2A1)


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: long-running integration/fault sweeps")
