"""The README quickstart must run as-is.

Extracts every ```python fenced block from README.md and executes them
in order in one shared namespace (so later blocks may build on earlier
imports).  CI runs this as its docs check.
"""

import pathlib
import re

README = pathlib.Path(__file__).parent.parent / "README.md"

_BLOCK = re.compile(r"```python\n(.*?)```", re.DOTALL)


def test_readme_exists_with_code_blocks():
    text = README.read_text()
    blocks = _BLOCK.findall(text)
    assert len(blocks) >= 3, "README lost its quickstart code blocks"


def test_readme_python_blocks_execute():
    namespace = {}
    for i, block in enumerate(_BLOCK.findall(README.read_text())):
        try:
            exec(compile(block, f"README.md[block {i}]", "exec"), namespace)
        except Exception as err:  # pragma: no cover - failure reporting
            raise AssertionError(
                f"README block {i} failed: {err}\n---\n{block}") from err
