"""Matrix kernels: GEMV/GEMM, CSD bit-slicing, tensor ops."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CounterArray
from repro.core.johnson import encode_lanes
from repro.dram import FaultModel
from repro.engine import CountingEngine
from repro.kernels import (binary_gemm, binary_gemv, bitsliced_gemm,
                           bitsliced_gemv, csd_digits, csd_slices,
                           engine_vector_add, relu, shift_left,
                           ternary_gemm, ternary_gemv)


class TestGEMV:
    def test_binary_matches_numpy(self, rng):
        x = rng.integers(0, 25, 10)
        z = rng.integers(0, 2, (10, 18)).astype(np.uint8)
        assert (binary_gemv(x, z) == x @ z).all()

    def test_zero_inputs_are_skipped(self, rng):
        x = np.zeros(6, dtype=np.int64)
        z = rng.integers(0, 2, (6, 8)).astype(np.uint8)
        assert (binary_gemv(x, z) == 0).all()

    def test_binary_rejects_negative(self):
        with pytest.raises(ValueError):
            binary_gemv(np.array([-1]), np.ones((1, 2), dtype=np.uint8))

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            binary_gemv(np.arange(3), np.ones((4, 2), dtype=np.uint8))

    def test_ternary_matches_numpy(self, rng):
        x = rng.integers(-12, 13, 9)
        z = rng.integers(-1, 2, (9, 14)).astype(np.int8)
        assert (ternary_gemv(x, z) == x @ z).all()

    def test_ternary_rejects_non_ternary(self):
        with pytest.raises(ValueError):
            ternary_gemv(np.array([1]), np.array([[2]], dtype=np.int8))

    def test_faulty_gemv_differs_but_bounded(self, rng):
        x = rng.integers(1, 10, 8)
        z = rng.integers(0, 2, (8, 32)).astype(np.uint8)
        fm = FaultModel(p_cim=2e-2, seed=5)
        got = binary_gemv(x, z, fault_model=fm)
        exact = x @ z
        assert fm.injected > 0
        # Johnson errors stay low-order: no astronomic deviations.
        assert np.abs(got - exact).max() < exact.sum()


class TestGEMM:
    def test_binary(self, rng):
        x = rng.integers(0, 8, (5, 7))
        z = rng.integers(0, 2, (7, 9)).astype(np.uint8)
        assert (binary_gemm(x, z) == x @ z).all()

    def test_ternary(self, rng):
        x = rng.integers(-6, 7, (4, 6))
        z = rng.integers(-1, 2, (6, 8)).astype(np.int8)
        assert (ternary_gemm(x, z) == x @ z).all()

    def test_gemm_shape_validation(self):
        with pytest.raises(ValueError):
            binary_gemm(np.ones((2, 3), dtype=np.int64),
                        np.ones((4, 2), dtype=np.uint8))


class TestCSD:
    def test_known_decompositions(self):
        assert csd_digits(7) == [-1, 0, 0, 1]          # 8 - 1
        assert csd_digits(0) == [0]
        assert csd_digits(-3) == [1, 0, -1]            # -4 + 1

    @pytest.mark.parametrize("v", range(-64, 65))
    def test_reconstruction_and_adjacency(self, v):
        digits = csd_digits(v)
        assert sum(d << i for i, d in enumerate(digits)) == v
        for a, b in zip(digits, digits[1:]):
            assert not (a and b)                       # canonical form

    def test_nonzero_count_at_most_binary(self):
        """CSD never uses more non-zeros than plain binary."""
        for v in range(1, 256):
            csd_nnz = sum(1 for d in csd_digits(v) if d)
            bin_nnz = bin(v).count("1")
            assert csd_nnz <= bin_nnz

    def test_range_check(self):
        with pytest.raises(ValueError):
            csd_digits(1 << 20, max_bits=16)

    def test_slices_reconstruct_matrix(self, rng):
        z = rng.integers(-15, 16, (5, 6))
        total = np.zeros_like(z)
        for sl in csd_slices(z):
            total += sl.sign * (1 << sl.power) * sl.mask.astype(np.int64)
        assert (total == z).all()

    def test_bitsliced_gemv(self, rng):
        x = rng.integers(-9, 10, 5)
        z = rng.integers(-7, 8, (5, 7))
        assert (bitsliced_gemv(x, z, max_bits=6) == x @ z).all()

    def test_bitsliced_gemm(self, rng):
        x = rng.integers(-5, 6, (3, 4))
        z = rng.integers(-6, 7, (4, 5))
        assert (bitsliced_gemm(x, z, max_bits=6) == x @ z).all()


class TestTensorOps:
    def test_shift_left(self, rng):
        ca = CounterArray(5, 3, 6)
        vals = rng.integers(0, 60, 6)
        ca.set_totals(vals.tolist())
        shift_left(ca, 3)
        assert ca.totals() == (vals * 8).tolist()

    def test_shift_zero_noop(self):
        ca = CounterArray(5, 2, 2)
        ca.set_totals([5, 9])
        shift_left(ca, 0)
        assert ca.totals() == [5, 9]

    def test_shift_negative_rejected(self):
        with pytest.raises(ValueError):
            shift_left(CounterArray(5, 2, 1), -1)

    def test_relu(self):
        out = relu([10, 3, 0, 7], [4, 8, 0, 7])
        assert (out == [6, 0, 0, 0]).all()

    def test_engine_vector_add_single_digit(self, rng):
        dst = CountingEngine(5, 1, 12, n_masks=1)
        src = CountingEngine(5, 1, 12, n_masks=1)
        dv = rng.integers(0, 5, 12)
        sv = rng.integers(0, 5, 12)
        for eng, vals in ((dst, dv), (src, sv)):
            eng.reset_counters()
            lanes = encode_lanes(vals, 5)
            for i in range(5):
                eng.subarray.write_data_row(
                    eng.layout.digit_bit_rows[0][i], lanes[i])
        n_incs = engine_vector_add(dst, src)
        assert n_incs == 10                            # always 2n
        assert (dst.read_values(strict=False) == dv + sv).all()

    def test_engine_vector_add_geometry_check(self):
        with pytest.raises(ValueError):
            engine_vector_add(CountingEngine(5, 1, 4),
                              CountingEngine(4, 1, 4))


@given(k=st.integers(1, 6), n=st.integers(1, 8), seed=st.integers(0, 999))
@settings(max_examples=40, deadline=None)
def test_property_binary_gemv(k, n, seed):
    rng = np.random.default_rng(seed)
    x = rng.integers(0, 20, k)
    z = rng.integers(0, 2, (k, n)).astype(np.uint8)
    assert (binary_gemv(x, z) == x @ z).all()
