"""Extension features: BCH-backed protection, counter relocation,
all-bank activation, and alternative-backend cost knobs."""

import numpy as np
import pytest

from repro.dram import FaultModel
from repro.ecc import BatchedBCH, BCHCode
from repro.engine import CountingEngine
from repro.perf import C2MConfig, C2MModel, GEMMShape


class TestBCHProtection:
    def test_engine_with_bch_code_is_exact_under_faults(self, rng):
        code = BatchedBCH(BCHCode(7, 2, data_bits=64))
        fm = FaultModel(p_cim=5e-3, seed=17)
        eng = CountingEngine(n_bits=2, n_digits=4, n_lanes=16,
                             fault_model=fm, fr_checks=2,
                             protection_code=code)
        ref = np.zeros(16, dtype=np.int64)
        for _ in range(8):
            x = int(rng.integers(1, 40))
            mask = rng.integers(0, 2, 16).astype(np.uint8)
            eng.load_mask(0, mask)
            eng.accumulate(x)
            ref += x * mask.astype(np.int64)
        assert (eng.read_values(strict=False) == ref).all()
        assert eng.protection.stats.detections > 0

    def test_batched_bch_parity_shape(self, rng):
        code = BatchedBCH(BCHCode(7, 3, data_bits=64))
        data = rng.integers(0, 2, (3, 64)).astype(np.uint8)
        parity = code.parity_bits(data)
        assert parity.shape == (3, 21)

    def test_batched_bch_homomorphic(self, rng):
        code = BatchedBCH(BCHCode(7, 2, data_bits=64))
        a = rng.integers(0, 2, (2, 64)).astype(np.uint8)
        b = rng.integers(0, 2, (2, 64)).astype(np.uint8)
        assert (code.parity_bits(a ^ b)
                == (code.parity_bits(a) ^ code.parity_bits(b))).all()


class TestCounterRelocation:
    def test_export_import_roundtrip(self, rng):
        """Sec. 5.2.2: park a finished Y row, reuse the counter rows."""
        eng = CountingEngine(n_bits=2, n_digits=5, n_lanes=12)
        mask = rng.integers(0, 2, 12).astype(np.uint8)
        eng.load_mask(0, mask)
        eng.accumulate(37)
        first_row = eng.read_values().copy()
        image = eng.export_counters()

        eng.reset_counters()
        eng.load_mask(0, np.ones(12, dtype=np.uint8))
        eng.accumulate(5)
        assert (eng.read_values() == 5).all()

        eng.import_counters(image)
        assert (eng.read_values() == first_row).all()

    def test_import_shape_check(self):
        eng = CountingEngine(n_bits=2, n_digits=3, n_lanes=4)
        with pytest.raises(ValueError):
            eng.import_counters(np.zeros((2, 4), dtype=np.uint8))

    def test_gemm_via_relocation(self, rng):
        """Row-sequential GEMM with export/reset per output row."""
        x = rng.integers(0, 9, (3, 5))
        z = rng.integers(0, 2, (5, 10)).astype(np.uint8)
        eng = CountingEngine(n_bits=2, n_digits=5, n_lanes=10)
        out = []
        for o in range(3):
            eng.reset_counters()
            for k in range(5):
                if x[o, k]:
                    eng.load_mask(0, z[k])
                    eng.accumulate(int(x[o, k]))
            out.append(eng.read_values().copy())
            eng.export_counters()            # park Y[o] elsewhere
        assert (np.stack(out) == x @ z).all()


class TestAllBankActivation:
    #: 64 column tiles (64 * 65536 outputs).
    WIDE = GEMMShape(1, 64 * 65536, 1000)

    def test_helps_only_wide_outputs(self):
        narrow = GEMMShape(1, 22016, 8192)        # one column tile
        normal = C2MModel(C2MConfig(banks=16))
        allbank = C2MModel(C2MConfig(banks=16, all_bank=True))
        # Narrow outputs: broadcast serializes on the bus -> slower.
        assert (allbank.cost(narrow).time_s
                > normal.cost(narrow).time_s)
        # Wide outputs: one command serves all 64 tiles at once.
        assert (allbank.cost(self.WIDE).time_s
                < normal.cost(self.WIDE).time_s)

    def test_all_bank_burns_more_power(self):
        normal = C2MModel(C2MConfig(banks=16)).cost(self.WIDE)
        allbank = C2MModel(C2MConfig(banks=16,
                                     all_bank=True)).cost(self.WIDE)
        assert allbank.power_w > normal.power_w

    def test_all_bank_tile_math(self):
        model = C2MModel(C2MConfig(banks=16, all_bank=True))
        plain = C2MModel(C2MConfig(banks=16))
        # Broadcast width = banks x subarrays = 512 tiles per command.
        uneven = GEMMShape(1, 4_500_000, 10)      # 69 tiles -> 1 group
        assert (model.gemm_aaps(uneven) * 69
                == pytest.approx(plain.gemm_aaps(uneven)))
        # Beyond the broadcast width, groups grow again.
        huge = GEMMShape(1, 600 * 65536, 10)      # 600 tiles -> 2 groups
        assert (model.gemm_aaps(huge) * 300
                == pytest.approx(plain.gemm_aaps(huge)))
