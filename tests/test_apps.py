"""Application workloads: fast fault models, DNA, BERT proxy, TWN, GCN."""

import numpy as np
import pytest

from repro.apps import (BertProxy, BertProxyConfig, DNAFilterConfig,
                        DNAFilterWorkload, FastJCAccumulator,
                        FastRCAAccumulator, LLAMA_SHAPES, WORKLOAD_NAMES,
                        GCNConfig, SyntheticCitationGraph,
                        classification_agreement, conv2d_ternary_cim,
                        conv2d_ternary_reference, effective_bit_fault_rate,
                        layer_inventory, random_ternary_layer,
                        ternarize_weights, token_repetition_histogram)


class TestFastSim:
    def test_jc_fault_free_exact(self, rng):
        acc = FastJCAccumulator(n_bits=2, n_digits=6, n_lanes=16)
        ref = np.zeros(16, dtype=np.int64)
        for _ in range(50):
            v = int(rng.integers(0, 40))
            mask = rng.integers(0, 2, 16).astype(np.uint8)
            acc.accumulate(v, mask)
            ref += v * mask.astype(np.int64)
        assert (acc.read() == ref).all()

    def test_jc_signed_stream(self, rng):
        acc = FastJCAccumulator(n_bits=2, n_digits=7, n_lanes=8)
        ones = np.ones(8, dtype=np.uint8)
        acc.accumulate(300, ones)
        ref = 300
        for _ in range(30):
            v = int(rng.integers(-20, 30))
            acc.accumulate(v, ones)
            ref += v
        assert (acc.read() == ref).all()

    @pytest.mark.parametrize("cls, kwargs", [
        (FastJCAccumulator, {"n_bits": 2, "n_digits": 6, "n_lanes": 8}),
        (FastRCAAccumulator, {"width": 16, "n_lanes": 8})])
    def test_reset_reuse_stays_exact(self, cls, kwargs, rng):
        """Plan-style reuse: reset between queries, exact results."""
        acc = cls(**kwargs)
        for _ in range(3):
            acc.reset()
            ref = np.zeros(8, dtype=np.int64)
            for _ in range(5):
                v = int(rng.integers(1, 30))
                mask = rng.integers(0, 2, 8).astype(np.uint8)
                acc.accumulate(v, mask)
                ref += v * mask.astype(np.int64)
            read = (acc.read(signed=False)
                    if isinstance(acc, FastRCAAccumulator) else acc.read())
            assert (read == ref).all()

    def test_rca_fault_free_exact(self, rng):
        acc = FastRCAAccumulator(width=20, n_lanes=12)
        ref = np.zeros(12, dtype=np.int64)
        for _ in range(40):
            v = int(rng.integers(0, 60))
            mask = rng.integers(0, 2, 12).astype(np.uint8)
            acc.accumulate(v, mask)
            ref += v * mask.astype(np.int64)
        assert (acc.read(signed=False) == ref).all()

    def test_jc_errors_small_rca_errors_large(self):
        """The structural contrast behind Fig. 4a."""
        jc = FastJCAccumulator(n_bits=5, n_digits=3, n_lanes=512,
                               fault_rate=1e-3, scheme="none", seed=1)
        rca = FastRCAAccumulator(width=16, n_lanes=512, fault_rate=1e-3,
                                 scheme="none", seed=1)
        ones = np.ones(512, dtype=np.uint8)
        for _ in range(60):
            jc.accumulate(7, ones)
            rca.accumulate(7, ones)
        jc_rmse = np.sqrt(np.mean((jc.read() - 420.0) ** 2))
        rca_rmse = np.sqrt(np.mean((rca.read(signed=False) - 420.0) ** 2))
        assert rca_rmse > 10 * jc_rmse

    def test_scheme_rates(self):
        assert effective_bit_fault_rate(1e-2, "ecc") < \
            effective_bit_fault_rate(1e-2, "tmr") < \
            effective_bit_fault_rate(1e-2, "none")
        with pytest.raises(ValueError):
            effective_bit_fault_rate(1e-2, "prayer")


class TestDNA:
    @pytest.fixture(scope="class")
    def workload(self):
        return DNAFilterWorkload(DNAFilterConfig(n_reads=30))

    def test_fault_free_f1_near_unity(self, workload):
        res = workload.evaluate("jc", 0.0, "none")
        assert res["f1"] > 0.9
        assert res["recall"] == 1.0
        assert res["rmse"] == 0.0

    def test_accumulated_scores_match_exact(self, workload):
        read = workload.reads[0]
        acc = workload.make_accumulator("jc", 0.0, "none", seed=1)
        scores = workload.accumulate_scores(read, acc)
        assert (scores == workload.exact_scores(read)).all()

    def test_jc_tolerates_more_faults_than_rca(self, workload):
        f = 1e-4
        jc = workload.evaluate("jc", f, "none", max_reads=20)["f1"]
        rca = workload.evaluate("rca", f, "none", max_reads=20)["f1"]
        assert jc > rca + 0.2

    def test_ecc_restores_f1(self, workload):
        ecc = workload.evaluate("jc", 1e-2, "ecc", max_reads=20)["f1"]
        bare = workload.evaluate("jc", 1e-2, "none", max_reads=20)["f1"]
        assert ecc > 0.9 > bare

    def test_token_histogram_small_values(self):
        values, counts = token_repetition_histogram(
            DNAFilterConfig(n_reads=20))
        p99 = np.percentile(np.repeat(values, counts), 99)
        assert p99 <= 2 ** 8                  # "circa 4-8 bits" (Fig. 3a)

    def test_unknown_accumulator(self, workload):
        with pytest.raises(ValueError):
            workload.make_accumulator("abacus", 0.0, "none")


class TestBERTProxy:
    @pytest.fixture(scope="class")
    def proxy(self):
        return BertProxy(BertProxyConfig())

    def test_sw_accuracy_in_bert_band(self, proxy):
        """Fig. 17b's SW line: usable accuracy (paper band ~70-85 %)."""
        acc = proxy.accuracy()
        assert 0.7 < acc <= 1.0

    def test_clean_cim_path_matches_sw(self, proxy):
        sw = proxy.accuracy(max_samples=20)
        cim = proxy.accuracy("jc", 0.0, "none", max_samples=20)
        assert abs(sw - cim) < 0.15

    @pytest.mark.slow
    def test_rca_collapses_before_jc(self, proxy):
        f = 1e-3
        jc = proxy.accuracy("jc", f, "none", max_samples=20)
        rca = proxy.accuracy("rca", f, "none", max_samples=20)
        assert jc > rca

    @pytest.mark.slow
    def test_ecc_holds_at_1e2(self, proxy):
        acc = proxy.accuracy("jc", 1e-2, "ecc", max_samples=20)
        assert acc > 0.7                       # paper's MNLI usable bar


class TestTWN:
    def test_ternarize_values(self, rng):
        w = rng.normal(0, 1, (4, 4))
        t = ternarize_weights(w)
        assert set(np.unique(t)).issubset({-1, 0, 1})

    def test_conv_cim_matches_reference(self, rng):
        x = rng.integers(0, 12, (2, 7, 7))
        w = random_ternary_layer(2, 3, 3, seed=4)
        assert (conv2d_ternary_cim(x, w)
                == conv2d_ternary_reference(x, w)).all()

    def test_planned_conv_streams_many_images(self, rng):
        """Plant the filters once, stream a batch of images."""
        from repro.apps.twn import PlannedConv2d
        w = random_ternary_layer(2, 3, 3, seed=9)
        layer = PlannedConv2d(w)
        try:
            for _ in range(3):
                x = rng.integers(0, 10, (2, 6, 6))
                assert (layer(x)
                        == conv2d_ternary_reference(x, w)).all()
            stats = layer.stats
            assert stats.queries == 3 * 16          # 16 pixels per image
            assert stats.replans == 0               # one plant serves all
        finally:
            layer.close()

    def test_reference_matches_direct_convolution(self, rng):
        x = rng.integers(0, 5, (1, 5, 5))
        w = random_ternary_layer(1, 1, 3, seed=2)
        out = conv2d_ternary_reference(x, w)
        direct = np.zeros((1, 3, 3), dtype=np.int64)
        for i in range(3):
            for j in range(3):
                direct[0, i, j] = int(
                    (x[0, i:i + 3, j:j + 3] * w[0, 0]).sum())
        assert (out == direct).all()


class TestGCN:
    def test_forward_exact(self):
        graph = SyntheticCitationGraph(GCNConfig(
            n_nodes=30, n_edges=80, n_feats=8, n_hidden=4))
        res = classification_agreement(graph)
        assert res["exact"] == 1.0
        assert res["argmax_agreement"] == 1.0

    def test_adjacency_has_self_loops(self):
        graph = SyntheticCitationGraph(GCNConfig(n_nodes=20, n_edges=40))
        assert (np.diag(graph.adjacency) == 1).all()

    def test_forward_reuses_external_device(self):
        """Repeated forward passes can share one device's plans."""
        from repro.apps.gcn import gcn_forward_cim, gcn_forward_reference
        from repro.device import Device
        graph = SyntheticCitationGraph(GCNConfig(
            n_nodes=24, n_edges=60, n_feats=6, n_hidden=4))
        ref = gcn_forward_reference(graph)
        with Device() as dev:
            assert (gcn_forward_cim(graph, device=dev) == ref).all()
            # Per-call plans are closed and forgotten again: the shared
            # device does not accumulate resources across passes.
            assert dev.plans == []
            # The device fixes the engine config; contradicting knobs
            # raise instead of being silently ignored.
            with pytest.raises(ValueError, match="explicit device"):
                gcn_forward_cim(graph, device=dev, backend="bit")

    def test_planned_conv_rejects_knobs_with_external_device(self):
        from repro.apps.twn import PlannedConv2d
        from repro.device import Device
        w = random_ternary_layer(1, 2, 3, seed=3)
        with Device() as dev:
            with pytest.raises(ValueError, match="explicit device"):
                PlannedConv2d(w, n_bits=4, device=dev)


class TestWorkloads:
    def test_table3_shapes(self):
        assert LLAMA_SHAPES["V0"].n == 22016
        assert LLAMA_SHAPES["M3"].m == 8192
        assert LLAMA_SHAPES["M4"].k == 28672
        for name, shape in LLAMA_SHAPES.items():
            assert (shape.m == 1) == name.startswith("V")

    def test_all_inventories_nonempty(self):
        for name in WORKLOAD_NAMES:
            layers = layer_inventory(name)
            assert layers
            for layer in layers:
                assert 0.0 <= layer.sparsity < 1.0
                assert layer.shape.nominal_ops > 0

    def test_vgg16_has_more_convs_than_vgg13(self):
        v13 = len(layer_inventory("VGG13"))
        v16 = len(layer_inventory("VGG16"))
        assert v16 == v13 + 3

    def test_gcn_adjacency_sparsity(self):
        layers = layer_inventory("GCN")
        agg = [l for l in layers if l.shape.name.startswith("agg")]
        assert all(l.sparsity > 0.999 for l in agg)

    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            layer_inventory("doom")
