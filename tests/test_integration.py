"""Cross-module integration: the full stack from scheduler to subarray
bits, protected execution under injected faults, and the paper's
system-level claims exercised end to end."""

import numpy as np
import pytest

from repro import (C2MConfig, C2MModel, CountingEngine, FaultModel,
                   GEMMShape, binary_gemv, ternary_gemv)
from repro.core import CounterArray, IARMScheduler, apply_events
from repro.dram import CommandScheduler, aap_period_ns
from repro.ecc import HAMMING_72_64
from repro.kernels import bitsliced_gemv
from repro.perf import gpu_cost, simdram_cost


class TestFullStackCounting:
    def test_three_models_agree(self, rng):
        """Golden CounterArray == fast scheduler replay == gate level."""
        n_bits, n_digits, lanes = 2, 6, 16
        engine = CountingEngine(n_bits, n_digits, lanes)
        golden = CounterArray(n_bits, n_digits, lanes)
        sched = IARMScheduler(n_bits, n_digits)
        direct = np.zeros(lanes, dtype=np.int64)
        for _ in range(30):
            x = int(rng.integers(0, 150))
            mask = rng.integers(0, 2, lanes).astype(np.uint8)
            engine.load_mask(0, mask)
            events = sched.schedule_value(x)
            engine.execute_events(events)
            apply_events(golden, events, mask=mask.astype(bool))
            direct += x * mask.astype(np.int64)
        flush = sched.flush()
        engine.execute_events(flush)
        apply_events(golden, flush)
        golden.resolve_all()
        assert (engine.read_values() == direct).all()
        assert golden.totals() == direct.tolist()

    def test_mixed_precision_pipeline(self, rng):
        """int8 x int4 GEMV via CSD slices on the gate-level engine."""
        x = rng.integers(-20, 21, 6)
        z = rng.integers(-7, 8, (6, 10))
        assert (bitsliced_gemv(x, z, max_bits=5) == x @ z).all()

    def test_protected_gemv_under_faults_is_exact(self, rng):
        x = rng.integers(1, 12, 5)
        z = rng.integers(0, 2, (5, 16)).astype(np.uint8)
        fm = FaultModel(p_cim=5e-3, seed=21)
        got = binary_gemv(x, z, fault_model=fm, fr_checks=2)
        assert fm.injected > 0
        assert (got == x @ z).all()

    def test_faulty_unprotected_gemv_is_not(self, rng):
        x = rng.integers(1, 12, 8)
        z = rng.integers(0, 2, (8, 64)).astype(np.uint8)
        fm = FaultModel(p_cim=2e-2, seed=22)
        got = binary_gemv(x, z, fault_model=fm)
        assert (got != x @ z).any()


class TestECCPlusEngine:
    def test_row_level_codeword_protection(self, rng):
        """Counter rows round-trip through the (72,64) DIMM code."""
        data = rng.integers(0, 2, (8, 64)).astype(np.uint8)
        cw = HAMMING_72_64.encode(data)
        cw[3, 17] ^= 1                        # a read-path upset
        res = HAMMING_72_64.decode(cw)
        assert res.corrected[3]
        assert (res.data == data).all()


class TestPerformancePipeline:
    def test_latency_consistent_with_event_scheduler(self):
        """Closed-form kernel latency == event-driven command replay."""
        model = C2MModel(C2MConfig(banks=4))
        shape = GEMMShape(1, 64, 4)
        aaps = int(round(model.gemm_aaps(shape)))
        closed = model.cost(shape).time_s * 1e9
        event = CommandScheduler().issue_aaps(aaps, 4)
        assert event == pytest.approx(closed, rel=0.05)

    def test_full_comparison_story(self):
        """One paragraph of the abstract, executed."""
        shape = GEMMShape(1, 22016, 8192)
        c2m = C2MModel(C2MConfig(banks=16)).cost(shape)
        sim = simdram_cost(shape, banks=16)
        gpu = gpu_cost(shape)
        assert sim.time_s / c2m.time_s > 2          # headline speedup
        assert c2m.gops_per_watt > gpu.gops_per_watt
        assert (c2m.gops_per_mm2 / sim.gops_per_mm2
                == pytest.approx(sim.time_s / c2m.time_s, rel=0.01))

    def test_bank_period_used_by_model(self):
        cfg = C2MConfig(banks=16)
        model = C2MModel(cfg)
        shape = GEMMShape(1, 100, 100)
        t = model.cost(shape).time_s * 1e9
        aaps = model.gemm_aaps(shape)
        assert t == pytest.approx(
            cfg.timing.t_aap + (aaps - 1) * aap_period_ns(16), rel=1e-6)


class TestTernaryEndToEnd:
    def test_attention_style_projection(self, rng):
        """A seq x d ternary projection, one row per GEMV."""
        seq, d = 4, 12
        x = rng.integers(-30, 31, (seq, d))
        w = rng.integers(-1, 2, (d, d)).astype(np.int8)
        out = np.stack([ternary_gemv(x[i], w) for i in range(seq)])
        assert (out == x @ w).all()
