"""The multi-process serve fleet: shm marshalling, placement, shard
workers, the asyncio front door and fleet-routed campaigns.

The load-bearing guarantees pinned here:

* **Differential parity** -- a fleet answers an identical query stream
  with bit-identical values *and* per-model counter images to the
  single-process ``Server``, on both backends.
* **Bit-exact relocation** -- a counter image exported in one worker
  process and imported into a fresh worker over shared memory
  continues the stream exactly (both backends).
* **Crash containment** -- a worker dying mid-request resolves every
  affected future with :class:`WorkerCrashedError`; nothing hangs.
* **Close semantics** -- queued queries complete, stranded futures are
  rejected with :class:`FleetClosedError`, close is idempotent.
* **Campaign parity** -- fleet-fanned reliability trials reproduce the
  in-process campaign rows exactly.
"""

import threading
import time

import numpy as np
import pytest

from repro.fleet import shm as fshm
from repro.fleet.fleet import (Fleet, FleetClosedError,
                               FleetSaturatedError)
from repro.fleet.placement import Move, Placement, PlacementError
from repro.fleet.worker import (ShardHandle, ShardOpError,
                                WorkerCrashedError)
from repro.reliability.campaign import Campaign, FaultPoint
from repro.serve.server import Server

BACKENDS = ["bit", "word"]


def payload_equal(a, b) -> bool:
    """Deep equality over parked counter payloads (dict/tuple/array)."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return (isinstance(a, np.ndarray) and isinstance(b, np.ndarray)
                and a.shape == b.shape and bool((a == b).all()))
    if isinstance(a, dict) and isinstance(b, dict):
        return a.keys() == b.keys() and all(
            payload_equal(a[k], b[k]) for k in a)
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return len(a) == len(b) and all(
            payload_equal(x, y) for x, y in zip(a, b))
    return a == b


# ----------------------------------------------------------------------
# shared-memory marshalling
# ----------------------------------------------------------------------
class TestShm:
    def test_pack_image_round_trip_odd_widths(self, rng):
        for cols in (1, 63, 64, 65, 200):
            img = rng.integers(0, 2, (5, cols)).astype(np.uint8)
            words, n_cols = fshm.pack_image(img)
            assert words.dtype == np.uint64
            assert words.shape == (5, (cols + 63) // 64)
            assert (fshm.unpack_image(words, n_cols) == img).all()

    def test_pack_state_round_trips_nested_payload(self, rng):
        img = rng.integers(0, 2, (6, 70)).astype(np.uint8)
        payload = {"cluster": (4, 3, img),
                   "engines": (2, [img[:2], img[2:]]),
                   "n": 7}
        packed = fshm.pack_state(payload)
        # every 2-D uint8 image really was packed
        assert packed["cluster"][2][0] == "__packed_image__"
        assert payload_equal(fshm.unpack_state(packed), payload)

    def test_pack_state_leaves_non_bit_arrays_alone(self):
        words = np.arange(6, dtype=np.uint64).reshape(2, 3)
        assert fshm.pack_state({"w": words})["w"] is words

    def test_extract_inject_arrays(self, rng):
        img = rng.integers(0, 2, (3, 9)).astype(np.uint8)
        tree, arrays = fshm.extract_arrays({"a": img, "b": [img, 5]})
        assert len(arrays) == 2
        assert payload_equal(fshm.inject_arrays(tree, arrays),
                             {"a": img, "b": [img, 5]})

    def test_arena_stage_fetch_round_trip(self, rng):
        arena = fshm.Arena(size=1 << 12)
        try:
            arrays = [rng.integers(0, 100, (4, 7)),
                      np.float64([[1.5, -2.5]]),
                      np.uint64([3, 4, 5])]
            descs = arena.stage(arrays)
            out = arena.fetch(descs)
            for a, b in zip(arrays, out):
                assert a.dtype == b.dtype and (a == b).all()
        finally:
            arena.close()

    def test_arena_overflow_falls_back_inline(self):
        arena = fshm.Arena(size=256)
        try:
            big = np.zeros(1024, dtype=np.int64)
            assert arena.stage([big]) is None
            tag, data = fshm.marshal(arena, [big])
            assert tag == "inline"
            (out,) = fshm.unmarshal(arena, (tag, data))
            assert (out == big).all()
        finally:
            arena.close()

    def test_arena_close_idempotent(self):
        arena = fshm.Arena(size=256)
        arena.close()
        arena.close()


# ----------------------------------------------------------------------
# placement
# ----------------------------------------------------------------------
class TestPlacement:
    def test_assign_best_fit_deterministic(self):
        p = Placement([0, 1, 2], {0: 8, 1: 8, 2: 8})
        assert p.assign("a", footprint=4) == 0
        assert p.assign("b", footprint=2) == 1
        assert p.assign("c", footprint=1) == 2
        # free budgets now 4/6/7 -> next lands on shard 2
        assert p.assign("d", footprint=1) == 2

    def test_assign_duplicate_raises(self):
        p = Placement([0], {0: 8})
        p.assign("a")
        with pytest.raises(ValueError, match="already placed"):
            p.assign("a")

    def test_unaccounted_budgets_spread(self):
        p = Placement([0, 1], {0: None, 1: None})
        assert {p.assign("a"), p.assign("b")} == {0, 1}

    def test_mark_dead_excludes_and_reports_stranded(self):
        p = Placement([0, 1], {0: 8, 1: 8})
        p.assign("a", footprint=8)        # shard 0
        assert p.mark_dead(0) == ["a"]
        assert p.shards == [1]
        assert p.assign("b") == 1
        p.mark_dead(1)
        with pytest.raises(PlacementError):
            p.assign("c")

    def test_plan_moves_rebalances_hot_shard(self):
        p = Placement([0, 1], {0: 16, 1: 16})
        p.assign("hot", footprint=4)      # shard 0
        p.assign("cold", footprint=4)     # shard 1
        p.assign("warm", footprint=4)     # shard 0 or 1; force loads
        p.note_queries("hot", 100)
        warm_shard = p.shard_of("warm")
        p.note_queries("warm", 20 if warm_shard == 0 else 0)
        moves = p.plan_moves(ratio=2.0)
        if warm_shard == 0:
            assert moves == [Move(model="warm", src=0, dst=1,
                                  footprint=4)]
        # balanced loads propose nothing further at sane ratios
        for mv in moves:
            p.move(mv.model, mv.dst)
        p.reset_loads()
        assert p.plan_moves(ratio=2.0) == []

    def test_plan_moves_respects_destination_budget(self):
        p = Placement([0, 1], {0: 16, 1: 1})
        p.assign("big", footprint=8)      # shard 0 (most free)
        p.note_queries("big", 100)
        # big does not fit shard 1's free budget -> no move proposed
        assert p.plan_moves(ratio=2.0) == []

    def test_move_to_dead_shard_rejected(self):
        p = Placement([0, 1], {0: 8, 1: 8})
        p.assign("a")
        p.mark_dead(1)
        with pytest.raises(PlacementError):
            p.move("a", 1)


# ----------------------------------------------------------------------
# shard workers (direct handle, no front door)
# ----------------------------------------------------------------------
class TestShardHandle:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_relocation_across_processes_bit_exact(self, backend, rng):
        """Counter state exported in one process continues bit-exactly
        in a fresh worker process, on both backends."""
        z = rng.integers(0, 2, (6, 10)).astype(np.uint8)
        stream = rng.integers(0, 8, (6, 6))
        # reference: one in-process server answers the whole stream
        with Server(pool_banks=8, backend=backend) as srv:
            srv.register("m", z, kind="binary")
            want = [srv.query("m", x).y for x in stream]

        src = ShardHandle(0, overrides={"backend": backend},
                          pool_banks=8)
        dst = ShardHandle(1, overrides={"backend": backend},
                          pool_banks=8)
        try:
            reg = {"name": "m", "kind": "binary", "x_budget": None,
                   "plan_kwargs": {}}
            src.call("register", reg, [z])
            got = [src.call("run", {"model": "m"}, [x[None]])[1][0][0]
                   for x in stream[:3]]
            meta, arrays = src.call("export_model", {"name": "m"})
            # the image crossed packed: structure references uint64
            assert any(a.dtype == np.uint64 for a in arrays)
            dst.call("register", reg, [z])
            dst.call("import_model",
                     {"name": "m", "structure": meta["structure"]},
                     arrays)
            got += [dst.call("run", {"model": "m"}, [x[None]])[1][0][0]
                    for x in stream[3:]]
            assert all((g == w).all() for g, w in zip(got, want))
            # and the relocated counter image matches the source's
            # pre-export state exactly
            src_img = fshm.unpack_state(fshm.inject_arrays(
                meta["structure"], arrays))
            meta2, arrays2 = dst.call("export_model", {"name": "m"})
            # dst ran 3 more queries, so compare geometry keys only
            assert set(src_img) == set(fshm.unpack_state(
                fshm.inject_arrays(meta2["structure"], arrays2)))
        finally:
            src.close()
            dst.close()

    def test_worker_error_is_typed_and_survivable(self):
        handle = ShardHandle(0, pool_banks=4)
        try:
            with pytest.raises(ShardOpError, match="KeyError"):
                handle.call("run", {"model": "ghost"},
                            [np.zeros((1, 2), dtype=np.int64)])
            meta, _ = handle.call("ping")
            assert meta["pid"] == handle.process.pid
        finally:
            handle.close()

    def test_crash_mid_call_raises_worker_crashed(self):
        handle = ShardHandle(0, pool_banks=4)
        try:
            handle._conn.send(("crash", {}, ("inline", [])))
            with pytest.raises(WorkerCrashedError):
                handle.call("ping")
            # handle stays dead and keeps raising, never hangs
            with pytest.raises(WorkerCrashedError):
                handle.call("ping")
        finally:
            handle.close()


# ----------------------------------------------------------------------
# the front door
# ----------------------------------------------------------------------
class TestFleetServing:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_differential_parity_with_server(self, backend, rng):
        """Identical query stream -> identical values and identical
        per-model counter images, fleet vs single-process server."""
        z_a = rng.integers(0, 2, (5, 8)).astype(np.uint8)
        z_b = rng.integers(-1, 2, (4, 8)).astype(np.int8)
        stream = [("a", rng.integers(0, 6, 5)) for _ in range(4)] \
            + [("b", rng.integers(-3, 4, 4)) for _ in range(4)]
        order = rng.permutation(len(stream))

        with Server(pool_banks=8, backend=backend) as srv:
            srv.register("a", z_a, kind="binary")
            srv.register("b", z_b, kind="ternary")
            want = [srv.query(m, x).y for m, x in
                    (stream[i] for i in order)]
            want_imgs = {name: srv.registry.get(name).export_image()
                         for name in ("a", "b")}

        with Fleet(n_shards=2, pool_banks=8, backend=backend) as fleet:
            fleet.register("a", z_a, kind="binary")
            fleet.register("b", z_b, kind="ternary")
            got = [fleet.query(m, x).y for m, x in
                   (stream[i] for i in order)]
            got_imgs = {}
            for sid in range(fleet.n_shards):
                got_imgs.update(fleet.counter_images(sid))

        assert all((g == w).all() for g, w in zip(got, want))
        for name in ("a", "b"):
            assert payload_equal(got_imgs[name], want_imgs[name]), \
                f"counter image of {name!r} diverged"

    def test_coalescing_and_telemetry_shape(self, rng):
        z = np.eye(4, dtype=np.uint8)
        with Fleet(n_shards=2, pool_banks=8) as fleet:
            fleet.register("eye", z, kind="binary")
            xs = rng.integers(0, 9, (12, 4))
            futs = fleet.submit_many("eye", xs)
            ys = [f.result().y for f in futs]
            assert all((y == x).all() for y, x in zip(ys, xs))
            stats = fleet.stats
            assert stats.queries == 12
            assert stats.waves < 12          # the burst coalesced
            summary = fleet.telemetry_summary()
            assert summary.latency.count == 12
            assert summary.latency.p50_ns > 0
            assert summary.latency.p99_ns >= summary.latency.p50_ns

    def test_submission_validation_is_immediate(self, rng):
        with Fleet(n_shards=1, pool_banks=4) as fleet:
            fleet.register("m", np.eye(3, dtype=np.uint8),
                           kind="binary")
            with pytest.raises(KeyError):
                fleet.submit("ghost", np.zeros(3, dtype=np.int64))
            with pytest.raises(ValueError):
                fleet.submit("m", np.zeros(5, dtype=np.int64))
            assert fleet.stats.rejected == 2

    def test_saturation_is_typed_backpressure(self, rng):
        with Fleet(n_shards=1, pool_banks=4, max_queue=4) as fleet:
            fleet.register("m", np.eye(2, dtype=np.uint8),
                           kind="binary")
            # occupy the dispatcher so admitted queries cannot drain
            blocker = threading.Thread(
                target=lambda: fleet._control(0, "sleep",
                                              {"seconds": 0.6}))
            blocker.start()
            time.sleep(0.2)                 # dispatcher now sleeping
            futs = [fleet.submit("m", np.array([1, 2]))
                    for _ in range(4)]
            with pytest.raises(FleetSaturatedError):
                fleet.submit("m", np.array([1, 2]))
            assert fleet.stats.saturated == 1
            for f in futs:                  # admitted work completes
                assert (f.result().y == [1, 2]).all()
            blocker.join()

    def test_worker_crash_fails_futures_typed_never_hangs(self, rng):
        fleet = Fleet(n_shards=2, pool_banks=4)
        try:
            fleet.register("m", np.eye(2, dtype=np.uint8),
                           kind="binary")
            sid = fleet.shard_of("m")
            # queue: crash control, then queries behind it
            crasher = threading.Thread(
                target=lambda: pytest.raises(
                    WorkerCrashedError, fleet._control, sid, "crash"))
            crasher.start()
            futs = [fleet.submit("m", np.array([1, 2]))
                    for _ in range(3)]
            crasher.join()
            for f in futs:
                with pytest.raises(WorkerCrashedError):
                    f.result(timeout=30)
            # later submits fail typed at submission
            with pytest.raises(WorkerCrashedError):
                fleet.submit("m", np.array([1, 2]))
            assert fleet.stats.crashed_shards == 1
            # the surviving shard still serves
            fleet.register("m2", np.eye(2, dtype=np.uint8),
                           kind="binary")
            assert fleet.shard_of("m2") != sid
            assert (fleet.query("m2",
                                np.array([3, 4])).y == [3, 4]).all()
        finally:
            fleet.close()

    def test_close_drains_then_rejects_and_is_idempotent(self, rng):
        fleet = Fleet(n_shards=1, pool_banks=4)
        fleet.register("m", np.eye(2, dtype=np.uint8), kind="binary")
        futs = [fleet.submit("m", np.array([i, i])) for i in range(5)]
        fleet.close()
        for i, f in enumerate(futs):        # queued work completed
            assert (f.result(timeout=5).y == [i, i]).all()
        with pytest.raises(FleetClosedError):
            fleet.submit("m", np.array([1, 2]))
        fleet.close()                       # idempotent

    def test_stranded_futures_rejected_not_hung(self, rng):
        """An item that never reaches a dispatcher is rejected by the
        close-time sweep with a typed error."""
        fleet = Fleet(n_shards=1, pool_banks=4)
        fleet.register("m", np.eye(2, dtype=np.uint8), kind="binary")
        # forge a stranded item: on the pending books but enqueued
        # behind the stop sentinel close() pushes
        from repro.fleet.fleet import _Item
        item = _Item("query", model="m", x=np.array([1, 2]))
        with fleet._lock:
            fleet._pending.add(item)
            fleet._inflight[0] += 1
        fleet.close()
        with pytest.raises(FleetClosedError):
            item.future.result(timeout=5)

    def test_move_is_bit_exact_and_routes_flip(self, rng):
        z = rng.integers(0, 2, (4, 6)).astype(np.uint8)
        stream = rng.integers(0, 5, (6, 4))
        with Server(pool_banks=8) as srv:
            srv.register("m", z, kind="binary")
            want = [srv.query("m", x).y for x in stream]
        with Fleet(n_shards=2, pool_banks=8) as fleet:
            fleet.register("m", z, kind="binary")
            src = fleet.shard_of("m")
            got = [fleet.query("m", x).y for x in stream[:3]]
            fleet.move("m", 1 - src)
            assert fleet.shard_of("m") == 1 - src
            got += [fleet.query("m", x).y for x in stream[3:]]
            assert fleet.stats.relocations == 1
            status = {s["shard_id"]: s["models"]
                      for s in fleet.status()}
            assert status[1 - src] == ["m"] and status[src] == []
        assert all((g == w).all() for g, w in zip(got, want))

    def test_rebalance_moves_hot_load(self, rng):
        z = np.eye(2, dtype=np.uint8)
        with Fleet(n_shards=2, pool_banks=8) as fleet:
            fleet.register("hot", z, kind="binary")     # shard 0
            fleet.register("cold", z, kind="binary")    # shard 1
            fleet.register("warm", z, kind="binary")
            warm_src = fleet.shard_of("warm")
            for _ in range(10):
                fleet.query("hot", np.array([1, 2]))
            if warm_src == fleet.shard_of("hot"):
                fleet.query("warm", np.array([1, 2]))
                moves = fleet.rebalance(ratio=2.0)
                assert [m.model for m in moves] == ["warm"]
                assert fleet.shard_of("warm") != warm_src
            assert (fleet.query("warm",
                                np.array([5, 6])).y == [5, 6]).all()

    def test_analytics_models_serve_through_fleet(self, rng):
        with Fleet(n_shards=2, pool_banks=8) as fleet:
            fleet.register("hist", kind="histogram", n_buckets=4)
            y = fleet.query("hist", np.array([0, 2, 2, 3])).y
            assert (y == [1, 0, 2, 1]).all()

    def test_aquery_from_caller_event_loop(self, rng):
        import asyncio

        with Fleet(n_shards=1, pool_banks=4) as fleet:
            fleet.register("m", np.eye(2, dtype=np.uint8),
                           kind="binary")

            async def main():
                r1, r2 = await asyncio.gather(
                    fleet.aquery("m", np.array([1, 2])),
                    fleet.aquery("m", np.array([3, 4])))
                return r1.y, r2.y

            y1, y2 = asyncio.run(main())
            assert (y1 == [1, 2]).all() and (y2 == [3, 4]).all()


# ----------------------------------------------------------------------
# fleet-routed reliability campaigns
# ----------------------------------------------------------------------
class TestFleetCampaign:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_campaign_rows_identical_to_in_process(self, backend, rng):
        z = rng.integers(-1, 2, (6, 10)).astype(np.int8)
        xs = rng.integers(-4, 5, (2, 6))
        points = [FaultPoint(p_cim=0.0),
                  FaultPoint(p_cim=0.25, fr_checks=2)]
        kwargs = dict(z=z, xs=xs, kind="ternary", backend=backend,
                      pool_banks=8, banks_per_trial=2)
        ref = Campaign(**kwargs).run(points, n_trials=2)
        with Fleet(n_shards=2, pool_banks=8) as fleet:
            got = Campaign(**kwargs).run(points, n_trials=2,
                                         fleet=fleet)
        assert got.rows == ref.rows
        ref_trials = sorted(ref.trials,
                            key=lambda t: (t.point_index, t.trial))
        assert [(t.point_index, t.trial, t.metrics)
                for t in got.trials] == \
            [(t.point_index, t.trial, t.metrics) for t in ref_trials]

    def test_trial_level_seeded_reproducibility(self, rng):
        z = rng.integers(0, 2, (4, 8)).astype(np.uint8)
        xs = rng.integers(0, 4, (2, 4))
        camp = Campaign(z=z, xs=xs, kind="binary", pool_banks=4)
        point = FaultPoint(p_cim=0.3)
        with Fleet(n_shards=2, pool_banks=4) as fleet:
            twice = [Campaign(z=z, xs=xs, kind="binary", pool_banks=4)
                     .run([point], n_trials=3, fleet=fleet)
                     for _ in range(2)]
        assert twice[0].rows == twice[1].rows
        # any single trial reproduces in isolation, in-process
        lone = camp._run_point_trial(0, point, 2)
        fleet_trial = [t for t in twice[0].trials if t.trial == 2][0]
        assert lone.metrics == fleet_trial.metrics

    def test_custom_trial_campaign_has_no_spec(self):
        camp = Campaign(trial=lambda point, rng: {"x": 1.0})
        with pytest.raises(ValueError, match="process-local"):
            camp.spec()
