"""Compiled-trace fusion: fused == interpreted == bit, state and counters.

The trace compiler (:mod:`repro.isa.trace`) may only ever be a faster
way to run the same commands.  These tests pin that contract:

* the fused word path is cell-state- and counter-identical
  (``aap_count``, ``ap_count``, ``activations``,
  ``multi_row_activations``, ``measured_ops``) to the interpreted word
  path and to the bit backend, across an (n_bits, n_digits, k) grid;
* an active fault model fuses too (fault traces pre-draw the seeded
  stream in interpreter order; full parity grids live in
  ``tests/test_fault_fusion_parity.py``);
* packed operand staging round-trips bit-exactly (hypothesis);
* the compiled-program cache is bounded LRU, shared by resolved ops
  and traces.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.iarm import Increment
from repro.dram.ambit import AmbitSubarray
from repro.dram.faults import FaultModel
from repro.dram.wordline import (WordlineSubarray, pack_bits, pack_rows,
                                 unpack_bits)
from repro.engine import BankCluster, CountingEngine
from repro.isa.microprogram import MicroProgram, aap, ap
from repro.isa.trace import compile_trace, fusion_disabled, fusion_enabled


def _subarray_counters(subarray):
    act = (subarray.stats() if hasattr(subarray, "stats")
           else subarray.array.stats())
    return (subarray.aap_count, subarray.ap_count) + tuple(act)


def _run_stream(backend, n_bits, n_digits, seed, fused=True, n_lanes=24,
                n_updates=6):
    """Replay one seeded accumulate stream; return state + counters.

    The stream runs three times with a counter reset in between (the
    session layer's plan-reuse pattern): the scheduler restarts
    identically each round, so rounds two and three re-run every
    program past the JIT warm-up threshold and a fused run really
    replays compiled traces (asserted by the caller).
    """
    import contextlib
    eng = CountingEngine(n_bits, n_digits, n_lanes, backend=backend)
    rng = np.random.default_rng(seed)
    budget = (2 * n_bits) ** n_digits - 1
    updates = [
        (int(rng.integers(1, max(2, budget // (n_updates + 1)))),
         rng.integers(0, 2, n_lanes).astype(np.uint8))
        for _ in range(n_updates)]
    ctx = contextlib.nullcontext() if fused else fusion_disabled()
    with ctx:
        for _ in range(3):
            eng.reset_counters()
            for value, mask in updates:
                eng.load_mask(0, mask)
                eng.accumulate(value)
        values = eng.read_values()
    return (values, eng.export_counters(),
            _subarray_counters(eng.subarray), eng.measured_ops,
            eng.subarray.trace_compiles + eng.subarray.trace_replays)


@pytest.mark.parametrize("n_bits,n_digits,seed", [
    (1, 5, 0), (2, 4, 1), (2, 6, 2), (3, 3, 3), (4, 3, 4),
])
def test_fused_stream_matches_interpreted_and_bit(n_bits, n_digits, seed):
    fused = _run_stream("word", n_bits, n_digits, seed, fused=True)
    interp = _run_stream("word", n_bits, n_digits, seed, fused=False)
    bit = _run_stream("bit", n_bits, n_digits, seed)
    # The fused run actually replayed compiled traces; the interpreted
    # and bit runs never touched the trace path.
    assert fused[4] > 0
    assert interp[4] == 0 and bit[4] == 0
    # Values, raw counter-row images, subarray counters, measured ops.
    assert (fused[0] == interp[0]).all()
    assert (fused[0] == bit[0]).all()
    assert (fused[1] == interp[1]).all()
    assert (fused[1] == bit[1]).all()
    assert fused[2] == interp[2] == bit[2]
    assert fused[3] == interp[3] == bit[3]


@pytest.mark.parametrize("n_bits", [1, 2, 3])
def test_every_k_step_fuses_identically(n_bits):
    """Single k-ary increments across the whole ±k range, per digit."""
    n_digits = 3
    lanes = 17
    for k in list(range(1, 2 * n_bits)) + [-1]:
        results = {}
        for mode in ("fused", "interp", "bit"):
            backend = "bit" if mode == "bit" else "word"
            eng = CountingEngine(n_bits, n_digits, lanes, backend=backend)
            eng.reset_counters()
            rng = np.random.default_rng(99)
            eng.load_mask(0, rng.integers(0, 2, lanes).astype(np.uint8))
            import contextlib
            ctx = (fusion_disabled() if mode == "interp"
                   else contextlib.nullcontext())
            with ctx:
                # Pre-load counters so decrements have headroom and the
                # k-step hits non-trivial Johnson states.  Each event
                # runs three times: run two passes the JIT warm-up
                # (compiles), run three replays the compiled trace.
                eng.accumulate(2 * n_bits + 1)
                for digit in range(n_digits - 1):
                    for _ in range(3):
                        eng.execute_events([Increment(digit, k)])
            results[mode] = (eng.export_counters(),
                             _subarray_counters(eng.subarray),
                             eng.subarray.trace_replays)
        assert results["fused"][2] > 0
        assert (results["fused"][0] == results["interp"][0]).all()
        assert (results["fused"][0] == results["bit"][0]).all()
        assert results["fused"][1] == results["interp"][1]
        assert results["fused"][1] == results["bit"][1]


def test_active_fault_model_fuses_after_warmup():
    """Faults no longer bypass fusion: hot programs compile fault
    traces and replay them (stream parity is pinned in
    tests/test_fault_fusion_parity.py); fusion_disabled() remains the
    escape hatch."""
    fm = FaultModel(p_cim=5e-3, seed=7)
    eng = CountingEngine(2, 5, 32, fault_model=fm, backend="word")
    eng.reset_counters()
    mask = np.ones(32, dtype=np.uint8)
    for _ in range(3):                   # same magnitude: warms the JIT
        eng.reset_counters()
        eng.load_mask(0, mask)
        eng.accumulate(9)
    eng.read_values(strict=False)
    assert eng.subarray.trace_compiles > 0
    assert eng.subarray.trace_replays > 0
    assert eng.counters.injected_faults == eng.subarray.fault_injections
    # The explicit escape hatch still interprets.
    with fusion_disabled():
        replays = eng.subarray.trace_replays
        eng.reset_counters()
        eng.load_mask(0, mask)
        eng.accumulate(9)
        assert eng.subarray.trace_replays == replays


def test_jit_warmup_interprets_once_then_compiles_then_replays():
    eng = CountingEngine(2, 5, 32, backend="word")
    eng.reset_counters()
    mask = np.ones(32, dtype=np.uint8)

    def one_query():
        eng.reset_counters()
        eng.load_mask(0, mask)
        eng.accumulate(9)

    one_query()                       # run 1: interpreted (cold-fast)
    assert eng.subarray.trace_compiles == 0
    assert eng.subarray.trace_replays == 0
    one_query()                       # run 2: past warm-up, compiles
    compiles = eng.subarray.trace_compiles
    assert compiles > 0
    assert eng.subarray.trace_replays == 0
    one_query()                       # run 3+: pure fused replay
    assert eng.subarray.trace_compiles == compiles
    assert eng.subarray.trace_replays > 0
    counters = eng.counters
    assert counters.trace_compiles == compiles
    assert counters.trace_replays == eng.subarray.trace_replays


def test_fusion_disabled_context_restores():
    assert fusion_enabled()
    with fusion_disabled():
        assert not fusion_enabled()
        with fusion_disabled():
            assert not fusion_enabled()
        assert not fusion_enabled()
    assert fusion_enabled()


def test_program_cache_is_bounded_lru():
    sa = WordlineSubarray(n_data_rows=4, n_cols=16, program_cache_size=2)
    progs = [MicroProgram(f"p{i}", (aap(i % 4, "B0"),)) for i in range(3)]
    for prog in progs:
        sa.run_program(prog)
        sa.run_program(prog)                       # past JIT warm-up
    assert len(sa._compiled) == 2
    assert id(progs[0]) not in sa._compiled        # LRU victim
    compiles = sa.trace_compiles
    # Re-entering the evicted program restarts its warm-up: the first
    # run interprets, the second recompiles the trace.
    sa.run_program(progs[0])
    assert sa.trace_compiles == compiles
    sa.run_program(progs[0])
    assert sa.trace_compiles == compiles + 1
    # Touching an entry protects it from the next eviction.
    sa.run_program(progs[2])                       # refresh p2
    sa.run_program(progs[1])                       # evicts p0 again
    assert id(progs[2]) in sa._compiled
    assert id(progs[0]) not in sa._compiled


def test_engine_program_cache_is_bounded(monkeypatch):
    """Macro-batch keys must not grow the engine cache without bound."""
    import repro.engine.machine as machine
    monkeypatch.setattr(machine, "ENGINE_PROGRAM_CACHE", 8)
    eng = CountingEngine(2, 6, 8, backend="word")
    eng.reset_counters()
    eng.load_mask(0, np.ones(8, dtype=np.uint8))
    rng = np.random.default_rng(3)
    for _ in range(40):                    # many distinct event batches
        eng.accumulate(int(rng.integers(1, 400)))
    assert len(eng._prog_cache) <= 8
    assert eng.prog_compiles > 8           # evictions really happened


def test_trace_constant_folding_and_dead_writes():
    sa = WordlineSubarray(n_data_rows=2, n_cols=8)
    # AND via C0-fed majority; the C0 copy into B9 folds to a constant.
    prog = MicroProgram("and", (aap(0, "B8"), aap("C0", "B9"),
                                aap(1, "B2"), ap("B12"), aap("B2", 1)))
    trace = compile_trace(prog, sa.resolve)
    assert trace.n_nodes == 1                      # only the MAJ survives
    assert trace.n_aap == 4 and trace.n_ap == 1
    assert trace.n_activations == 2 * 4 + 1
    # Overwritten intermediates produce no extra nodes: a copy chain
    # compiles to zero majority nodes.
    chain = MicroProgram("copies", (aap(0, "B0"), aap("B0", "B1"),
                                    aap("B1", 1)))
    t2 = compile_trace(chain, sa.resolve)
    assert t2.n_nodes == 0
    assert t2.n_aap == 3


def test_trace_counter_totals_match_program():
    sa = WordlineSubarray(n_data_rows=6, n_cols=8)
    from repro.isa.templates import kary_increment_program
    prog = kary_increment_program([0, 1], 2, 3, [3], 4)
    trace = compile_trace(prog, sa.resolve)
    assert trace.n_aap == prog.aap_count
    assert trace.n_ap == prog.ap_count
    assert trace.n_activations == 2 * prog.aap_count + prog.ap_count


# ----------------------------------------------------------------------
# packed operand staging
# ----------------------------------------------------------------------
@settings(deadline=None, max_examples=40)
@given(st.data())
def test_pack_rows_roundtrip(data):
    n_rows = data.draw(st.integers(1, 6), label="rows")
    n_cols = data.draw(st.integers(1, 200), label="cols")
    bits = np.array(
        data.draw(st.lists(
            st.lists(st.integers(0, 1), min_size=n_cols, max_size=n_cols),
            min_size=n_rows, max_size=n_rows), label="bits"),
        dtype=np.uint8)
    packed = pack_rows(bits)
    assert packed.shape == (n_rows, (n_cols + 63) // 64)
    for row in range(n_rows):
        assert (unpack_bits(packed[row], n_cols) == bits[row]).all()
        assert (packed[row] == pack_bits(bits[row])).all()


@settings(deadline=None, max_examples=25)
@given(st.data())
def test_packed_write_roundtrip_both_backends(data):
    n_cols = data.draw(st.integers(1, 130), label="cols")
    bits = np.array(data.draw(st.lists(st.integers(0, 1), min_size=n_cols,
                                       max_size=n_cols), label="bits"),
                    dtype=np.uint8)
    packed = pack_bits(bits)
    for cls in (WordlineSubarray, AmbitSubarray):
        sa = cls(n_data_rows=3, n_cols=n_cols)
        sa.write_data_row_packed(1, packed)
        assert (sa.read_data_row(1) == bits).all()


def test_write_rows_batches_and_validates(rng):
    image = rng.integers(0, 2, (4, 50)).astype(np.uint8)
    for cls in (WordlineSubarray, AmbitSubarray):
        sa = cls(n_data_rows=6, n_cols=50)
        sa.write_rows([1, 3, 4, 5], image)
        assert (sa.read_rows([1, 3, 4, 5]) == image).all()
        assert not sa.read_data_row(0).any()       # untouched rows stay
        with pytest.raises(ValueError):
            sa.write_rows([0, 1], image)           # shape mismatch
    # The all-zero fast path really clears.
    sa = WordlineSubarray(n_data_rows=3, n_cols=50)
    sa.write_data_row(0, np.ones(50, dtype=np.uint8))
    sa.write_rows([0, 1], np.zeros((2, 50), dtype=np.uint8))
    assert not sa.read_data_row(0).any()


def test_packed_row_width_validated():
    sa = WordlineSubarray(n_data_rows=2, n_cols=70)   # 2 words
    with pytest.raises(ValueError):
        sa.write_data_row_packed(0, np.zeros(1, dtype=np.uint64))


# ----------------------------------------------------------------------
# vectorized dispatch
# ----------------------------------------------------------------------
def test_vectorized_dispatch_matches_reference(rng):
    cluster = BankCluster(n_bits=2, n_digits=5, lanes_per_bank=12,
                          n_banks=3)
    updates, ref = [], np.zeros(12, dtype=np.int64)
    values = [3, 7, 3, 3, 7, 1, 3, 1]              # repeats across groups
    for value in values:
        mask = rng.integers(0, 2, 12).astype(np.uint8)
        updates.append((value, mask))
        ref += value * mask.astype(np.int64)
    updates.append((0, np.ones(12, dtype=np.uint8)))      # skipped
    updates.append((5, np.zeros(12, dtype=np.uint8)))     # skipped
    cluster.dispatch(updates)
    assert (cluster.read_reduced() == ref).all()
    # Wave count: ceil(group size / n_banks) per distinct value -- the
    # same grouping the scalar loop produced.
    assert cluster.broadcasts == 2 + 1 + 1        # 4x3, 2x7, 2x1


def test_dispatch_wave_order_is_first_occurrence(monkeypatch):
    cluster = BankCluster(n_bits=2, n_digits=4, lanes_per_bank=2,
                          n_banks=1)
    seen = []
    original = cluster.engine.run_waves

    def spy(magnitudes, packed_masks, mask_index=0):
        seen.extend(int(m) for m in magnitudes)
        return original(magnitudes, packed_masks, mask_index)

    monkeypatch.setattr(cluster.engine, "run_waves", spy)
    cluster.dispatch([(5, [1, 0]), (2, [0, 1]), (5, [1, 1]),
                      (9, [1, 0]), (2, [1, 0])])
    # Group order = first occurrence; within a group, arrival order.
    assert seen == [5, 5, 2, 2, 9]


def test_dispatch_validates_mask_width():
    cluster = BankCluster(n_bits=2, n_digits=4, lanes_per_bank=4,
                          n_banks=2)
    with pytest.raises(ValueError, match="lanes_per_bank"):
        cluster.dispatch([(3, [1, 0])])
    with pytest.raises(ValueError, match="lanes_per_bank"):
        cluster.dispatch([(3, [1, 0, 1, 0]), (2, [1, 0, 1])])


def test_dispatch_empty_and_all_skipped():
    cluster = BankCluster(n_bits=2, n_digits=4, lanes_per_bank=3,
                          n_banks=2)
    cluster.dispatch([])
    cluster.dispatch([(0, [1, 1, 1]), (4, [0, 0, 0])])
    assert cluster.broadcasts == 0
    assert (cluster.read_reduced() == 0).all()


# ----------------------------------------------------------------------
# stats plumbing
# ----------------------------------------------------------------------
def test_plan_stats_surface_trace_counters(rng):
    from repro.device import Device
    z = rng.integers(-1, 2, (8, 16)).astype(np.int8)
    x = rng.integers(-6, 7, 8)
    with Device(n_bits=2) as dev:
        plan = dev.plan_gemv(z, kind="ternary")
        plan(x)                        # warm-up: interpreted
        plan(x)                        # identical query: compiles
        second = plan.stats
        plan(x)                        # steady state: pure replay
        third = plan.stats
    assert second.trace_compiles > 0
    assert third.trace_compiles == second.trace_compiles
    assert third.trace_replays > second.trace_replays
    # Retired engines keep their counters: park and resume.
    with Device(n_bits=2) as dev:
        plan = dev.plan_gemv(z, kind="ternary")
        plan(x)
        plan(x)
        before = plan.stats
        plan.park()
        assert plan.stats.trace_compiles == before.trace_compiles
        plan(x)
        assert plan.stats.trace_compiles >= before.trace_compiles


def test_serve_report_carries_trace_stats(rng):
    from repro.serve import Server
    z = rng.integers(-1, 2, (8, 16)).astype(np.int8)
    x = rng.integers(-5, 6, 8)
    with Server(n_bits=2) as srv:
        srv.register("m", z, kind="ternary")
        r1 = srv.query("m", x).report     # warm-up wave: interpreted
        r2 = srv.query("m", x).report     # same wave again: compiles
        r3 = srv.query("m", x).report     # steady state: replays
    assert r1.trace_replays == 0
    assert r2.trace_compiles > 0
    assert r3.trace_replays > 0 and r3.trace_compiles == 0
