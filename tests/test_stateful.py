"""Stateful property testing: the counting stack as a state machine.

Hypothesis drives random interleavings of masked accumulates, flushes
and read-outs against three implementations at once -- the golden
CounterArray, the fast lane-array model, and plain integer arithmetic --
and requires them to agree at every observation point.
"""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (RuleBasedStateMachine, initialize,
                                 invariant, precondition, rule)

from repro.apps.fastsim import FastJCAccumulator
from repro.core.counter import CounterArray
from repro.core.iarm import IARMScheduler, apply_events

N_LANES = 6
N_BITS = 2
N_DIGITS = 9          # capacity 4^9 = 262144
BUDGET = 200_000


class CountingMachine(RuleBasedStateMachine):
    """Random masked accumulation streams across three models."""

    @initialize()
    def setup(self):
        self.golden = CounterArray(N_BITS, N_DIGITS, N_LANES)
        self.scheduler = IARMScheduler(N_BITS, N_DIGITS)
        self.fast = FastJCAccumulator(n_bits=N_BITS, n_digits=N_DIGITS,
                                      n_lanes=N_LANES)
        self.reference = np.zeros(N_LANES, dtype=np.int64)
        self.headroom = BUDGET

    @rule(value=st.integers(1, 255),
          mask_bits=st.integers(0, 2 ** N_LANES - 1))
    def accumulate(self, value, mask_bits):
        if self.headroom < value:
            return
        self.headroom -= value
        mask = np.array([(mask_bits >> i) & 1 for i in range(N_LANES)],
                        dtype=np.uint8)
        events = self.scheduler.schedule_value(value)
        apply_events(self.golden, events, mask=mask.astype(bool))
        self.fast.accumulate(value, mask)
        self.reference += value * mask.astype(np.int64)

    @rule(value=st.integers(1, 100),
          mask_bits=st.integers(1, 2 ** N_LANES - 1))
    @precondition(lambda self: (self.reference > 120).all())
    def decrement(self, value, mask_bits):
        mask = np.array([(mask_bits >> i) & 1 for i in range(N_LANES)],
                        dtype=np.uint8)
        events = self.scheduler.schedule_value(-value)
        apply_events(self.golden, events, mask=mask.astype(bool))
        self.fast.accumulate(-value, mask)
        self.reference -= value * mask.astype(np.int64)

    @rule()
    def flush(self):
        events = self.scheduler.flush()
        apply_events(self.golden, events)
        for ev in events:
            self.fast._resolve(ev.digit, ev.direction)

    @invariant()
    def all_models_agree(self):
        if not hasattr(self, "golden"):
            return
        # Reading is non-destructive on every model.
        golden_now = CounterArray(N_BITS, N_DIGITS, N_LANES)
        golden_now.values[:] = self.golden.values
        golden_now.pending[:] = self.golden.pending
        golden_now.resolve_all()
        assert golden_now.totals() == self.reference.tolist()


CountingMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None)
TestCountingMachine = CountingMachine.TestCase
