"""ECC substrate: GF(2^m), Hamming, BCH, TMR, protection analysis."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc import (BCHCode, CIMProtection, GF2m, HAMMING_72_64,
                       HammingCode, correction_overhead,
                       monte_carlo_protection, protected_detect_rate,
                       protected_error_rate, row_detect_rate, table1,
                       tmr_error_rate, tmr_ops)
from repro.ecc.tmr import run_with_tmr, vote_rows


class TestGF2m:
    @pytest.mark.parametrize("m", [2, 3, 4, 6, 7, 8])
    def test_field_axioms(self, m):
        f = GF2m(m)
        rng = np.random.default_rng(m)
        for _ in range(50):
            a = int(rng.integers(1, f.size))
            b = int(rng.integers(1, f.size))
            c = int(rng.integers(0, f.size))
            assert f.mul(a, f.inv(a)) == 1
            assert f.div(f.mul(a, b), b) == a
            # Distributivity.
            assert (f.mul(a, f.add(b, c))
                    == f.add(f.mul(a, b), f.mul(a, c)))

    def test_exp_log_consistency(self):
        f = GF2m(6)
        for e in range(f.size - 1):
            assert f.log[f.alpha_pow(e)] == e

    def test_minimal_polynomial_has_element_as_root(self):
        f = GF2m(6)
        for e in (1, 2, 3, 5):
            mp = f.minimal_polynomial(f.alpha_pow(e))
            assert f.poly_eval(mp, f.alpha_pow(e)) == 0

    def test_zero_division(self):
        f = GF2m(4)
        with pytest.raises(ZeroDivisionError):
            f.inv(0)

    def test_unsupported_degree(self):
        with pytest.raises(ValueError):
            GF2m(1)


class TestHamming:
    def test_72_64_dimensions(self):
        assert HAMMING_72_64.n == 72
        assert HAMMING_72_64.k == 64
        assert HAMMING_72_64.r == 7

    def test_roundtrip(self, rng):
        data = rng.integers(0, 2, (20, 64)).astype(np.uint8)
        res = HAMMING_72_64.decode(HAMMING_72_64.encode(data))
        assert not res.detected.any()
        assert (res.data == data).all()

    def test_corrects_every_single_bit_position(self, rng):
        data = rng.integers(0, 2, (1, 64)).astype(np.uint8)
        cw = HAMMING_72_64.encode(data)
        for pos in range(72):
            bad = cw.copy()
            bad[0, pos] ^= 1
            res = HAMMING_72_64.decode(bad)
            assert res.corrected[0], pos
            assert (res.data[0] == data[0]).all(), pos

    def test_detects_double_errors(self, rng):
        data = rng.integers(0, 2, (1, 64)).astype(np.uint8)
        cw = HAMMING_72_64.encode(data)
        for _ in range(40):
            i, j = rng.choice(72, 2, replace=False)
            bad = cw.copy()
            bad[0, i] ^= 1
            bad[0, j] ^= 1
            res = HAMMING_72_64.decode(bad)
            assert res.detected[0] and res.uncorrectable[0]

    def test_xor_homomorphism(self, rng):
        """The property the whole protection scheme rests on."""
        a = rng.integers(0, 2, (10, 64)).astype(np.uint8)
        b = rng.integers(0, 2, (10, 64)).astype(np.uint8)
        h = HAMMING_72_64
        assert (h.parity_bits(a ^ b)
                == (h.parity_bits(a) ^ h.parity_bits(b))).all()

    def test_check_detects_mismatch(self, rng):
        data = rng.integers(0, 2, (4, 64)).astype(np.uint8)
        checks = HAMMING_72_64.parity_bits(data)
        assert not HAMMING_72_64.check(data, checks).any()
        data[0, 5] ^= 1
        assert HAMMING_72_64.check(data, checks)[0]

    def test_small_code(self):
        code = HammingCode(4)
        assert code.n == 4 + code.r + 1
        data = np.array([[1, 0, 1, 1]], dtype=np.uint8)
        assert (code.decode(code.encode(data)).data == data).all()


class TestBCH:
    @pytest.mark.parametrize("m,t", [(6, 2), (7, 2), (7, 3)])
    def test_corrects_up_to_t(self, m, t, rng):
        full = BCHCode(m, t)
        code = BCHCode(m, t, data_bits=min(64, full.k))
        for _ in range(15):
            d = rng.integers(0, 2, code.data_bits).astype(np.uint8)
            cw = code.encode(d)
            for n_err in range(1, t + 1):
                bad = cw.copy()
                for p in rng.choice(len(cw), n_err, replace=False):
                    bad[p] ^= 1
                res = code.decode(bad)
                assert res.corrected and (res.data == d).all()

    def test_detects_beyond_t(self, rng):
        code = BCHCode(7, 2, data_bits=64)
        d = rng.integers(0, 2, 64).astype(np.uint8)
        cw = code.encode(d)
        for _ in range(25):
            bad = cw.copy()
            for p in rng.choice(len(cw), 3, replace=False):
                bad[p] ^= 1
            assert code.decode(bad).detected

    def test_clean_word_passes(self, rng):
        code = BCHCode(6, 2)
        d = rng.integers(0, 2, code.data_bits).astype(np.uint8)
        res = code.decode(code.encode(d))
        assert not res.detected and (res.data == d).all()

    def test_xor_homomorphism(self, rng):
        code = BCHCode(7, 3, data_bits=64)
        a = rng.integers(0, 2, 64).astype(np.uint8)
        b = rng.integers(0, 2, 64).astype(np.uint8)
        assert (code.parity_bits(a ^ b)
                == (code.parity_bits(a) ^ code.parity_bits(b))).all()

    def test_check_interface(self, rng):
        code = BCHCode(6, 2)
        d = rng.integers(0, 2, code.data_bits).astype(np.uint8)
        parity = code.parity_bits(d)
        assert not code.check(d, parity)
        d[0] ^= 1
        assert code.check(d, parity)

    def test_generator_dimensions(self):
        code = BCHCode(7, 2)
        assert code.n == 127 and code.k == 113 and code.n_parity == 14


class TestTMR:
    def test_error_rate_formula(self):
        assert tmr_error_rate(0.1) == pytest.approx(3 * 0.01 * 0.9 + 1e-3)
        assert tmr_ops(100) == 301

    def test_vote_rows_gate_level(self, rng):
        from repro.dram import AmbitSubarray
        sa = AmbitSubarray(6, 16)
        val = rng.integers(0, 2, 16).astype(np.uint8)
        corrupted = val.copy()
        corrupted[0] ^= 1
        sa.write_data_row(0, val)
        sa.write_data_row(1, val)
        sa.write_data_row(2, corrupted)
        vote_rows(sa, [0, 1, 2], 3)
        assert (sa.read_data_row(3) == val).all()

    def test_run_with_tmr_outvotes_one_bad_replica(self, rng):
        val = rng.integers(0, 2, 32).astype(np.uint8)
        def replica(i):
            if i == 1:
                return val ^ 1
            return val
        assert (run_with_tmr(replica) == val).all()

    def test_tmr_worse_than_ecc(self):
        """Sec. 3 / Tab. 1: TMR has a higher residual error than ECC."""
        for f in (1e-1, 1e-2, 1e-4):
            assert tmr_error_rate(f) > protected_error_rate(f, 2)


class TestProtectionAnalysis:
    PAPER = {
        (2, 1e-1): (1.4e-3, 3.1e-1), (2, 1e-2): (1.5e-6, 3.5e-2),
        (2, 1e-4): (1.5e-12, 3.5e-4),
        (4, 1e-1): (1.4e-5, 4.4e-1), (4, 1e-2): (1.5e-10, 5.4e-2),
        (4, 1e-4): (1.0e-20, 5.5e-4),
        (6, 1e-1): (1.4e-7, 5.5e-1), (6, 1e-2): (1.5e-14, 7.3e-2),
        (6, 1e-4): (1.0e-20, 7.5e-4),
    }

    @pytest.mark.parametrize("r,f", list(PAPER))
    def test_table1_cells(self, r, f):
        paper_err, paper_det = self.PAPER[(r, f)]
        assert protected_error_rate(f, r) == pytest.approx(
            paper_err, rel=0.55)        # the floored corner is 1.5x
        assert protected_detect_rate(f, r) == pytest.approx(
            paper_det, rel=0.05)

    def test_monte_carlo_agrees_at_high_f(self):
        mc = monte_carlo_protection(1e-1, 2, trials=300_000, seed=4)
        assert mc["error_rate"] == pytest.approx(
            protected_error_rate(1e-1, 2), rel=0.6)
        # MC detect covers both ANDs of a bit update (2x exposure).
        assert mc["detect_rate"] > protected_detect_rate(1e-1, 2)

    def test_section732_overheads(self):
        assert row_detect_rate(1e-4, 2) == pytest.approx(0.164, abs=0.01)
        assert correction_overhead(1e-4, 2) == pytest.approx(0.196,
                                                             abs=0.01)

    def test_error_floor(self):
        assert protected_error_rate(1e-4, 6) == 1e-20

    def test_table1_rows_structure(self):
        rows = table1()
        assert [r.fr_checks for r in rows] == [2, 4, 6]
        assert rows[0].ambit_ops_formula == "13n + 16"


class TestCIMProtection:
    def test_verify_xor_detects_any_single_flip(self, rng):
        prot = CIMProtection()
        a = rng.integers(0, 2, 128).astype(np.uint8)
        b = rng.integers(0, 2, 128).astype(np.uint8)
        expected = prot.predict_xor_checks(a) ^ prot.checks_of(b)
        clean = a ^ b
        assert not prot.verify_xor(clean, expected).any()
        for pos in rng.choice(128, 20, replace=False):
            bad = clean.copy()
            bad[pos] ^= 1
            assert prot.verify_xor(bad, expected).any(), pos

    def test_complement_checks(self, rng):
        prot = CIMProtection()
        row = rng.integers(0, 2, 64).astype(np.uint8)
        assert (prot.complement_checks(row)
                == prot.checks_of(1 - row)).all()

    def test_row_padding(self, rng):
        prot = CIMProtection()
        row = rng.integers(0, 2, 100).astype(np.uint8)  # not a multiple
        assert prot.checks_of(row).shape[0] == 2

    def test_run_protected_retries_then_succeeds(self):
        prot = CIMProtection()
        attempts = []
        def block():
            attempts.append(1)
        def validate():
            return len(attempts) >= 3
        retries = prot.run_protected(block, validate)
        assert retries == 2
        assert prot.stats.retries == 2

    def test_retry_exhaustion(self):
        from repro.ecc import RetryExhaustedError
        prot = CIMProtection()
        with pytest.raises(RetryExhaustedError):
            prot.run_protected(lambda: None, lambda: False, max_retries=3)


@given(words=st.integers(1, 6), seed=st.integers(0, 1000))
@settings(max_examples=50, deadline=None)
def test_property_hamming_linear(words, seed):
    rng = np.random.default_rng(seed)
    a = rng.integers(0, 2, (words, 64)).astype(np.uint8)
    b = rng.integers(0, 2, (words, 64)).astype(np.uint8)
    h = HAMMING_72_64
    assert (h.parity_bits(a ^ b)
            == (h.parity_bits(a) ^ h.parity_bits(b))).all()
