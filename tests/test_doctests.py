"""Run the library's docstring examples as tests.

Every new public symbol ships a runnable doctest; this harness keeps the
examples honest.  The fast-backend surface (``WordlineSubarray``,
``BankCluster``, the kernels' ``backend=`` flags) is covered by the
wordline/cluster/gemv/gemm modules below.
"""

import doctest

import pytest

import repro.apps.analytics
import repro.core.kary
import repro.device
import repro.dram.wordline
import repro.engine.cluster
import repro.fleet.fleet
import repro.fleet.placement
import repro.fleet.shm
import repro.isa.trace
import repro.kernels.bitslice
import repro.kernels.gemm
import repro.kernels.gemv
import repro.kernels.lowering
import repro.perf.metrics
import repro.reliability.campaign
import repro.serve.pool
import repro.serve.registry
import repro.serve.server
import repro.serve.telemetry
import repro.util


@pytest.mark.parametrize("module", [
    repro.util, repro.core.kary, repro.kernels.bitslice,
    repro.dram.wordline, repro.engine.cluster, repro.isa.trace,
    repro.kernels.gemv, repro.kernels.gemm,
    repro.kernels.lowering, repro.device, repro.perf.metrics,
    repro.fleet.shm, repro.fleet.placement, repro.fleet.fleet,
    repro.reliability.campaign, repro.serve.pool, repro.serve.registry, repro.serve.server,
    repro.serve.telemetry, repro.apps.analytics])
def test_doctests(module):
    result = doctest.testmod(module)
    # A module with examples must run them all cleanly.
    assert result.attempted > 0, \
        f"{module.__name__} lost its doctest examples"
    assert result.failed == 0
