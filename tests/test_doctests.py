"""Run the library's docstring examples as tests."""

import doctest

import pytest

import repro.core.kary
import repro.kernels.bitslice
import repro.util


@pytest.mark.parametrize("module", [
    repro.util, repro.core.kary, repro.kernels.bitslice])
def test_doctests(module):
    result = doctest.testmod(module)
    # A module with examples must run them all cleanly.
    assert result.attempted > 0, \
        f"{module.__name__} lost its doctest examples"
    assert result.failed == 0
