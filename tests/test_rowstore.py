"""Content-addressed row-image store (repro.serve.rowstore).

Covers the dedup/COW tenancy refactor end to end: digest stability,
pool attach/detach accounting, the K-tenants-one-budget acceptance
scenario (bit-exact against private planting on both backends, fault
streams and terminal RNG state included), refcount-aware LRU eviction,
copy-on-write divergence under seeded faults, digest round-trips
across park/unpark/export/import, and the dedup-aware placement math.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.device import Device, GemvPlan
from repro.dram.faults import FAULT_FREE, FaultModel
from repro.serve import BankPool, PoolExhausted
from repro.serve.registry import ModelRegistry
from repro.serve.rowstore import RowImageStore, row_digest

BACKENDS = ["fast", "bit"]


def _z(rng, k=4, n=6):
    return rng.integers(-1, 2, size=(k, n)).astype(np.int8)


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


class TestDigest:
    def test_deterministic_and_content_sensitive(self, rng):
        masks = rng.integers(0, 2, size=(3, 2, 8)).astype(np.uint8)
        d1 = row_digest("ternary", 2, masks)
        assert d1 == row_digest("ternary", 2, masks.copy())
        flipped = masks.copy()
        flipped[0, 0, 0] ^= 1
        assert d1 != row_digest("ternary", 2, flipped)
        assert d1 != row_digest("binary", 2, masks)
        assert d1 != row_digest("ternary", 3, masks)

    def test_store_dedups_and_drops_on_last_release(self, rng):
        store = RowImageStore()
        masks = rng.integers(0, 2, size=(3, 8)).astype(np.uint8)
        h1 = store.acquire("binary", masks, 8, n_bits=2)
        h2 = store.acquire("binary", masks, 8, n_bits=2)
        assert not h1.dedup_hit and h2.dedup_hit
        assert h1.digest == h2.digest and len(store) == 1
        assert h1.shared and h1.refcount == 2
        assert store.stats().dedup_hits == 1
        h1.release()
        assert len(store) == 1 and not h2.shared
        h2.release()
        assert len(store) == 0
        h2.release()                                 # idempotent

    def test_masks_are_read_only(self, rng):
        store = RowImageStore()
        masks = rng.integers(0, 2, size=(3, 8)).astype(np.uint8)
        handle = store.acquire("binary", masks, 8, n_bits=2)
        with pytest.raises(ValueError):
            handle.masks[0, 0] = 1


class TestPoolSharingAccounting:
    def test_attach_detach_shared_banks_and_ratio(self):
        pool = BankPool(8)
        lease = pool.lease(4)
        assert pool.banks_shared == 0 and pool.dedup_ratio == 1.0
        pool.attach(lease)
        assert pool.banks_shared == 4
        assert pool.dedup_ratio == pytest.approx(2.0)
        snap = pool.snapshot()
        assert snap.banks_shared == 4
        assert snap.dedup_ratio == pytest.approx(2.0)
        pool.attach(lease)
        assert pool.dedup_ratio == pytest.approx(3.0)
        pool.detach(lease)
        pool.detach(lease)
        assert pool.banks_shared == 0 and pool.dedup_ratio == 1.0
        with pytest.raises(ValueError, match="no extra attachments"):
            pool.detach(lease)

    def test_exchange_refuses_multi_attached_lease(self):
        pool = BankPool(8)
        lease = pool.lease(2)
        pool.attach(lease)
        with pytest.raises(ValueError, match="attached"):
            pool.exchange(lease, 4)
        pool.detach(lease)
        bigger = pool.exchange(lease, 4)
        assert bigger.n_banks == 4 and not lease.live

    def test_release_clears_attachment_accounting(self):
        pool = BankPool(8)
        lease = pool.lease(3)
        pool.attach(lease)
        lease.release()
        assert pool.banks_leased == 0
        assert pool.banks_shared == 0 and pool.dedup_ratio == 1.0


class TestTenancyMultiplier:
    """The acceptance scenario: K same-base tenants in one budget."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_k_tenants_fit_where_private_planting_exhausts(
            self, rng, backend):
        z = _z(rng, k=4, n=6)
        xs = [rng.integers(-3, 4, size=4) for _ in range(6)]
        budget = 4 if backend == "fast" else 2      # one plan's banks
        K = 3

        # Private planting: per-device stores, one shared bounded
        # pool -- the second tenant's engine build must exhaust it.
        pool = BankPool(budget)
        devs = [Device(pool=pool, backend=backend) for _ in range(K)]
        plans = [d.plan_gemv(z, kind="ternary") for d in devs]
        plans[0](xs[0])
        with pytest.raises(PoolExhausted):
            plans[1](xs[1])
        for d in devs:
            d.close()

        # Shared store: all K tenants attach to one engine body.
        pool = BankPool(budget)
        dev = Device(pool=pool, backend=backend)
        shared = [dev.plan_gemv(z, kind="ternary") for _ in range(K)]
        expected = [xs[i] @ z for i in range(len(xs))]
        for i, x in enumerate(xs):
            y = shared[i % K](x)
            np.testing.assert_array_equal(y, expected[i])
        assert pool.banks_leased <= budget
        snap = pool.snapshot()
        assert snap.banks_shared == snap.banks_leased > 0
        assert snap.dedup_ratio == pytest.approx(K)
        stats = dev.store.stats()
        assert stats.images == 1 and stats.dedup_hits == K - 1
        # Ternary rows plant both sign orientations: 2 * k flat rows.
        assert stats.rows_resident == 8
        assert stats.rows_shared == K * 8 and stats.rows_private == 0
        dev.close()
        assert pool.banks_leased == 0

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_shared_tenants_bit_exact_vs_private_under_faults(
            self, rng, backend):
        """Same queries, same seeded fault model: the shared-engine
        path must reproduce private planting bit for bit, terminal
        RNG state included."""
        z = _z(rng, k=4, n=6)
        K = 3
        queries = [(t, rng.integers(-3, 4, size=4))
                   for t in rng.integers(0, K, size=10)]

        def run(shared: bool):
            fm = FaultModel(p_cim=2e-2, seed=99)
            if shared:
                dev = Device(backend=backend, fault_model=fm)
                plans = [dev.plan_gemv(z, kind="ternary")
                         for _ in range(K)]
                devs = [dev]
            else:
                devs = [Device(backend=backend, fault_model=fm)
                        for _ in range(K)]
                plans = [d.plan_gemv(z, kind="ternary") for d in devs]
            ys = [plans[t](x) for t, x in queries]
            injected = fm.injected
            state = fm._rng.bit_generator.state
            for d in devs:
                d.close()
            return ys, injected, state

        ys_shared, inj_shared, state_shared = run(shared=True)
        ys_priv, inj_priv, state_priv = run(shared=False)
        assert inj_shared == inj_priv > 0
        assert state_shared == state_priv
        for a, b in zip(ys_shared, ys_priv):
            np.testing.assert_array_equal(a, b)

    def test_batch_waves_share_the_batch_cluster(self, rng):
        z = _z(rng, k=4, n=6)
        dev = Device(backend="fast", pool=BankPool(64))
        a = dev.plan_gemv(z, kind="ternary")
        b = dev.plan_gemv(z, kind="ternary")
        xs = rng.integers(-3, 4, size=(5, 4))
        ya, yb = a.run_many(xs), b.run_many(xs)
        np.testing.assert_array_equal(ya, xs @ z)
        np.testing.assert_array_equal(yb, xs @ z)
        # One batch body, both tenants attached to it.
        assert a._res["batch"] is b._res["batch"]
        assert a._res["batch"].n_attached == 2
        dev.close()


class TestRefcountAwareEviction:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_evicting_one_sharing_tenant_keeps_survivor_bit_exact(
            self, rng, backend):
        z = _z(rng, k=4, n=6)
        budget = 4 if backend == "fast" else 2
        pool = BankPool(budget)
        dev = Device(pool=pool, backend=backend)
        reg = ModelRegistry(dev)
        reg.register("base", z, kind="ternary")
        reg.register("tune", z, kind="ternary")
        x = rng.integers(-3, 4, size=4)
        y_base = reg.run("base", lambda p: p(x))
        y_tune = reg.run("tune", lambda p: p(x))
        np.testing.assert_array_equal(y_base, x @ z)
        np.testing.assert_array_equal(y_tune, x @ z)
        # Both resident on one shared body within the one-plan budget.
        assert sorted(reg.resident_names) == ["base", "tune"]
        assert pool.banks_leased <= budget
        assert reg.evict("base")
        # The survivor keeps the lease: evicting a sharing tenant
        # never frees rows another resident plan still references.
        assert pool.banks_leased > 0
        assert reg.get("tune").is_resident
        for _ in range(3):
            x2 = rng.integers(-3, 4, size=4)
            np.testing.assert_array_equal(
                reg.run("tune", lambda p: p(x2)), x2 @ z)
        # The parked tenant comes back bit-exactly too.
        np.testing.assert_array_equal(
            reg.run("base", lambda p: p(x)), x @ z)
        reg.close()

    def test_lru_prefers_victims_that_free_banks(self, rng):
        z_a = _z(rng, k=4, n=6)
        pool = BankPool(16)
        dev = Device(pool=pool, backend="fast")
        reg = ModelRegistry(dev)
        reg.register("a1", z_a, kind="ternary")
        reg.register("a2", z_a, kind="ternary")
        x = rng.integers(-3, 4, size=4)
        reg.run("a1", lambda p: p(x))       # LRU...
        reg.run("a2", lambda p: p(x))       # ...but shares a1's body
        # a1 is least recently used, but parking it frees nothing
        # (a2 still holds the body): the eviction must pick a2... and
        # since a2 *is* sole-referenced from the pool's perspective
        # only jointly, the victim is whichever actually frees banks.
        assert reg.evict()
        freed = pool.banks_leased
        # One of the two parked; the survivor still pins the lease.
        assert freed > 0
        reg.close()


class TestCopyOnWrite:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_mutation_diverges_without_disturbing_the_other_tenant(
            self, rng, backend):
        z = _z(rng, k=4, n=6)
        fm = FaultModel(p_cim=5e-3, seed=7)
        dev = Device(backend=backend, fault_model=fm)
        a = dev.plan_gemv(z, kind="ternary")
        b = dev.plan_gemv(z, kind="ternary")
        assert a.row_digest == b.row_digest
        x = rng.integers(-3, 4, size=4)
        a(x), b(x)
        z2 = z.copy()
        z2[1] = rng.integers(-1, 2, size=6)
        b.mutate_rows([1], z2[[1]])
        assert b.row_digest != a.row_digest
        assert b.row_digest == row_digest(
            "ternary", 2, np.asarray(b._image.masks))
        stats = dev.store.stats()
        assert stats.cow_clones == 1 and stats.images == 2
        # Fault-free checks of divergence (exact expected values).
        dev2 = Device(backend=backend)
        a2 = dev2.plan_gemv(z, kind="ternary")
        b2 = dev2.plan_gemv(z, kind="ternary")
        b2.mutate_rows([1], z2[[1]])
        for _ in range(3):
            xq = rng.integers(-3, 4, size=4)
            np.testing.assert_array_equal(a2(xq), xq @ z)
            np.testing.assert_array_equal(b2(xq), xq @ z2)
        dev.close()
        dev2.close()

    def test_no_stale_megatrace_after_mutation(self, rng):
        """Cache-generation invariant: a compiled whole-batch trace
        must not replay against swapped rows."""
        z = _z(rng, k=4, n=6)
        dev = Device(backend="fast")
        plan = dev.plan_gemv(z, kind="ternary", x_budget=64)
        xs = rng.integers(-3, 4, size=(6, 4))
        np.testing.assert_array_equal(plan.run_many(xs), xs @ z)
        z2 = z.copy()
        z2[0] = rng.integers(-1, 2, size=6)
        z2[2] = rng.integers(-1, 2, size=6)
        plan.mutate_rows([0, 2], z2[[0, 2]])
        # Identical query batch: same wave signatures, so only the
        # cache-epoch term separates the old compiled megatrace from
        # the new rows.
        np.testing.assert_array_equal(plan.run_many(xs), xs @ z2)
        dev.close()

    def test_mutation_validates_inputs(self, rng):
        z = _z(rng, k=4, n=6)
        dev = Device(backend="fast")
        plan = dev.plan_gemv(z, kind="ternary")
        with pytest.raises(ValueError, match="row indices"):
            plan.mutate_rows([9], np.zeros((1, 6), dtype=np.int8))
        with pytest.raises(ValueError, match="values must be"):
            plan.mutate_rows([1], np.zeros((2, 6), dtype=np.int8))
        with pytest.raises(ValueError, match="ternary"):
            plan.mutate_rows([1], np.full((1, 6), 5, dtype=np.int8))
        dev.close()

    def test_cow_can_remerge_with_an_existing_image(self, rng):
        z_a = _z(rng, k=4, n=6)
        z_b = z_a.copy()
        z_b[2] = rng.integers(-1, 2, size=6)
        dev = Device(backend="fast")
        a = dev.plan_gemv(z_a, kind="ternary")
        b = dev.plan_gemv(z_b, kind="ternary")
        assert a.row_digest != b.row_digest
        a.mutate_rows([2], z_b[[2]])        # a converges onto b's Z
        assert a.row_digest == b.row_digest
        assert dev.store.stats().images == 1
        assert a.stats.dedup_hits == 1
        dev.close()


class TestDigestRoundTrip:
    @given(seed=st.integers(0, 10_000),
           k=st.integers(1, 5), n=st.integers(1, 8),
           backend=st.sampled_from(BACKENDS))
    @settings(max_examples=25, deadline=None)
    def test_digest_stable_across_park_unpark_export_import(
            self, seed, k, n, backend):
        rng = np.random.default_rng(seed)
        z = rng.integers(-1, 2, size=(k, n)).astype(np.int8)
        dev = Device(backend=backend)
        plan = dev.plan_gemv(z, kind="ternary")
        d0 = plan.row_digest
        x = rng.integers(-3, 4, size=k)
        y0 = plan(x)
        plan.park()
        assert plan.row_digest == d0
        plan.unpark()
        assert plan.row_digest == d0
        image = plan.export_image()
        assert image["digest"] == d0
        twin = dev.plan_gemv(z, kind="ternary")
        assert twin.row_digest == d0
        twin.import_image(image)
        assert twin.row_digest == d0
        np.testing.assert_array_equal(twin(x), y0)
        dev.close()

    def test_import_rejects_foreign_digest(self, rng):
        z1, z2 = _z(rng), _z(rng)
        assert not np.array_equal(z1, z2)
        dev = Device(backend="fast")
        a = dev.plan_gemv(z1, kind="ternary")
        b = dev.plan_gemv(z2, kind="ternary")
        a(rng.integers(-3, 4, size=4))
        image = a.export_image()
        with pytest.raises(ValueError, match="different row image"):
            b.import_image(image)
        dev.close()


class TestMarginalFootprint:
    def test_marginal_vs_total(self, rng):
        z = _z(rng, k=4, n=6)
        dev = Device(backend="fast", pool=BankPool(16))
        a = dev.plan_gemv(z, kind="ternary")
        x = rng.integers(-3, 4, size=4)
        a(x)
        # Sole tenant: marginal == total == leased.
        assert a.footprint_banks == a.footprint_banks_total \
            == a.leased_banks > 0
        b = dev.plan_gemv(z, kind="ternary")
        b(x)
        # Shared: neither tenant's eviction frees the banks.
        assert a.footprint_banks == 0 and b.footprint_banks == 0
        assert a.footprint_banks_total == a.leased_banks > 0
        # A parked tenant whose image is still live costs nothing.
        b.park()
        assert b.footprint_banks == 0
        assert b.footprint_banks_total > 0
        a.park()
        # Nothing resident anywhere: back to the build estimate.
        assert a.footprint_banks == a.footprint_banks_total > 0
        dev.close()

    def test_plan_stats_dedup_fields(self, rng):
        z = _z(rng, k=4, n=6)
        dev = Device(backend="fast")
        a = dev.plan_gemv(z, kind="ternary")
        assert a.stats.dedup_hits == 0
        assert a.stats.rows_private == a.stats.resident_rows > 0
        assert a.stats.rows_shared == 0
        b = dev.plan_gemv(z, kind="ternary")
        assert b.stats.dedup_hits == 1
        assert a.stats.rows_shared == a.stats.resident_rows
        assert a.stats.rows_private == 0
        dev.close()

    def test_shared_tenants_do_not_double_count_ops(self, rng):
        z = _z(rng, k=4, n=6)
        dev = Device(backend="fast")
        a = dev.plan_gemv(z, kind="ternary")
        b = dev.plan_gemv(z, kind="ternary")
        x = rng.integers(-3, 4, size=4)
        a(x)
        ops_a = a.stats.measured_ops
        assert ops_a > 0 and b.stats.measured_ops == 0
        b(x)
        assert a.stats.measured_ops == ops_a
        assert b.stats.measured_ops == ops_a   # same work, same count
        dev.close()


class TestDedupAwarePlacement:
    def test_same_digest_charged_once_per_shard(self):
        from repro.fleet.placement import Placement
        p = Placement([0, 1], {0: 8, 1: 8})
        assert p.assign("a", footprint=4, digest="d1") == 0
        # Digest d1 already on shard 0: marginal zero beats shard 1's
        # free-but-must-plant budget.
        assert p.assign("b", footprint=4, digest="d1") == 0
        assert p.used(0) == 4                  # charged once
        assert p.assign("c", footprint=4, digest="d2") == 1

    def test_digest_none_preserves_old_behavior(self):
        from repro.fleet.placement import Placement
        p = Placement([0, 1], {0: 16, 1: 16})
        assert p.assign("a", footprint=4) == 0
        assert p.assign("b", footprint=4) == 1
        assert p.assign("c", footprint=2) == 0

    def test_plan_moves_use_marginal_footprint(self):
        from repro.fleet.placement import Placement
        p = Placement([0, 1], {0: 8, 1: 8})
        p.assign("hot", footprint=4, digest="d1")      # shard 0
        p.assign("cold", footprint=4, digest="d1")     # shard 0, free
        p.assign("filler", footprint=8, digest="d2")   # shard 1 full
        p.note_queries("hot", 90)
        p.note_queries("cold", 10)
        p.note_queries("filler", 1)
        # Shard 1 has zero free budget, but cold's marginal footprint
        # there is 4 (no d1 tenant) > 0 -- no move fits.  Moving cold
        # within the old gross accounting would also not fit; what the
        # dedup awareness changes is the *source* reclaim: dropping
        # cold from shard 0 frees nothing while hot pins d1.
        moves = p.plan_moves(ratio=2.0)
        assert moves == []

    def test_plan_moves_digestless_footprint_pinned(self):
        from repro.fleet.placement import Placement
        p = Placement([0, 1], {0: 16, 1: 16})
        p.assign("hot", footprint=4)
        p.assign("warm", footprint=4)
        # both landed apart; force co-location for the imbalance
        p.move("warm", 0)
        p.note_queries("hot", 90)
        p.note_queries("warm", 10)
        moves = p.plan_moves(ratio=4.0)
        assert [(m.model, m.src, m.dst, m.footprint)
                for m in moves] == [("warm", 0, 1, 4)]
