"""Multi-digit counter golden model: pendings, rippling, capacity."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.counter import (CapacityError, CounterArray,
                                PendingOverflowError)


class TestBasics:
    def test_capacity(self):
        assert CounterArray(2, 4, 1).capacity == 4 ** 4

    def test_for_capacity_sizing(self):
        ca = CounterArray.for_capacity(2, 10_000, 1)
        assert ca.capacity >= 10_000
        assert CounterArray.for_capacity(2, 10_000, 1).n_digits == 7

    def test_set_totals_roundtrip(self, rng):
        ca = CounterArray(3, 4, 10)
        vals = rng.integers(0, 6 ** 4, 10).tolist()
        ca.set_totals(vals)
        assert ca.totals() == vals

    def test_set_totals_range_check(self):
        ca = CounterArray(2, 2, 1)
        with pytest.raises(ValueError):
            ca.set_totals([16])

    def test_totals_includes_pending_weight(self):
        ca = CounterArray(5, 3, 1)
        ca.set_totals([9])
        ca.increment_digit(0, 9)          # 18 -> wrap + pending
        assert ca.values[0, 0] == 8
        assert ca.pending[0, 0] == 1
        assert ca.totals() == [18]

    def test_mask_shape_validation(self):
        ca = CounterArray(2, 2, 4)
        with pytest.raises(ValueError):
            ca.increment_digit(0, 1, mask=np.ones(3, dtype=bool))


class TestPendingSemantics:
    def test_double_wrap_raises(self):
        ca = CounterArray(5, 2, 1)
        ca.set_totals([9])
        ca.increment_digit(0, 9)          # first wrap: pending
        with pytest.raises(PendingOverflowError):
            ca.increment_digit(0, 9)      # 17 + 9 wraps again

    def test_resolve_clears_pending(self):
        ca = CounterArray(5, 2, 1)
        ca.set_totals([19])
        ca.increment_digit(0, 1)
        assert ca.pending[0, 0] == 1
        ca.resolve_digit(0)
        assert ca.pending[0, 0] == 0
        assert ca.totals() == [20]

    def test_opposite_direction_pendings_cancel(self):
        ca = CounterArray(5, 2, 1)
        ca.set_totals([9])
        ca.increment_digit(0, 5)          # 14: pending +1, value 4
        ca.increment_digit(0, -5)         # back to 9: pending cancels
        assert ca.pending[0, 0] == 0
        assert ca.totals() == [9]

    def test_msd_overflow_raises(self):
        ca = CounterArray(2, 1, 1)
        ca.set_totals([3])
        with pytest.raises(CapacityError):
            ca.increment_digit(0, 1)

    def test_msd_overflow_wraps_when_enabled(self):
        ca = CounterArray(2, 1, 1, wrap=True)
        ca.set_totals([3])
        ca.increment_digit(0, 2)
        assert ca.totals() == [1]

    def test_resolve_msd_rejected(self):
        ca = CounterArray(2, 2, 1)
        with pytest.raises(ValueError):
            ca.resolve_digit(1)


class TestAddValue:
    def test_ripple_policy_matches_arithmetic(self, rng):
        ca = CounterArray(2, 8, 16)
        ref = np.zeros(16, dtype=np.int64)
        for _ in range(100):
            x = int(rng.integers(0, 300))
            mask = rng.integers(0, 2, 16).astype(bool)
            ca.add_value(x, mask=mask)
            ref[mask] += x
        assert ca.totals() == ref.tolist()

    def test_signed_stream(self, rng):
        ca = CounterArray(5, 4, 8)
        ca.set_totals([500] * 8)
        ref = np.full(8, 500, dtype=np.int64)
        for _ in range(80):
            x = int(rng.integers(-40, 60))
            mask = rng.integers(0, 2, 8).astype(bool)
            if ((ref[mask] + x) < 0).any():
                continue
            ca.add_value(x, mask=mask)
            ref[mask] += x
        assert ca.totals() == ref.tolist()

    def test_value_exceeding_capacity_rejected(self):
        ca = CounterArray(2, 2, 1)
        with pytest.raises(ValueError):
            ca.add_value(100)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            CounterArray(2, 2, 1).add_value(1, policy="bogus")

    def test_resolve_all_converges_from_saturated_state(self):
        ca = CounterArray(5, 4, 1)
        ca.set_totals([999])
        ca.add_value(999, policy="ripple")
        assert ca.totals() == [1998]
        assert not ca.pending.any()


@given(n_bits=st.integers(1, 5),
       values=st.lists(st.integers(0, 255), min_size=1, max_size=40))
@settings(max_examples=100, deadline=None)
def test_property_ripple_accumulation(n_bits, values):
    cap = sum(values) + 1
    ca = CounterArray.for_capacity(n_bits, max(cap, 2), 3)
    for v in values:
        ca.add_value(v)
    assert ca.totals() == [sum(values)] * 3
