"""Energy/area model and assorted thin-coverage paths."""

import numpy as np
import pytest

from repro.dram import DDR5_ENERGY, EnergyModel
from repro.engine import CountingEngine
from repro.dram.energy import DDR5_ENERGY as ENERGY_ALIAS
from repro.perf.model import uniform_int8_magnitudes


class TestEnergyModel:
    def test_aap_energy_composition(self):
        e = EnergyModel(e_act_nj=2.0, e_pre_nj=1.0)
        assert e.e_aap_nj == pytest.approx(5.0)    # 2 ACT + 1 PRE
        assert e.e_ap_nj == pytest.approx(3.0)     # 1 ACT + 1 PRE

    def test_energy_includes_background(self):
        e = DDR5_ENERGY
        dynamic_only = e.energy_for_aaps_j(1000)
        with_time = e.energy_for_aaps_j(1000, elapsed_s=1.0)
        assert with_time == pytest.approx(dynamic_only
                                          + e.background_w)

    def test_average_power(self):
        e = DDR5_ENERGY
        p = e.average_power_w(n_aaps=275_000_000, elapsed_s=1.0)
        # A fully FAW-saturated rank lands at watt-scale power.
        assert 0.5 < p < 5.0
        with pytest.raises(ValueError):
            e.average_power_w(10, 0.0)

    def test_module_area(self):
        e = DDR5_ENERGY
        # 8 data + 1 ECC chip, ~1% CIM overhead.
        assert e.module_area_mm2() == pytest.approx(
            9 * e.chip_area_mm2 * 1.01)

    def test_shared_instance(self):
        assert DDR5_ENERGY is ENERGY_ALIAS


class TestValueSamplers:
    def test_uniform_magnitudes_deterministic(self):
        a = uniform_int8_magnitudes(100, seed=9)
        b = uniform_int8_magnitudes(100, seed=9)
        assert (a == b).all()
        assert a.min() >= 0 and a.max() <= 128

    def test_mean_near_half_range(self):
        sample = uniform_int8_magnitudes(50_000, seed=3)
        assert sample.mean() == pytest.approx(64, rel=0.05)


class TestEngineMiscPaths:
    def test_fr_checks_one(self, rng):
        """A single FR check still detects and corrects (Tab. 1 r=1)."""
        from repro.dram import FaultModel
        fm = FaultModel(p_cim=5e-3, seed=8)
        eng = CountingEngine(n_bits=2, n_digits=4, n_lanes=12,
                             fault_model=fm, fr_checks=1)
        eng.load_mask(0, np.ones(12, dtype=np.uint8))
        total = 0
        for _ in range(6):
            x = int(rng.integers(1, 30))
            eng.accumulate(x)
            total += x
        assert (eng.read_values(strict=False) == total).all()

    def test_model_ops_uses_protected_formula_when_protected(self, rng):
        from repro.core.opcount import protected_increment_ops
        eng = CountingEngine(n_bits=2, n_digits=3, n_lanes=4, fr_checks=2)
        eng.load_mask(0, np.ones(4, dtype=np.uint8))
        eng.accumulate(1)                 # one increment event
        assert eng.model_ops == protected_increment_ops(2, 2)

    def test_double_flush_is_idempotent(self):
        eng = CountingEngine(n_bits=2, n_digits=3, n_lanes=4)
        eng.load_mask(0, np.ones(4, dtype=np.uint8))
        eng.accumulate(7)
        first = eng.read_values().copy()
        eng.flush()
        assert (eng.read_values() == first).all()

    def test_reading_without_accumulate(self):
        eng = CountingEngine(n_bits=2, n_digits=3, n_lanes=4)
        eng.reset_counters()
        assert (eng.read_values() == 0).all()


class TestCostReportEdges:
    def test_zero_aaps_default(self):
        from repro.perf import CostReport
        r = CostReport("x", 1e9, 0.5, 1.0, 10.0)
        assert r.aaps == 0.0
        assert r.latency_ms == pytest.approx(500.0)

    def test_gpu_energy_path(self):
        from repro.baselines import GPUModel
        gpu = GPUModel()
        e = gpu.energy_j(64, 64, 64)
        assert e == pytest.approx(gpu.total_time_s(64, 64, 64)
                                  * gpu.power_w())


class TestLayoutEdges:
    def test_fits_exact_boundary(self):
        from repro.engine import CounterLayout
        lay = CounterLayout(2, 2)
        assert lay.fits(lay.total_rows)
        assert not lay.fits(lay.total_rows - 1)

    def test_mask_count_zero_allowed(self):
        from repro.engine import CounterLayout
        lay = CounterLayout(2, 2, n_masks=0)
        assert lay.mask_rows == []
        with pytest.raises(ValueError):
            CounterLayout(2, 2, n_masks=-1)
