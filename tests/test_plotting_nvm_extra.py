"""ASCII plotting utilities and the NVM decrement programs."""

import numpy as np
import pytest

from repro.core import johnson as J
from repro.experiments.plotting import ascii_chart, chart_from_rows
from repro.isa import PinatuboMachine, pinatubo_decrement_program


class TestAsciiChart:
    def test_basic_layout(self):
        chart = ascii_chart({"a": [(1, 1), (2, 2), (3, 3)]},
                            width=20, height=5, title="demo")
        lines = chart.splitlines()
        assert lines[0] == "demo"
        assert any("o" in line for line in lines)
        assert "o=a" in lines[-1]

    def test_log_axes_extents(self):
        chart = ascii_chart({"s": [(1e-6, 1e-2), (1e-1, 1e2)]},
                            log_x=True, log_y=True)
        assert "0.01" in chart and "100" in chart
        assert "1e-06" in chart and "0.1" in chart

    def test_multiple_series_markers(self):
        chart = ascii_chart({"one": [(0, 0), (1, 1)],
                             "two": [(0, 1), (1, 0)]})
        assert "o=one" in chart and "x=two" in chart

    def test_empty(self):
        assert "(no data)" in ascii_chart({}, title="t")

    def test_none_values_skipped(self):
        chart = ascii_chart({"a": [(0, 1), (1, None), (2, 3)]})
        assert "o=a" in chart

    def test_chart_from_rows(self):
        rows = [{"x": 1, "y": 10, "z": 5, "label": "skip-me"},
                {"x": 2, "y": 20, "z": 2},
                {"x": "RCA", "y": 99, "z": 99}]    # non-numeric x dropped
        chart = chart_from_rows(rows, "x")
        assert "o=y" in chart and "x=z" in chart
        assert "99" not in chart.splitlines()[0]

    def test_chart_from_rows_explicit_keys(self):
        rows = [{"x": 1, "y": 1, "z": 1}, {"x": 2, "y": 4, "z": 8}]
        chart = chart_from_rows(rows, "x", y_keys=["z"])
        assert "o=z" in chart and "y" not in chart.split("|")[-1]


class TestNVMDecrement:
    @pytest.mark.parametrize("n", [2, 3, 5])
    def test_pinatubo_masked_decrement(self, n, rng):
        lanes_n = 32
        values = rng.integers(0, 2 * n, lanes_n)
        lanes = J.encode_lanes(values, n)
        mask = rng.integers(0, 2, lanes_n).astype(np.uint8)
        machine = PinatuboMachine(lanes_n)
        for i in range(n):
            machine.write(f"b{i}", lanes[i])
        machine.write("m", mask)
        machine.write("On", np.zeros(lanes_n, np.uint8))
        machine.run(pinatubo_decrement_program(n))
        got = np.stack([machine.read(f"b{i}") for i in range(n)])
        want = J.step(lanes, -1, mask)
        assert (got == want).all()
        flag = J.underflow_after_step(lanes[n - 1], want[n - 1], 1, n,
                                      mask)
        assert (machine.read("On") == flag).all()

    def test_decrement_then_increment_roundtrip(self, rng):
        from repro.isa import pinatubo_increment_program
        n, lanes_n = 4, 16
        values = rng.integers(1, 2 * n, lanes_n)   # avoid wrap effects
        lanes = J.encode_lanes(values, n)
        ones = np.ones(lanes_n, dtype=np.uint8)
        machine = PinatuboMachine(lanes_n)
        for i in range(n):
            machine.write(f"b{i}", lanes[i])
        machine.write("m", ones)
        machine.write("On", np.zeros(lanes_n, np.uint8))
        machine.run(pinatubo_decrement_program(n))
        machine.run(pinatubo_increment_program(n))
        got = np.stack([machine.read(f"b{i}") for i in range(n)])
        assert (got == lanes).all()
