"""The serving runtime (repro.serve): pool, registry, server, telemetry.

Pins the multi-tenant contract end to end: bank leases are accounted
against one shared budget, a pool too small for every model forces LRU
eviction whose park/unpark round-trip is bit-exact on both backends,
concurrent submissions coalesce into shared ``run_many`` waves, and
every response's telemetry derives from the *measured* op stream (not
nominal counts).
"""

import threading

import numpy as np
import pytest

from repro.core import CounterArray
from repro.device import Device
from repro.dram.energy import DDR5_ENERGY
from repro.dram.faults import FaultModel
from repro.dram.timing import time_for_aaps_ns
from repro.kernels import required_digits
from repro.serve import (BankPool, ModelRegistry, PoolExhausted, Server)

BACKENDS = ["fast", "bit"]


def golden_ternary_gemv(x, z, n_bits=2):
    """Golden-model reference: two CounterArrays, sign in the mask."""
    digits = required_digits(n_bits, x)
    pos = CounterArray(n_bits, digits, z.shape[1])
    neg = CounterArray(n_bits, digits, z.shape[1])
    plus = (z == 1).astype(np.uint8)
    minus = (z == -1).astype(np.uint8)
    for i in range(x.size):
        if x[i] == 0:
            continue
        up, down = ((plus[i], minus[i]) if x[i] > 0
                    else (minus[i], plus[i]))
        if up.any():
            pos.add_value(int(abs(x[i])), mask=up)
        if down.any():
            neg.add_value(int(abs(x[i])), mask=down)
    return (np.array(pos.totals(), dtype=np.int64)
            - np.array(neg.totals(), dtype=np.int64))


class TestBankPool:
    def test_lease_and_release_accounting(self):
        pool = BankPool(10)
        a = pool.lease(6)
        b = pool.lease(4)
        assert pool.banks_free == 0 and pool.n_live_leases == 2
        a.release()
        assert pool.banks_free == 6
        a.release()                       # idempotent
        assert pool.banks_free == 6
        b.release()
        assert pool.banks_leased == 0

    def test_exhaustion_raises_without_state_change(self):
        pool = BankPool(4)
        pool.lease(3)
        with pytest.raises(PoolExhausted, match="exceeds the pool"):
            pool.lease(2)
        assert pool.banks_leased == 3     # failed lease left no trace
        pool.lease(1)                     # exact fit still fine

    def test_unbounded_pool(self):
        pool = BankPool()
        assert not pool.bounded and pool.banks_free is None
        pool.lease(10 ** 6)               # never exhausts
        assert pool.clamp(512) == 512

    def test_clamp_respects_total_budget(self):
        assert BankPool(6).clamp(8) == 6
        assert BankPool(6).clamp(4) == 4
        assert BankPool(1).clamp(8) == 1

    def test_bad_arguments(self):
        with pytest.raises(ValueError):
            BankPool(0)
        with pytest.raises(ValueError):
            BankPool(8).lease(0)

    def test_exchange_resizes_atomically(self):
        """A lessee resizing is charged the difference: banks it holds
        can never be stolen in a release/re-acquire window."""
        pool = BankPool(8)
        a = pool.lease(6)
        pool.lease(2)                     # another tenant fills the rest
        with pytest.raises(PoolExhausted, match="exchangeable"):
            pool.exchange(a, 8)           # genuinely over budget
        assert a.live and pool.banks_leased == 8   # failure untouched
        a2 = pool.exchange(a, 4)          # shrink: always fits
        assert not a.live and a2.live
        assert pool.banks_leased == 6
        a3 = pool.exchange(a2, 6)         # grow back into own headroom
        assert pool.banks_leased == 8 and a3.n_banks == 6

    def test_exchange_rejects_foreign_lease(self):
        lease = BankPool(4).lease(2)
        with pytest.raises(ValueError, match="another pool"):
            BankPool(4).exchange(lease, 2)


class TestDevicePoolIntegration:
    def test_plans_lease_and_release_banks(self, rng):
        pool = BankPool(32)
        z = rng.integers(-1, 2, (6, 8)).astype(np.int8)
        with Device(pool=pool, backend="fast") as dev:
            plan = dev.plan_gemv(z, kind="ternary")
            assert pool.banks_leased == 0          # lazy until first use
            plan(rng.integers(-3, 4, 6))
            assert pool.banks_leased == plan.leased_banks > 0
            plan.close()
            assert pool.banks_leased == 0

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_bounded_pool_still_bit_exact(self, backend, rng):
        """Clamped shards change the schedule, never the arithmetic."""
        z = rng.integers(-1, 2, (9, 12)).astype(np.int8)
        xs = rng.integers(-5, 6, (7, 9))
        with Device(pool=BankPool(4), backend=backend) as dev:
            plan = dev.plan_gemv(z, kind="ternary")
            assert (plan.run_many(xs) == xs @ z).all()
            assert (plan(xs[0]) == xs[0] @ z).all()

    def test_pool_too_small_for_plan_raises(self, rng):
        """Bit-backend ternary needs two engine banks; budget of 1 fails."""
        z = rng.integers(-1, 2, (4, 5)).astype(np.int8)
        with Device(pool=BankPool(1), backend="bit") as dev:
            plan = dev.plan_gemv(z, kind="ternary")
            with pytest.raises(PoolExhausted):
                plan(np.array([1, -1, 0, 2]))

    def test_two_devices_share_one_budget(self, rng):
        pool = BankPool(64)
        za = rng.integers(0, 2, (4, 6)).astype(np.uint8)
        zb = rng.integers(0, 2, (5, 7)).astype(np.uint8)
        with Device(pool=pool) as da, Device(pool=pool) as db:
            pa = da.plan_gemv(za, kind="binary")
            pb = db.plan_gemv(zb, kind="binary")
            pa(np.arange(4))
            pb(np.arange(5))
            assert pool.banks_leased == pa.leased_banks + pb.leased_banks


class TestParkUnpark:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_park_preserves_counter_image(self, backend, rng):
        z = rng.integers(-1, 2, (8, 10)).astype(np.int8)
        x = rng.integers(-6, 7, 8)
        pool = BankPool(16)
        with Device(pool=pool, backend=backend) as dev:
            plan = dev.plan_gemv(z, kind="ternary")
            y = plan(x)
            if backend == "fast":
                images = [plan._cluster.export_counters()]
            else:
                images = [e.export_counters() for e in plan._engines]
            plan.park()
            assert plan.is_parked and not plan.is_resident
            assert pool.banks_leased == 0          # leases returned
            plan.unpark()
            assert not plan.is_parked and plan.is_resident
            restored = ([plan._cluster.export_counters()]
                        if backend == "fast"
                        else [e.export_counters() for e in plan._engines])
            for before, after in zip(images, restored):
                assert (before == after).all()
            assert (plan(x) == y).all()            # still serves queries
            assert plan.stats.parks == 1 and plan.stats.unparks == 1

    def test_queries_unpark_transparently(self, rng):
        z = rng.integers(-1, 2, (6, 9)).astype(np.int8)
        xs = rng.integers(-4, 5, (5, 6))
        with Device() as dev:
            plan = dev.plan_gemv(z, kind="ternary")
            assert (plan.run_many(xs) == xs @ z).all()
            plan.park()
            assert (plan.run_many(xs) == xs @ z).all()   # no explicit unpark
            assert plan.stats.unparks == 1

    def test_unpark_is_all_or_nothing(self, rng):
        """Partial unpark must not discard any role's counter image."""
        pool = BankPool(20)
        z = rng.integers(-1, 2, (5, 6)).astype(np.int8)
        with Device(pool=pool) as dev:
            plan = dev.plan_gemv(z, kind="ternary")
            plan(rng.integers(-3, 4, 5))             # single role
            plan.run_many(rng.integers(-3, 4, (3, 5)))   # batch role
            single_img = plan._cluster.export_counters()
            batch_img = plan._batch[2].export_counters()
            plan.park()
            assert pool.banks_leased == 0
            hog = pool.lease(18)                     # starve the unpark
            with pytest.raises(PoolExhausted):
                plan.unpark()
            assert plan.is_parked                    # rolled back whole
            assert pool.banks_leased == 18           # no leaked leases
            hog.release()
            plan.unpark()                            # now fits: restore
            assert (plan._cluster.export_counters() == single_img).all()
            assert (plan._batch[2].export_counters() == batch_img).all()

    def test_park_without_resources_is_noop(self, rng):
        z = rng.integers(0, 2, (3, 4)).astype(np.uint8)
        with Device() as dev:
            plan = dev.plan_gemv(z, kind="binary")
            plan.park()                                  # nothing to park
            assert not plan.is_parked
            assert plan.stats.parks == 0


class TestRegistry:
    def _registry(self, pool_banks, backend="fast"):
        dev = Device(pool=BankPool(pool_banks), backend=backend)
        return dev, ModelRegistry(dev)

    def test_register_get_unregister(self, rng):
        dev, reg = self._registry(16)
        z = rng.integers(0, 2, (4, 5)).astype(np.uint8)
        plan = reg.register("m", z, kind="binary")
        assert "m" in reg and reg.get("m") is plan
        with pytest.raises(ValueError, match="already registered"):
            reg.register("m", z, kind="binary")
        with pytest.raises(KeyError, match="unknown model"):
            reg.get("ghost")
        reg.unregister("m")
        assert "m" not in reg
        dev.close()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_eviction_under_bank_pressure_bit_exact(self, backend, rng):
        """Two models, a budget that fits only one: LRU park/unpark
        round-trips stay bit-exact vs. the golden model (acceptance)."""
        budget = 4 if backend == "fast" else 2
        dev, reg = self._registry(budget, backend=backend)
        za = rng.integers(-1, 2, (6, 9)).astype(np.int8)
        zb = rng.integers(-1, 2, (6, 9)).astype(np.int8)
        reg.register("a", za, kind="ternary")
        reg.register("b", zb, kind="ternary")
        for _ in range(3):
            xa = rng.integers(-5, 6, 6)
            xb = rng.integers(-5, 6, 6)
            ya = reg.run("a", lambda p: p(xa))
            yb = reg.run("b", lambda p: p(xb))
            assert (ya == golden_ternary_gemv(xa, za)).all()
            assert (yb == golden_ternary_gemv(xb, zb)).all()
        assert reg.stats.evictions >= 4            # thrashing by design
        assert len(reg.resident_names) == 1        # only one ever fits
        dev.close()

    def test_lru_order_picks_coldest_victim(self, rng):
        dev, reg = self._registry(12)              # fits two 5-bank plans
        zs = {name: rng.integers(-1, 2, (5, 6)).astype(np.int8)
              for name in ("a", "b", "c")}
        for name, z in zs.items():
            reg.register(name, z, kind="ternary")
        x = rng.integers(-3, 4, 5)
        reg.run("a", lambda p: p(x))
        reg.run("b", lambda p: p(x))               # resident: a, b
        reg.run("c", lambda p: p(x))               # a is LRU -> parked
        assert set(reg.resident_names) == {"b", "c"}
        assert reg.get("a").is_parked
        dev.close()

    def test_model_too_big_for_pool_propagates(self, rng):
        """Nothing left to evict: the exhaustion reaches the caller."""
        dev, reg = self._registry(1, backend="bit")
        z = rng.integers(-1, 2, (4, 5)).astype(np.int8)
        reg.register("only", z, kind="ternary")    # needs 2 engine banks
        with pytest.raises(PoolExhausted):
            reg.run("only", lambda p: p(np.array([1, -1, 0, 2])))
        dev.close()

    def test_max_resident_cap(self, rng):
        dev, reg = self._registry(None)            # unbounded banks
        reg.max_resident = 1
        za = rng.integers(0, 2, (4, 5)).astype(np.uint8)
        zb = rng.integers(0, 2, (4, 5)).astype(np.uint8)
        reg.register("a", za, kind="binary")
        reg.register("b", zb, kind="binary")
        x = np.arange(4)
        reg.run("a", lambda p: p(x))
        reg.run("b", lambda p: p(x))
        assert reg.resident_names == ["b"]         # cap, not bank pressure
        dev.close()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_import_model_evicts_under_pressure_bit_exact(self, backend,
                                                          rng):
        """Relocating onto a full twin registry parks its LRU resident
        plan instead of failing, and the restored counters stay exact."""
        budget = 4 if backend == "fast" else 2
        src_dev, src = self._registry(budget, backend=backend)
        dst_dev, dst = self._registry(budget, backend=backend)
        za = rng.integers(-1, 2, (6, 9)).astype(np.int8)
        zb = rng.integers(-1, 2, (6, 9)).astype(np.int8)
        src.register("a", za, kind="ternary")
        xa = rng.integers(-5, 6, 6)
        assert (src.run("a", lambda p: p(xa))
                == golden_ternary_gemv(xa, za)).all()
        image = src.export_model("a")

        dst.register("b", zb, kind="ternary")
        xb = rng.integers(-5, 6, 6)
        dst.run("b", lambda p: p(xb))              # b now fills the pool
        dst.register("a", za, kind="ternary")
        dst.import_model("a", image)               # must evict b, not raise
        assert dst.stats.evictions >= 1
        assert dst.get("b").is_parked
        x2 = rng.integers(-5, 6, 6)
        y2 = dst.run("a", lambda p: p(x2))
        assert (y2 == golden_ternary_gemv(x2, za)).all()
        y3 = dst.run("b", lambda p: p(x2))         # b unparks fine too
        assert (y3 == golden_ternary_gemv(x2, zb)).all()
        src_dev.close()
        dst_dev.close()

    def test_registry_close_is_idempotent(self, rng):
        dev, reg = self._registry(16)
        reg.register("m", rng.integers(0, 2, (3, 4)).astype(np.uint8),
                     kind="binary")
        reg.close()
        reg.close()
        assert reg.names() == []
        dev.close()


class TestServer:
    def test_single_query_and_telemetry_derivation(self, rng):
        """Report latency/energy must derive from the measured op delta
        through the DDR timing and energy models (acceptance)."""
        z = rng.integers(-1, 2, (8, 12)).astype(np.int8)
        x = rng.integers(-6, 7, 8)
        with Server(n_bits=2, pool_banks=32) as srv:
            plan = srv.register("m", z, kind="ternary")
            resp = srv.query("m", x)
            assert (resp.y == x @ z).all()
            rep = resp.report
            assert rep.model == "m" and rep.batch_size == 1
            assert rep.measured_ops == plan.stats.measured_ops > 0
            # Latency: exactly time_for_aaps_ns over the leased banks.
            assert rep.latency_ns == pytest.approx(
                time_for_aaps_ns(rep.measured_ops, rep.n_banks))
            # Energy: exactly the EnergyModel over that makespan.
            assert rep.energy_j == pytest.approx(
                DDR5_ENERGY.energy_for_aaps_j(rep.measured_ops,
                                              rep.latency_ns * 1e-9))
            # Measured, not nominal: the counts differ.
            assert rep.measured_ops != rep.cost.nominal_ops
            assert rep.query_energy_j == pytest.approx(rep.energy_j)
            # Dynamic/background split: command-proportional part.
            assert rep.dynamic_energy_j == pytest.approx(
                DDR5_ENERGY.dynamic_energy_j(rep.measured_ops))
            assert 0 < rep.dynamic_energy_j < rep.energy_j

    def test_telemetry_summary_percentiles(self, rng):
        """The server's summary folds every served query's modeled
        latency through LatencySummary -- the same aggregation path
        the fleet uses for fleet-vs-server comparisons."""
        from repro.serve.telemetry import LatencySummary
        z = np.eye(3, dtype=np.uint8)
        with Server(pool_banks=8) as srv:
            srv.register("m", z, kind="binary")
            latencies = []
            for _ in range(6):
                resp = srv.query("m", rng.integers(0, 5, 3))
                latencies.append(resp.report.latency_ns)
            summary = srv.telemetry_summary()
        assert summary.queries == 6 and summary.waves == 6
        assert summary.latency.count == 6
        # identical to aggregating the observed reports directly
        want = LatencySummary.from_ns(latencies)
        assert summary.latency == want
        assert summary.latency.p50_ns <= summary.latency.p99_ns \
            <= summary.latency.max_ns
        assert summary.latency.mean_ns == pytest.approx(
            float(np.mean(latencies)))

    def test_telemetry_summary_empty_is_zero(self):
        with Server(pool_banks=4) as srv:
            summary = srv.telemetry_summary()
        assert summary.queries == 0
        assert summary.latency.count == 0
        assert summary.latency.p99_ns == 0.0

    def test_protection_overhead_shows_up_in_telemetry(self, rng):
        """fr_checks inflate the executed stream; the report notices."""
        z = rng.integers(-1, 2, (3, 4)).astype(np.int8)
        x = np.array([2, -1, 1])

        def ops(fr):
            with Server(n_bits=2, fr_checks=fr, pool_banks=16) as srv:
                srv.register("m", z, kind="ternary")
                return srv.query("m", x).report
        plain, protected = ops(0), ops(1)
        assert protected.measured_ops > plain.measured_ops
        assert protected.latency_ns > plain.latency_ns

    def test_coalesced_burst_shares_one_wave(self, rng):
        z = rng.integers(-1, 2, (10, 14)).astype(np.int8)
        xs = rng.integers(-5, 6, (12, 10))
        with Server(n_bits=2, pool_banks=64) as srv:
            srv.register("m", z, kind="ternary")
            futures = srv.submit_many("m", xs)
            responses = [f.result() for f in futures]
        for x, resp in zip(xs, responses):
            assert (resp.y == x @ z).all()
        sizes = {r.report.batch_size for r in responses}
        assert sizes == {12}                       # one coalesced wave
        assert all(r.report.coalesced for r in responses)
        assert srv.stats.waves == 1 and srv.stats.queries == 12
        # Per-query energy attribution splits the wave evenly.
        rep = responses[0].report
        assert rep.query_energy_j == pytest.approx(rep.energy_j / 12)

    def test_concurrent_clients_from_threads(self, rng):
        z = rng.integers(-1, 2, (6, 8)).astype(np.int8)
        xs = rng.integers(-4, 5, (16, 6))
        results = {}
        with Server(n_bits=2, pool_banks=64) as srv:
            srv.register("m", z, kind="ternary")

            def client(i):
                results[i] = srv.query("m", xs[i]).y

            threads = [threading.Thread(target=client, args=(i,))
                       for i in range(len(xs))]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        for i, x in enumerate(xs):
            assert (results[i] == x @ z).all()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_multi_tenant_eviction_bit_exact(self, backend, rng):
        """Acceptance: >= 2 models under a budget that forces eviction
        return golden-exact results on both backends."""
        budget = 4 if backend == "fast" else 2
        za = rng.integers(-1, 2, (7, 9)).astype(np.int8)
        zb = rng.integers(-1, 2, (7, 9)).astype(np.int8)
        with Server(n_bits=2, backend=backend, pool_banks=budget) as srv:
            srv.register("a", za, kind="ternary")
            srv.register("b", zb, kind="ternary")
            for _ in range(2):
                xa = rng.integers(-4, 5, 7)
                xb = rng.integers(-4, 5, 7)
                ra, rb = srv.query("a", xa), srv.query("b", xb)
                assert (ra.y == golden_ternary_gemv(xa, za)).all()
                assert (rb.y == golden_ternary_gemv(xb, zb)).all()
            assert srv.registry.stats.evictions >= 2
            # Telemetry saw the eviction happen inside a wave.
            assert rb.report.evictions >= 1

    def test_submit_validation_is_immediate(self, rng):
        z = rng.integers(0, 2, (4, 5)).astype(np.uint8)
        with Server(pool_banks=16) as srv:
            srv.register("m", z, kind="binary")
            with pytest.raises(KeyError, match="unknown model"):
                srv.submit("ghost", np.arange(4))
            with pytest.raises(ValueError, match="length-4"):
                srv.submit("m", np.arange(7))
            with pytest.raises(ValueError, match="leading axis"):
                srv.submit_many("m", np.arange(4))
            # Domain errors too: a signed query against a binary plan
            # is rejected here, never inside a coalesced wave where it
            # would fail innocent co-batched queries.
            with pytest.raises(ValueError, match="non-negative"):
                srv.submit("m", np.array([1, -1, 0, 2]))
            assert srv.stats.rejected == 4

    def test_close_drains_and_is_idempotent(self, rng):
        z = rng.integers(0, 2, (3, 4)).astype(np.uint8)
        srv = Server(pool_banks=16)
        srv.register("m", z, kind="binary")
        futures = srv.submit_many("m", np.ones((5, 3), dtype=np.int64))
        srv.close()
        # Queued work completed before shutdown.
        for f in futures:
            assert (f.result().y == np.ones(3) @ z).all()
        srv.close()                                # idempotent
        with pytest.raises(RuntimeError, match="server is closed"):
            srv.submit("m", np.ones(3, dtype=np.int64))

    def test_failed_wave_resolves_futures_and_scheduler_survives(self, rng):
        """A wave that raises must not kill the scheduler thread."""
        z = rng.integers(0, 2, (4, 5)).astype(np.uint8)
        with Server(pool_banks=16) as srv:
            srv.register("ok", z, kind="binary")
            doomed = srv.register("doomed", z, kind="binary")

            def boom(xs):
                raise RuntimeError("wave sabotage")
            doomed.run_many = boom                 # fails mid-wave
            f = srv.submit("doomed", np.arange(4))
            with pytest.raises(RuntimeError, match="wave sabotage"):
                f.result(timeout=5)
            # The scheduler is still alive and serving other models.
            resp = srv.query("ok", np.arange(4))
            assert (resp.y == np.arange(4) @ z.astype(np.int64)).all()

    def test_closed_plan_rejected_at_submission(self, rng):
        """A query against a closed plan never reaches a wave."""
        from repro import PlanClosedError
        z = rng.integers(0, 2, (4, 5)).astype(np.uint8)
        with Server(pool_banks=16) as srv:
            srv.register("m", z, kind="binary")
            srv.registry.get("m").close()
            with pytest.raises(PlanClosedError):
                srv.submit("m", np.arange(4))

    def test_eviction_retry_does_not_double_count_queries(self, rng):
        """PoolExhausted retries must leave plan.stats.queries exact."""
        budget = 4
        za = rng.integers(-1, 2, (6, 9)).astype(np.int8)
        zb = rng.integers(-1, 2, (6, 9)).astype(np.int8)
        with Server(n_bits=2, pool_banks=budget) as srv:
            pa = srv.register("a", za, kind="ternary")
            pb = srv.register("b", zb, kind="ternary")
            for _ in range(3):
                srv.query("a", rng.integers(-4, 5, 6))
                srv.query("b", rng.integers(-4, 5, 6))
            assert srv.registry.stats.evictions >= 4   # retries happened
            assert pa.stats.queries == 3
            assert pb.stats.queries == 3

    def test_faulty_config_serves_leniently(self, rng):
        fm = FaultModel(p_cim=5e-3, seed=3)
        z = rng.integers(-1, 2, (10, 16)).astype(np.int8)
        xs = rng.integers(1, 6, (4, 10))
        with Server(fault_model=fm, pool_banks=32) as srv:
            srv.register("m", z, kind="ternary")
            responses = [srv.query("m", x) for x in xs]
        assert fm.injected > 0
        exact = xs @ z
        got = np.stack([r.y for r in responses])
        assert np.abs(got - exact).max() < np.abs(xs).sum()


class TestCloseSubmitRace:
    """Shutdown determinism: a submission racing close() never strands
    its future -- it completes, raises at submission, or is rejected by
    the stranded-future sweep (satellite of the fault-fusion PR)."""

    def test_submit_after_close_raises(self, rng):
        z = rng.integers(-1, 2, (4, 8)).astype(np.int8)
        srv = Server(n_bits=2)
        srv.register("m", z, kind="ternary")
        srv.close()
        with pytest.raises(RuntimeError, match="closed"):
            srv.submit("m", np.zeros(4, dtype=np.int64))

    def test_stranded_future_sweep_rejects_deterministically(self, rng):
        """Simulate the race window directly: a pending that slipped
        into the queue after the scheduler exited gets rejected by the
        close-time sweep instead of hanging forever."""
        from repro.serve.server import _Pending
        z = rng.integers(-1, 2, (4, 8)).astype(np.int8)
        srv = Server(n_bits=2)
        srv.register("m", z, kind="ternary")
        with srv._cv:
            srv._closed = True
            srv._cv.notify_all()
        srv._thread.join()
        # The racing submitter's pending lands after the thread is gone.
        stray = _Pending("m", np.zeros(4, dtype=np.int64))
        srv._queue.append(stray)
        srv._reject_stranded()
        assert stray.future.done()
        with pytest.raises(RuntimeError, match="closed"):
            stray.future.result(timeout=0)
        # close() remains idempotent after the manual shutdown.
        srv.close()

    def test_cancelled_stranded_future_is_left_cancelled(self, rng):
        from repro.serve.server import _Pending
        z = rng.integers(-1, 2, (4, 8)).astype(np.int8)
        srv = Server(n_bits=2)
        srv.register("m", z, kind="ternary")
        with srv._cv:
            srv._closed = True
            srv._cv.notify_all()
        srv._thread.join()
        stray = _Pending("m", np.zeros(4, dtype=np.int64))
        stray.future.cancel()
        srv._queue.append(stray)
        srv._reject_stranded()              # must not raise on cancelled
        assert stray.future.cancelled()
        srv.close()

    def test_concurrent_submits_racing_close_never_hang(self, rng):
        """Stress the real interleaving: every future a submitter got
        back resolves (result or exception) shortly after close."""
        z = rng.integers(-1, 2, (4, 8)).astype(np.int8)
        srv = Server(n_bits=2)
        srv.register("m", z, kind="ternary")
        futures, errors = [], []
        start = threading.Barrier(5)

        def submitter():
            start.wait()
            for _ in range(20):
                try:
                    futures.append(
                        srv.submit("m", rng.integers(-3, 4, 4)))
                except RuntimeError:
                    errors.append(1)        # rejected at submission: fine
                    return

        threads = [threading.Thread(target=submitter) for _ in range(4)]
        for t in threads:
            t.start()
        start.wait()
        srv.close()
        for t in threads:
            t.join(timeout=10)
            assert not t.is_alive()
        for future in futures:
            # Never stranded: each resolves promptly one way or another.
            future.exception(timeout=10)


class TestBatchAxisSeam:
    """The batch axis: one coalesced wave is a single stacked pass
    through ``run_many`` / ``run_waves`` / megatraces -- and must stay
    bit-identical, per query, to serial ``submit()`` calls, with the
    report deltas accounting for the stitched path."""

    def _burst(self, srv, xs):
        return [f.result() for f in srv.submit_many("m", xs)]

    def test_coalesced_wave_matches_serial_submits_bit_exact(self, rng):
        z = rng.integers(-1, 2, (8, 12)).astype(np.int8)
        xs = rng.integers(-4, 5, (6, 8))
        with Server(n_bits=2, pool_banks=64) as srv:
            srv.register("m", z, kind="ternary")
            serial = [srv.query("m", x) for x in xs]
        with Server(n_bits=2, pool_banks=64) as srv:
            srv.register("m", z, kind="ternary")
            coalesced = self._burst(srv, xs)
        exact = xs @ z
        assert (np.stack([r.y for r in serial]) == exact).all()
        assert (np.stack([r.y for r in coalesced]) == exact).all()
        assert all(r.report.batch_size == 1 for r in serial)
        assert all(r.report.batch_size == len(xs) for r in coalesced)
        # One wave, one measured-op delta, shared by every rider.
        assert len({id(r.report) for r in coalesced}) == 1
        assert coalesced[0].report.broadcasts > 0
        # Broadcast sharing: the coalesced wave's command stream is
        # cheaper than the serial queries' combined streams.
        assert coalesced[0].report.measured_ops < sum(
            r.report.measured_ops for r in serial)

    def test_warm_coalesced_wave_replays_megatraces(self, rng):
        """Burst 1 warms up (literal per-wave), burst 2 compiles the
        stitched traces, burst 3 is pure megatrace replay -- each
        burst's results bit-identical to the exact product."""
        z = rng.integers(-1, 2, (8, 12)).astype(np.int8)
        xs = rng.integers(-4, 5, (6, 8))
        with Server(n_bits=2, pool_banks=64) as srv:
            srv.register("m", z, kind="ternary")
            bursts = [self._burst(srv, xs) for _ in range(3)]
        exact = xs @ z
        for burst in bursts:
            assert (np.stack([r.y for r in burst]) == exact).all()
        reports = [burst[0].report for burst in bursts]
        assert reports[0].megatrace_compiles == 0
        assert reports[0].megatrace_replays == 0
        assert reports[1].megatrace_compiles > 0
        assert reports[2].megatrace_compiles == 0
        assert reports[2].megatrace_replays > 0

    def test_faulted_coalesced_waves_identical_without_megatraces(
            self, rng):
        """Under an active FaultModel the stitched batch path must be
        draw-for-draw identical to the per-wave path: same per-query
        results, same injected-fault deltas, same terminal RNG state
        across identically seeded servers."""
        import contextlib

        from repro.isa.trace import megatrace_disabled

        z = rng.integers(-1, 2, (8, 12)).astype(np.int8)
        xs = rng.integers(1, 5, (5, 8))

        def serve(ctx):
            fm = FaultModel(p_cim=8e-3, p_read=1e-3, seed=17)
            with ctx, Server(n_bits=2, fault_model=fm,
                             pool_banks=64) as srv:
                srv.register("m", z, kind="ternary")
                return [self._burst(srv, xs) for _ in range(3)], fm

        mega_bursts, fm_mega = serve(contextlib.nullcontext())
        plain_bursts, fm_plain = serve(megatrace_disabled())
        for mega, plain in zip(mega_bursts, plain_bursts):
            assert (np.stack([r.y for r in mega])
                    == np.stack([r.y for r in plain])).all()
            assert (mega[0].report.injected_faults
                    == plain[0].report.injected_faults)
        assert fm_mega.injected == fm_plain.injected
        assert fm_mega.injected > 0
        assert (fm_mega._rng.bit_generator.state["state"]
                == fm_plain._rng.bit_generator.state["state"])
        assert mega_bursts[2][0].report.megatrace_replays > 0
        assert all(b[0].report.megatrace_replays == 0
                   for b in plain_bursts)
