"""Utility helpers and fault-model details."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram import DRAM_READ_FAULT_RATE, FaultModel, Port, Subarray
from repro.util import (as_bit_array, as_rng, bitstring, check_positive,
                        check_probability, digits_of, from_digits,
                        geometric_mean)


class TestUtil:
    def test_as_rng_idempotent(self):
        rng = np.random.default_rng(5)
        assert as_rng(rng) is rng
        assert isinstance(as_rng(7), np.random.Generator)
        assert isinstance(as_rng(None), np.random.Generator)

    def test_as_bit_array_validation(self):
        assert (as_bit_array([1, 0, 1]) == [1, 0, 1]).all()
        with pytest.raises(ValueError):
            as_bit_array([0, 2])
        with pytest.raises(ValueError):
            as_bit_array(np.zeros((2, 2)))

    def test_bitstring(self):
        assert bitstring([1, 1, 0, 0, 0]) == "11000"

    def test_checks(self):
        assert check_probability(0.5) == 0.5
        with pytest.raises(ValueError):
            check_probability(1.5)
        assert check_positive(3) == 3
        with pytest.raises(ValueError):
            check_positive(0)

    def test_geometric_mean(self):
        assert geometric_mean([2, 8]) == pytest.approx(4.0)
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1, -1])

    def test_digits_roundtrip_examples(self):
        assert digits_of(45, 10) == [5, 4]
        assert digits_of(0, 7) == [0]
        assert from_digits([5, 4], 10) == 45
        with pytest.raises(ValueError):
            digits_of(-1, 10)
        with pytest.raises(ValueError):
            digits_of(100, 10, n_digits=1)


@given(value=st.integers(0, 10 ** 9), radix=st.integers(2, 40))
@settings(max_examples=200, deadline=None)
def test_property_digits_roundtrip(value, radix):
    assert from_digits(digits_of(value, radix), radix) == value


class TestFaultModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultModel(p_cim=2.0)

    def test_read_rate_applies_to_single_rows(self):
        fm = FaultModel(p_cim=0.0, p_read=1.0, seed=0)
        bits = np.zeros(16, dtype=np.uint8)
        out = fm.corrupt(bits, multi_row=False)
        assert (out == 1).all()

    def test_margin_aware_splits_rates(self):
        fm = FaultModel(p_cim=1.0, p_read=0.0, seed=0)
        bits = np.zeros(8, dtype=np.uint8)
        contested = np.array([1, 1, 1, 1, 0, 0, 0, 0], dtype=bool)
        out = fm.corrupt(bits, multi_row=True, contested=contested)
        assert (out[:4] == 1).all()         # contested columns flip
        assert (out[4:] == 0).all()         # unanimous columns protected

    def test_margin_unaware_hits_everything(self):
        fm = FaultModel(p_cim=1.0, margin_aware=False, seed=0)
        bits = np.zeros(8, dtype=np.uint8)
        contested = np.zeros(8, dtype=bool)
        out = fm.corrupt(bits, multi_row=True, contested=contested)
        assert (out == 1).all()

    def test_injected_counter_and_reset(self):
        fm = FaultModel(p_cim=1.0, seed=0)
        fm.corrupt(np.zeros(10, dtype=np.uint8), multi_row=True)
        assert fm.injected == 10
        fm.reset_counts()
        assert fm.injected == 0

    def test_read_floor_constant(self):
        assert DRAM_READ_FAULT_RATE == 1e-20

    def test_statistical_rate(self):
        fm = FaultModel(p_cim=0.1, seed=42)
        bits = np.zeros(200_000, dtype=np.uint8)
        out = fm.corrupt(bits, multi_row=True)
        assert out.mean() == pytest.approx(0.1, rel=0.05)


class TestSubarrayFaultPropagation:
    def test_tra_fault_lands_in_all_activated_cells(self):
        """Destructive writes spread the corrupted sensed value."""
        fm = FaultModel(p_cim=1.0, seed=1)
        sa = Subarray(3, 4, fm)
        sa.write_row(0, np.array([1, 1, 1, 1], dtype=np.uint8))
        sa.write_row(1, np.array([1, 1, 1, 1], dtype=np.uint8))
        sa.write_row(2, np.array([0, 0, 0, 0], dtype=np.uint8))
        sensed = sa.activate([Port(0), Port(1), Port(2)])
        assert (sensed == 0).all()           # majority 1 flipped to 0
        for r in range(3):
            assert (sa.read_row(r) == 0).all()

    def test_stats_track_multi_row(self):
        sa = Subarray(3, 4)
        sa.activate([Port(0)])
        sa.precharge()
        sa.activate([Port(0), Port(1), Port(2)])
        total, multi = sa.stats()
        assert total == 2 and multi == 1


@given(seed=st.integers(0, 500), rows=st.integers(3, 7))
@settings(max_examples=60, deadline=None)
def test_property_odd_majority_is_majority(seed, rows):
    if rows % 2 == 0:
        rows += 1
    rng = np.random.default_rng(seed)
    sa = Subarray(rows, 16)
    data = rng.integers(0, 2, (rows, 16)).astype(np.uint8)
    for r in range(rows):
        sa.write_row(r, data[r])
    sensed = sa.activate([Port(r) for r in range(rows)])
    want = (data.sum(axis=0) * 2 > rows).astype(np.uint8)
    assert (sensed == want).all()
