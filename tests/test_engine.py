"""Gate-level counting engine: layout, accumulation, faults, protection."""

import numpy as np
import pytest

from repro.core import CounterArray, NaiveKaryScheduler, UnitScheduler
from repro.dram import FaultModel
from repro.engine import CounterLayout, CountingEngine


class TestLayout:
    def test_rows_per_counter(self):
        lay = CounterLayout(5, 3)
        assert lay.rows_per_counter == 3 * 6          # D * (n + 1)

    def test_row_regions_disjoint(self):
        lay = CounterLayout(3, 4, n_masks=2, protected=True)
        seen = set()
        regions = ([r for rows in lay.digit_bit_rows for r in rows]
                   + lay.onext_rows + lay.mask_rows + lay.scratch_rows
                   + [lay.onext_snapshot_row, lay.aux_row,
                      lay.ir1_row, lay.ir2_row, lay.fr_row, lay.t2_row])
        for r in regions:
            assert r not in seen
            seen.add(r)
        assert lay.total_rows == len(seen)

    def test_fits(self):
        lay = CounterLayout(2, 4)
        assert lay.fits(1014)
        assert not lay.fits(3)

    def test_unprotected_has_no_ecc_rows(self):
        lay = CounterLayout(2, 2)
        assert lay.ir1_row == -1


class TestEngineFaultFree:
    def test_masked_accumulation_matches_reference(self, rng):
        eng = CountingEngine(n_bits=2, n_digits=6, n_lanes=24)
        ref = np.zeros(24, dtype=np.int64)
        for _ in range(40):
            x = int(rng.integers(0, 200))
            mask = rng.integers(0, 2, 24).astype(np.uint8)
            eng.load_mask(0, mask)
            eng.accumulate(x)
            ref += x * mask.astype(np.int64)
        assert (eng.read_values() == ref).all()

    @pytest.mark.parametrize("n_bits", [1, 3, 5])
    def test_radices(self, n_bits, rng):
        digits = {1: 10, 3: 4, 5: 4}[n_bits]
        eng = CountingEngine(n_bits=n_bits, n_digits=digits, n_lanes=8)
        ref = np.zeros(8, dtype=np.int64)
        for _ in range(15):
            x = int(rng.integers(0, 50))
            mask = rng.integers(0, 2, 8).astype(np.uint8)
            eng.load_mask(0, mask)
            eng.accumulate(x)
            ref += x * mask.astype(np.int64)
        assert (eng.read_values() == ref).all()

    def test_signed_stream(self, rng):
        eng = CountingEngine(n_bits=2, n_digits=7, n_lanes=8)
        ones = np.ones(8, dtype=np.uint8)
        eng.load_mask(0, ones)
        eng.accumulate(500)
        ref = np.full(8, 500, dtype=np.int64)
        for _ in range(25):
            x = int(rng.integers(-30, 50))
            eng.accumulate(x)
            ref += x
        assert (eng.read_values() == ref).all()

    def test_alternative_schedulers(self, rng):
        for sched_cls in (UnitScheduler, NaiveKaryScheduler):
            eng = CountingEngine(n_bits=2, n_digits=5, n_lanes=8,
                                 scheduler=sched_cls(2, 5))
            mask = np.ones(8, dtype=np.uint8)
            eng.load_mask(0, mask)
            total = 0
            for _ in range(10):
                x = int(rng.integers(0, 60))
                eng.accumulate(x)
                total += x
            assert (eng.read_values() == total).all()

    def test_measured_ops_close_to_model(self, rng):
        """Executable μPrograms track the 7n+7 formula within ~15 %."""
        eng = CountingEngine(n_bits=2, n_digits=6, n_lanes=8)
        eng.load_mask(0, np.ones(8, dtype=np.uint8))
        for _ in range(20):
            eng.accumulate(int(rng.integers(1, 250)))
        eng.flush()
        assert eng.measured_ops == pytest.approx(eng.model_ops, rel=0.15)

    def test_capacity_error_on_overflow(self):
        eng = CountingEngine(n_bits=1, n_digits=2, n_lanes=4)
        eng.load_mask(0, np.ones(4, dtype=np.uint8))
        with pytest.raises(OverflowError):
            for _ in range(5):
                eng.accumulate(3)
            eng.read_values()

    def test_multiple_masks(self, rng):
        eng = CountingEngine(n_bits=2, n_digits=5, n_lanes=12, n_masks=2)
        m0 = rng.integers(0, 2, 12).astype(np.uint8)
        m1 = 1 - m0
        eng.load_mask(0, m0)
        eng.load_mask(1, m1)
        eng.accumulate(7, mask_index=0)
        eng.accumulate(11, mask_index=1)
        want = 7 * m0.astype(np.int64) + 11 * m1.astype(np.int64)
        assert (eng.read_values() == want).all()


class TestEngineFaults:
    def test_unprotected_engine_corrupts_under_faults(self, rng):
        fm = FaultModel(p_cim=5e-3, seed=9)
        eng = CountingEngine(n_bits=2, n_digits=5, n_lanes=32,
                             fault_model=fm)
        ref = np.zeros(32, dtype=np.int64)
        for _ in range(20):
            x = int(rng.integers(0, 60))
            mask = rng.integers(0, 2, 32).astype(np.uint8)
            eng.load_mask(0, mask)
            eng.accumulate(x)
            ref += x * mask.astype(np.int64)
        got = eng.read_values(strict=False)
        assert fm.injected > 0
        assert (got != ref).any()

    @pytest.mark.parametrize("p", [1e-3, 1e-2])
    def test_protected_engine_is_exact(self, p, rng):
        """Sec. 6 end-to-end: detection + retry yields exact results."""
        fm = FaultModel(p_cim=p, seed=13)
        eng = CountingEngine(n_bits=2, n_digits=5, n_lanes=24,
                             fault_model=fm, fr_checks=2)
        ref = np.zeros(24, dtype=np.int64)
        for _ in range(12):
            x = int(rng.integers(0, 60))
            mask = rng.integers(0, 2, 24).astype(np.uint8)
            eng.load_mask(0, mask)
            eng.accumulate(x)
            ref += x * mask.astype(np.int64)
        got = eng.read_values(strict=False)
        assert (got == ref).all()
        assert eng.protection.stats.detections > 0

    def test_retry_overhead_grows_with_fault_rate(self, rng):
        overheads = []
        for p in (1e-3, 1e-2):
            fm = FaultModel(p_cim=p, seed=3)
            eng = CountingEngine(n_bits=2, n_digits=4, n_lanes=16,
                                 fault_model=fm, fr_checks=2)
            eng.load_mask(0, np.ones(16, dtype=np.uint8))
            for _ in range(8):
                eng.accumulate(int(rng.integers(1, 40)))
            overheads.append(eng.protection.stats.retry_overhead)
        assert overheads[1] > overheads[0]

    def test_golden_cross_validation(self, rng):
        """Engine vs CounterArray on an identical event stream."""
        eng = CountingEngine(n_bits=3, n_digits=4, n_lanes=10)
        golden = CounterArray(3, 4, 10)
        from repro.core import apply_events
        for _ in range(15):
            x = int(rng.integers(0, 120))
            mask = rng.integers(0, 2, 10).astype(np.uint8)
            eng.load_mask(0, mask)
            events = eng.scheduler.schedule_value(x)
            eng.execute_events(events)
            apply_events(golden, events, mask=mask.astype(bool))
        eng.execute_events(eng.scheduler.flush())
        golden.resolve_all()
        assert (eng.read_values() == np.array(golden.totals())).all()
