"""Device/Plan session API (repro.device).

Covers the plan-reuse contract end to end: reset clears counters but
never planted masks, repeated queries through one plan are bit-exact
against the golden model and the one-shot kernels on both backends,
declared input budgets re-plan automatically, and the engine/backend
kwarg contradiction on the one-shot kernels raises instead of silently
preferring the engine.
"""

import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (AmbiguousKindWarning, Device, DeviceClosedError,
                   EngineConfig, PlanClosedError)
from repro.core import CounterArray
from repro.dram.faults import FAULT_FREE, FaultModel
from repro.engine import BankCluster, CountingEngine
from repro.kernels import (binary_gemm, binary_gemv, required_digits,
                           ternary_gemm, ternary_gemv)
from repro.kernels.lowering import digits_for_budget, infer_kind

BACKENDS = ["fast", "bit"]


def golden_ternary_gemv(x, z, n_bits=2):
    """The golden-model reference: two CounterArrays, sign in the mask."""
    digits = required_digits(n_bits, x)
    pos = CounterArray(n_bits, digits, z.shape[1])
    neg = CounterArray(n_bits, digits, z.shape[1])
    plus = (z == 1).astype(np.uint8)
    minus = (z == -1).astype(np.uint8)
    for i in range(x.size):
        if x[i] == 0:
            continue
        up, down = ((plus[i], minus[i]) if x[i] > 0
                    else (minus[i], plus[i]))
        if up.any():
            pos.add_value(int(abs(x[i])), mask=up)
        if down.any():
            neg.add_value(int(abs(x[i])), mask=down)
    return (np.array(pos.totals(), dtype=np.int64)
            - np.array(neg.totals(), dtype=np.int64))


class TestEngineConfig:
    def test_defaults_resolve(self):
        cfg = EngineConfig()
        assert cfg.resolved_backend == "word"
        assert cfg.strict_reads
        assert cfg.n_bits == 2 and cfg.fr_checks == 0

    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown backend"):
            EngineConfig(backend="quantum")

    @pytest.mark.parametrize("kwargs", [
        {"n_bits": 0}, {"n_banks": 0}, {"fr_checks": -1}])
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValueError):
            EngineConfig(**kwargs)

    def test_faulty_config_reads_leniently(self):
        cfg = EngineConfig(fault_model=FaultModel(p_cim=1e-3, seed=1))
        assert not cfg.strict_reads


class TestResetInvariant:
    """reset_counters()/BankCluster.reset() zero counters, keep masks."""

    @pytest.mark.parametrize("backend", ["bit", "word"])
    def test_engine_reset_keeps_masks(self, backend, rng):
        eng = CountingEngine(2, 4, 16, backend=backend)
        eng.reset_counters()
        mask = rng.integers(0, 2, 16).astype(np.uint8)
        eng.load_mask(0, mask)
        eng.accumulate(13)
        assert (eng.read_values() == 13 * mask).all()
        eng.reset_counters()
        # Counters zeroed, the loaded mask row untouched.
        assert (eng.read_values() == 0).all()
        assert (eng.subarray.read_data_row(eng.layout.mask_rows[0])
                == mask).all()
        # The next epoch reuses the resident mask bit-exactly.
        eng.accumulate(7)
        assert (eng.read_values() == 7 * mask).all()

    def test_engine_reset_restarts_scheduler(self):
        eng = CountingEngine(2, 3, 4, backend="word")
        eng.reset_counters()
        eng.load_mask(0, np.ones(4, dtype=np.uint8))
        eng.accumulate(30)
        eng.read_values()
        eng.reset_counters()
        # Fresh virtual-counter bounds: no stale conservative state.
        assert eng.scheduler.ub == [0] * 3
        assert eng.scheduler.lb == [0] * 3
        assert eng._flushed

    def test_cluster_reset_keeps_masks(self, rng):
        cluster = BankCluster(n_bits=2, n_digits=4, lanes_per_bank=8,
                              n_banks=2)
        mask = rng.integers(0, 2, 16).astype(np.uint8)
        cluster.engine.load_mask(0, mask)
        cluster.engine.accumulate(9)
        cluster.reset()
        eng = cluster.engine
        assert (eng.subarray.read_data_row(eng.layout.mask_rows[0])
                == mask).all()
        assert (cluster.read_reduced() == 0).all()

    def test_faulty_reuse_epochs_stay_backend_identical(self):
        """The parity harness through plan-style reset/reuse epochs.

        Same seeded fault stream, three accumulation epochs separated
        by reset_counters(): decoded values *and* raw counter images
        must stay bit-identical between the per-bit and word backends.
        """
        def run(backend):
            fm = FaultModel(p_cim=8e-3, seed=77)
            eng = CountingEngine(2, 4, 24, fault_model=fm, backend=backend)
            eng.reset_counters()
            rng = np.random.default_rng(5)
            images = []
            for _ in range(3):
                eng.reset_counters()
                for _ in range(4):
                    eng.load_mask(0, rng.integers(0, 2, 24)
                                  .astype(np.uint8))
                    eng.accumulate(int(rng.integers(1, 40)))
                images.append((eng.read_values(strict=False).copy(),
                               eng.export_counters().copy()))
            assert fm.injected > 0
            return images

        for (va, ra), (vb, rb) in zip(run("bit"), run("word")):
            assert (va == vb).all()
            assert (ra == rb).all()


class TestPlanReuse:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_repeated_queries_bit_exact(self, backend, rng):
        z = rng.integers(-1, 2, (12, 20)).astype(np.int8)
        x = rng.integers(-9, 10, 12)
        with Device(backend=backend) as dev:
            plan = dev.plan_gemv(z, kind="ternary")
            first = plan(x)
            second = plan(x)
        kernel = ternary_gemv(x, z, backend=backend)
        golden = golden_ternary_gemv(x, z)
        assert (first == second).all()
        assert (first == kernel).all()
        assert (first == golden).all()
        assert (first == x @ z).all()

    @given(k=st.integers(1, 8), n=st.integers(1, 10),
           seed=st.integers(0, 200))
    @settings(max_examples=25, deadline=None)
    def test_property_plan_equals_kernel_and_golden(self, k, n, seed):
        rng = np.random.default_rng(seed)
        z = rng.integers(-1, 2, (k, n)).astype(np.int8)
        x = rng.integers(-11, 12, k)
        golden = golden_ternary_gemv(x, z)
        for backend in BACKENDS:
            with Device(backend=backend) as dev:
                plan = dev.plan_gemv(z, kind="ternary")
                assert (plan(x) == golden).all()
                assert (plan(x) == golden).all()      # reuse, same Z
            assert (ternary_gemv(x, z, backend=backend) == golden).all()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_binary_plan_matches_kernel(self, backend, rng):
        z = rng.integers(0, 2, (10, 14)).astype(np.uint8)
        x = rng.integers(0, 17, 10)
        with Device(backend=backend) as dev:
            plan = dev.plan_gemv(z, kind="binary")
            assert (plan(x) == x @ z).all()
            assert (plan(x) == binary_gemv(x, z, backend=backend)).all()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_run_many_matches_numpy(self, backend, rng):
        z = rng.integers(-1, 2, (16, 24)).astype(np.int8)
        xs = rng.integers(-7, 8, (11, 16))
        xs[3] = 0                                 # an all-zero query
        with Device(backend=backend) as dev:
            plan = dev.plan_gemv(z, kind="ternary")
            assert (plan.run_many(xs) == xs @ z).all()

    def test_run_many_chunks_across_slots(self, rng):
        """More queries than batch slots: multi-chunk dispatch."""
        z = rng.integers(-1, 2, (9, 7)).astype(np.int8)
        xs = rng.integers(-5, 6, (70, 9))
        with Device(backend="fast") as dev:
            plan = dev.plan_gemv(z, kind="ternary")
            assert (plan.run_many(xs) == xs @ z).all()
            assert plan.stats.queries == 70

    def test_run_many_empty_batch(self, rng):
        z = rng.integers(0, 2, (4, 5)).astype(np.uint8)
        with Device() as dev:
            plan = dev.plan_gemv(z, kind="binary")
            out = plan.run_many(np.zeros((0, 4), dtype=np.int64))
        assert out.shape == (0, 5)

    def test_seeded_fault_plan_runs_leniently(self, rng):
        """Faulty plans decode leniently and keep errors low-order."""
        fm = FaultModel(p_cim=5e-3, seed=11)
        z = rng.integers(-1, 2, (16, 32)).astype(np.int8)
        xs = rng.integers(1, 9, (6, 16))
        with Device(fault_model=fm) as dev:
            plan = dev.plan_gemv(z, kind="ternary")
            got = plan.run_many(xs)
        exact = xs @ z
        assert fm.injected > 0
        assert np.abs(got - exact).max() < np.abs(xs).sum()


class TestBudgetAndStats:
    def test_x_budget_sizes_digits_up_front(self, rng):
        z = rng.integers(0, 2, (6, 8)).astype(np.uint8)
        with Device() as dev:
            plan = dev.plan_gemv(z, kind="binary", x_budget=4000)
            assert plan.n_digits == required_digits(2, [4000])
            assert plan.stats.replans == 0

    def test_exceeding_budget_replans_automatically(self, rng):
        z = rng.integers(0, 2, (6, 8)).astype(np.uint8)
        with Device() as dev:
            plan = dev.plan_gemv(z, kind="binary", x_budget=10)
            small = np.ones(6, dtype=np.int64)
            assert (plan(small) == small @ z).all()
            big = np.full(6, 500, dtype=np.int64)    # blows the budget
            assert (plan(big) == big @ z).all()      # re-planned, exact
            assert plan.stats.replans >= 1

    def test_budget_floors_batched_digit_sizing(self, rng):
        """A covering x_budget means later larger batches never rebuild."""
        z = rng.integers(0, 2, (6, 8)).astype(np.uint8)
        with Device() as dev:
            plan = dev.plan_gemv(z, kind="binary", x_budget=10_000)
            plan.run_many(np.ones((3, 6), dtype=np.int64))
            big = np.full((3, 6), 1500, dtype=np.int64)
            assert (plan.run_many(big) == big @ z).all()
            assert plan.stats.replans == 0

    def test_closed_plans_are_forgotten_and_release_masks(self, rng):
        z = rng.integers(0, 2, (4, 5)).astype(np.uint8)
        dev = Device()
        plan = dev.plan_gemv(z, kind="binary")
        plan(np.ones(4, dtype=np.int64))
        stats_before = plan.stats
        plan.close()
        assert dev.plans == []                       # no registry pinning
        assert plan._masks is None                   # mask images freed
        assert plan.stats.resident_rows == stats_before.resident_rows
        dev.close()

    def test_stats_track_reuse(self, rng):
        z = rng.integers(-1, 2, (8, 10)).astype(np.int8)
        x = rng.integers(-5, 6, 8)
        with Device() as dev:
            plan = dev.plan_gemv(z, kind="ternary")
            plan(x)
            compiles_after_first = plan.stats.program_compiles
            plan(x)
            stats = plan.stats
        assert stats.queries == 2
        assert stats.resident_rows == 16             # both orientations
        assert stats.measured_ops > 0
        assert stats.broadcasts > 0
        # The second identical query recompiles nothing new.
        assert stats.program_compiles == compiles_after_first
        assert stats.program_replays > 0

    def test_gemm_plan_reuse(self, rng):
        z = rng.integers(-1, 2, (10, 12)).astype(np.int8)
        assert (z == -1).any()                       # inference unambiguous
        xs = rng.integers(-6, 7, (5, 10))
        with Device() as dev:
            plan = dev.plan_gemm(z)                  # kind inferred
            assert plan.kind == "ternary"
            assert (plan(xs) == xs @ z).all()
            assert (plan(xs) == xs @ z).all()
            assert plan.stats.queries == 10


class TestKindInference:
    """infer_kind ambiguity: a Z with no -1 warns unless kind= is given."""

    def test_unambiguous_ternary_does_not_warn(self, rng):
        z = np.array([[1, -1], [0, 1]], dtype=np.int8)
        with Device() as dev:
            with warnings.catch_warnings():
                warnings.simplefilter("error", AmbiguousKindWarning)
                assert dev.plan_gemv(z).kind == "ternary"

    @pytest.mark.parametrize("z", [
        np.zeros((3, 4), dtype=np.int8),             # all-zero
        np.ones((2, 2), dtype=np.uint8),             # all-{0,1}
    ])
    def test_ambiguous_inference_warns(self, z):
        with Device() as dev:
            with pytest.warns(AmbiguousKindWarning, match="no -1"):
                assert dev.plan_gemv(z).kind == "binary"
            with pytest.warns(AmbiguousKindWarning):
                dev.plan_gemm(z)

    def test_explicit_kind_silences_warning(self, rng):
        z = rng.integers(0, 2, (4, 6)).astype(np.uint8)
        with Device() as dev:
            with warnings.catch_warnings():
                warnings.simplefilter("error", AmbiguousKindWarning)
                assert dev.plan_gemv(z, kind="binary").kind == "binary"
                assert dev.plan_gemm(z, kind="ternary").kind == "ternary"

    def test_infer_kind_helper(self):
        assert infer_kind(np.array([[0, -1]])) == ("ternary", False)
        assert infer_kind(np.array([[0, 1]])) == ("binary", True)
        assert infer_kind(np.zeros((2, 2))) == ("binary", True)
        # Out-of-range entries resolve to ternary so validation reports
        # the range error instead of a misleading binary message.
        assert infer_kind(np.array([[7]])) == ("ternary", False)

    def test_infer_kind_unsigned_declares_intent(self):
        # unsigned=True asserts the matrix is count-like {0,1} by
        # construction (e.g. histogram bucket masks), so the missing -1
        # is not evidence of ambiguity.
        assert infer_kind(np.array([[0, 1]]), unsigned=True) == \
            ("binary", False)
        assert infer_kind(np.zeros((2, 2)), unsigned=True) == \
            ("binary", False)
        # The flag only suppresses the warning -- ternary inference is
        # unchanged when a -1 is actually present.
        assert infer_kind(np.array([[1, -1]]), unsigned=True) == \
            ("ternary", False)

    def test_plan_gemv_unsigned_silences_warning(self, rng):
        z = rng.integers(0, 2, (4, 6)).astype(np.uint8)
        with Device() as dev:
            with warnings.catch_warnings():
                warnings.simplefilter("error", AmbiguousKindWarning)
                assert dev.plan_gemv(z, unsigned=True).kind == "binary"
                assert dev.plan_gemm(z, unsigned=True).kind == "binary"


class TestLifecycle:
    def test_device_close_closes_plans(self, rng):
        z = rng.integers(0, 2, (4, 4)).astype(np.uint8)
        dev = Device()
        plan = dev.plan_gemv(z, kind="binary")
        dev.close()
        with pytest.raises(RuntimeError, match="closed"):
            plan(np.ones(4, dtype=np.int64))
        with pytest.raises(RuntimeError, match="closed"):
            dev.plan_gemv(z, kind="binary")

    def test_close_paths_are_idempotent_and_typed(self, rng):
        """Double-close of plan and device is safe; the two 'closed'
        error paths are distinct, typed exceptions."""
        z = rng.integers(0, 2, (4, 4)).astype(np.uint8)
        dev = Device()
        plan = dev.plan_gemv(z, kind="binary")
        plan(np.ones(4, dtype=np.int64))
        plan.close()
        plan.close()                                 # plan double-close
        dev.close()
        dev.close()                                  # device double-close
        with pytest.raises(PlanClosedError, match="plan is closed"):
            plan(np.ones(4, dtype=np.int64))
        with pytest.raises(DeviceClosedError, match="device is closed"):
            dev.plan_gemv(z, kind="binary")
        # Both are RuntimeErrors, so existing handlers keep working.
        assert issubclass(PlanClosedError, RuntimeError)
        assert issubclass(DeviceClosedError, RuntimeError)

    def test_device_shutdown_reason_reaches_plan_error(self, rng):
        z = rng.integers(0, 2, (3, 3)).astype(np.uint8)
        dev = Device()
        plan = dev.plan_gemv(z, kind="binary")
        dev.close()
        with pytest.raises(PlanClosedError, match="device shut down"):
            plan(np.ones(3, dtype=np.int64))

    def test_gemm_plan_handle_bookkeeping(self, rng):
        """GemmPlans are adopted/forgotten as themselves, no _gemv hacks."""
        z = rng.integers(-1, 2, (4, 5)).astype(np.int8)
        dev = Device()
        gemm = dev.plan_gemm(z, kind="ternary")
        gemv = dev.plan_gemv(z, kind="ternary")
        assert dev.plans == [gemm, gemv]
        gemm.close()
        gemm.close()                                 # idempotent
        assert dev.plans == [gemv]
        with pytest.raises(PlanClosedError):
            gemm(np.ones((2, 4), dtype=np.int64))
        dev.close()
        assert dev.plans == []

    def test_closed_plan_releases_pool_banks(self, rng):
        from repro.serve import BankPool
        pool = BankPool(16)
        z = rng.integers(-1, 2, (5, 6)).astype(np.int8)
        dev = Device(pool=pool)
        plan = dev.plan_gemv(z, kind="ternary")
        plan(rng.integers(-3, 4, 5))
        assert pool.banks_leased > 0
        dev.close()
        assert pool.banks_leased == 0

    def test_validation_errors(self, rng):
        z = rng.integers(-1, 2, (4, 4)).astype(np.int8)
        with Device() as dev:
            with pytest.raises(ValueError, match="kind"):
                dev.plan_gemv(z, kind="octal")
            with pytest.raises(ValueError, match="ternary"):
                dev.plan_gemv(np.full((2, 2), 3, dtype=np.int8),
                              kind="ternary")
            with pytest.raises(ValueError, match="ternary"):
                # Values that would wrap to valid ternary under an int8
                # cast must still be rejected.
                dev.plan_gemv(np.array([[255], [257]]), kind="ternary")
            with pytest.raises(ValueError, match="binary"):
                dev.plan_gemv(np.array([[256, 0]]), kind="binary")
            plan = dev.plan_gemv(z, kind="ternary")
            with pytest.raises(ValueError, match="length-4"):
                plan(np.ones(3, dtype=np.int64))
            bplan = dev.plan_gemv(np.abs(z), kind="binary")
            with pytest.raises(ValueError, match="non-negative"):
                bplan(np.array([-1, 0, 0, 0]))


class TestCounterImageRoundTrip:
    """export_counters()/import_counters() is the invariant plan
    eviction relies on: the row image round-trips bit-exactly, under
    seeded fault models, on both backends."""

    @given(backend=st.sampled_from(["bit", "word"]),
           lanes=st.integers(1, 24),
           p_milli=st.sampled_from([0, 5]),
           seed=st.integers(0, 10_000),
           values=st.lists(st.integers(1, 25), min_size=1, max_size=5))
    @settings(max_examples=40, deadline=None)
    def test_property_roundtrip_under_faults(self, backend, lanes,
                                             p_milli, seed, values):
        fm = (FaultModel(p_cim=p_milli * 1e-3, seed=seed) if p_milli
              else FAULT_FREE)
        n_digits = digits_for_budget(2, sum(values))
        eng = CountingEngine(2, n_digits, lanes, fault_model=fm,
                             backend=backend)
        eng.reset_counters()
        mask_rng = np.random.default_rng(seed)
        for v in values:
            eng.load_mask(0, mask_rng.integers(0, 2, lanes)
                          .astype(np.uint8))
            eng.accumulate(v)
        image = eng.export_counters()
        decoded = eng.read_values(strict=False)
        # Import into a *fresh* engine of the same geometry: values and
        # re-exported image must match bit for bit -- this is exactly
        # what unparking an evicted plan does.
        fresh = CountingEngine(2, n_digits, lanes, backend=backend)
        fresh.reset_counters()
        fresh.import_counters(image)
        assert (fresh.export_counters() == image).all()
        assert (fresh.read_values(strict=False) == decoded).all()
        # And in-place round-trip on the original engine is stable.
        eng.import_counters(image)
        assert (eng.export_counters() == image).all()

    def test_cluster_roundtrip(self, rng):
        cluster = BankCluster(n_bits=2, n_digits=3, lanes_per_bank=6,
                              n_banks=2)
        cluster.dispatch([(3, rng.integers(0, 2, 6).astype(np.uint8)),
                          (5, rng.integers(0, 2, 6).astype(np.uint8))])
        image = cluster.export_counters()
        values = cluster.read_bank_values()
        other = BankCluster(n_bits=2, n_digits=3, lanes_per_bank=6,
                            n_banks=2)
        other.import_counters(image)
        assert (other.read_bank_values() == values).all()
        assert (other.export_counters() == image).all()

    def test_image_shape_mismatch_rejected(self):
        eng = CountingEngine(2, 3, 8)
        assert eng.counter_image_shape == (9, 8)
        with pytest.raises(ValueError, match="shape mismatch"):
            eng.import_counters(np.zeros((4, 8), dtype=np.uint8))


class TestEngineBackendContradiction:
    """One-shot kernels: explicit engine + contradicting backend raise."""

    def test_contradiction_raises_with_clear_message(self, rng):
        eng = CountingEngine(2, 4, 6, backend="bit")
        x = rng.integers(0, 5, 4)
        z = rng.integers(0, 2, (4, 6)).astype(np.uint8)
        with pytest.raises(ValueError, match="contradicts the explicit "
                                             "engine's backend"):
            binary_gemv(x, z, engine=eng, backend="fast")

    def test_agreeing_or_omitted_backend_still_works(self, rng):
        x = rng.integers(0, 5, 4)
        z = rng.integers(0, 2, (4, 6)).astype(np.uint8)
        for backend in (None, "bit", "bitwise"):
            eng = CountingEngine(2, 4, 6, backend="bit")
            assert (binary_gemv(x, z, engine=eng, backend=backend)
                    == x @ z).all()

    def test_alias_agreement_is_not_a_contradiction(self, rng):
        x = rng.integers(0, 5, 4)
        z = rng.integers(0, 2, (4, 6)).astype(np.uint8)
        eng = CountingEngine(2, 4, 6, backend="fast")   # alias of word
        assert (binary_gemv(x, z, engine=eng, backend="vectorized")
                == x @ z).all()


@pytest.mark.parametrize("backend", BACKENDS)
def test_gemm_kernels_still_match_numpy(backend, rng):
    """One-shot GEMMs (now plan-backed) stay exact on both backends."""
    x = rng.integers(-6, 7, (5, 9))
    z = rng.integers(-1, 2, (9, 11)).astype(np.int8)
    assert (ternary_gemm(x, z, backend=backend) == x @ z).all()
    xb = np.abs(x)
    zb = (z == 1).astype(np.uint8)
    assert (binary_gemm(xb, zb, backend=backend) == xb @ zb).all()
