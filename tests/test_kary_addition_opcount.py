"""k-ary planning, Algorithm-2 addition, and op-count formulas."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.addition import (add_counter_arrays, add_digit_lanes,
                                 addition_masks)
from repro.core.counter import CounterArray
from repro.core.iarm import CarryResolve, IARMScheduler, Increment
from repro.core.johnson import encode_lanes
from repro.core.kary import (DigitStep, fig7_patterns, render_fig7_row,
                             steps_per_value, value_steps)
from repro.core import opcount


class TestKaryPlanning:
    def test_paper_example_45(self):
        """Sec. 5.1: 0b00101101 = 45 unpacks to digits '45' in radix 10."""
        assert value_steps(45, 10) == [DigitStep(0, 5), DigitStep(1, 4)]

    def test_zero_digits_skipped(self):
        assert value_steps(405, 10) == [DigitStep(0, 5), DigitStep(2, 4)]

    def test_negative_values(self):
        assert value_steps(-45, 10) == [DigitStep(0, -5), DigitStep(1, -4)]

    def test_steps_per_value(self):
        assert steps_per_value(0, 4) == 0
        assert steps_per_value(255, 4) == 4      # 3333 base 4

    def test_digit_overflow_guard(self):
        with pytest.raises(ValueError):
            value_steps(100, 10, n_digits=1)

    def test_fig7_has_all_nine_patterns(self):
        patterns = fig7_patterns(5)
        assert sorted(patterns) == list(range(1, 10))
        for k, p in patterns.items():
            assert len(p.assignments) == 5       # constant work per step

    def test_fig7_render_labels(self):
        rows = render_fig7_row(5, 1)
        assert rows[0] == ("MSB", "LSB+3", False)
        assert rows[-1] == ("LSB", "MSB", True)


class TestAdditionMasks:
    @pytest.mark.parametrize("n", [2, 3, 5, 8])
    def test_mask_count_and_coverage(self, n):
        """Lane j is selected in exactly value(j) of the 2n masks."""
        values = np.arange(2 * n)
        masks = addition_masks(encode_lanes(values, n))
        assert len(masks) == 2 * n
        totals = np.stack(masks).sum(axis=0)
        assert (totals == values).all()

    def test_add_digit_lanes_leaves_pendings(self):
        dst = CounterArray(5, 2, 4)
        dst.set_totals([8, 9, 3, 0])
        src = encode_lanes([3, 2, 0, 9], 5)
        n_incs = add_digit_lanes(dst, 0, src)
        assert n_incs == 10
        dst.resolve_all()
        assert dst.totals() == [11, 11, 3, 9]

    def test_add_counter_arrays(self, rng):
        a = CounterArray(5, 3, 12)
        b = CounterArray(5, 3, 12)
        va = rng.integers(0, 480, 12)
        vb = rng.integers(0, 480, 12)
        a.set_totals(va.tolist())
        b.set_totals(vb.tolist())
        add_counter_arrays(a, b)
        assert a.totals() == (va + vb).tolist()

    def test_source_must_be_carry_free(self):
        a = CounterArray(5, 2, 1)
        b = CounterArray(5, 2, 1)
        b.set_totals([19])
        b.increment_digit(0, 1)
        with pytest.raises(ValueError):
            add_counter_arrays(a, b)

    def test_geometry_mismatch_rejected(self):
        with pytest.raises(ValueError):
            add_counter_arrays(CounterArray(5, 2, 1), CounterArray(4, 2, 1))


@given(n=st.integers(1, 6), va=st.integers(0, 500), vb=st.integers(0, 500))
@settings(max_examples=100, deadline=None)
def test_property_algorithm2_addition(n, va, vb):
    digits = 1
    while (2 * n) ** digits < va + vb + 1:
        digits += 1
    a = CounterArray(n, digits, 2)
    b = CounterArray(n, digits, 2)
    a.set_totals([va, vb])
    b.set_totals([vb, va])
    add_counter_arrays(a, b)
    assert a.totals() == [va + vb, va + vb]


class TestOpCounts:
    def test_paper_formulas(self):
        assert opcount.increment_ops(5) == 42               # 7n+7
        assert opcount.increment_ops(5, opcount.PINATUBO) == 22
        assert opcount.increment_ops(5, opcount.MAGIC) == 34
        assert opcount.protected_increment_ops(5, 2) == 81  # 13n+16
        assert opcount.protected_increment_ops(5, 4) == 141
        assert opcount.protected_increment_ops(5, 6) == 201

    def test_protected_formula_general(self):
        for n in (2, 5, 8):
            for r in (2, 4, 6):
                assert (opcount.protected_op_formula(n, r)
                        == (5 * r + 3) * n + 5 * r + 6)

    def test_rca_scaling(self):
        assert opcount.rca_add_ops(64) == 2 * opcount.rca_add_ops(32)

    def test_event_costs(self):
        inc = opcount.event_ops(Increment(0, 3), 5)
        res = opcount.event_ops(CarryResolve(0), 5)
        assert res == inc + 1                    # flag-clear op

    def test_digits_for_capacity(self):
        assert opcount.digits_for_capacity(2, 2 ** 64) == 32
        assert opcount.digits_for_capacity(5, 100) == 2
        assert opcount.digits_for_capacity(5, 2) == 1

    def test_fig19_checkpoints(self):
        """Sec. 7.3.3: capacity 100 -> 10 bits radix-10, 7 binary."""
        assert opcount.jc_bits_required(10, 100) == 10
        assert opcount.binary_bits_required(100) == 7
        # Radix 4 matches binary density at power-of-4 capacities.
        for e in (8, 16, 32):
            assert (opcount.jc_bits_required(4, 2 ** e)
                    == opcount.binary_bits_required(2 ** e))

    def test_odd_radix_rejected(self):
        with pytest.raises(ValueError):
            opcount.jc_bits_required(5, 100)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            opcount.increment_ops(5, "tpu")

    def test_mean_ops_ordering(self, rng):
        """IARM < naive k-ary < unit on uniform 8-bit streams."""
        from repro.core.iarm import (IARMScheduler, NaiveKaryScheduler,
                                     UnitScheduler)
        sample = rng.integers(0, 256, 500)
        digits = opcount.digits_for_capacity(2, 2 ** 32)
        unit = opcount.mean_ops_per_value(UnitScheduler, sample, 2, digits)
        kary = opcount.mean_ops_per_value(NaiveKaryScheduler, sample, 2,
                                          digits)
        iarm = opcount.mean_ops_per_value(IARMScheduler, sample, 2, digits)
        assert iarm < kary < unit
