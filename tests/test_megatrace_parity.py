"""Megatraces: stitched whole-sequence replay == fused == interpreted == bit.

The tentpole contract of the megatrace compiler
(:func:`repro.isa.trace.compile_megatrace`): replaying an entire wave
sequence -- every host mask write and every μProgram of a query,
stitched into one level-scheduled trace -- must be indistinguishable
from the three reference regimes:

* **plain fused** (``megatrace_disabled()``): per-μProgram compiled
  traces with interleaved host mask writes,
* **interpreted** (``fusion_disabled()``): per-op word execution,
* **bit**: the per-bit reference backend,

for cell states and decoded values, every command counter (AAP / AP /
activations / multi-row / measured ops), the injected-fault stream
(per-epoch deltas, monotonic totals, terminal RNG state), across drawn
shapes, seeds, ``margin_aware`` on/off, and the ``p_read`` regimes that
select ``corrupt``'s draw sequence.  Also pinned here: the megatrace
JIT warm-up (first run is the literal per-wave sequence), the bounded
LRU cache discipline, fault-regime recompilation, shape-change
compilation, and that ``fusion_disabled`` / ``megatrace_disabled``
bypass the stitched path without stale-cache leakage.
"""

import contextlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.faults import FaultModel
from repro.dram.wordline import pack_rows
from repro.engine import CountingEngine
from repro.isa.trace import (fusion_disabled, megatrace_disabled,
                             megatrace_enabled)

# (n_bits, n_digits, p_cim, read_mode, margin_aware, seed); read_mode
# picks p_read in {0, p_cim/10, p_cim} -- the three corrupt regimes.
GRID = [
    (2, 4, 0.0, "zero", True, 0),        # fault-free
    (2, 4, 1e-2, "zero", True, 1),
    (2, 4, 1e-2, "tenth", True, 2),
    (2, 4, 1e-2, "equal", True, 3),
    (2, 4, 1e-2, "tenth", False, 4),
    (1, 5, 5e-2, "zero", True, 5),
    (3, 3, 2e-2, "tenth", True, 6),
    (2, 4, 0.0, "any", True, 7),         # p_cim=0, p_read>0: reads only
]

MODES = ("mega", "plain", "interp", "bit")


def _p_read(p_cim: float, mode: str) -> float:
    if mode == "zero":
        return 0.0
    if mode == "tenth":
        return p_cim / 10 if p_cim else 1e-3
    if mode == "equal":
        return p_cim
    return 1e-3                            # "any" (p_cim == 0 regime)


def _ctx(mode):
    if mode == "plain":
        return megatrace_disabled()
    if mode == "interp":
        return fusion_disabled()
    return contextlib.nullcontext()


def _stream(n_bits, n_digits, n_lanes, seed, n_waves):
    """One fixed signed (magnitudes, packed masks) wave sequence."""
    rng = np.random.default_rng(seed)
    budget = (2 * n_bits) ** n_digits - 1
    mags = rng.integers(1, max(2, budget // (n_waves + 1)),
                        n_waves).astype(np.int64)
    mags[1::3] *= -1                       # exercise decrements too
    masks = rng.integers(0, 2, (n_waves, n_lanes)).astype(np.uint8)
    return mags, pack_rows(masks), masks


def _run_waves(mode, n_bits, n_digits, p_cim, p_read, margin_aware,
               seed, n_lanes=24, n_waves=6, rounds=3):
    """Replay one fixed wave sequence ``rounds`` times in one regime.

    Three rounds walk the megatrace JIT completely: round 1 executes
    the literal per-wave sequence (warm-up), round 2 compiles the
    stitched trace, round 3 is a pure megatrace replay.  Returns
    everything parity must cover, including per-round decoded values,
    the per-epoch injected stream and the terminal RNG state.
    """
    fm = FaultModel(p_cim=p_cim, p_read=p_read,
                    margin_aware=margin_aware, seed=1000 + seed)
    backend = "bit" if mode == "bit" else "word"
    eng = CountingEngine(n_bits, n_digits, n_lanes, fault_model=fm,
                         backend=backend)
    mags, packed, _ = _stream(n_bits, n_digits, n_lanes, seed, n_waves)
    injected_stream, per_round_values = [], []
    with _ctx(mode):
        for _ in range(rounds):
            eng.reset_counters()           # epoch: resets fm.injected
            eng.run_waves(mags, packed)
            per_round_values.append(
                eng.read_values(strict=False).copy())
            injected_stream.append(fm.injected)
    subarray = eng.subarray
    stats = (subarray.stats() if hasattr(subarray, "stats")
             else subarray.array.stats())
    return {
        "values": np.stack(per_round_values),
        "rows": eng.export_counters(),
        "counters": (subarray.aap_count, subarray.ap_count) + stats,
        "measured_ops": eng.measured_ops,
        "model_ops": eng.model_ops,
        "injected_stream": injected_stream,
        "fault_injections": subarray.fault_injections,
        "engine_injected": eng.counters.injected_faults,
        "rng_state": fm._rng.bit_generator.state["state"],
        "megatrace_compiles": subarray.megatrace_compiles,
        "megatrace_replays": subarray.megatrace_replays,
    }


def _assert_parity(mega, other):
    assert (mega["values"] == other["values"]).all()
    assert (mega["rows"] == other["rows"]).all()
    assert mega["counters"] == other["counters"]
    assert mega["measured_ops"] == other["measured_ops"]
    assert mega["model_ops"] == other["model_ops"]
    assert mega["injected_stream"] == other["injected_stream"]
    assert mega["fault_injections"] == other["fault_injections"]
    assert mega["engine_injected"] == other["engine_injected"]
    assert mega["rng_state"] == other["rng_state"]


# ----------------------------------------------------------------------
# the four-way differential (tentpole)
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "n_bits,n_digits,p_cim,read_mode,margin_aware,seed", GRID)
def test_megatrace_grid_four_way_identical(n_bits, n_digits, p_cim,
                                           read_mode, margin_aware,
                                           seed):
    p_read = _p_read(p_cim, read_mode)
    runs = {mode: _run_waves(mode, n_bits, n_digits, p_cim, p_read,
                             margin_aware, seed) for mode in MODES}
    mega = runs["mega"]
    # The mega run really stitched and replayed; the others never did.
    assert mega["megatrace_compiles"] > 0
    assert mega["megatrace_replays"] > 0
    for mode in ("plain", "interp", "bit"):
        assert runs[mode]["megatrace_compiles"] == 0
        assert runs[mode]["megatrace_replays"] == 0
        _assert_parity(mega, runs[mode])
    if p_cim > 0:
        assert sum(mega["injected_stream"]) > 0


@settings(max_examples=12, deadline=None)
@given(n_bits=st.integers(1, 3), n_digits=st.integers(2, 4),
       n_lanes=st.integers(3, 40), n_waves=st.integers(1, 8),
       seed=st.integers(0, 2**16), margin=st.booleans(),
       regime=st.sampled_from(["free", "cim", "cim+read", "read"]))
def test_megatrace_drawn_shapes_four_way_identical(n_bits, n_digits,
                                                   n_lanes, n_waves,
                                                   seed, margin,
                                                   regime):
    """Hypothesis sweep: shapes, seeds, margin, fault regimes."""
    p_cim = 0.0 if regime in ("free", "read") else 3e-2
    p_read = 0.0 if regime in ("free", "cim") else 5e-3
    runs = {mode: _run_waves(mode, n_bits, n_digits, p_cim, p_read,
                             margin, seed, n_lanes=n_lanes,
                             n_waves=n_waves) for mode in MODES}
    assert runs["mega"]["megatrace_replays"] > 0
    for mode in ("plain", "interp", "bit"):
        _assert_parity(runs["mega"], runs[mode])


def test_final_mask_row_state_matches_per_wave_semantics():
    """The stream row ends holding the *last* wave's mask -- the
    stitched rebind must reproduce the per-wave ``load_mask_packed``
    sequence's final state exactly (fault-free: bit-for-bit)."""
    eng = CountingEngine(2, 3, 20, backend="word")
    mags, packed, masks = _stream(2, 3, 20, seed=9, n_waves=5)
    for _ in range(3):                     # last round replays the mega
        eng.reset_counters()
        eng.run_waves(mags, packed)
    assert eng.subarray.megatrace_replays > 0
    mask_row = eng.layout.mask_rows[0]
    assert (eng.subarray.read_data_row(mask_row) == masks[-1]).all()


# ----------------------------------------------------------------------
# JIT warm-up and cache discipline (satellites)
# ----------------------------------------------------------------------
def _one_pass(eng, mags, packed):
    eng.reset_counters()
    eng.run_waves(mags, packed)


def test_megatrace_warmup_run_counts():
    """Run 1 executes per-wave (no stitched compile), run 2 compiles,
    run 3 is a pure replay -- the μProgram JIT discipline, one level
    up."""
    eng = CountingEngine(2, 4, 16, backend="word")
    mags, packed, _ = _stream(2, 4, 16, seed=3, n_waves=4)
    _one_pass(eng, mags, packed)
    assert eng.subarray.megatrace_compiles == 0
    assert eng.subarray.megatrace_replays == 0
    _one_pass(eng, mags, packed)
    assert eng.subarray.megatrace_compiles == 1
    assert eng.subarray.megatrace_replays == 0
    _one_pass(eng, mags, packed)
    assert eng.subarray.megatrace_compiles == 1
    assert eng.subarray.megatrace_replays == 1


def test_megatrace_lru_bound_respected():
    """The per-subarray stitched-trace cache never exceeds its bound."""
    eng = CountingEngine(2, 4, 16, backend="word")
    eng.subarray._mega_cache_size = 2
    rng = np.random.default_rng(0)
    masks = pack_rows(rng.integers(0, 2, (3, 16)).astype(np.uint8))
    for offset in range(5):                # 5 distinct wave sequences
        mags = np.arange(1, 4) + offset
        for _ in range(3):                 # warm + compile + replay
            _one_pass(eng, mags, masks)
        assert len(eng.subarray._mega) <= 2
    assert eng.subarray.megatrace_compiles == 5
    # The two resident entries still replay without recompiling.
    before = eng.subarray.megatrace_compiles
    _one_pass(eng, np.arange(1, 4) + 4, masks)
    assert eng.subarray.megatrace_compiles == before
    assert eng.subarray.megatrace_replays > 0


def test_fault_regime_mutation_recompiles_megatrace():
    """p_cim / p_read / margin mutation under a cached stitched trace
    recompiles it (and the recompiled trace replays thereafter)."""
    fm = FaultModel(p_cim=1e-2, seed=11)
    eng = CountingEngine(2, 4, 16, fault_model=fm, backend="word")
    mags, packed, _ = _stream(2, 4, 16, seed=5, n_waves=4)
    for _ in range(3):
        _one_pass(eng, mags, packed)
    assert eng.subarray.megatrace_compiles == 1
    for mutate in (lambda: setattr(fm, "p_cim", 5e-2),
                   lambda: setattr(fm, "p_read", 1e-3),
                   lambda: setattr(fm, "margin_aware", False)):
        compiles = eng.subarray.megatrace_compiles
        replays = eng.subarray.megatrace_replays
        mutate()
        _one_pass(eng, mags, packed)       # regime changed: recompile
        assert eng.subarray.megatrace_compiles == compiles + 1
        _one_pass(eng, mags, packed)       # new trace replays
        assert eng.subarray.megatrace_replays == replays + 1


def test_shape_change_compiles_fresh_megatrace():
    """A different wave-sequence shape is a different stitched trace --
    never a stale replay of the old one."""
    eng = CountingEngine(2, 4, 16, backend="word")
    mags, packed, _ = _stream(2, 4, 16, seed=7, n_waves=6)
    for _ in range(3):
        _one_pass(eng, mags, packed)
    assert eng.subarray.megatrace_compiles == 1
    for _ in range(3):                     # shorter sequence: fresh mega
        _one_pass(eng, mags[:3], packed[:3])
    assert eng.subarray.megatrace_compiles == 2


def test_disabled_scopes_bypass_megatraces_without_stale_leakage():
    """``megatrace_disabled`` / ``fusion_disabled`` run the per-wave
    path untouched (no stitched compiles or replays accrue), values
    stay exact, and re-enabling resumes replay of the cached trace --
    while a regime change *inside* a disabled scope still recompiles
    on the next enabled run instead of leaking the stale trace."""
    fm = FaultModel(p_cim=0.0, seed=2)
    eng = CountingEngine(2, 3, 18, fault_model=fm, backend="word")
    mags, packed, _ = _stream(2, 3, 18, seed=2, n_waves=4)
    for _ in range(3):
        _one_pass(eng, mags, packed)
    compiles = eng.subarray.megatrace_compiles
    replays = eng.subarray.megatrace_replays
    expected = eng.read_values(strict=False)
    assert megatrace_enabled()
    for scope in (megatrace_disabled, fusion_disabled):
        with scope():
            assert not (scope is megatrace_disabled) or \
                not megatrace_enabled()
            _one_pass(eng, mags, packed)
            assert eng.subarray.megatrace_compiles == compiles
            assert eng.subarray.megatrace_replays == replays
            assert (eng.read_values(strict=False) == expected).all()
    _one_pass(eng, mags, packed)           # re-enabled: replay resumes
    assert eng.subarray.megatrace_replays == replays + 1
    assert (eng.read_values(strict=False) == expected).all()
    # Stale-cache leakage: mutate the regime while bypassed ...
    with megatrace_disabled():
        fm.p_cim = 5e-2
        _one_pass(eng, mags, packed)
    compiles = eng.subarray.megatrace_compiles
    _one_pass(eng, mags, packed)           # ... recompiles when enabled
    assert eng.subarray.megatrace_compiles == compiles + 1


def test_bit_backend_and_protected_paths_never_stitch():
    """run_waves on the bit backend (and any non-fusable engine) is the
    literal per-wave loop; megatrace counters stay zero."""
    eng = CountingEngine(2, 3, 12, backend="bit")
    mags, packed, _ = _stream(2, 3, 12, seed=1, n_waves=3)
    for _ in range(3):
        _one_pass(eng, mags, packed)
    counters = eng.counters
    assert counters.megatrace_compiles == 0
    assert counters.megatrace_replays == 0
